//! Exact and estimated graph diameter.
//!
//! The paper's round bounds multiply rotation steps by the diameter of the
//! (sub)graph; Facts 2/3 and the Chung–Lu bound `Θ(ln n / ln ln n)` are
//! checked empirically via these routines (experiments E6/E7).

use crate::bfs::{self, UNREACHABLE};
use crate::{Graph, NodeId};

/// Exact diameter via all-pairs BFS, `O(n · m)`.
///
/// Returns `None` for a disconnected or empty graph.
pub fn exact(graph: &Graph) -> Option<usize> {
    let n = graph.node_count();
    if n == 0 {
        return None;
    }
    let mut diam = 0usize;
    for v in 0..n {
        let ecc = eccentricity(graph, v as NodeId)?;
        diam = diam.max(ecc);
    }
    Some(diam)
}

/// Eccentricity of `v` (max distance to any node), or `None` if some node
/// is unreachable from `v`.
///
/// # Panics
///
/// Panics if `v >= n`.
pub fn eccentricity(graph: &Graph, v: NodeId) -> Option<usize> {
    let d = bfs::distances(graph, v);
    let mut ecc = 0usize;
    for &x in &d {
        if x == UNREACHABLE {
            return None;
        }
        ecc = ecc.max(x);
    }
    Some(ecc)
}

/// Two-sweep lower bound on the diameter: BFS from `start`, then BFS from
/// the farthest node found. Cheap (`O(m)`) and usually tight on random
/// graphs; always `<= exact`.
///
/// Returns `None` for a disconnected or empty graph.
pub fn two_sweep_lower_bound(graph: &Graph, start: NodeId) -> Option<usize> {
    if graph.node_count() == 0 {
        return None;
    }
    let d1 = bfs::distances(graph, start);
    let mut far = start;
    let mut best = 0;
    for (v, &x) in d1.iter().enumerate() {
        if x == UNREACHABLE {
            return None;
        }
        if x > best {
            best = x;
            far = v as NodeId;
        }
    }
    eccentricity(graph, far)
}

/// The paper's asymptotic diameter scale for `G(n', p')` with
/// `p' = Θ(ln n' / n')`: `ln n / ln ln n` (Chung–Lu).
///
/// Used to normalize measured rounds in experiments.
pub fn chung_lu_scale(n: usize) -> f64 {
    let nf = (n.max(3)) as f64;
    nf.ln() / nf.ln().ln().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator;
    use crate::rng::rng_from_seed;

    #[test]
    fn exact_on_known_graphs() {
        assert_eq!(exact(&generator::path_graph(5)), Some(4));
        assert_eq!(exact(&generator::cycle_graph(6)), Some(3));
        assert_eq!(exact(&generator::cycle_graph(7)), Some(3));
        assert_eq!(exact(&generator::complete(5)), Some(1));
        assert_eq!(exact(&generator::star(6)), Some(2));
        assert_eq!(exact(&generator::petersen()), Some(2));
    }

    #[test]
    fn exact_disconnected_is_none() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(exact(&g), None);
        assert_eq!(exact(&Graph::empty(0)), None);
    }

    #[test]
    fn two_sweep_bounds_exact() {
        let g = generator::grid(5, 7);
        let lb = two_sweep_lower_bound(&g, 17).unwrap();
        let ex = exact(&g).unwrap();
        assert!(lb <= ex);
        assert_eq!(ex, 10); // (5-1) + (7-1)
        assert_eq!(lb, 10); // two-sweep is exact on grids
    }

    #[test]
    fn fact2_diameter_two_for_dense_random_graphs() {
        // Fact 2: D = 2 whp when p = Theta(log n / sqrt(n)).
        let n = 900;
        let p = (n as f64).ln() / (n as f64).sqrt(); // ~ 0.227
        let g = generator::gnp(n, p, &mut rng_from_seed(6)).unwrap();
        assert_eq!(exact(&g), Some(2));
    }

    #[test]
    fn chung_lu_scale_monotone() {
        assert!(chung_lu_scale(1 << 16) > chung_lu_scale(1 << 8));
        assert!(chung_lu_scale(10) > 0.0);
    }
}
