//! Breadth-first search, connectivity, and BFS trees.

use crate::{Graph, NodeId};
use std::collections::VecDeque;

/// Distance value for unreachable nodes in [`distances`].
pub const UNREACHABLE: usize = usize::MAX;

/// BFS distances from `source` to every node; unreachable nodes get
/// [`UNREACHABLE`].
///
/// # Panics
///
/// Panics if `source >= n`.
pub fn distances(graph: &Graph, source: NodeId) -> Vec<usize> {
    assert!((source as usize) < graph.node_count(), "source {source} out of range");
    let mut dist = vec![UNREACHABLE; graph.node_count()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        for &w in graph.neighbors(v) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = dist[v as usize] + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// A BFS tree rooted at `root`: parents, depths, and level sets.
///
/// This mirrors the structure the Upcast algorithm builds distributedly;
/// the centralized version is used by tests and by the Lemma-18
/// subtree-balance experiment.
#[derive(Debug, Clone)]
pub struct BfsTree {
    /// The root node.
    pub root: NodeId,
    /// `parent[v]` is `None` for the root and for unreachable nodes.
    pub parent: Vec<Option<NodeId>>,
    /// BFS depth per node ([`UNREACHABLE`] if unreachable).
    pub depth: Vec<usize>,
    /// `levels[i]` lists the nodes at depth `i`.
    pub levels: Vec<Vec<NodeId>>,
}

impl BfsTree {
    /// Number of reachable nodes (including the root).
    pub fn reachable_count(&self) -> usize {
        self.depth.iter().filter(|&&d| d != UNREACHABLE).count()
    }

    /// Height of the tree (max depth over reachable nodes).
    pub fn height(&self) -> usize {
        self.levels.len().saturating_sub(1)
    }

    /// Size of the subtree rooted at each node (1 for leaves;
    /// 0 for unreachable nodes).
    ///
    /// Used by the Upcast congestion analysis (Lemma 18): upcast time is
    /// proportional to the max subtree load among the root's children.
    pub fn subtree_sizes(&self) -> Vec<usize> {
        let n = self.parent.len();
        let mut size = vec![0usize; n];
        for (v, s) in size.iter_mut().enumerate() {
            if self.depth[v] != UNREACHABLE {
                *s = 1;
            }
        }
        // Process nodes deepest-first so children accumulate before parents.
        let mut order: Vec<NodeId> = self.levels.iter().flatten().copied().collect();
        order.reverse();
        for v in order {
            if let Some(p) = self.parent[v as usize] {
                size[p as usize] += size[v as usize];
            }
        }
        size
    }
}

/// Builds the BFS tree from `root`, breaking ties toward smaller node ids
/// (deterministic given the graph).
///
/// # Panics
///
/// Panics if `root >= n`.
pub fn bfs_tree(graph: &Graph, root: NodeId) -> BfsTree {
    assert!((root as usize) < graph.node_count(), "root {root} out of range");
    let n = graph.node_count();
    let mut parent = vec![None; n];
    let mut depth = vec![UNREACHABLE; n];
    let mut levels: Vec<Vec<NodeId>> = vec![vec![root]];
    depth[root as usize] = 0;
    let mut frontier = vec![root];
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            for &w in graph.neighbors(v) {
                if depth[w as usize] == UNREACHABLE {
                    depth[w as usize] = depth[v as usize] + 1;
                    parent[w as usize] = Some(v);
                    next.push(w);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        next.sort_unstable();
        levels.push(next.clone());
        frontier = next;
    }
    BfsTree { root, parent, depth, levels }
}

/// Builds a BFS tree from `root` with **randomized** parent tie-breaking:
/// each non-root node picks its parent uniformly among its neighbors in
/// the previous level. This is the tree the paper's Lemma 18 (Upcast
/// congestion) reasons about — deterministic tie-breaking funnels whole
/// levels through low-id parents and destroys the subtree balance.
///
/// # Panics
///
/// Panics if `root >= n`.
pub fn bfs_tree_randomized<R: rand::Rng + ?Sized>(
    graph: &Graph,
    root: NodeId,
    rng: &mut R,
) -> BfsTree {
    assert!((root as usize) < graph.node_count(), "root {root} out of range");
    let n = graph.node_count();
    let mut parent = vec![None; n];
    let mut depth = vec![UNREACHABLE; n];
    let mut levels: Vec<Vec<NodeId>> = vec![vec![root]];
    depth[root as usize] = 0;
    let mut frontier = vec![root];
    let mut d = 0usize;
    loop {
        d += 1;
        // Discover the next level first, then assign parents randomly
        // among *all* previous-level neighbors.
        let mut next: Vec<NodeId> = Vec::new();
        for &v in &frontier {
            for &w in graph.neighbors(v) {
                if depth[w as usize] == UNREACHABLE {
                    depth[w as usize] = d;
                    next.push(w);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        next.sort_unstable();
        for &w in &next {
            let candidates: Vec<NodeId> = graph
                .neighbors(w)
                .iter()
                .copied()
                .filter(|&u| depth[u as usize] == d - 1)
                .collect();
            let pick = candidates[rng.gen_range(0..candidates.len())];
            parent[w as usize] = Some(pick);
        }
        levels.push(next.clone());
        frontier = next;
    }
    BfsTree { root, parent, depth, levels }
}

/// Number of connected components (0 for the empty graph).
pub fn component_count(graph: &Graph) -> usize {
    let n = graph.node_count();
    let mut seen = vec![false; n];
    let mut count = 0;
    for s in 0..n {
        if seen[s] {
            continue;
        }
        count += 1;
        let mut queue = VecDeque::new();
        seen[s] = true;
        queue.push_back(s as NodeId);
        while let Some(v) = queue.pop_front() {
            for &w in graph.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    queue.push_back(w);
                }
            }
        }
    }
    count
}

/// The connected components, each as a sorted node list, ordered by their
/// smallest member.
pub fn components(graph: &Graph) -> Vec<Vec<NodeId>> {
    let n = graph.node_count();
    let mut seen = vec![false; n];
    let mut comps = Vec::new();
    for s in 0..n {
        if seen[s] {
            continue;
        }
        let mut comp = vec![s as NodeId];
        seen[s] = true;
        let mut queue = VecDeque::from([s as NodeId]);
        while let Some(v) = queue.pop_front() {
            for &w in graph.neighbors(v) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    comp.push(w);
                    queue.push_back(w);
                }
            }
        }
        comp.sort_unstable();
        comps.push(comp);
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator;

    #[test]
    fn distances_on_path() {
        let g = generator::path_graph(5);
        assert_eq!(distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn distances_disconnected() {
        let g = Graph::from_edges(4, [(0, 1)]).unwrap();
        let d = distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn bfs_tree_on_star() {
        let g = generator::star(5);
        let t = bfs_tree(&g, 0);
        assert_eq!(t.height(), 1);
        assert_eq!(t.levels[1], vec![1, 2, 3, 4]);
        assert!(t.parent[3] == Some(0));
        assert_eq!(t.reachable_count(), 5);
    }

    #[test]
    fn bfs_tree_subtree_sizes() {
        // Path 0-1-2-3 rooted at 0: subtree sizes 4,3,2,1.
        let g = generator::path_graph(4);
        let t = bfs_tree(&g, 0);
        assert_eq!(t.subtree_sizes(), vec![4, 3, 2, 1]);
    }

    #[test]
    fn bfs_tree_unreachable() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]).unwrap();
        let t = bfs_tree(&g, 0);
        assert_eq!(t.reachable_count(), 2);
        assert_eq!(t.subtree_sizes()[2], 0);
        assert_eq!(t.depth[3], UNREACHABLE);
    }

    #[test]
    fn randomized_tree_is_a_valid_bfs_tree() {
        let g = generator::grid(5, 5);
        let mut rng = crate::rng::rng_from_seed(3);
        let t = bfs_tree_randomized(&g, 0, &mut rng);
        let d = distances(&g, 0);
        for (v, &dist) in d.iter().enumerate() {
            assert_eq!(t.depth[v], dist, "depth mismatch at {v}");
            if v != 0 {
                let p = t.parent[v].unwrap();
                assert!(g.has_edge(v as NodeId, p));
                assert_eq!(t.depth[p as usize] + 1, t.depth[v]);
            }
        }
        assert_eq!(t.subtree_sizes()[0], 25);
    }

    #[test]
    fn randomized_tree_balances_better_than_deterministic_on_dense_graphs() {
        // On G(n, p) with diameter 2, deterministic tie-breaking funnels
        // most of level 2 through the smallest-id level-1 node.
        let n = 400;
        let p = (n as f64).ln() / (n as f64).sqrt();
        let g = generator::gnp(n, p, &mut crate::rng::rng_from_seed(4)).unwrap();
        let det = bfs_tree(&g, 0);
        let rnd = bfs_tree_randomized(&g, 0, &mut crate::rng::rng_from_seed(5));
        let imbalance = |t: &BfsTree| {
            let sizes = t.subtree_sizes();
            let kids: Vec<usize> =
                (0..n).filter(|&v| t.parent[v] == Some(0)).map(|v| sizes[v]).collect();
            *kids.iter().max().unwrap() as f64
                / (kids.iter().sum::<usize>() as f64 / kids.len() as f64)
        };
        assert!(
            imbalance(&rnd) < imbalance(&det) / 2.0,
            "randomized {} vs deterministic {}",
            imbalance(&rnd),
            imbalance(&det)
        );
    }

    #[test]
    fn component_counts() {
        assert_eq!(component_count(&Graph::empty(0)), 0);
        assert_eq!(component_count(&Graph::empty(3)), 3);
        assert_eq!(component_count(&generator::cycle_graph(6)), 1);
        let g = Graph::from_edges(5, [(0, 1), (2, 3)]).unwrap();
        assert_eq!(component_count(&g), 3);
        assert_eq!(components(&g), vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn grid_distance_is_manhattan() {
        let g = generator::grid(4, 4);
        let d = distances(&g, 0);
        assert_eq!(d[15], 6); // corner to corner
        assert_eq!(d[5], 2);
    }
}
