//! Random-graph substrate for the distributed Hamiltonian-cycle workspace.
//!
//! This crate provides everything the algorithms of Chatterjee, Fathi,
//! Pandurangan and Pham (ICDCS 2018) need from the *input* side:
//!
//! * a compact immutable [`Graph`] (CSR adjacency) plus a mutable
//!   [`GraphBuilder`],
//! * the random-graph generators the paper evaluates on —
//!   [`generator::gnp`] for the Erdős–Rényi `G(n, p)` model, as well as the
//!   `G(n, M)` and random-regular models mentioned as extensions,
//! * structural queries used by the analysis: BFS ([`bfs`]), exact and
//!   estimated diameter ([`diameter`]), connectivity,
//! * vertex [`partition`]s and their induced subgraphs — materialized, or
//!   as zero-copy [`ClassView`]s over a [`PartitionedGraph`] (Phase 1 of
//!   DHC1/DHC2),
//! * the [`Topology`] trait the CONGEST engine is generic over, so views
//!   and future overlay topologies simulate without copying,
//! * a strict Hamiltonian-cycle verifier ([`cycle`]),
//! * deterministic seeding helpers ([`rng`]) so every experiment is
//!   reproducible from a single `u64`.
//!
//! # Example
//!
//! ```
//! use dhc_graph::{generator, rng, thresholds};
//!
//! # fn main() -> Result<(), dhc_graph::GraphError> {
//! let n = 512;
//! // Edge probability at the paper's DHC1 operating point: p = c ln n / sqrt(n).
//! let p = thresholds::edge_probability(n, 0.5, 4.0);
//! let mut rng = rng::rng_from_seed(7);
//! let g = generator::gnp(n, p, &mut rng)?;
//! assert_eq!(g.node_count(), 512);
//! assert!(g.is_connected());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adjacency;
pub mod bfs;
pub mod cycle;
pub mod diameter;
pub mod dot;
mod error;
pub mod generator;
pub mod partition;
pub mod rng;
pub mod stats;
pub mod thresholds;
pub mod topology;
pub mod view;

pub use adjacency::{EdgeIter, Graph, GraphBuilder};
pub use cycle::HamiltonianCycle;
pub use error::GraphError;
pub use partition::Partition;
pub use topology::Topology;
pub use view::{ClassView, PartitionedGraph};

/// Node identifier inside a [`Graph`]: a dense index in `0..n`.
///
/// Stored as `u32` — a CONGEST word is `Θ(log n)` bits and every graph
/// this workspace simulates satisfies `n ≤ 2³²`, so a 32-bit id *is* a
/// word. Halving the id width halves the footprint of every id-bearing
/// array on the hot path (CSR neighbor lists, partition member lists,
/// grouped intra-class adjacency, message routing buckets). Indexing
/// into `Vec`s widens with `as usize` (infallible on 64-bit targets).
pub type NodeId = u32;

/// Widens a [`NodeId`] to a `usize` index (infallible: `u32 → usize`).
#[inline(always)]
pub const fn nix(v: NodeId) -> usize {
    v as usize
}
