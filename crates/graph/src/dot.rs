//! Graphviz DOT export (for inspecting small instances and cycles).

use crate::{Graph, HamiltonianCycle, NodeId};
use std::collections::HashSet;
use std::fmt::Write as _;

/// Renders the graph in DOT format. If `cycle` is given, its edges are
/// drawn bold red so the Hamiltonian cycle stands out.
///
/// # Example
///
/// ```
/// use dhc_graph::{dot, generator, HamiltonianCycle};
///
/// let g = generator::cycle_graph(4);
/// let hc = HamiltonianCycle::from_order(&g, vec![0, 1, 2, 3]).unwrap();
/// let s = dot::to_dot(&g, Some(&hc));
/// assert!(s.starts_with("graph g {"));
/// assert!(s.contains("color=red"));
/// ```
pub fn to_dot(graph: &Graph, cycle: Option<&HamiltonianCycle>) -> String {
    let highlight: HashSet<(NodeId, NodeId)> =
        cycle.map(|c| c.edge_set().into_iter().collect()).unwrap_or_default();
    let mut out = String::from("graph g {\n  node [shape=circle];\n");
    for v in 0..graph.node_count() {
        let _ = writeln!(out, "  {v};");
    }
    for (u, v) in graph.edges() {
        if highlight.contains(&(u, v)) {
            let _ = writeln!(out, "  {u} -- {v} [color=red, penwidth=2.5];");
        } else {
            let _ = writeln!(out, "  {u} -- {v};");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator;

    #[test]
    fn plain_export_lists_all_edges() {
        let g = generator::path_graph(3);
        let s = to_dot(&g, None);
        assert!(s.contains("0 -- 1;"));
        assert!(s.contains("1 -- 2;"));
        assert!(!s.contains("color=red"));
    }

    #[test]
    fn cycle_edges_highlighted() {
        let g = generator::complete(4);
        let hc = HamiltonianCycle::from_order(&g, vec![0, 1, 2, 3]).unwrap();
        let s = to_dot(&g, Some(&hc));
        // 4 cycle edges red, remaining 2 plain.
        assert_eq!(s.matches("color=red").count(), 4);
        assert_eq!(s.matches(" -- ").count(), 6);
    }

    #[test]
    fn empty_graph_is_valid_dot() {
        let s = to_dot(&Graph::empty(2), None);
        assert!(s.starts_with("graph g {"));
        assert!(s.ends_with("}\n"));
    }
}
