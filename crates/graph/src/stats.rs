//! Structural statistics used by the experiments and examples.

use crate::{Graph, NodeId};

/// Degree-distribution summary of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree `2m/n`.
    pub mean: f64,
    /// Sample standard deviation of the degrees.
    pub stddev: f64,
    /// Histogram: `histogram[d]` = number of nodes of degree `d`.
    pub histogram: Vec<usize>,
}

/// Computes the degree statistics (all zeros/empty for the empty graph).
pub fn degree_stats(graph: &Graph) -> DegreeStats {
    let n = graph.node_count();
    if n == 0 {
        return DegreeStats { min: 0, max: 0, mean: 0.0, stddev: 0.0, histogram: Vec::new() };
    }
    let degrees: Vec<usize> = (0..n).map(|v| graph.degree(v as u32)).collect();
    let min = *degrees.iter().min().expect("n > 0");
    let max = *degrees.iter().max().expect("n > 0");
    let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
    let var = if n > 1 {
        degrees.iter().map(|&d| (d as f64 - mean).powi(2)).sum::<f64>() / (n - 1) as f64
    } else {
        0.0
    };
    let mut histogram = vec![0usize; max + 1];
    for &d in &degrees {
        histogram[d] += 1;
    }
    DegreeStats { min, max, mean, stddev: var.sqrt(), histogram }
}

/// Counts triangles containing node `v` (each unordered neighbor pair that
/// is itself an edge).
pub fn triangles_at(graph: &Graph, v: NodeId) -> usize {
    let nbrs = graph.neighbors(v);
    let mut count = 0;
    for (i, &a) in nbrs.iter().enumerate() {
        for &b in &nbrs[i + 1..] {
            if graph.has_edge(a, b) {
                count += 1;
            }
        }
    }
    count
}

/// Local clustering coefficient of `v`: triangles at `v` divided by
/// `C(deg v, 2)`; 0 for degree < 2.
pub fn clustering_at(graph: &Graph, v: NodeId) -> f64 {
    let d = graph.degree(v);
    if d < 2 {
        return 0.0;
    }
    let possible = d * (d - 1) / 2;
    triangles_at(graph, v) as f64 / possible as f64
}

/// Mean local clustering coefficient (0 for the empty graph).
///
/// For `G(n, p)` this concentrates around `p` — a structural sanity check
/// the tests use on the generators.
pub fn mean_clustering(graph: &Graph) -> f64 {
    let n = graph.node_count();
    if n == 0 {
        return 0.0;
    }
    (0..n).map(|v| clustering_at(graph, v as u32)).sum::<f64>() / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator;
    use crate::rng::rng_from_seed;

    #[test]
    fn degree_stats_on_star() {
        let g = generator::star(6);
        let s = degree_stats(&g);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 5);
        assert!((s.mean - 10.0 / 6.0).abs() < 1e-12);
        assert_eq!(s.histogram[1], 5);
        assert_eq!(s.histogram[5], 1);
    }

    #[test]
    fn degree_stats_empty() {
        let s = degree_stats(&crate::Graph::empty(0));
        assert_eq!(s.max, 0);
        assert!(s.histogram.is_empty());
    }

    #[test]
    fn triangles_in_complete_graph() {
        let g = generator::complete(5);
        assert_eq!(triangles_at(&g, 0), 6); // C(4,2)
        assert_eq!(clustering_at(&g, 0), 1.0);
        assert_eq!(mean_clustering(&g), 1.0);
    }

    #[test]
    fn no_triangles_in_cycle() {
        let g = generator::cycle_graph(8);
        assert_eq!(triangles_at(&g, 3), 0);
        assert_eq!(mean_clustering(&g), 0.0);
    }

    #[test]
    fn gnp_clustering_concentrates_around_p() {
        let p = 0.2;
        let g = generator::gnp(400, p, &mut rng_from_seed(4)).unwrap();
        let c = mean_clustering(&g);
        assert!((c - p).abs() < 0.03, "clustering {c} vs p {p}");
    }

    #[test]
    fn low_degree_clustering_is_zero() {
        let g = generator::path_graph(3);
        assert_eq!(clustering_at(&g, 0), 0.0);
    }
}
