//! The [`Topology`] abstraction: what a CONGEST simulation needs to know
//! about its communication graph.
//!
//! The round engine, the algorithms, and the experiments never need a
//! *materialized* CSR graph — only node counts, degrees, sorted neighbor
//! slices, and edge queries. Expressing that as a trait lets one physical
//! [`Graph`] back many logical topologies at zero copy: the whole graph
//! itself, the per-color-class views of a
//! [`PartitionedGraph`](crate::PartitionedGraph) (Phase 1 of DHC1/DHC2),
//! and future overlays (hypernode graphs, k-machine mappings).

use crate::{Graph, NodeId};

/// A finite simple undirected graph over the dense id space
/// `0..node_count()`, exposed through neighbor slices.
///
/// # Contract
///
/// Implementations must uphold, for every `v < node_count()`:
///
/// * `neighbors(v)` is **strictly ascending**, contains no `v` itself
///   (no self-loops), and every entry is `< node_count()`;
/// * adjacency is symmetric: `u ∈ neighbors(v)` iff `v ∈ neighbors(u)`;
/// * `degree(v) == neighbors(v).len()` and
///   `edge_count() == Σ degree(v) / 2`.
///
/// The sortedness is what lets default [`has_edge`](Topology::has_edge)
/// (and the engine's neighbor checks) run in `O(log deg)` without any
/// per-topology lookup structure.
pub trait Topology {
    /// Number of nodes `n`.
    fn node_count(&self) -> usize;

    /// Number of undirected edges `m`.
    fn edge_count(&self) -> usize;

    /// Sorted neighbor list of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    fn neighbors(&self, v: NodeId) -> &[NodeId];

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Whether the undirected edge `{u, v}` is present. `O(log deg(u))`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Maximum degree over all nodes (0 for the empty topology).
    fn max_degree(&self) -> usize {
        (0..self.node_count()).map(|v| self.degree(v as u32)).max().unwrap_or(0)
    }

    /// Memory footprint of the topology's index structures in machine
    /// words, as reported by experiments that track per-node memory. For
    /// zero-copy views this is the *marginal* cost of the view, not the
    /// backing graph's.
    fn words(&self) -> usize;
}

impl Topology for Graph {
    fn node_count(&self) -> usize {
        Graph::node_count(self)
    }

    fn edge_count(&self) -> usize {
        Graph::edge_count(self)
    }

    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        Graph::neighbors(self, v)
    }

    fn degree(&self, v: NodeId) -> usize {
        Graph::degree(self, v)
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        Graph::has_edge(self, u, v)
    }

    fn max_degree(&self) -> usize {
        Graph::max_degree(self)
    }

    fn words(&self) -> usize {
        Graph::words(self)
    }
}

impl<T: Topology + ?Sized> Topology for &T {
    fn node_count(&self) -> usize {
        (**self).node_count()
    }

    fn edge_count(&self) -> usize {
        (**self).edge_count()
    }

    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        (**self).neighbors(v)
    }

    fn degree(&self, v: NodeId) -> usize {
        (**self).degree(v)
    }

    fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        (**self).has_edge(u, v)
    }

    fn max_degree(&self) -> usize {
        (**self).max_degree()
    }

    fn words(&self) -> usize {
        (**self).words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo_summary<T: Topology>(t: &T) -> (usize, usize, usize) {
        (t.node_count(), t.edge_count(), t.max_degree())
    }

    #[test]
    fn graph_implements_topology() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        assert_eq!(topo_summary(&g), (4, 5, 3));
        assert_eq!(Topology::neighbors(&g, 0), &[1, 2, 3]);
        assert!(Topology::has_edge(&g, 2, 0));
        assert!(!Topology::has_edge(&g, 1, 3));
        assert_eq!(Topology::degree(&g, 1), 2);
        assert_eq!(Topology::words(&g), g.words());
    }

    #[test]
    fn reference_forwarding() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let r: &Graph = &g;
        assert_eq!(topo_summary(&r), (3, 2, 2));
        assert_eq!(Topology::neighbors(&r, 1), &[0, 2]);
    }
}
