//! Zero-copy per-class topology views over a partitioned graph.
//!
//! Phase 1 of DHC1/DHC2 runs one independent DRA instance per color
//! class, on the class's induced subgraph. Materializing those subgraphs
//! ([`Graph::induced_subgraph`]) costs an `O(n)` global→local remap
//! vector plus a fresh CSR **per class** — `O(n·√n)` total allocation for
//! DHC1's `√n` classes, dwarfing the simulation itself at large `n`.
//!
//! [`PartitionedGraph`] removes that: one `O(n + m)` pass stably groups
//! each node's CSR neighbor slice by color, keeping the same-color
//! neighbors **already translated to class-local ids**. After that pass,
//! every class's induced subgraph exists implicitly: a [`ClassView`] is
//! two words (a member slice and an edge count), its neighbor lists are
//! exact sub-slices of the shared grouped array, and local↔global id
//! translation is `O(1)` in both directions. No per-class CSR is ever
//! built and no per-class `O(n)` map is ever allocated.
//!
//! `ClassView` implements [`Topology`], so a
//! [`dhc_congest::Network`](../../dhc_congest/struct.Network.html) can
//! simulate a class directly — bit-identical to simulating the
//! materialized induced subgraph, since both expose the same node count
//! and the same sorted local-id neighbor lists (pinned by
//! `crates/graph/tests/proptest_view.rs` and
//! `crates/core/tests/view_equivalence.rs`).

use crate::{Graph, GraphError, NodeId, Partition, Topology};

/// A graph whose nodes carry a color partition, with each node's
/// neighbor list pre-grouped by color — the zero-copy substrate for
/// per-class [`ClassView`]s.
///
/// # Example
///
/// ```
/// use dhc_graph::{Graph, Partition, PartitionedGraph, Topology};
///
/// # fn main() -> Result<(), dhc_graph::GraphError> {
/// // Square 0-1-2-3 plus diagonal 0-2, colored {0,2,3} / {1}.
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])?;
/// let p = Partition::from_colors(vec![0, 1, 0, 0], 2);
/// let pg = PartitionedGraph::new(&g, &p);
/// let class0 = pg.class_view(0)?;
/// assert_eq!(class0.node_count(), 3);
/// assert_eq!(class0.edge_count(), 3); // (0,2), (2,3), (3,0)
/// // Local ids follow the ascending member list {0, 2, 3} -> 0, 1, 2.
/// assert_eq!(class0.neighbors(1), &[0, 2]);
/// assert_eq!(class0.to_global(1), 2);
/// assert_eq!(class0.to_local(3), Some(2));
/// assert_eq!(class0.to_local(1), None); // different color
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PartitionedGraph<'a> {
    graph: &'a Graph,
    partition: &'a Partition,
    /// Local id of each node within its own class.
    local: Vec<NodeId>,
    /// `intra_offsets[v]..intra_offsets[v + 1]` indexes `intra` for
    /// **global** node `v`.
    intra_offsets: Vec<usize>,
    /// Same-color neighbor lists, concatenated per global node, stored
    /// as **class-local ids**, ascending (the stable grouping preserves
    /// the CSR order, and global→local is monotone within a class).
    intra: Vec<NodeId>,
    /// Undirected intra-class edge count per class.
    class_edges: Vec<usize>,
}

impl<'a> PartitionedGraph<'a> {
    /// Groups `graph`'s adjacency by `partition` color in one `O(n + m)`
    /// pass.
    ///
    /// # Panics
    ///
    /// Panics if the partition's node count differs from the graph's.
    pub fn new(graph: &'a Graph, partition: &'a Partition) -> Self {
        let n = graph.node_count();
        assert_eq!(
            partition.node_count(),
            n,
            "partition covers {} nodes but the graph has {n}",
            partition.node_count()
        );
        let k = partition.class_count();
        let colors = partition.colors();

        // Local ids: position within the (ascending) class member list.
        let mut local = vec![0 as NodeId; n];
        for class in partition.classes() {
            for (l, &v) in class.iter().enumerate() {
                local[v as usize] = l as NodeId;
            }
        }

        // Count pass: each node's same-color degree. Sizing `intra` from
        // the actual same-color degree sum (instead of the old `2m` guess
        // from `graph.words()`) means the grouped array never over-reserves
        // on sparse class mixes — on a k-class random coloring only ~1/k of
        // the adjacency is intra-class, so the guess wasted (k-1)/k of the
        // allocation.
        let mut intra_offsets = Vec::with_capacity(n + 1);
        intra_offsets.push(0);
        let mut same_total = 0usize;
        for v in 0..n {
            let c = colors[v];
            let same =
                graph.neighbors(v as NodeId).iter().filter(|&&w| colors[w as usize] == c).count();
            same_total += same;
            intra_offsets.push(same_total);
        }

        // Group each neighbor slice: keep the same-color entries, already
        // translated to local ids. Order within the slice is preserved,
        // so each list stays ascending in the local id space.
        let mut intra = Vec::with_capacity(same_total);
        let mut class_half_edges = vec![0usize; k];
        for v in 0..n {
            let c = colors[v];
            for &w in graph.neighbors(v as NodeId) {
                if colors[w as usize] == c {
                    intra.push(local[w as usize]);
                }
            }
            class_half_edges[c as usize] += intra.len() - intra_offsets[v];
        }
        debug_assert_eq!(intra.len(), same_total);
        let class_edges = class_half_edges.into_iter().map(|h| h / 2).collect();

        PartitionedGraph { graph, partition, local, intra_offsets, intra, class_edges }
    }

    /// The backing graph.
    pub fn graph(&self) -> &'a Graph {
        self.graph
    }

    /// The partition this grouping follows.
    pub fn partition(&self) -> &'a Partition {
        self.partition
    }

    /// Number of classes `k` (some may be empty).
    pub fn class_count(&self) -> usize {
        self.partition.class_count()
    }

    /// The zero-copy induced-subgraph view of class `c`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptySelection`] if the class is empty
    /// (matching [`Graph::induced_subgraph`] on an empty selection).
    ///
    /// # Panics
    ///
    /// Panics if `c >= k`.
    pub fn class_view(&self, c: usize) -> Result<ClassView<'_>, GraphError> {
        let members = self.partition.class(c);
        if members.is_empty() {
            return Err(GraphError::EmptySelection);
        }
        Ok(ClassView { pg: self, class: c, members, edges: self.class_edges[c] })
    }

    /// Number of same-color neighbors of global node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn intra_degree(&self, v: NodeId) -> usize {
        self.intra_offsets[v as usize + 1] - self.intra_offsets[v as usize]
    }

    /// Number of cross-color neighbors of global node `v` (the edges the
    /// round-1 color exchange crosses).
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn cross_degree(&self, v: NodeId) -> usize {
        self.graph.degree(v) - self.intra_degree(v)
    }

    /// Marginal memory footprint of the grouping (beyond the backing
    /// graph and partition) in machine words.
    pub fn words(&self) -> usize {
        self.local.len() + self.intra_offsets.len() + self.intra.len() + self.class_edges.len()
    }
}

/// The induced subgraph of one color class, as a zero-copy [`Topology`]:
/// dense local ids `0..len` follow the ascending member list, neighbor
/// lists are shared sub-slices of the [`PartitionedGraph`]'s grouped
/// array, and local↔global translation is `O(1)` both ways.
#[derive(Debug, Clone, Copy)]
pub struct ClassView<'a> {
    pg: &'a PartitionedGraph<'a>,
    class: usize,
    members: &'a [NodeId],
    edges: usize,
}

impl ClassView<'_> {
    /// This view's class index (color).
    pub fn class(&self) -> usize {
        self.class
    }

    /// The local→global id map: `members()[local] == global`, ascending.
    pub fn members(&self) -> &[NodeId] {
        self.members
    }

    /// The global id of local node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= len`.
    pub fn to_global(&self, v: NodeId) -> NodeId {
        self.members[v as usize]
    }

    /// The local id of global node `g`, or `None` if `g` is not in this
    /// class. `O(1)`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range for the backing graph.
    pub fn to_local(&self, g: NodeId) -> Option<NodeId> {
        (self.pg.partition.color(g) as usize == self.class).then(|| self.pg.local[g as usize])
    }
}

impl Topology for ClassView<'_> {
    fn node_count(&self) -> usize {
        self.members.len()
    }

    fn edge_count(&self) -> usize {
        self.edges
    }

    fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let g = self.members[v as usize] as usize;
        &self.pg.intra[self.pg.intra_offsets[g]..self.pg.intra_offsets[g + 1]]
    }

    fn words(&self) -> usize {
        // Zero-copy: the view itself is a few words; the shared grouped
        // arrays are accounted once, by `PartitionedGraph::words`.
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator;
    use crate::rng::rng_from_seed;

    /// The view and the materialized induced subgraph must agree exactly.
    fn assert_view_matches_copy(g: &Graph, p: &Partition) {
        let pg = PartitionedGraph::new(g, p);
        for c in 0..p.class_count() {
            let class = p.class(c);
            if class.is_empty() {
                assert!(matches!(pg.class_view(c), Err(GraphError::EmptySelection)));
                continue;
            }
            let view = pg.class_view(c).unwrap();
            let (sub, map) = g.induced_subgraph(class).unwrap();
            assert_eq!(view.members(), &map[..]);
            assert_eq!(view.node_count(), sub.node_count());
            assert_eq!(view.edge_count(), sub.edge_count());
            for v in 0..sub.node_count() as u32 {
                assert_eq!(view.neighbors(v), sub.neighbors(v), "class {c} node {v}");
                assert_eq!(view.degree(v), sub.degree(v));
                assert_eq!(view.to_local(view.to_global(v)), Some(v));
            }
            assert_eq!(view.max_degree(), sub.max_degree());
        }
    }

    #[test]
    fn views_match_induced_subgraphs_on_gnp() {
        let g = generator::gnp(64, 0.2, &mut rng_from_seed(5)).unwrap();
        let p = Partition::random(64, 5, &mut rng_from_seed(6));
        assert_view_matches_copy(&g, &p);
    }

    #[test]
    fn single_class_view_is_the_whole_graph() {
        let g = generator::gnp(32, 0.3, &mut rng_from_seed(7)).unwrap();
        let p = Partition::from_colors(vec![0; 32], 1);
        let pg = PartitionedGraph::new(&g, &p);
        let view = pg.class_view(0).unwrap();
        assert_eq!(view.node_count(), 32);
        assert_eq!(view.edge_count(), g.edge_count());
        for v in 0..32 {
            assert_eq!(view.neighbors(v), g.neighbors(v));
            assert_eq!(pg.cross_degree(v), 0);
        }
    }

    #[test]
    fn empty_class_view_errors_like_induced() {
        let g = generator::cycle_graph(4);
        let p = Partition::from_colors(vec![0, 0, 0, 0], 2);
        let pg = PartitionedGraph::new(&g, &p);
        assert!(matches!(pg.class_view(1), Err(GraphError::EmptySelection)));
    }

    #[test]
    fn cross_and_intra_degrees_partition_the_degree() {
        let g = generator::gnp(48, 0.25, &mut rng_from_seed(9)).unwrap();
        let p = Partition::random(48, 4, &mut rng_from_seed(10));
        let pg = PartitionedGraph::new(&g, &p);
        for v in 0..48 {
            assert_eq!(pg.intra_degree(v) + pg.cross_degree(v), g.degree(v));
        }
        let intra_total: usize = (0..48).map(|v| pg.intra_degree(v)).sum();
        let per_class: usize =
            (0..4).filter_map(|c| pg.class_view(c).ok()).map(|view| view.edge_count()).sum();
        assert_eq!(intra_total, 2 * per_class);
    }

    #[test]
    #[should_panic(expected = "partition covers")]
    fn node_count_mismatch_panics() {
        let g = generator::cycle_graph(4);
        let p = Partition::from_colors(vec![0, 0, 0], 1);
        PartitionedGraph::new(&g, &p);
    }
}
