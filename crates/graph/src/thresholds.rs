//! Edge-probability operating points from the paper.
//!
//! The paper parameterizes `G(n, p)` by `p = c · ln n / n^δ` with
//! `0 < δ ≤ 1`. `δ = 1` is the classical Hamiltonicity/connectivity
//! threshold (any `c > 1` suffices for existence; the rotation analysis
//! in Theorem 2 asks for `c ≥ 86`); `δ = 1/2` is the DHC1 operating
//! point; smaller `δ` means denser graphs and faster algorithms.

/// Returns `p = c · ln n / n^δ`, clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics if `n < 2` (the expression is meaningless for smaller graphs)
/// or `δ` is not finite.
///
/// # Example
///
/// ```
/// let p = dhc_graph::thresholds::edge_probability(1024, 1.0, 2.0);
/// assert!(p > 0.0 && p < 1.0);
/// ```
pub fn edge_probability(n: usize, delta: f64, c: f64) -> f64 {
    assert!(n >= 2, "edge_probability requires n >= 2, got {n}");
    assert!(delta.is_finite(), "delta must be finite");
    let nf = n as f64;
    (c * nf.ln() / nf.powf(delta)).clamp(0.0, 1.0)
}

/// The constant the paper's Theorem 2 analysis uses for the rotation
/// algorithm: `p ≥ 86 ln n / n` guarantees success probability
/// `1 − O(1/n³)` within `7 n ln n` steps.
pub const PAPER_DRA_CONSTANT: f64 = 86.0;

/// Number of color classes Phase 1 of DHC2 uses: `n^{1-δ}`, rounded to the
/// nearest integer and clamped to `[1, n]`.
///
/// For `δ = 1/2` this is the `√n` of DHC1.
///
/// # Example
///
/// ```
/// assert_eq!(dhc_graph::thresholds::num_partitions(1024, 0.5), 32);
/// assert_eq!(dhc_graph::thresholds::num_partitions(1024, 1.0), 1);
/// ```
pub fn num_partitions(n: usize, delta: f64) -> usize {
    assert!(n >= 1);
    assert!((0.0..=1.0).contains(&delta), "delta must be in (0, 1], got {delta}");
    let k = (n as f64).powf(1.0 - delta).round() as usize;
    k.clamp(1, n)
}

/// The step budget from Theorem 2: `ceil(factor · 7 · n · ln n)`, with a
/// floor of `n` so tiny graphs get a usable budget.
///
/// `factor` scales the budget (the paper notes the failure probability can
/// be driven to `O(1/n^α)` by increasing the constant).
pub fn dra_step_budget(n: usize, factor: f64) -> usize {
    let nf = n as f64;
    let steps = factor * 7.0 * nf * nf.ln().max(1.0);
    (steps.ceil() as usize).max(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_decreases_with_delta() {
        let p_dense = edge_probability(1 << 12, 0.3, 4.0);
        let p_mid = edge_probability(1 << 12, 0.5, 4.0);
        let p_sparse = edge_probability(1 << 12, 1.0, 4.0);
        assert!(p_dense > p_mid && p_mid > p_sparse);
    }

    #[test]
    fn probability_clamped_to_one() {
        assert_eq!(edge_probability(2, 0.0, 100.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "n >= 2")]
    fn probability_rejects_tiny_n() {
        edge_probability(1, 0.5, 1.0);
    }

    #[test]
    fn partitions_match_paper_examples() {
        // DHC1: sqrt(n) partitions at delta = 1/2.
        assert_eq!(num_partitions(256, 0.5), 16);
        // delta = 1: a single partition (pure DRA).
        assert_eq!(num_partitions(256, 1.0), 1);
        // Never more than n.
        assert!(num_partitions(4, 0.01) <= 4);
    }

    #[test]
    fn step_budget_grows_superlinearly() {
        let b1 = dra_step_budget(100, 1.0);
        let b2 = dra_step_budget(200, 1.0);
        assert!(b2 > 2 * b1);
        assert!(b1 >= 100);
    }

    #[test]
    fn step_budget_floor_is_n() {
        assert!(dra_step_budget(2, 0.0001) >= 2);
    }
}
