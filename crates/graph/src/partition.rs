//! Random vertex partitions (Phase 1 of DHC1/DHC2).
//!
//! Each node independently picks a uniform color in `0..k`; the color
//! classes are the parallel DRA instances' vertex sets. Lemmas 4 and 7 of
//! the paper show every class has size within `[½, 3/2]` of the mean whp —
//! experiment E2 measures exactly this.
//!
//! Class membership is stored flat, CSR-style (one offsets array plus one
//! member array), so a `k`-class partition of `n` nodes costs `n + k + 1`
//! words regardless of `k`, every class is a contiguous ascending slice,
//! and [`PartitionedGraph`](crate::PartitionedGraph) can index straight
//! into it.

use crate::{Graph, GraphError, NodeId};
use rand::Rng;

/// A partition of `0..n` into `k` color classes.
///
/// # Example
///
/// ```
/// use dhc_graph::Partition;
/// use dhc_graph::rng::rng_from_seed;
///
/// let p = Partition::random(100, 4, &mut rng_from_seed(0));
/// assert_eq!(p.class_count(), 4);
/// assert_eq!(p.classes().map(<[u32]>::len).sum::<usize>(), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    color: Vec<u32>,
    /// `offsets[c]..offsets[c + 1]` indexes `members` for class `c`.
    offsets: Vec<usize>,
    /// Class member lists, concatenated; ascending within each class.
    members: Vec<NodeId>,
}

impl Partition {
    /// Colors each of `n` nodes independently and uniformly with one of
    /// `k` colors (the paper's Phase-1 step `v.color ← random[1..k]`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn random<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Self {
        assert!(k > 0, "partition needs at least one class");
        let mut color = Vec::with_capacity(n);
        for _ in 0..n {
            color.push(rng.gen_range(0..k) as u32);
        }
        Self::from_checked_colors(color, k)
    }

    /// Builds a partition from an explicit color assignment.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or any color is `>= k`.
    pub fn from_colors(color: Vec<u32>, k: usize) -> Self {
        assert!(k > 0, "partition needs at least one class");
        for &c in &color {
            assert!((c as usize) < k, "color {c} out of range for {k} classes");
        }
        Self::from_checked_colors(color, k)
    }

    /// Counting-sort the (validated) colors into the flat class storage.
    fn from_checked_colors(color: Vec<u32>, k: usize) -> Self {
        let n = color.len();
        let mut offsets = vec![0usize; k + 1];
        for &c in &color {
            offsets[c as usize + 1] += 1;
        }
        for c in 0..k {
            offsets[c + 1] += offsets[c];
        }
        let mut cursor = offsets.clone();
        let mut members = vec![0 as NodeId; n];
        for (v, &c) in color.iter().enumerate() {
            members[cursor[c as usize]] = v as NodeId;
            cursor[c as usize] += 1;
        }
        Partition { color, offsets, members }
    }

    /// The color of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn color(&self, v: NodeId) -> u32 {
        self.color[v as usize]
    }

    /// Per-node colors.
    pub fn colors(&self) -> &[u32] {
        &self.color
    }

    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.color.len()
    }

    /// Number of classes `k` (some may be empty).
    pub fn class_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Iterates over the node list of every class, each a contiguous
    /// ascending slice.
    pub fn classes(&self) -> impl ExactSizeIterator<Item = &[NodeId]> + '_ {
        (0..self.class_count()).map(move |c| self.class(c))
    }

    /// The nodes of class `c`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `c >= k`.
    pub fn class(&self, c: usize) -> &[NodeId] {
        &self.members[self.offsets[c]..self.offsets[c + 1]]
    }

    /// Sizes of all classes.
    pub fn class_sizes(&self) -> Vec<usize> {
        self.offsets.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Smallest and largest class size.
    pub fn size_extremes(&self) -> (usize, usize) {
        let sizes = self.class_sizes();
        let min = sizes.iter().copied().min().unwrap_or(0);
        let max = sizes.iter().copied().max().unwrap_or(0);
        (min, max)
    }

    /// Whether event **A** of the paper (Definition 1 / Lemma 7) holds:
    /// every class size lies in `[mean/2, 3·mean/2]` where
    /// `mean = n / k`.
    pub fn is_balanced(&self) -> bool {
        let n = self.color.len() as f64;
        let k = self.class_count() as f64;
        let mean = n / k;
        let (lo, hi) = (mean / 2.0, 1.5 * mean);
        self.classes().all(|c| (c.len() as f64) >= lo && (c.len() as f64) <= hi)
    }

    /// The **materialized** induced subgraph of class `c` plus the
    /// local→global mapping. Prefer
    /// [`PartitionedGraph::class_view`](crate::PartitionedGraph::class_view)
    /// on hot paths — it exposes the same subgraph zero-copy; this copying
    /// form remains as the equivalence oracle.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptySelection`] if the class is empty.
    ///
    /// # Panics
    ///
    /// Panics if `c >= k`.
    pub fn induced(&self, graph: &Graph, c: usize) -> Result<(Graph, Vec<NodeId>), GraphError> {
        graph.induced_subgraph(self.class(c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator;
    use crate::rng::rng_from_seed;

    #[test]
    fn covers_all_nodes_disjointly() {
        let p = Partition::random(200, 7, &mut rng_from_seed(1));
        let mut seen = [false; 200];
        for (c, class) in p.classes().enumerate() {
            for &v in class {
                assert!(!seen[v as usize], "node {v} in two classes");
                seen[v as usize] = true;
                assert_eq!(p.color(v) as usize, c);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn classes_are_ascending_slices() {
        let p = Partition::random(300, 5, &mut rng_from_seed(2));
        for class in p.classes() {
            assert!(class.windows(2).all(|w| w[0] < w[1]));
        }
        assert_eq!(p.classes().len(), 5);
    }

    #[test]
    fn from_colors_round_trip() {
        let colors = vec![0, 2, 1, 2, 0];
        let p = Partition::from_colors(colors.clone(), 3);
        assert_eq!(p.colors(), &colors[..]);
        assert_eq!(p.class(2), &[1, 3]);
        assert_eq!(p.node_count(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_colors_rejects_bad_color() {
        Partition::from_colors(vec![0, 3], 3);
    }

    #[test]
    fn single_class_is_everything() {
        let p = Partition::random(10, 1, &mut rng_from_seed(0));
        assert_eq!(p.class(0).len(), 10);
        assert!(p.is_balanced());
    }

    #[test]
    fn balanced_whp_at_paper_scale() {
        // Lemma 4 regime: k = sqrt(n) classes of expected size sqrt(n).
        let n = 4096;
        let k = 64;
        let p = Partition::random(n, k, &mut rng_from_seed(3));
        assert!(p.is_balanced(), "sizes: {:?}", p.class_sizes());
    }

    #[test]
    fn induced_matches_manual() {
        let g = generator::cycle_graph(6);
        let p = Partition::from_colors(vec![0, 0, 1, 1, 0, 1], 2);
        let (sub, map) = p.induced(&g, 0).unwrap();
        assert_eq!(map, vec![0, 1, 4]);
        // Global edges inside {0,1,4}: (0,1) and (4,5)? 5 not in class; (0,5) no.
        assert_eq!(sub.edge_count(), 1);
        assert!(sub.has_edge(0, 1));
    }

    #[test]
    fn empty_class_induced_errors() {
        let g = generator::cycle_graph(4);
        let p = Partition::from_colors(vec![0, 0, 0, 0], 2);
        assert!(p.induced(&g, 1).is_err());
    }

    #[test]
    fn size_extremes() {
        let p = Partition::from_colors(vec![0, 0, 0, 1], 2);
        assert_eq!(p.size_extremes(), (1, 3));
    }
}
