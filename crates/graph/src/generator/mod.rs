//! Random and deterministic graph generators.
//!
//! The primary model is Erdős–Rényi [`gnp`]; [`gnm`] and
//! [`random_regular`] cover the extensions the paper's conclusion mentions,
//! and [`classic`] provides deterministic fixtures for tests and demos.

mod chung_lu;
pub mod classic;
mod clustered;
mod gnm;
mod gnp;
mod regular;

pub use chung_lu::chung_lu;
pub use classic::{complete, cycle as cycle_graph, grid, path as path_graph, petersen, star};
pub use clustered::clustered;
pub use gnm::gnm;
pub use gnp::gnp;
pub use regular::random_regular;
