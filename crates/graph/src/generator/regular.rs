//! Random regular graphs via Steger–Wormald pairing.

use crate::{Graph, GraphBuilder, GraphError};
use rand::Rng;

/// Maximum number of full restarts before giving up.
const MAX_ATTEMPTS: usize = 64;

/// Largest live-stub count at which a probing stall falls back to exact
/// enumeration of the `O(live²)` suitable pairs. Above it, the attempt
/// restarts instead: a stall with many live stubs is vanishingly rare
/// (the probe makes `10 + 10·live` draws first), and a restart costs
/// `O(n·d)` where the enumeration would cost `O(live²·d)` — the
/// quadratic cliff this bound removes at large `n·d`.
const STALL_ENUM_LIMIT: usize = 1024;

/// Samples a random `d`-regular simple graph on `n` nodes.
///
/// Uses the Steger–Wormald refinement of the configuration model: stubs are
/// paired one edge at a time, each time choosing a uniformly random *suitable*
/// pair (no self-loop, no multi-edge). When random probing stalls near the
/// end (few live stubs), the suitable pairs are enumerated exactly; a stall
/// with more than `STALL_ENUM_LIMIT` (1024) live stubs restarts the attempt
/// instead, bounding the fallback so large `n·d` never falls off the
/// `O(live²)` enumeration cliff. For `d = o(n^{1/3})` the output
/// distribution is asymptotically uniform, which covers the regimes used in
/// the paper's "other random graph models" extension.
///
/// # Errors
///
/// * [`GraphError::InfeasibleRegular`] if `n·d` is odd or `d >= n`.
/// * [`GraphError::RegularRetriesExhausted`] if no simple pairing was found
///   in 64 restarts (practically unreachable).
///
/// # Example
///
/// ```
/// use dhc_graph::generator::random_regular;
/// use dhc_graph::rng::rng_from_seed;
///
/// # fn main() -> Result<(), dhc_graph::GraphError> {
/// let g = random_regular(100, 6, &mut rng_from_seed(4))?;
/// assert!((0..100).all(|v| g.degree(v) == 6));
/// # Ok(())
/// # }
/// ```
pub fn random_regular<R: Rng + ?Sized>(
    n: usize,
    d: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    if d >= n || (n * d) % 2 != 0 {
        return Err(GraphError::InfeasibleRegular { n, d });
    }
    if d == 0 {
        return Ok(Graph::empty(n));
    }
    for _ in 0..MAX_ATTEMPTS {
        if let Some(edges) = try_pairing(n, d, rng) {
            let mut b = GraphBuilder::with_capacity(n, edges.len());
            for (u, v) in edges {
                b.add_edge(u as u32, v as u32)?;
            }
            return Ok(b.build());
        }
    }
    Err(GraphError::RegularRetriesExhausted { attempts: MAX_ATTEMPTS })
}

/// One Steger–Wormald pairing attempt; `None` if it got stuck.
fn try_pairing<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Option<Vec<(usize, usize)>> {
    // stubs[i] = node owning stub i; `live` stubs occupy the prefix.
    let mut stubs: Vec<usize> = (0..n * d).map(|i| i / d).collect();
    let mut live = stubs.len();
    let mut adj: Vec<Vec<usize>> = vec![Vec::with_capacity(d); n];
    let mut edges = Vec::with_capacity(n * d / 2);
    while live > 0 {
        let mut placed = false;
        // Random probing: overwhelmingly succeeds while many stubs remain.
        for _ in 0..(10 + 10 * live) {
            let i = rng.gen_range(0..live);
            let j = rng.gen_range(0..live);
            if i == j {
                continue;
            }
            let (u, v) = (stubs[i], stubs[j]);
            if u == v || adj[u].contains(&v) {
                continue;
            }
            take_pair(&mut stubs, &mut live, i, j);
            adj[u].push(v);
            adj[v].push(u);
            edges.push((u, v));
            placed = true;
            break;
        }
        if placed {
            continue;
        }
        if live > STALL_ENUM_LIMIT {
            // Probing stalled while many stubs are live: restart the
            // attempt rather than paying the quadratic enumeration.
            return None;
        }
        // Endgame stall: enumerate suitable pairs exactly.
        let mut suitable = Vec::new();
        for i in 0..live {
            for j in (i + 1)..live {
                let (u, v) = (stubs[i], stubs[j]);
                if u != v && !adj[u].contains(&v) {
                    suitable.push((i, j));
                }
            }
        }
        if suitable.is_empty() {
            return None; // genuinely stuck; caller restarts
        }
        let (i, j) = suitable[rng.gen_range(0..suitable.len())];
        let (u, v) = (stubs[i], stubs[j]);
        take_pair(&mut stubs, &mut live, i, j);
        adj[u].push(v);
        adj[v].push(u);
        edges.push((u, v));
    }
    Some(edges)
}

/// Removes stubs at positions `i` and `j` by swapping them past the live
/// prefix boundary.
fn take_pair(stubs: &mut [usize], live: &mut usize, i: usize, j: usize) {
    let (hi, lo) = if i > j { (i, j) } else { (j, i) };
    stubs.swap(hi, *live - 1);
    stubs.swap(lo, *live - 2);
    *live -= 2;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn degrees_are_exact() {
        let g = random_regular(60, 4, &mut rng_from_seed(1)).unwrap();
        assert!((0..60).all(|v| g.degree(v) == 4));
        assert_eq!(g.edge_count(), 60 * 4 / 2);
    }

    #[test]
    fn moderately_dense_degree_succeeds() {
        let g = random_regular(64, 9, &mut rng_from_seed(2)).unwrap();
        assert!((0..64).all(|v| g.degree(v) == 9));
    }

    #[test]
    fn rejects_odd_total_degree() {
        assert!(matches!(
            random_regular(5, 3, &mut rng_from_seed(0)),
            Err(GraphError::InfeasibleRegular { n: 5, d: 3 })
        ));
    }

    #[test]
    fn rejects_degree_ge_n() {
        assert!(matches!(
            random_regular(4, 4, &mut rng_from_seed(0)),
            Err(GraphError::InfeasibleRegular { .. })
        ));
    }

    #[test]
    fn zero_regular_is_empty() {
        let g = random_regular(8, 0, &mut rng_from_seed(0)).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn complete_graph_edge_case() {
        // d = n - 1 forces K_n; the exact-enumeration fallback must find it.
        let g = random_regular(6, 5, &mut rng_from_seed(3)).unwrap();
        assert_eq!(g.edge_count(), 15);
        assert!((0..6).all(|v| g.degree(v) == 5));
    }

    #[test]
    fn connected_for_d_at_least_3() {
        // Random d-regular graphs with d >= 3 are connected whp.
        let g = random_regular(200, 3, &mut rng_from_seed(8)).unwrap();
        assert!(g.is_connected());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = random_regular(40, 5, &mut rng_from_seed(21));
        let b = random_regular(40, 5, &mut rng_from_seed(21));
        assert_eq!(a, b);
    }

    #[test]
    fn no_self_loops_or_multi_edges() {
        let g = random_regular(50, 7, &mut rng_from_seed(5)).unwrap();
        for v in 0..50 {
            let nbrs = g.neighbors(v);
            assert!(!nbrs.contains(&v));
            for w in nbrs.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }
}
