//! The Chung–Lu random graph model (expected-degree sequence).
//!
//! The paper cites Chung–Lu as the generalization of `G(n, p)` used to
//! model real-world networks; this sampler supports the heavy-tailed
//! degree sequences those exhibit.

use crate::{Graph, GraphBuilder, GraphError};
use rand::Rng;

/// Samples a Chung–Lu graph: edge `{u, v}` is present independently with
/// probability `min(1, w_u · w_v / Σw)`, so node `u`'s expected degree is
/// approximately `w_u`.
///
/// Runs in `O(n + m)` expected time by processing nodes in decreasing
/// weight order with the skipping technique of Miller & Hagberg.
///
/// # Errors
///
/// Returns [`GraphError::InvalidProbability`] if any weight is negative or
/// non-finite.
///
/// # Example
///
/// ```
/// use dhc_graph::generator::chung_lu;
/// use dhc_graph::rng::rng_from_seed;
///
/// # fn main() -> Result<(), dhc_graph::GraphError> {
/// let weights: Vec<f64> = (0..500).map(|i| 4.0 + (i % 7) as f64).collect();
/// let g = chung_lu(&weights, &mut rng_from_seed(1))?;
/// assert_eq!(g.node_count(), 500);
/// # Ok(())
/// # }
/// ```
pub fn chung_lu<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> Result<Graph, GraphError> {
    let n = weights.len();
    for &w in weights {
        if !w.is_finite() || w < 0.0 {
            return Err(GraphError::InvalidProbability { p: w });
        }
    }
    let total: f64 = weights.iter().sum();
    if n < 2 || total <= 0.0 {
        return Ok(Graph::empty(n));
    }
    // Sort nodes by decreasing weight; remember the original ids.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| weights[b].partial_cmp(&weights[a]).expect("finite weights"));
    let w = |i: usize| weights[order[i]];

    let mut b = GraphBuilder::new(n);
    for i in 0..(n - 1) {
        let mut j = i + 1;
        // Upper-bound probability for the skip draw: the largest remaining
        // pair probability from row i.
        let mut p_bound = (w(i) * w(j) / total).min(1.0);
        if p_bound <= 0.0 {
            continue;
        }
        while j < n {
            if p_bound < 1.0 {
                // Geometric skip under the bound.
                let r: f64 = rng.gen_range(f64::EPSILON..1.0);
                let skip = (r.ln() / (1.0 - p_bound).ln()).floor() as usize;
                j += skip;
            }
            if j >= n {
                break;
            }
            // Accept with the true probability / bound ratio.
            let p_true = (w(i) * w(j) / total).min(1.0);
            if rng.gen_range(0.0..1.0) < p_true / p_bound {
                b.add_edge(order[i] as u32, order[j] as u32)?;
            }
            p_bound = p_true;
            j += 1;
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn expected_degrees_are_respected() {
        // Uniform weights w: reduces to G(n, w^2 / (n w)) = G(n, w/n).
        let n = 2000;
        let w = 12.0;
        let weights = vec![w; n];
        let g = chung_lu(&weights, &mut rng_from_seed(2)).unwrap();
        let mean_deg = g.avg_degree();
        assert!((mean_deg - w).abs() < 1.2, "mean degree {mean_deg} vs target {w}");
    }

    #[test]
    fn heavy_nodes_get_heavy_degrees() {
        let n = 1000;
        let mut weights = vec![3.0; n];
        weights[0] = 150.0;
        let g = chung_lu(&weights, &mut rng_from_seed(3)).unwrap();
        assert!(g.degree(0) > 80, "hub degree {} should be near its weight 150", g.degree(0));
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(chung_lu(&[1.0, -2.0], &mut rng_from_seed(0)).is_err());
        assert!(chung_lu(&[1.0, f64::NAN], &mut rng_from_seed(0)).is_err());
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(chung_lu(&[], &mut rng_from_seed(0)).unwrap().node_count(), 0);
        assert_eq!(chung_lu(&[5.0], &mut rng_from_seed(0)).unwrap().edge_count(), 0);
        assert_eq!(chung_lu(&[0.0, 0.0], &mut rng_from_seed(0)).unwrap().edge_count(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let weights: Vec<f64> = (0..100).map(|i| 2.0 + (i % 5) as f64).collect();
        let a = chung_lu(&weights, &mut rng_from_seed(7)).unwrap();
        let b = chung_lu(&weights, &mut rng_from_seed(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn simple_graph_invariants() {
        let weights = vec![10.0; 300];
        let g = chung_lu(&weights, &mut rng_from_seed(9)).unwrap();
        for v in 0..300 {
            assert!(!g.neighbors(v).contains(&v));
        }
    }
}
