//! The uniform `G(n, M)` sampler.

use crate::{Graph, GraphBuilder, GraphError};
use rand::Rng;
use std::collections::HashSet;

/// Samples a graph uniformly from all simple graphs on `n` nodes with
/// exactly `m` edges (the `G(n, M)` model, the paper's stated extension).
///
/// Uses rejection sampling of edge slots when `m` is small relative to
/// `C(n, 2)` and a partial Fisher–Yates over the edge universe otherwise.
///
/// # Errors
///
/// Returns [`GraphError::TooManyEdges`] if `m > C(n, 2)`.
///
/// # Example
///
/// ```
/// use dhc_graph::generator::gnm;
/// use dhc_graph::rng::rng_from_seed;
///
/// # fn main() -> Result<(), dhc_graph::GraphError> {
/// let g = gnm(100, 300, &mut rng_from_seed(1))?;
/// assert_eq!(g.edge_count(), 300);
/// # Ok(())
/// # }
/// ```
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<Graph, GraphError> {
    let max = if n < 2 { 0 } else { n * (n - 1) / 2 };
    if m > max {
        return Err(GraphError::TooManyEdges { requested: m, max });
    }
    if m == 0 {
        return Ok(Graph::empty(n));
    }
    let mut b = GraphBuilder::with_capacity(n, m);
    if m * 4 <= max {
        // Sparse: rejection sampling of (u, v) pairs.
        let mut seen: HashSet<(usize, usize)> = HashSet::with_capacity(m * 2);
        while seen.len() < m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if seen.insert(key) {
                b.add_edge(key.0 as u32, key.1 as u32)?;
            }
        }
    } else {
        // Dense: partial Fisher–Yates over the ranked edge universe.
        let mut universe: Vec<usize> = (0..max).collect();
        for i in 0..m {
            let j = rng.gen_range(i..max);
            universe.swap(i, j);
            let (u, v) = unrank(universe[i]);
            b.add_edge(u as u32, v as u32)?;
        }
    }
    Ok(b.build())
}

/// Inverse of the row-major ranking of pairs (v, w) with w < v:
/// rank = v*(v-1)/2 + w.
fn unrank(rank: usize) -> (usize, usize) {
    // v is the largest integer with v*(v-1)/2 <= rank.
    let mut v = ((2.0 * rank as f64 + 0.25).sqrt() + 0.5) as usize;
    while v * (v - 1) / 2 > rank {
        v -= 1;
    }
    while (v + 1) * v / 2 <= rank {
        v += 1;
    }
    let w = rank - v * (v - 1) / 2;
    (v, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn exact_edge_count_sparse_and_dense() {
        let g = gnm(64, 100, &mut rng_from_seed(0)).unwrap();
        assert_eq!(g.edge_count(), 100);
        let dense_m = 64 * 63 / 2 - 5;
        let g = gnm(64, dense_m, &mut rng_from_seed(0)).unwrap();
        assert_eq!(g.edge_count(), dense_m);
    }

    #[test]
    fn rejects_too_many_edges() {
        assert!(matches!(
            gnm(4, 7, &mut rng_from_seed(0)),
            Err(GraphError::TooManyEdges { requested: 7, max: 6 })
        ));
    }

    #[test]
    fn zero_edges() {
        let g = gnm(10, 0, &mut rng_from_seed(0)).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn full_graph() {
        let g = gnm(6, 15, &mut rng_from_seed(0)).unwrap();
        assert_eq!(g.edge_count(), 15);
        for u in 0..6u32 {
            assert_eq!(g.degree(u), 5);
        }
    }

    #[test]
    fn unrank_round_trips() {
        let mut rank = 0;
        for v in 1..40 {
            for w in 0..v {
                assert_eq!(unrank(rank), (v, w));
                rank += 1;
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = gnm(50, 123, &mut rng_from_seed(77)).unwrap();
        let b = gnm(50, 123, &mut rng_from_seed(77)).unwrap();
        assert_eq!(a, b);
    }
}
