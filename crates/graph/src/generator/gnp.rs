//! The Erdős–Rényi `G(n, p)` sampler.

use crate::{Graph, GraphBuilder, GraphError};
use rand::Rng;

/// Samples a `G(n, p)` random graph: every one of the `C(n, 2)` possible
/// edges is present independently with probability `p`.
///
/// Uses the Batagelj–Brandes geometric-skipping technique, so the running
/// time is `O(n + m)` in expectation rather than `O(n²)`; this matters for
/// the sparse regimes (`p = Θ(ln n / n)`) the paper targets.
///
/// # Errors
///
/// Returns [`GraphError::InvalidProbability`] if `p` is outside `[0, 1]`
/// or NaN.
///
/// # Example
///
/// ```
/// use dhc_graph::generator::gnp;
/// use dhc_graph::rng::rng_from_seed;
///
/// # fn main() -> Result<(), dhc_graph::GraphError> {
/// let mut rng = rng_from_seed(3);
/// let g = gnp(200, 0.1, &mut rng)?;
/// assert_eq!(g.node_count(), 200);
/// // Expected m = p * C(200, 2) = 1990; loose sanity band.
/// assert!(g.edge_count() > 1500 && g.edge_count() < 2500);
/// # Ok(())
/// # }
/// ```
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph, GraphError> {
    if !(0.0..=1.0).contains(&p) || p.is_nan() {
        return Err(GraphError::InvalidProbability { p });
    }
    if n < 2 || p == 0.0 {
        return Ok(Graph::empty(n));
    }
    if p == 1.0 {
        return Ok(super::complete(n));
    }
    let expected = (p * (n as f64) * ((n - 1) as f64) / 2.0) as usize;
    let mut b = GraphBuilder::with_capacity(n, expected + expected / 8 + 16);
    // Enumerate candidate pairs (v, w), w < v, in row-major order and jump
    // ahead by geometric gaps: the next present edge is Geom(p) pairs away.
    let log_q = (1.0 - p).ln();
    let mut v: usize = 1;
    let mut w: i64 = -1;
    while v < n {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (r.ln() / log_q).floor() as i64;
        w += 1 + skip;
        while w >= v as i64 && v < n {
            w -= v as i64;
            v += 1;
        }
        if v < n {
            b.add_edge(v as u32, w as u32)?;
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn rejects_bad_probability() {
        let mut rng = rng_from_seed(0);
        assert!(matches!(gnp(10, -0.1, &mut rng), Err(GraphError::InvalidProbability { .. })));
        assert!(matches!(gnp(10, 1.5, &mut rng), Err(GraphError::InvalidProbability { .. })));
        assert!(matches!(gnp(10, f64::NAN, &mut rng), Err(GraphError::InvalidProbability { .. })));
    }

    #[test]
    fn p_zero_is_empty() {
        let mut rng = rng_from_seed(0);
        let g = gnp(50, 0.0, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn p_one_is_complete() {
        let mut rng = rng_from_seed(0);
        let g = gnp(20, 1.0, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 20 * 19 / 2);
    }

    #[test]
    fn tiny_n() {
        let mut rng = rng_from_seed(0);
        assert_eq!(gnp(0, 0.5, &mut rng).unwrap().node_count(), 0);
        assert_eq!(gnp(1, 0.5, &mut rng).unwrap().edge_count(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = gnp(100, 0.07, &mut rng_from_seed(11)).unwrap();
        let b = gnp(100, 0.07, &mut rng_from_seed(11)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn edge_count_concentrates() {
        // Chernoff: for n = 400, p = 0.05, E[m] = 3990, deviation > 10% has
        // probability < 1e-9; a fixed seed keeps this deterministic anyway.
        let g = gnp(400, 0.05, &mut rng_from_seed(5)).unwrap();
        let expected = 0.05 * 400.0 * 399.0 / 2.0;
        let dev = (g.edge_count() as f64 - expected).abs() / expected;
        assert!(dev < 0.10, "m = {} vs E = {expected}", g.edge_count());
    }

    #[test]
    fn no_self_loops_or_duplicates_by_construction() {
        let g = gnp(150, 0.2, &mut rng_from_seed(9)).unwrap();
        for v in 0..g.node_count() {
            let nbrs = g.neighbors(v as u32);
            assert!(!nbrs.contains(&(v as u32)));
            for pair in nbrs.windows(2) {
                assert!(pair[0] < pair[1]);
            }
        }
    }

    #[test]
    fn above_connectivity_threshold_is_connected() {
        // p = 4 ln n / n is comfortably above ln n / n.
        let n = 512;
        let p = 4.0 * (n as f64).ln() / n as f64;
        let g = gnp(n, p, &mut rng_from_seed(2)).unwrap();
        assert!(g.is_connected());
    }

    #[test]
    fn very_sparse_is_disconnected() {
        let g = gnp(512, 0.0005, &mut rng_from_seed(2)).unwrap();
        assert!(!g.is_connected());
    }
}
