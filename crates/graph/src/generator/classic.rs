//! Deterministic graph families used as fixtures in tests, examples,
//! and sanity experiments.

use crate::{Graph, NodeId};

/// The cycle `C_n` (`n >= 3`): node `i` is adjacent to `i ± 1 (mod n)`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a cycle needs at least 3 nodes, got {n}");
    Graph::from_edges(n, (0..n).map(|i| (i as NodeId, ((i + 1) % n) as NodeId)))
        .expect("cycle edges are always valid")
}

/// The path `P_n`: nodes `0..n` connected in a line. `n = 0` and `n = 1`
/// give edgeless graphs.
pub fn path(n: usize) -> Graph {
    if n < 2 {
        return Graph::empty(n);
    }
    Graph::from_edges(n, (0..n - 1).map(|i| (i as NodeId, (i + 1) as NodeId)))
        .expect("path edges are always valid")
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let edges = (0..n).flat_map(|u| ((u + 1)..n).map(move |v| (u as NodeId, v as NodeId)));
    Graph::from_edges(n, edges).expect("complete edges are always valid")
}

/// The star `S_n`: node 0 adjacent to all of `1..n`.
pub fn star(n: usize) -> Graph {
    if n < 2 {
        return Graph::empty(n);
    }
    Graph::from_edges(n, (1..n).map(|v| (0, v as NodeId))).expect("star edges are always valid")
}

/// The `rows × cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let n = rows * cols;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let v = (r * cols + c) as NodeId;
            if c + 1 < cols {
                edges.push((v, v + 1));
            }
            if r + 1 < rows {
                edges.push((v, v + cols as NodeId));
            }
        }
    }
    Graph::from_edges(n, edges).expect("grid edges are always valid")
}

/// The Petersen graph: 10 nodes, 15 edges, 3-regular, famously
/// **not** Hamiltonian — the canonical negative fixture for cycle finders.
pub fn petersen() -> Graph {
    let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(15);
    // Outer 5-cycle 0..4, inner 5-star 5..9, spokes i -> i+5.
    for i in 0..5u32 {
        edges.push((i, (i + 1) % 5));
        edges.push((5 + i, 5 + (i + 2) % 5));
        edges.push((i, i + 5));
    }
    Graph::from_edges(10, edges).expect("petersen edges are always valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_structure() {
        let g = cycle(5);
        assert_eq!(g.edge_count(), 5);
        assert!((0..5u32).all(|v| g.degree(v) == 2));
        assert!(g.is_connected());
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn cycle_too_small_panics() {
        cycle(2);
    }

    #[test]
    fn path_structure() {
        let g = path(4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(path(1).edge_count(), 0);
        assert_eq!(path(0).node_count(), 0);
    }

    #[test]
    fn complete_structure() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert!((0..6u32).all(|v| g.degree(v) == 5));
    }

    #[test]
    fn star_structure() {
        let g = star(5);
        assert_eq!(g.degree(0), 4);
        assert!((1..5u32).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn grid_structure() {
        let g = grid(3, 4);
        assert_eq!(g.node_count(), 12);
        // Edges: 3 * 3 horizontal rows? rows*(cols-1) + (rows-1)*cols = 9 + 8 = 17.
        assert_eq!(g.edge_count(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(5), 4); // interior
    }

    #[test]
    fn petersen_structure() {
        let g = petersen();
        assert_eq!(g.node_count(), 10);
        assert_eq!(g.edge_count(), 15);
        assert!((0..10u32).all(|v| g.degree(v) == 3));
        assert!(g.is_connected());
    }
}
