//! Merge-tree-aware clustered graphs for large-scale DHC2 sweeps.
//!
//! A uniform `G(n, p)` has to be globally dense for randomly drawn Phase-1
//! classes to stay above the DRA threshold, which makes million-node
//! instances memory-infeasible (`m = Θ(n²/s · ln s)`). The clustered model
//! sidesteps that: nodes come in `k` contiguous blocks of `s`, each block a
//! private `G(s, intra_p)` that IS a Phase-1 class, and cross edges are
//! sprinkled exactly where DHC2's deterministic color pairing will look for
//! bridges. Total size is `Θ(n·ln s + n·log k)` edges — sparse enough for
//! `n = 10⁶` on one machine while every class is comfortably dense.

use crate::{Graph, GraphBuilder, GraphError, NodeId};
use rand::Rng;

/// Samples a clustered graph aligned with DHC2's merge tree and returns it
/// with the Phase-1 coloring (node `v` gets color `v / s`).
///
/// * `k` clusters × `s` nodes; cluster `c` spans nodes `[c·s, (c+1)·s)` and
///   is an independent `G(s, intra_p)`.
/// * DHC2 merges current colors `(2t, 2t+1)` at every level and halves, so
///   the groups that must share a bridge are exactly the color ranges
///   `[2t·2^ℓ, (2t+1)·2^ℓ)` vs `[(2t+1)·2^ℓ, (2t+2)·2^ℓ)`. For each such
///   pair the sampler adds `⌈bridge_factor · √(|A|·|B|)⌉` uniform cross
///   pairs (duplicates collapse), putting the expected number of spliceable
///   bridge pairs near `2·bridge_factor²` per merge — independent of level.
///
/// `bridge_factor ≈ 3` makes a missing bridge a `≈ e⁻¹⁸` event per merge;
/// callers that scan seeds can go lower.
///
/// # Errors
///
/// Returns [`GraphError::InvalidProbability`] if `intra_p` is outside
/// `[0, 1]` or NaN.
///
/// # Panics
///
/// Panics if `k == 0`, `s < 3` (a class must be able to carry a cycle), or
/// `bridge_factor` is negative or non-finite.
///
/// # Example
///
/// ```
/// use dhc_graph::generator::clustered;
/// use dhc_graph::rng::rng_from_seed;
///
/// # fn main() -> Result<(), dhc_graph::GraphError> {
/// let (g, colors) = clustered(4, 50, 0.5, 3.0, &mut rng_from_seed(1))?;
/// assert_eq!(g.node_count(), 200);
/// assert_eq!(colors[49], 0);
/// assert_eq!(colors[50], 1);
/// # Ok(())
/// # }
/// ```
pub fn clustered<R: Rng + ?Sized>(
    k: usize,
    s: usize,
    intra_p: f64,
    bridge_factor: f64,
    rng: &mut R,
) -> Result<(Graph, Vec<u32>), GraphError> {
    assert!(k > 0, "clustered graph needs at least one cluster");
    assert!(s >= 3, "clusters must hold at least 3 nodes, got {s}");
    assert!(
        bridge_factor.is_finite() && bridge_factor >= 0.0,
        "bridge_factor must be finite and non-negative"
    );
    if !(0.0..=1.0).contains(&intra_p) || intra_p.is_nan() {
        return Err(GraphError::InvalidProbability { p: intra_p });
    }
    let n = k * s;
    let expected_intra = (intra_p * (s * (s - 1) / 2) as f64) as usize * k;
    let mut b = GraphBuilder::with_capacity(n, expected_intra + expected_intra / 8 + 16);

    // Intra-cluster G(s, intra_p), Batagelj–Brandes skipping per cluster.
    if intra_p > 0.0 {
        let log_q = (1.0 - intra_p).ln();
        for c in 0..k {
            let base = (c * s) as NodeId;
            if intra_p == 1.0 {
                for v in 1..s as NodeId {
                    for w in 0..v {
                        b.add_edge(base + v, base + w)?;
                    }
                }
                continue;
            }
            let mut v: usize = 1;
            let mut w: i64 = -1;
            while v < s {
                let r: f64 = rng.gen_range(f64::EPSILON..1.0);
                let skip = (r.ln() / log_q).floor() as i64;
                w += 1 + skip;
                while w >= v as i64 && v < s {
                    w -= v as i64;
                    v += 1;
                }
                if v < s {
                    b.add_edge(base + v as NodeId, base + w as NodeId)?;
                }
            }
        }
    }

    // Cross edges along the merge tree: at level ℓ, current colors (2t, 2t+1)
    // are the original-color ranges below; seed each pairing with enough
    // uniform cross pairs that a bridge exists w.h.p.
    let mut span = 1usize; // clusters per current color at this level
    while span < k {
        let mut lo = 0usize;
        while lo + span < k {
            let a_nodes = span * s; // clusters [lo, lo+span) — always full
            let b_lo = (lo + span) * s;
            let b_hi = ((lo + 2 * span).min(k)) * s;
            let b_nodes = b_hi - b_lo;
            let quota = (bridge_factor * ((a_nodes as f64) * (b_nodes as f64)).sqrt()).ceil();
            for _ in 0..quota as usize {
                let u = (lo * s) + rng.gen_range(0..a_nodes);
                let v = b_lo + rng.gen_range(0..b_nodes);
                b.add_edge(u as NodeId, v as NodeId)?;
            }
            lo += 2 * span;
        }
        span *= 2;
    }

    let colors = (0..n).map(|v| (v / s) as u32).collect();
    Ok((b.build(), colors))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn shape_and_coloring() {
        let (g, colors) = clustered(8, 20, 0.6, 3.0, &mut rng_from_seed(7)).unwrap();
        assert_eq!(g.node_count(), 160);
        assert_eq!(colors.len(), 160);
        for (v, &c) in colors.iter().enumerate() {
            assert_eq!(c as usize, v / 20);
        }
    }

    #[test]
    fn every_merge_pair_is_cross_connected() {
        // Walk the merge tree the way DHC2 will and demand at least one
        // cross edge per pairing (the sampler aims for far more).
        let (k, s) = (13, 10); // non-power-of-two exercises ragged groups
        let (g, _) = clustered(k, s, 0.8, 3.0, &mut rng_from_seed(3)).unwrap();
        let mut span = 1usize;
        while span < k {
            let mut lo = 0usize;
            while lo + span < k {
                let a = (lo * s) as u32..((lo + span) * s) as u32;
                let b = ((lo + span) * s) as u32..(((lo + 2 * span).min(k)) * s) as u32;
                let linked = a.clone().any(|u| g.neighbors(u).iter().any(|&v| b.contains(&v)));
                assert!(linked, "no cross edge for span {span} at lo {lo}");
                lo += 2 * span;
            }
            span *= 2;
        }
    }

    #[test]
    fn intra_edges_stay_inside_clusters_at_zero_bridges() {
        let (g, colors) = clustered(5, 12, 0.7, 0.0, &mut rng_from_seed(11)).unwrap();
        for v in 0..g.node_count() as u32 {
            for &w in g.neighbors(v) {
                assert_eq!(colors[v as usize], colors[w as usize]);
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = clustered(6, 15, 0.4, 2.0, &mut rng_from_seed(42)).unwrap();
        let b = clustered(6, 15, 0.4, 2.0, &mut rng_from_seed(42)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_bad_probability() {
        assert!(matches!(
            clustered(2, 5, 1.5, 1.0, &mut rng_from_seed(0)),
            Err(GraphError::InvalidProbability { .. })
        ));
    }

    #[test]
    fn single_cluster_has_no_cross_edges() {
        let (g, colors) = clustered(1, 30, 0.5, 3.0, &mut rng_from_seed(9)).unwrap();
        assert_eq!(g.node_count(), 30);
        assert!(colors.iter().all(|&c| c == 0));
    }
}
