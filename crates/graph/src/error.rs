use std::error::Error;
use std::fmt;

/// Errors produced while constructing or validating graphs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint was `>= n`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: usize,
        /// The number of nodes in the graph.
        n: usize,
    },
    /// A self-loop `(v, v)` was supplied; simple graphs only.
    SelfLoop {
        /// The node with the loop.
        node: usize,
    },
    /// An invalid probability (outside `[0, 1]`, or NaN) was supplied.
    InvalidProbability {
        /// The offending value.
        p: f64,
    },
    /// `G(n, M)` was asked for more edges than `C(n, 2)`.
    TooManyEdges {
        /// Requested number of edges.
        requested: usize,
        /// Maximum possible number of edges.
        max: usize,
    },
    /// A random-regular graph with infeasible parameters was requested
    /// (`n * d` odd, or `d >= n`).
    InfeasibleRegular {
        /// Number of nodes.
        n: usize,
        /// Requested degree.
        d: usize,
    },
    /// The configuration-model sampler exhausted its retry budget.
    RegularRetriesExhausted {
        /// Number of attempts made.
        attempts: usize,
    },
    /// A partition class or node list referenced by an operation was empty.
    EmptySelection,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => {
                write!(f, "self-loop at node {node} not allowed in a simple graph")
            }
            GraphError::InvalidProbability { p } => {
                write!(f, "edge probability {p} is not in [0, 1]")
            }
            GraphError::TooManyEdges { requested, max } => {
                write!(f, "requested {requested} edges but at most {max} are possible")
            }
            GraphError::InfeasibleRegular { n, d } => {
                write!(f, "no {d}-regular graph on {n} nodes exists")
            }
            GraphError::RegularRetriesExhausted { attempts } => {
                write!(f, "configuration model failed after {attempts} attempts")
            }
            GraphError::EmptySelection => {
                write!(f, "operation requires a non-empty node selection")
            }
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase_start() {
        let errs: Vec<GraphError> = vec![
            GraphError::NodeOutOfRange { node: 5, n: 3 },
            GraphError::SelfLoop { node: 2 },
            GraphError::InvalidProbability { p: 1.5 },
            GraphError::TooManyEdges { requested: 10, max: 3 },
            GraphError::InfeasibleRegular { n: 3, d: 3 },
            GraphError::RegularRetriesExhausted { attempts: 64 },
            GraphError::EmptySelection,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase() || s.starts_with(char::is_numeric));
        }
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
