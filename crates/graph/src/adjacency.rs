//! Compact immutable graph representation (CSR) and its builder.

use crate::{GraphError, NodeId};
use std::fmt;

/// An immutable, simple, undirected graph stored in compressed sparse row
/// (CSR) form.
///
/// Neighbor lists are sorted, enabling `O(log deg)` edge queries via binary
/// search. Construction goes through [`GraphBuilder`] or [`Graph::from_edges`].
///
/// # Example
///
/// ```
/// use dhc_graph::Graph;
///
/// # fn main() -> Result<(), dhc_graph::GraphError> {
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// assert_eq!(g.node_count(), 4);
/// assert_eq!(g.edge_count(), 4);
/// assert!(g.has_edge(0, 3));
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors` for node `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbor lists.
    neighbors: Vec<NodeId>,
    /// Number of undirected edges.
    m: usize,
}

impl Graph {
    /// Builds a graph with `n` nodes from an iterator of undirected edges.
    ///
    /// Duplicate edges (in either orientation) are merged. Self-loops and
    /// out-of-range endpoints are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`].
    pub fn from_edges<I>(n: usize, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId)>,
    {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v)?;
        }
        Ok(b.build())
    }

    /// Builds an edgeless graph with `n` nodes.
    pub fn empty(n: usize) -> Self {
        Graph { offsets: vec![0; n + 1], neighbors: Vec::new(), m: 0 }
    }

    /// Number of nodes `n`.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Sorted neighbor list of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }

    /// Whether the undirected edge `{u, v}` is present. `O(log deg(u))`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterates over every undirected edge once, as `(u, v)` with `u < v`,
    /// in lexicographic order.
    pub fn edges(&self) -> EdgeIter<'_> {
        EdgeIter { graph: self, u: 0, idx: 0 }
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.node_count()).map(|v| self.degree(v as NodeId)).max().unwrap_or(0)
    }

    /// Minimum degree over all nodes (0 for the empty graph).
    pub fn min_degree(&self) -> usize {
        (0..self.node_count()).map(|v| self.degree(v as NodeId)).min().unwrap_or(0)
    }

    /// Average degree `2m / n` (0 for the empty graph).
    pub fn avg_degree(&self) -> f64 {
        let n = self.node_count();
        if n == 0 {
            0.0
        } else {
            2.0 * self.m as f64 / n as f64
        }
    }

    /// Whether the graph is connected (the empty graph counts as connected).
    pub fn is_connected(&self) -> bool {
        crate::bfs::component_count(self) <= 1
    }

    /// The subgraph induced by `nodes`, together with the mapping from the
    /// new local ids (`0..nodes.len()`) back to the original ids.
    ///
    /// `nodes` may be in any order and determines the local id assignment;
    /// duplicates are rejected as out-of-range usage would be.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if any node is out of range and
    /// [`GraphError::EmptySelection`] if `nodes` is empty.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` contains duplicates.
    pub fn induced_subgraph(&self, nodes: &[NodeId]) -> Result<(Graph, Vec<NodeId>), GraphError> {
        if nodes.is_empty() {
            return Err(GraphError::EmptySelection);
        }
        let n = self.node_count();
        let mut to_local: Vec<Option<NodeId>> = vec![None; n];
        let mut degree_sum = 0usize;
        for (local, &g) in nodes.iter().enumerate() {
            if g as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: g as usize, n });
            }
            assert!(
                to_local[g as usize].is_none(),
                "duplicate node {g} in induced_subgraph selection"
            );
            to_local[g as usize] = Some(local as NodeId);
            degree_sum += self.degree(g);
        }
        // Each internal edge is pushed once (u < v) and contributes 2 to
        // the selection's degree sum, so degree_sum / 2 bounds the edge
        // count: the builder never reallocates while collecting.
        let mut b = GraphBuilder::with_capacity(nodes.len(), degree_sum / 2);
        for (local_u, &g_u) in nodes.iter().enumerate() {
            let local_u = local_u as NodeId;
            for &g_v in self.neighbors(g_u) {
                if let Some(local_v) = to_local[g_v as usize] {
                    if local_u < local_v {
                        b.add_edge(local_u, local_v)?;
                    }
                }
            }
        }
        Ok((b.build(), nodes.to_vec()))
    }

    /// Total memory footprint of the CSR arrays in machine words
    /// (used by experiments that report per-node memory).
    pub fn words(&self) -> usize {
        self.offsets.len() + self.neighbors.len()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph").field("n", &self.node_count()).field("m", &self.m).finish()
    }
}

/// Iterator over the undirected edges of a [`Graph`], produced by
/// [`Graph::edges`].
#[derive(Debug, Clone)]
pub struct EdgeIter<'a> {
    graph: &'a Graph,
    u: NodeId,
    idx: usize,
}

impl Iterator for EdgeIter<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        let g = self.graph;
        let n = g.node_count();
        while (self.u as usize) < n {
            let nbrs = g.neighbors(self.u);
            while self.idx < nbrs.len() {
                let v = nbrs[self.idx];
                self.idx += 1;
                if v > self.u {
                    return Some((self.u, v));
                }
            }
            self.u += 1;
            self.idx = 0;
        }
        None
    }
}

/// Incremental builder for [`Graph`].
///
/// Collects edges (duplicates allowed; they are merged at
/// [`build`](GraphBuilder::build) time) and produces the immutable CSR form.
///
/// # Example
///
/// ```
/// use dhc_graph::GraphBuilder;
///
/// # fn main() -> Result<(), dhc_graph::GraphError> {
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 0)?; // duplicate, merged
/// b.add_edge(1, 2)?;
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: Vec::new() }
    }

    /// Creates a builder with capacity for `cap` edges.
    pub fn with_capacity(n: usize, cap: usize) -> Self {
        GraphBuilder { n, edges: Vec::with_capacity(cap) }
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`].
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<&mut Self, GraphError> {
        if u as usize >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u as usize, n: self.n });
        }
        if v as usize >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v as usize, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u as usize });
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
        Ok(self)
    }

    /// Number of (possibly duplicate) edges recorded so far.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into a [`Graph`], merging duplicate edges.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let m = self.edges.len();
        let mut deg = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as NodeId; 2 * m];
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each per-node slice was filled from edges sorted by (min, max); the
        // slice for u receives targets in nondecreasing order only for the
        // (u, v) with u < v part, so sort each slice to restore the invariant.
        for v in 0..self.n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph { offsets, neighbors, m }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.edges().next().is_none());
    }

    #[test]
    fn zero_node_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.node_count(), 0);
        assert!(g.is_connected());
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn builds_sorted_csr() {
        let g = Graph::from_edges(5, [(3, 1), (0, 3), (4, 0), (2, 4)]).unwrap();
        assert_eq!(g.neighbors(0), &[3, 4]);
        assert_eq!(g.neighbors(3), &[0, 1]);
        assert_eq!(g.neighbors(4), &[0, 2]);
        assert_eq!(g.edge_count(), 4);
    }

    #[test]
    fn merges_duplicates_both_orientations() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (0, 1), (1, 2)]).unwrap();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(Graph::from_edges(3, [(1, 1)]), Err(GraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Graph::from_edges(3, [(0, 3)]),
            Err(GraphError::NodeOutOfRange { node: 3, n: 3 })
        );
    }

    #[test]
    fn has_edge_symmetric() {
        let g = Graph::from_edges(4, [(0, 2), (2, 3)]).unwrap();
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(1, 2));
    }

    #[test]
    fn edges_iterator_lexicographic_once() {
        let g = Graph::from_edges(4, [(2, 1), (0, 3), (0, 1)]).unwrap();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 3), (1, 2)]);
    }

    #[test]
    fn degree_stats() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]).unwrap();
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.min_degree(), 1);
        assert!((g.avg_degree() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        // Square 0-1-2-3 plus diagonal 0-2.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]).unwrap();
        let (sub, map) = g.induced_subgraph(&[0, 2, 3]).unwrap();
        assert_eq!(sub.node_count(), 3);
        assert_eq!(map, vec![0, 2, 3]);
        // Local ids: 0 -> 0, 2 -> 1, 3 -> 2. Edges: (0,2)->(0,1), (2,3)->(1,2), (3,0)->(2,0).
        assert_eq!(sub.edge_count(), 3);
        assert!(sub.has_edge(0, 1));
        assert!(sub.has_edge(1, 2));
        assert!(sub.has_edge(0, 2));
    }

    #[test]
    fn induced_subgraph_respects_selection_order() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let (sub, map) = g.induced_subgraph(&[2, 1]).unwrap();
        assert_eq!(map, vec![2, 1]);
        assert!(sub.has_edge(0, 1)); // global (2,1)
        assert_eq!(sub.edge_count(), 1);
    }

    #[test]
    fn induced_subgraph_empty_selection_errors() {
        let g = Graph::empty(3);
        assert_eq!(g.induced_subgraph(&[]).unwrap_err(), GraphError::EmptySelection);
    }

    #[test]
    fn debug_is_nonempty() {
        let g = Graph::empty(2);
        assert!(!format!("{g:?}").is_empty());
    }
}
