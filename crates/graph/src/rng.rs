//! Deterministic seeding helpers.
//!
//! Every randomized routine in the workspace takes `&mut impl Rng` and every
//! top-level entry point derives its generators from a single `u64` seed via
//! [`derive_seed`], so that whole experiments are reproducible bit-for-bit.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates the workspace-standard seeded RNG.
///
/// # Example
///
/// ```
/// use rand::Rng;
/// let mut a = dhc_graph::rng::rng_from_seed(42);
/// let mut b = dhc_graph::rng::rng_from_seed(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent stream seed from `(seed, stream)`.
///
/// Uses the SplitMix64 finalizer, which is a bijection of the combined state
/// with good avalanche behavior; distinct `(seed, stream)` pairs give
/// uncorrelated streams. Used to give each simulated node, trial, or phase
/// its own generator.
///
/// # Example
///
/// ```
/// let s0 = dhc_graph::rng::derive_seed(1, 0);
/// let s1 = dhc_graph::rng::derive_seed(1, 1);
/// assert_ne!(s0, s1);
/// ```
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(9);
        let mut b = rng_from_seed(9);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        let xs: Vec<u64> = (0..4).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..4).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derived_streams_distinct() {
        let mut seen = HashSet::new();
        for seed in 0..8u64 {
            for stream in 0..64u64 {
                assert!(seen.insert(derive_seed(seed, stream)), "collision at {seed}/{stream}");
            }
        }
    }

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive_seed(123, 456), derive_seed(123, 456));
    }
}
