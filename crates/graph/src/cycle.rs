//! Hamiltonian-cycle representation and strict verification.
//!
//! The distributed algorithms output, per node, its two incident cycle
//! edges (the paper's output convention). [`HamiltonianCycle`] stores the
//! equivalent global visiting order and checks everything: length `n`,
//! each node exactly once, every consecutive pair an actual graph edge,
//! and the closing edge present.

use crate::{Graph, NodeId};
use std::error::Error;
use std::fmt;

/// Why a candidate cycle failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CycleError {
    /// The visiting order does not contain every node exactly once.
    NotAPermutation {
        /// Expected length `n`.
        expected: usize,
        /// Actual length supplied.
        actual: usize,
    },
    /// A node appeared twice (or an id was out of range).
    RepeatedOrInvalidNode {
        /// The offending node.
        node: usize,
    },
    /// Two consecutive nodes in the order are not adjacent in the graph.
    MissingEdge {
        /// Tail of the missing edge.
        from: usize,
        /// Head of the missing edge.
        to: usize,
        /// Position in the visiting order where the defect occurs.
        position: usize,
    },
    /// Graphs with fewer than 3 nodes have no Hamiltonian cycle.
    GraphTooSmall {
        /// Number of nodes.
        n: usize,
    },
    /// A per-node successor map did not form a single cycle.
    NotASingleCycle {
        /// Length of the cycle containing node 0.
        cycle_length: usize,
        /// Expected length `n`.
        expected: usize,
    },
    /// A per-node successor entry was missing.
    MissingSuccessor {
        /// The node without a successor.
        node: usize,
    },
}

impl fmt::Display for CycleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CycleError::NotAPermutation { expected, actual } => {
                write!(f, "visiting order has {actual} entries, expected {expected}")
            }
            CycleError::RepeatedOrInvalidNode { node } => {
                write!(f, "node {node} repeated or out of range")
            }
            CycleError::MissingEdge { from, to, position } => {
                write!(f, "no edge between {from} and {to} (order position {position})")
            }
            CycleError::GraphTooSmall { n } => {
                write!(f, "graph with {n} nodes cannot contain a hamiltonian cycle")
            }
            CycleError::NotASingleCycle { cycle_length, expected } => {
                write!(f, "successor map closes after {cycle_length} nodes, expected {expected}")
            }
            CycleError::MissingSuccessor { node } => {
                write!(f, "node {node} has no successor")
            }
        }
    }
}

impl Error for CycleError {}

/// A verified-representation Hamiltonian cycle: the visiting order of all
/// `n` nodes (the closing edge from last back to first is implicit).
///
/// Construction is only possible through verifying constructors, so holding
/// a `HamiltonianCycle` for a graph means the cycle is valid for it.
///
/// # Example
///
/// ```
/// use dhc_graph::{generator, HamiltonianCycle};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generator::cycle_graph(5);
/// let hc = HamiltonianCycle::from_order(&g, vec![0, 1, 2, 3, 4])?;
/// assert_eq!(hc.len(), 5);
/// assert_eq!(hc.successor(4), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HamiltonianCycle {
    order: Vec<NodeId>,
}

impl HamiltonianCycle {
    /// Verifies `order` as a Hamiltonian cycle of `graph` and wraps it.
    ///
    /// # Errors
    ///
    /// Returns a [`CycleError`] describing the first defect found.
    pub fn from_order(graph: &Graph, order: Vec<NodeId>) -> Result<Self, CycleError> {
        let n = graph.node_count();
        if n < 3 {
            return Err(CycleError::GraphTooSmall { n });
        }
        if order.len() != n {
            return Err(CycleError::NotAPermutation { expected: n, actual: order.len() });
        }
        let mut seen = vec![false; n];
        for &v in &order {
            if v as usize >= n || seen[v as usize] {
                return Err(CycleError::RepeatedOrInvalidNode { node: v as usize });
            }
            seen[v as usize] = true;
        }
        for i in 0..n {
            let from = order[i];
            let to = order[(i + 1) % n];
            if !graph.has_edge(from, to) {
                return Err(CycleError::MissingEdge {
                    from: from as usize,
                    to: to as usize,
                    position: i,
                });
            }
        }
        Ok(HamiltonianCycle { order })
    }

    /// Builds and verifies a cycle from a per-node successor map
    /// (the distributed algorithms' native output: each node knows the
    /// next node on the cycle).
    ///
    /// # Errors
    ///
    /// Returns a [`CycleError`]; in particular
    /// [`CycleError::NotASingleCycle`] if the map decomposes into several
    /// cycles, and [`CycleError::MissingSuccessor`] if an entry is `None`.
    pub fn from_successors(graph: &Graph, succ: &[Option<NodeId>]) -> Result<Self, CycleError> {
        let n = graph.node_count();
        if n < 3 {
            return Err(CycleError::GraphTooSmall { n });
        }
        if succ.len() != n {
            return Err(CycleError::NotAPermutation { expected: n, actual: succ.len() });
        }
        let mut order: Vec<NodeId> = Vec::with_capacity(n);
        let mut v: NodeId = 0;
        for _ in 0..n {
            order.push(v);
            match succ[v as usize] {
                None => return Err(CycleError::MissingSuccessor { node: v as usize }),
                Some(w) => {
                    if w as usize >= n {
                        return Err(CycleError::RepeatedOrInvalidNode { node: w as usize });
                    }
                    v = w;
                }
            }
            if v == 0 && order.len() < n {
                return Err(CycleError::NotASingleCycle { cycle_length: order.len(), expected: n });
            }
        }
        if v != 0 {
            // Walked n steps without returning to the start: some node repeats.
            return Err(CycleError::NotASingleCycle { cycle_length: n, expected: n });
        }
        Self::from_order(graph, order)
    }

    /// The visiting order (length `n`).
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of nodes on the cycle (= `n`).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Always false: a verified cycle has at least 3 nodes.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The successor of `v` on the cycle.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a node of the cycle's graph.
    pub fn successor(&self, v: NodeId) -> NodeId {
        let pos = self.position(v);
        self.order[(pos + 1) % self.order.len()]
    }

    /// The predecessor of `v` on the cycle.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a node of the cycle's graph.
    pub fn predecessor(&self, v: NodeId) -> NodeId {
        let pos = self.position(v);
        self.order[(pos + self.order.len() - 1) % self.order.len()]
    }

    /// Position of `v` in the visiting order.
    fn position(&self, v: NodeId) -> usize {
        self.order.iter().position(|&x| x == v).unwrap_or_else(|| panic!("node {v} not on cycle"))
    }

    /// The per-node successor map (inverse of [`from_successors`](Self::from_successors)).
    pub fn to_successors(&self) -> Vec<NodeId> {
        let n = self.order.len();
        let mut succ = vec![0; n];
        for i in 0..n {
            succ[self.order[i] as usize] = self.order[(i + 1) % n];
        }
        succ
    }

    /// The cycle's edge set as `(min, max)` pairs, sorted.
    pub fn edge_set(&self) -> Vec<(NodeId, NodeId)> {
        let n = self.order.len();
        let mut edges: Vec<(NodeId, NodeId)> = (0..n)
            .map(|i| {
                let a = self.order[i];
                let b = self.order[(i + 1) % n];
                if a < b {
                    (a, b)
                } else {
                    (b, a)
                }
            })
            .collect();
        edges.sort_unstable();
        edges
    }
}

/// Convenience check: does `order` describe a Hamiltonian cycle of `graph`?
pub fn is_hamiltonian_cycle(graph: &Graph, order: &[NodeId]) -> bool {
    HamiltonianCycle::from_order(graph, order.to_vec()).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator;

    #[test]
    fn accepts_valid_cycle() {
        let g = generator::cycle_graph(6);
        let hc = HamiltonianCycle::from_order(&g, vec![0, 1, 2, 3, 4, 5]).unwrap();
        assert_eq!(hc.successor(5), 0);
        assert_eq!(hc.predecessor(0), 5);
        assert_eq!(hc.len(), 6);
    }

    #[test]
    fn accepts_rotated_and_reversed_orders() {
        let g = generator::cycle_graph(5);
        assert!(is_hamiltonian_cycle(&g, &[2, 3, 4, 0, 1]));
        assert!(is_hamiltonian_cycle(&g, &[4, 3, 2, 1, 0]));
    }

    #[test]
    fn rejects_wrong_length() {
        let g = generator::cycle_graph(5);
        assert_eq!(
            HamiltonianCycle::from_order(&g, vec![0, 1, 2]).unwrap_err(),
            CycleError::NotAPermutation { expected: 5, actual: 3 }
        );
    }

    #[test]
    fn rejects_repeat() {
        let g = generator::complete(4);
        assert_eq!(
            HamiltonianCycle::from_order(&g, vec![0, 1, 1, 3]).unwrap_err(),
            CycleError::RepeatedOrInvalidNode { node: 1 }
        );
    }

    #[test]
    fn rejects_missing_edge() {
        let g = generator::path_graph(4); // no closing edge 3-0
        let err = HamiltonianCycle::from_order(&g, vec![0, 1, 2, 3]).unwrap_err();
        assert_eq!(err, CycleError::MissingEdge { from: 3, to: 0, position: 3 });
    }

    #[test]
    fn rejects_tiny_graph() {
        let g = generator::complete(2);
        assert_eq!(
            HamiltonianCycle::from_order(&g, vec![0, 1]).unwrap_err(),
            CycleError::GraphTooSmall { n: 2 }
        );
    }

    #[test]
    fn successors_round_trip() {
        let g = generator::complete(5);
        let hc = HamiltonianCycle::from_order(&g, vec![3, 1, 4, 0, 2]).unwrap();
        let succ: Vec<Option<NodeId>> = hc.to_successors().into_iter().map(Some).collect();
        let hc2 = HamiltonianCycle::from_successors(&g, &succ).unwrap();
        assert_eq!(hc2.edge_set(), hc.edge_set());
    }

    #[test]
    fn from_successors_rejects_two_cycles() {
        let g = generator::complete(6);
        // Two triangles: 0->1->2->0, 3->4->5->3.
        let succ = vec![Some(1), Some(2), Some(0), Some(4), Some(5), Some(3)];
        assert_eq!(
            HamiltonianCycle::from_successors(&g, &succ).unwrap_err(),
            CycleError::NotASingleCycle { cycle_length: 3, expected: 6 }
        );
    }

    #[test]
    fn from_successors_rejects_missing() {
        let g = generator::complete(4);
        let succ = vec![Some(1), None, Some(3), Some(0)];
        assert_eq!(
            HamiltonianCycle::from_successors(&g, &succ).unwrap_err(),
            CycleError::MissingSuccessor { node: 1 }
        );
    }

    #[test]
    fn from_successors_rejects_non_permutation_map() {
        let g = generator::complete(4);
        // 1 -> 2 -> 3 -> 1 cycle not through 0... 0 -> 1 enters but never returns to 0.
        let succ = vec![Some(1), Some(2), Some(3), Some(1)];
        assert!(HamiltonianCycle::from_successors(&g, &succ).is_err());
    }

    #[test]
    fn edge_set_sorted_unique() {
        let g = generator::cycle_graph(4);
        let hc = HamiltonianCycle::from_order(&g, vec![0, 1, 2, 3]).unwrap();
        assert_eq!(hc.edge_set(), vec![(0, 1), (0, 3), (1, 2), (2, 3)]);
    }

    #[test]
    fn petersen_has_no_hamiltonian_cycle_spotcheck() {
        // Not exhaustive, but the canonical orders must fail.
        let g = generator::petersen();
        assert!(!is_hamiltonian_cycle(&g, &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]));
    }
}
