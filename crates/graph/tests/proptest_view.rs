//! Property tests pinning the zero-copy [`ClassView`] to the copying
//! oracle: on random `G(n, p)` graphs with random partitions, every class
//! view must agree **edge-for-edge and degree-for-degree** with the
//! materialized [`Graph::induced_subgraph`] of the same class.

use dhc_graph::rng::rng_from_seed;
use dhc_graph::{generator, GraphError, Partition, PartitionedGraph, Topology};
use proptest::prelude::*;

proptest! {
    #[test]
    fn class_views_match_induced_subgraphs_on_gnp(
        seed in any::<u64>(),
        n in 3usize..96,
        pm in 0u32..100,
        k in 1usize..12,
    ) {
        let p = pm as f64 / 100.0;
        let g = generator::gnp(n, p, &mut rng_from_seed(seed)).unwrap();
        let partition = Partition::random(n, k, &mut rng_from_seed(seed ^ 0x9E37));
        let pg = PartitionedGraph::new(&g, &partition);

        let mut covered = 0usize;
        let mut intra_edges = 0usize;
        for c in 0..partition.class_count() {
            let class = partition.class(c);
            if class.is_empty() {
                prop_assert!(matches!(pg.class_view(c), Err(GraphError::EmptySelection)));
                continue;
            }
            let view = pg.class_view(c).unwrap();
            let (sub, map) = g.induced_subgraph(class).unwrap();

            // Same id space and member map.
            prop_assert_eq!(view.members(), &map[..]);
            prop_assert_eq!(view.node_count(), sub.node_count());
            prop_assert_eq!(view.edge_count(), sub.edge_count());

            // Degree-for-degree, edge-for-edge (slices, order included).
            for (v, &mapped) in map.iter().enumerate() {
                let v = v as u32;
                prop_assert_eq!(view.degree(v), sub.degree(v));
                prop_assert_eq!(view.neighbors(v), sub.neighbors(v));
                // O(1) round trip through the global id space.
                let global = view.to_global(v);
                prop_assert_eq!(mapped, global);
                prop_assert_eq!(view.to_local(global), Some(v));
            }

            // Edge queries agree with the oracle in both directions.
            for lu in 0..sub.node_count() as u32 {
                for lv in 0..sub.node_count() as u32 {
                    prop_assert_eq!(view.has_edge(lu, lv), sub.has_edge(lu, lv));
                }
            }

            covered += view.node_count();
            intra_edges += view.edge_count();
        }
        // Views cover every node exactly once; cross + intra = all edges.
        prop_assert_eq!(covered, n);
        let cross_total: usize = (0..n).map(|v| pg.cross_degree(v as u32)).sum();
        prop_assert_eq!(intra_edges + cross_total / 2, g.edge_count());
    }

    #[test]
    fn view_neighbor_slices_satisfy_the_topology_contract(
        seed in any::<u64>(),
        n in 3usize..64,
        k in 1usize..8,
    ) {
        let g = generator::gnp(n, 0.3, &mut rng_from_seed(seed)).unwrap();
        let partition = Partition::random(n, k, &mut rng_from_seed(seed ^ 0xC0FF));
        let pg = PartitionedGraph::new(&g, &partition);
        for c in 0..partition.class_count() {
            let Ok(view) = pg.class_view(c) else { continue };
            let mut degree_sum = 0usize;
            for v in 0..view.node_count() as u32 {
                let nbrs = view.neighbors(v);
                // Strictly ascending, in range, no self-loops.
                prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
                prop_assert!(nbrs.iter().all(|&w| (w as usize) < view.node_count()));
                prop_assert!(!nbrs.contains(&v));
                // Symmetric.
                for &w in nbrs {
                    prop_assert!(view.neighbors(w).binary_search(&v).is_ok());
                }
                degree_sum += nbrs.len();
            }
            prop_assert_eq!(degree_sum, 2 * view.edge_count());
        }
    }
}
