//! Property-based tests for the graph substrate.

use dhc_graph::{bfs, generator, rng::rng_from_seed, Graph, HamiltonianCycle, Partition};
use proptest::prelude::*;

/// Strategy: arbitrary simple-graph edge list over n nodes.
fn edges_strategy(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..max_edges)
        .prop_map(|pairs| pairs.into_iter().filter(|(u, v)| u != v).collect::<Vec<_>>())
}

proptest! {
    #[test]
    fn csr_degree_sums_to_twice_edges(edges in edges_strategy(20, 60)) {
        let g = Graph::from_edges(20, edges).unwrap();
        let deg_sum: usize = (0..20u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(deg_sum, 2 * g.edge_count());
    }

    #[test]
    fn adjacency_is_symmetric(edges in edges_strategy(16, 48)) {
        let g = Graph::from_edges(16, edges).unwrap();
        for u in 0..16u32 {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn edges_iterator_matches_has_edge(edges in edges_strategy(12, 40)) {
        let g = Graph::from_edges(12, edges).unwrap();
        let listed: Vec<_> = g.edges().collect();
        prop_assert_eq!(listed.len(), g.edge_count());
        for (u, v) in listed {
            prop_assert!(u < v);
            prop_assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn induced_subgraph_preserves_adjacency(edges in edges_strategy(14, 50), sel_bits in 0u32..(1 << 14)) {
        let g = Graph::from_edges(14, edges).unwrap();
        let nodes: Vec<u32> = (0..14u32).filter(|i| sel_bits & (1 << i) != 0).collect();
        prop_assume!(!nodes.is_empty());
        let (sub, map) = g.induced_subgraph(&nodes).unwrap();
        for lu in 0..sub.node_count() {
            for lv in 0..sub.node_count() {
                if lu != lv {
                    prop_assert_eq!(
                        sub.has_edge(lu as u32, lv as u32),
                        g.has_edge(map[lu], map[lv])
                    );
                }
            }
        }
    }

    #[test]
    fn partition_classes_are_disjoint_cover(seed in any::<u64>(), k in 1usize..10) {
        let p = Partition::random(64, k, &mut rng_from_seed(seed));
        let total: usize = p.classes().map(<[u32]>::len).sum();
        prop_assert_eq!(total, 64);
        let mut seen = [false; 64];
        for class in p.classes() {
            for &v in class {
                prop_assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        }
    }

    #[test]
    fn gnp_is_deterministic_and_simple(seed in any::<u64>(), n in 2usize..80, pm in 0u32..100) {
        let p = pm as f64 / 100.0;
        let a = generator::gnp(n, p, &mut rng_from_seed(seed)).unwrap();
        let b = generator::gnp(n, p, &mut rng_from_seed(seed)).unwrap();
        prop_assert_eq!(&a, &b);
        for v in 0..n as u32 {
            prop_assert!(!a.neighbors(v).contains(&v));
        }
    }

    #[test]
    fn bfs_distances_satisfy_triangle_on_edges(edges in edges_strategy(15, 45)) {
        let g = Graph::from_edges(15, edges).unwrap();
        let d = bfs::distances(&g, 0);
        for (u, v) in g.edges() {
            let (u, v) = (u as usize, v as usize);
            if d[u] != bfs::UNREACHABLE && d[v] != bfs::UNREACHABLE {
                let du = d[u] as i64;
                let dv = d[v] as i64;
                prop_assert!((du - dv).abs() <= 1);
            }
        }
    }

    #[test]
    fn cycle_roundtrip_any_rotation(shift in 0usize..12) {
        let g = generator::cycle_graph(12);
        let order: Vec<u32> = (0..12).map(|i| ((i + shift) % 12) as u32).collect();
        let hc = HamiltonianCycle::from_order(&g, order).unwrap();
        let succ: Vec<Option<u32>> = hc.to_successors().into_iter().map(Some).collect();
        let hc2 = HamiltonianCycle::from_successors(&g, &succ).unwrap();
        prop_assert_eq!(hc.edge_set(), hc2.edge_set());
    }

    #[test]
    fn bfs_subtree_sizes_sum_to_component(edges in edges_strategy(18, 40)) {
        let g = Graph::from_edges(18, edges).unwrap();
        let t = bfs::bfs_tree(&g, 0);
        let sizes = t.subtree_sizes();
        prop_assert_eq!(sizes[0], t.reachable_count());
    }
}
