//! A minimal, dependency-free JSON value with insertion-ordered
//! objects, a renderer, and a strict parser.
//!
//! Numbers are carried as **preformatted text** ([`Json::Num`]) so the
//! writer controls formatting exactly (e.g. `{:.3}` millisecond fields)
//! and parse→render round-trips never reformat a value. That is all the
//! bench schema needs; this is not a general-purpose JSON library.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as its exact textual form.
    Num(String),
    /// A string (unescaped form).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key → value, insertion-ordered, keys unescaped).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An unsigned integer number.
    pub fn u64(v: u64) -> Json {
        Json::Num(v.to_string())
    }

    /// A signed integer number.
    pub fn i64(v: i64) -> Json {
        Json::Num(v.to_string())
    }

    /// A `usize` number.
    pub fn usize(v: usize) -> Json {
        Json::Num(v.to_string())
    }

    /// A float rendered with one decimal place.
    pub fn f1(v: f64) -> Json {
        Json::Num(format!("{v:.1}"))
    }

    /// A float rendered with three decimal places (milliseconds).
    pub fn f3(v: f64) -> Json {
        Json::Num(format!("{v:.3}"))
    }

    /// A string value.
    pub fn str(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// An empty object (append with [`Json::set`]).
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Appends/overwrites `key` in an object (panics on non-objects —
    /// builder misuse, not data errors). Returns `self` for chaining.
    pub fn set(mut self, key: impl Into<String>, value: Json) -> Json {
        let Json::Obj(entries) = &mut self else {
            panic!("Json::set on non-object");
        };
        let key = key.into();
        if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            entries.push((key, value));
        }
        self
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number parsed as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Renders to compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(n),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at(pos, "trailing characters after document"));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl JsonError {
    fn at(offset: usize, message: &'static str) -> JsonError {
        JsonError { offset, message }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(_) => Err(JsonError::at(*pos, "unexpected character")),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &'static str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError::at(*pos, "invalid literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits_from = *pos;
    while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
        *pos += 1;
    }
    if *pos == digits_from {
        return Err(JsonError::at(*pos, "expected digits"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        let frac_from = *pos;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == frac_from {
            return Err(JsonError::at(*pos, "expected fraction digits"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        let exp_from = *pos;
        while *pos < bytes.len() && bytes[*pos].is_ascii_digit() {
            *pos += 1;
        }
        if *pos == exp_from {
            return Err(JsonError::at(*pos, "expected exponent digits"));
        }
    }
    // The scanned range is ASCII by construction.
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
    Ok(Json::Num(text.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    let mut chunk_start = *pos;
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at(*pos, "unterminated string")),
            Some(b'"') => {
                out.push_str(str_chunk(bytes, chunk_start, *pos)?);
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                out.push_str(str_chunk(bytes, chunk_start, *pos)?);
                *pos += 1;
                let esc =
                    bytes.get(*pos).ok_or_else(|| JsonError::at(*pos, "unterminated escape"))?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| JsonError::at(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError::at(*pos, "invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::at(*pos, "invalid \\u escape"))?;
                        *pos += 4;
                        // Surrogate pairs are out of scope for the bench
                        // schema; map them to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(JsonError::at(*pos - 1, "unknown escape")),
                }
                chunk_start = *pos;
            }
            Some(c) if *c < 0x20 => return Err(JsonError::at(*pos, "control character in string")),
            Some(_) => *pos += 1,
        }
    }
}

fn str_chunk(bytes: &[u8], from: usize, to: usize) -> Result<&str, JsonError> {
    std::str::from_utf8(&bytes[from..to])
        .map_err(|_| JsonError::at(from, "invalid utf-8 in string"))
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // consume '{'
    let mut entries = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(entries));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(JsonError::at(*pos, "expected object key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(JsonError::at(*pos, "expected ':'"));
        }
        *pos += 1;
        entries.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            _ => return Err(JsonError::at(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_round_trip() {
        let doc = Json::obj()
            .set("schema", Json::str("dhc-bench/v1"))
            .set("n", Json::u64(1000000))
            .set("wall_ms", Json::f3(12.3456))
            .set("neg", Json::i64(-3))
            .set("flags", Json::Arr(vec![Json::Bool(true), Json::Null]))
            .set("label", Json::str("a \"quoted\"\nline"));
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        // Numbers keep their exact formatting through a round trip.
        assert!(text.contains("\"wall_ms\":12.346"));
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": 7, "b": [1, 2], "c": "x", "d": {"e": 1.5}}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(7));
        assert_eq!(doc.get("b").and_then(Json::as_array).map(<[Json]>::len), Some(2));
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("d").and_then(|d| d.get("e")), Some(&Json::Num("1.5".into())));
        assert_eq!(doc.get("missing"), None);
        // A float is not a u64.
        assert_eq!(Json::Num("1.5".into()).as_u64(), None);
    }

    #[test]
    fn set_overwrites_existing_key() {
        let doc = Json::obj().set("k", Json::u64(1)).set("k", Json::u64(2));
        assert_eq!(doc.render(), r#"{"k":2}"#);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a" 1}"#,
            "tru",
            "1.x",
            "1e",
            "\"unterminated",
            "{} extra",
            "\"bad \\q escape\"",
            "[1 2]",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = Json::parse(r#""line\n\ttab A""#).unwrap();
        assert_eq!(v.as_str(), Some("line\n\ttab A"));
        for ok in ["0", "-0", "12.50", "1e9", "-1.5E-3"] {
            assert_eq!(Json::parse(ok).unwrap(), Json::Num(ok.into()));
        }
    }
}
