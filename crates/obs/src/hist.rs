//! Float-free streaming histograms with log2 buckets.

/// A streaming histogram over `u64` samples with 65 logarithmic
/// buckets: bucket 0 holds the value `0`, bucket `b > 0` holds
/// `[2^(b-1), 2^b - 1]`. Recording, merging, and percentile queries are
/// all integer arithmetic, so summaries are bit-for-bit deterministic
/// regardless of platform or thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    counts: [u64; 65],
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist { counts: [0; 65], total: 0, sum: 0, max: 0 }
    }
}

impl Hist {
    /// An empty histogram.
    pub fn new() -> Self {
        Hist::default()
    }

    /// The bucket index for `v`: 0 for 0, else `floor(log2 v) + 1`.
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// The largest value bucket `b` can hold (its reported percentile
    /// bound): 0, 1, 3, 7, …, `u64::MAX`.
    pub fn bucket_bound(b: usize) -> u64 {
        match b {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << b) - 1,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` samples of value `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::bucket_of(v)] += n;
        self.total += n;
        self.sum += v as u128 * n as u128;
        self.max = self.max.max(v);
    }

    /// Records every sample in `vals` — equivalent to calling
    /// [`record`](Hist::record) per element, but the total/sum/max
    /// accumulate in registers and fold into the histogram once. This is
    /// the per-round hot path for per-node samples (`RunObserver`
    /// records whole inbox/compute slices every committed round), where
    /// the per-element read-modify-write of the scalar fields is most of
    /// [`record`](Hist::record)'s cost.
    pub fn record_all(&mut self, vals: impl IntoIterator<Item = u64>) {
        let (mut k, mut s, mut mx) = (0u64, 0u128, self.max);
        for v in vals {
            self.counts[Self::bucket_of(v)] += 1;
            k += 1;
            s += v as u128;
            mx = mx.max(v);
        }
        if k > 0 {
            self.total += k;
            self.sum += s;
            self.max = mx;
        }
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Hist) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Integer mean (sum / count, truncating; 0 when empty).
    pub fn mean(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            (self.sum / self.total as u128).min(u64::MAX as u128) as u64
        }
    }

    /// The raw bucket counts (index via [`Hist::bucket_bound`]).
    pub fn buckets(&self) -> &[u64; 65] {
        &self.counts
    }

    /// The `p`-th percentile (integer percent, `1..=100`) as the upper
    /// bound of the bucket containing the rank-`ceil(total*p/100)`
    /// sample in sorted order. Exact [`max`](Self::max) is reported for
    /// `p = 100`. Returns 0 when empty.
    pub fn percentile(&self, p: u64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        if p >= 100 {
            return self.max;
        }
        let rank = (self.total as u128 * p as u128).div_ceil(100).max(1);
        let mut cum: u128 = 0;
        for (b, &c) in self.counts.iter().enumerate() {
            cum += c as u128;
            if cum >= rank {
                // Never report past the observed maximum.
                return Self::bucket_bound(b).min(self.max);
            }
        }
        self.max
    }

    /// Median bucket bound.
    pub fn p50(&self) -> u64 {
        self.percentile(50)
    }

    /// 90th-percentile bucket bound.
    pub fn p90(&self) -> u64 {
        self.percentile(90)
    }

    /// 99th-percentile bucket bound.
    pub fn p99(&self) -> u64 {
        self.percentile(99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_all_matches_per_element_record() {
        let vals = [0u64, 1, 3, 7, 1, 0, u64::MAX, 42, 42, 1 << 40];
        let mut one = Hist::new();
        for &v in &vals {
            one.record(v);
        }
        let mut all = Hist::new();
        all.record_all(vals.iter().copied());
        assert_eq!(one, all);
        // Recording into a non-empty histogram keeps max/total/sum right.
        all.record_all([5u64, 9]);
        one.record(5);
        one.record(9);
        assert_eq!(one, all);
        // Empty input is a no-op (and must not clobber max with 0).
        all.record_all(std::iter::empty());
        assert_eq!(one, all);
    }

    #[test]
    fn bucket_edges() {
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(2), 2);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(4), 3);
        assert_eq!(Hist::bucket_of(u64::MAX), 64);
        assert_eq!(Hist::bucket_bound(0), 0);
        assert_eq!(Hist::bucket_bound(1), 1);
        assert_eq!(Hist::bucket_bound(2), 3);
        assert_eq!(Hist::bucket_bound(64), u64::MAX);
    }

    #[test]
    fn percentiles_are_bucket_bounds() {
        let mut h = Hist::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 5050);
        assert_eq!(h.max(), 100);
        assert_eq!(h.mean(), 50);
        // Rank 50 is value 50, bucket 6 ([32,63]) → bound 63.
        assert_eq!(h.p50(), 63);
        // Rank 90 is value 90, bucket 7 ([64,127]) → capped at max 100.
        assert_eq!(h.p90(), 100);
        assert_eq!(h.p99(), 100);
        assert_eq!(h.percentile(100), 100);
        assert_eq!(h.percentile(1), 1);
    }

    #[test]
    fn empty_and_zeroes() {
        let mut h = Hist::new();
        assert_eq!(h.p50(), 0);
        assert!(h.is_empty());
        h.record_n(0, 10);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.count(), 10);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Hist::new();
        let mut b = Hist::new();
        let mut both = Hist::new();
        for v in [0u64, 1, 5, 1000, 65536] {
            a.record(v);
            both.record(v);
        }
        for v in [2u64, 7, 7, 123456789] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }
}
