//! The shared, versioned envelope for `BENCH_*.json` documents.
//!
//! Every committed bench file is one JSON object:
//!
//! ```json
//! {
//!   "schema": "dhc-bench/v1",
//!   "schema_version": 1,
//!   "experiment": "e13",
//!   "bench": "engine",
//!   "workload": "micro + dhc1",
//!   "cores": 8,
//!   "seed": 7,
//!   "meta": { ... },            // optional, experiment-specific facts
//!   "records": [ {"kind": "...", ...}, ... ]
//! }
//! ```
//!
//! Each element of `records` is a flat-ish object whose only required
//! key is a string `"kind"` — experiments define their own kinds (e.g.
//! `"engine-workload"`, `"scale-point"`, `"drop-curve"`). The envelope
//! is what [`validate`] enforces and what the CI schema-check step runs
//! over all committed `BENCH_*.json`.

use crate::json::Json;

/// The schema identifier written to every document.
pub const BENCH_SCHEMA: &str = "dhc-bench/v1";

/// The schema version written to (and required of) every document.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// One record in a bench document: a `kind` tag plus arbitrary fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    fields: Vec<(String, Json)>,
}

impl Record {
    /// A record of the given `kind`.
    pub fn new(kind: impl Into<String>) -> Record {
        Record { fields: vec![("kind".to_string(), Json::Str(kind.into()))] }
    }

    /// Adds an arbitrary JSON field.
    pub fn field(mut self, key: impl Into<String>, value: Json) -> Record {
        self.fields.push((key.into(), value));
        self
    }

    /// Adds a string field.
    pub fn str(self, key: impl Into<String>, value: impl Into<String>) -> Record {
        self.field(key, Json::Str(value.into()))
    }

    /// Adds an unsigned integer field.
    pub fn u64(self, key: impl Into<String>, value: u64) -> Record {
        self.field(key, Json::u64(value))
    }

    /// Adds a `usize` field.
    pub fn usize(self, key: impl Into<String>, value: usize) -> Record {
        self.field(key, Json::usize(value))
    }

    /// Adds a boolean field.
    pub fn bool(self, key: impl Into<String>, value: bool) -> Record {
        self.field(key, Json::Bool(value))
    }

    /// Adds a float field rendered with three decimals.
    pub fn f3(self, key: impl Into<String>, value: f64) -> Record {
        self.field(key, Json::f3(value))
    }

    /// Adds a float field rendered with one decimal.
    pub fn f1(self, key: impl Into<String>, value: f64) -> Record {
        self.field(key, Json::f1(value))
    }

    fn into_json(self) -> Json {
        Json::Obj(self.fields)
    }
}

/// Builder for one `dhc-bench/v1` document.
#[derive(Debug, Clone)]
pub struct BenchDoc {
    experiment: String,
    bench: String,
    workload: String,
    cores: usize,
    seed: u64,
    meta: Vec<(String, Json)>,
    records: Vec<Json>,
}

impl BenchDoc {
    /// A new document for `experiment` (e.g. `"e13"`), bench family
    /// `bench` (e.g. `"engine"`), and a human-readable `workload`.
    pub fn new(
        experiment: impl Into<String>,
        bench: impl Into<String>,
        workload: impl Into<String>,
        cores: usize,
        seed: u64,
    ) -> BenchDoc {
        BenchDoc {
            experiment: experiment.into(),
            bench: bench.into(),
            workload: workload.into(),
            cores,
            seed,
            meta: Vec::new(),
            records: Vec::new(),
        }
    }

    /// Adds an experiment-specific fact to the optional `meta` object.
    pub fn meta(&mut self, key: impl Into<String>, value: Json) -> &mut BenchDoc {
        self.meta.push((key.into(), value));
        self
    }

    /// Appends a record.
    pub fn push(&mut self, record: Record) -> &mut BenchDoc {
        self.records.push(record.into_json());
        self
    }

    /// Appends an already-built JSON record verbatim — how emitters
    /// carry records forward from a committed document (e.g. heavy rows
    /// a non-`--heavy` run must not lose). The record must be an object
    /// with a string `"kind"`, like any other.
    pub fn push_json(&mut self, record: Json) -> &mut BenchDoc {
        debug_assert!(
            record.get("kind").and_then(Json::as_str).is_some(),
            "carried-forward record must be an object with a string \"kind\""
        );
        self.records.push(record);
        self
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records have been appended.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Renders the document: envelope keys on their own lines, one
    /// record per line — mergeable diffs, still strict JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", Json::str(BENCH_SCHEMA).render()));
        out.push_str(&format!("  \"schema_version\": {BENCH_SCHEMA_VERSION},\n"));
        out.push_str(&format!(
            "  \"experiment\": {},\n",
            Json::str(self.experiment.clone()).render()
        ));
        out.push_str(&format!("  \"bench\": {},\n", Json::str(self.bench.clone()).render()));
        out.push_str(&format!("  \"workload\": {},\n", Json::str(self.workload.clone()).render()));
        out.push_str(&format!("  \"cores\": {},\n", self.cores));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        if !self.meta.is_empty() {
            out.push_str(&format!("  \"meta\": {},\n", Json::Obj(self.meta.clone()).render()));
        }
        out.push_str("  \"records\": [\n");
        for (i, rec) in self.records.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&rec.render());
            out.push_str(if i + 1 < self.records.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Validates one `BENCH_*.json` document against the `dhc-bench/v1`
/// envelope. Returns every violation found (empty = valid).
pub fn validate(text: &str) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return Err(vec![format!("not valid JSON: {e}")]),
    };
    if doc.as_object().is_none() {
        return Err(vec!["top level is not an object".to_string()]);
    }

    match doc.get("schema").and_then(Json::as_str) {
        Some(BENCH_SCHEMA) => {}
        Some(other) => errors.push(format!("schema is {other:?}, expected {BENCH_SCHEMA:?}")),
        None => errors.push("missing string key \"schema\"".to_string()),
    }
    match doc.get("schema_version").and_then(Json::as_u64) {
        Some(BENCH_SCHEMA_VERSION) => {}
        Some(v) => errors.push(format!("schema_version is {v}, expected {BENCH_SCHEMA_VERSION}")),
        None => errors.push("missing integer key \"schema_version\"".to_string()),
    }
    for key in ["experiment", "bench", "workload"] {
        if doc.get(key).and_then(Json::as_str).is_none() {
            errors.push(format!("missing string key {key:?}"));
        }
    }
    for key in ["cores", "seed"] {
        if doc.get(key).and_then(Json::as_u64).is_none() {
            errors.push(format!("missing integer key {key:?}"));
        }
    }
    if let Some(meta) = doc.get("meta") {
        if meta.as_object().is_none() {
            errors.push("\"meta\" is not an object".to_string());
        }
    }
    match doc.get("records").and_then(Json::as_array) {
        None => errors.push("missing array key \"records\"".to_string()),
        Some(records) => {
            for (i, rec) in records.iter().enumerate() {
                if rec.as_object().is_none() {
                    errors.push(format!("records[{i}] is not an object"));
                } else if rec.get("kind").and_then(Json::as_str).is_none() {
                    errors.push(format!("records[{i}] has no string \"kind\""));
                }
            }
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendered_docs_validate() {
        let mut doc = BenchDoc::new("e13", "engine", "micro", 8, 7);
        doc.meta("engine_threads", Json::Arr(vec![Json::u64(1), Json::u64(4)]));
        doc.push(
            Record::new("engine-workload")
                .str("workload", "flood-echo")
                .u64("n", 1000)
                .f3("wall_ms", 12.5),
        );
        doc.push(Record::new("overhead").bool("attached", true).f1("pct", 1.2));
        let text = doc.render();
        assert!(validate(&text).is_ok(), "{:?}", validate(&text));
        assert!(doc.len() == 2 && !doc.is_empty());
        // One record per line, envelope keys stable.
        assert!(text.contains("\n    {\"kind\":\"engine-workload\""));
        assert!(text.starts_with("{\n  \"schema\": \"dhc-bench/v1\",\n  \"schema_version\": 1,\n"));
    }

    #[test]
    fn validation_catches_drift() {
        // Old-style ad-hoc document: no envelope at all.
        let old = r#"{"bench":"engine","results":[{"workload":"flood"}]}"#;
        let errs = validate(old).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("\"schema\"")), "{errs:?}");

        // Wrong version.
        let doc = BenchDoc::new("e1", "b", "w", 1, 0)
            .render()
            .replace("\"schema_version\": 1", "\"schema_version\": 2");
        let errs = validate(&doc).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("schema_version")), "{errs:?}");

        // Record without a kind.
        let mut doc = BenchDoc::new("e1", "b", "w", 1, 0);
        doc.push(Record::new("ok"));
        let text = doc.render().replace(r#"{"kind":"ok"}"#, r#"{"notkind":1}"#);
        let errs = validate(&text).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("records[0]")), "{errs:?}");

        // Not JSON.
        assert!(validate("nonsense").is_err());
    }
}
