//! A batteries-included [`Collector`]: streaming counters + histograms,
//! an optional stderr heartbeat, and an optional versioned JSONL sink.

use crate::json::Json;
use crate::{Collector, Hist, RoundObs, SpanClose, SpanObs};
use std::io::Write;
use std::time::{Duration, Instant};

/// JSONL record-stream version (the `"v"` field of every record).
pub const JSONL_VERSION: u64 = 1;

/// Static facts about a run, emitted as the leading JSONL `manifest`
/// record. Built by the caller (who knows the config); `new` fills in
/// host facts.
#[derive(Debug, Clone)]
pub struct Manifest {
    label: String,
    seed: u64,
    entries: Vec<(String, String)>,
    host_cores: usize,
    git: String,
}

impl Manifest {
    /// A manifest for run `label` with the master `seed`. Captures host
    /// core count and `git describe` (best-effort; `"unknown"` when
    /// unavailable).
    pub fn new(label: impl Into<String>, seed: u64) -> Manifest {
        Manifest {
            label: label.into(),
            seed,
            entries: Vec::new(),
            host_cores: std::thread::available_parallelism().map_or(1, usize::from),
            git: git_describe(),
        }
    }

    /// Attaches a config key/value pair (stringified by the caller).
    pub fn with(mut self, key: impl Into<String>, value: impl ToString) -> Manifest {
        self.entries.push((key.into(), value.to_string()));
        self
    }

    /// The `git describe` string captured at construction.
    pub fn git(&self) -> &str {
        &self.git
    }

    fn to_json(&self) -> Json {
        let mut config = Json::obj();
        for (k, v) in &self.entries {
            config = config.set(k.clone(), Json::str(v.clone()));
        }
        Json::obj()
            .set("rec", Json::str("manifest"))
            .set("v", Json::u64(JSONL_VERSION))
            .set("label", Json::str(self.label.clone()))
            .set("seed", Json::u64(self.seed))
            .set("git", Json::str(self.git.clone()))
            .set("host_cores", Json::usize(self.host_cores))
            .set("config", config)
    }
}

fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Deterministic cumulative counters maintained by [`RunObserver`].
/// Every field is a pure function of the simulated execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObsCounters {
    /// Rounds observed (commit-fold completions, including `init`).
    pub rounds_observed: u64,
    /// Highest round number seen.
    pub max_round: u64,
    /// Node activations that executed their callback.
    pub executed: u64,
    /// Messages delivered into inboxes.
    pub delivered: u64,
    /// Unicast send operations.
    pub unicast_ops: u64,
    /// Broadcast operations.
    pub broadcast_ops: u64,
    /// Per-directed-edge messages charged.
    pub messages: u64,
    /// Message-words charged.
    pub words: u64,
    /// Wake-ups scheduled.
    pub wakes_scheduled: u64,
    /// Node halts.
    pub halts: u64,
    /// Deliveries dropped by the adversary.
    pub dropped: u64,
    /// Deliveries duplicated by the adversary.
    pub duplicated: u64,
    /// Deliveries delayed by the adversary.
    pub delayed: u64,
    /// Node crashes.
    pub crashes: u64,
    /// Node restarts.
    pub restarts: u64,
    /// Spans opened.
    pub spans_opened: u64,
    /// Spans closed.
    pub spans_closed: u64,
}

struct Heartbeat {
    every: Duration,
    started: Instant,
    last_beat: Instant,
    last_messages: u64,
    label: String,
}

struct JsonlSink {
    writer: Box<dyn Write + Send>,
    flush_every_rounds: u64,
    rounds_since_flush: u64,
}

/// The standard collector: maintains [`ObsCounters`] and four [`Hist`]s
/// (round traffic, inbox sizes, per-node compute, machine link loads),
/// and optionally emits a stderr heartbeat and/or a JSONL record
/// stream.
///
/// All counter/histogram state is deterministic; wall-clock only drives
/// heartbeat pacing and the `elapsed_ms`/`wall_ns` fields of emitted
/// records.
pub struct RunObserver {
    counters: ObsCounters,
    round_traffic: Hist,
    inbox: Hist,
    node_compute: Hist,
    machine_link: Hist,
    heartbeat: Option<Heartbeat>,
    sink: Option<JsonlSink>,
}

impl Default for RunObserver {
    fn default() -> Self {
        RunObserver::new()
    }
}

impl RunObserver {
    /// A silent observer: counters and histograms only.
    pub fn new() -> RunObserver {
        RunObserver {
            counters: ObsCounters::default(),
            round_traffic: Hist::new(),
            inbox: Hist::new(),
            node_compute: Hist::new(),
            machine_link: Hist::new(),
            heartbeat: None,
            sink: None,
        }
    }

    /// Enables the stderr heartbeat, printing at most once per `every`.
    pub fn with_heartbeat(mut self, every: Duration) -> RunObserver {
        let now = Instant::now();
        self.heartbeat = Some(Heartbeat {
            every,
            started: now,
            last_beat: now,
            last_messages: 0,
            label: String::new(),
        });
        self
    }

    /// Streams JSONL records to `writer`. Pair with
    /// [`with_manifest`](Self::with_manifest) to lead the stream with a
    /// manifest record.
    pub fn with_jsonl_writer(mut self, writer: Box<dyn Write + Send>) -> RunObserver {
        self.sink = Some(JsonlSink { writer, flush_every_rounds: 4096, rounds_since_flush: 0 });
        self
    }

    /// Creates (truncates) `path` and streams JSONL records to it.
    pub fn with_jsonl_path(
        self,
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<RunObserver> {
        let file = std::fs::File::create(path)?;
        Ok(self.with_jsonl_writer(Box::new(std::io::BufWriter::new(file))))
    }

    /// Emits a `progress` record every `rounds` observed rounds
    /// (default 4096). Ignored without a JSONL sink.
    pub fn with_flush_every(mut self, rounds: u64) -> RunObserver {
        if let Some(sink) = &mut self.sink {
            sink.flush_every_rounds = rounds.max(1);
        }
        self
    }

    /// Writes the manifest record now (call after attaching the sink).
    pub fn with_manifest(mut self, manifest: &Manifest) -> RunObserver {
        self.emit(manifest.to_json());
        self
    }

    /// The cumulative counters.
    pub fn counters(&self) -> &ObsCounters {
        &self.counters
    }

    /// Per-round delivered-message counts.
    pub fn round_traffic_hist(&self) -> &Hist {
        &self.round_traffic
    }

    /// Per-activation inbox sizes.
    pub fn inbox_hist(&self) -> &Hist {
        &self.inbox
    }

    /// Per-activation protocol compute charges.
    pub fn node_compute_hist(&self) -> &Hist {
        &self.node_compute
    }

    /// Per-round directed machine-link word loads (k-machine runs).
    pub fn machine_link_hist(&self) -> &Hist {
        &self.machine_link
    }

    /// A deterministic JSON summary of counters and histogram
    /// percentiles (no wall-clock fields) — what tests compare and
    /// experiments embed in bench documents.
    pub fn summary_json(&self) -> Json {
        let c = &self.counters;
        Json::obj()
            .set("rounds_observed", Json::u64(c.rounds_observed))
            .set("max_round", Json::u64(c.max_round))
            .set("executed", Json::u64(c.executed))
            .set("delivered", Json::u64(c.delivered))
            .set("unicast_ops", Json::u64(c.unicast_ops))
            .set("broadcast_ops", Json::u64(c.broadcast_ops))
            .set("messages", Json::u64(c.messages))
            .set("words", Json::u64(c.words))
            .set("wakes_scheduled", Json::u64(c.wakes_scheduled))
            .set("halts", Json::u64(c.halts))
            .set(
                "faults",
                Json::obj()
                    .set("dropped", Json::u64(c.dropped))
                    .set("duplicated", Json::u64(c.duplicated))
                    .set("delayed", Json::u64(c.delayed))
                    .set("crashes", Json::u64(c.crashes))
                    .set("restarts", Json::u64(c.restarts)),
            )
            .set(
                "hists",
                Json::obj()
                    .set("round_traffic", hist_json(&self.round_traffic))
                    .set("inbox", hist_json(&self.inbox))
                    .set("node_compute", hist_json(&self.node_compute))
                    .set("machine_link", hist_json(&self.machine_link)),
            )
    }

    fn emit(&mut self, record: Json) {
        if let Some(sink) = &mut self.sink {
            // Telemetry must never take the run down: swallow I/O errors.
            let _ = writeln!(sink.writer, "{}", record.render());
        }
    }

    fn emit_progress(&mut self) {
        if self.sink.is_none() {
            return;
        }
        let c = self.counters;
        let record = Json::obj()
            .set("rec", Json::str("progress"))
            .set("v", Json::u64(JSONL_VERSION))
            .set("round", Json::u64(c.max_round))
            .set("rounds_observed", Json::u64(c.rounds_observed))
            .set("messages", Json::u64(c.messages))
            .set("words", Json::u64(c.words))
            .set("halts", Json::u64(c.halts));
        self.emit(record);
    }

    fn emit_hists(&mut self) {
        if self.sink.is_none() {
            return;
        }
        for (name, hist) in [
            ("round_traffic", self.round_traffic.clone()),
            ("inbox", self.inbox.clone()),
            ("node_compute", self.node_compute.clone()),
            ("machine_link", self.machine_link.clone()),
        ] {
            if hist.is_empty() {
                continue;
            }
            let record = Json::obj()
                .set("rec", Json::str("hist"))
                .set("v", Json::u64(JSONL_VERSION))
                .set("name", Json::str(name))
                .set("summary", hist_json(&hist));
            self.emit(record);
        }
    }

    fn beat(&mut self) {
        let Some(hb) = &mut self.heartbeat else { return };
        if hb.last_beat.elapsed() < hb.every {
            return;
        }
        let dt = hb.last_beat.elapsed().as_secs_f64();
        let rate = if dt > 0.0 {
            (self.counters.messages.saturating_sub(hb.last_messages)) as f64 / dt
        } else {
            0.0
        };
        hb.last_beat = Instant::now();
        hb.last_messages = self.counters.messages;
        let label = if hb.label.is_empty() { "run" } else { hb.label.as_str() };
        eprintln!(
            "[dhc-obs {:>7.1}s] {} round {} | {} msgs ({:.0}/s) | {} halted",
            hb.started.elapsed().as_secs_f64(),
            label,
            self.counters.max_round,
            self.counters.messages,
            rate,
            self.counters.halts,
        );
    }
}

/// Renders one histogram's deterministic summary.
fn hist_json(h: &Hist) -> Json {
    Json::obj()
        .set("count", Json::u64(h.count()))
        .set("sum", Json::Num(h.sum().to_string()))
        .set("max", Json::u64(h.max()))
        .set("mean", Json::u64(h.mean()))
        .set("p50", Json::u64(h.p50()))
        .set("p90", Json::u64(h.p90()))
        .set("p99", Json::u64(h.p99()))
}

impl Collector for RunObserver {
    fn on_round(&mut self, round: &RoundObs<'_>) {
        let c = &mut self.counters;
        c.rounds_observed += 1;
        c.max_round = c.max_round.max(round.round as u64);
        c.executed += round.executed as u64;
        c.delivered += round.delivered;
        c.unicast_ops += round.unicast_ops;
        c.broadcast_ops += round.broadcast_ops;
        c.messages += round.messages;
        c.words += round.words;
        c.wakes_scheduled += round.wakes_scheduled;
        c.halts += round.halts;
        c.dropped += round.faults.dropped;
        c.duplicated += round.faults.duplicated;
        c.delayed += round.faults.delayed;
        c.crashes += round.faults.crashes;
        c.restarts += round.faults.restarts;

        if round.round > 0 {
            self.round_traffic.record(round.delivered);
        }
        self.inbox.record_all(round.inbox.iter().map(|&(_, len)| len as u64));
        self.node_compute.record_all(round.compute.iter().copied());
        self.machine_link.record_all(round.machine_links.iter().map(|&(_, words)| words));

        if let Some(sink) = &mut self.sink {
            sink.rounds_since_flush += 1;
            if sink.rounds_since_flush >= sink.flush_every_rounds {
                sink.rounds_since_flush = 0;
                self.emit_progress();
            }
        }
        // Cheap elapsed check, throttled by `every` inside beat().
        if self.heartbeat.is_some() && self.counters.rounds_observed % 64 == 0 {
            self.beat();
        }
    }

    fn on_span_open(&mut self, span: &SpanObs) {
        self.counters.spans_opened += 1;
        if let Some(hb) = &mut self.heartbeat {
            hb.label = span.label.clone();
        }
        if self.sink.is_some() {
            let record = Json::obj()
                .set("rec", Json::str("span-open"))
                .set("v", Json::u64(JSONL_VERSION))
                .set("id", Json::u64(span.id))
                .set("parent", span.parent.map_or(Json::Null, Json::u64))
                .set("kind", Json::str(span.kind))
                .set("label", Json::str(span.label.clone()));
            self.emit(record);
        }
    }

    fn on_span_close(&mut self, span: &SpanObs, close: &SpanClose) {
        self.counters.spans_closed += 1;
        if self.sink.is_some() {
            let record = Json::obj()
                .set("rec", Json::str("span"))
                .set("v", Json::u64(JSONL_VERSION))
                .set("id", Json::u64(span.id))
                .set("parent", span.parent.map_or(Json::Null, Json::u64))
                .set("kind", Json::str(span.kind))
                .set("label", Json::str(span.label.clone()))
                .set("wall_ns", Json::u64(close.wall_ns))
                .set("rounds", Json::u64(close.rounds))
                .set("messages", Json::u64(close.messages))
                .set("words", Json::u64(close.words));
            self.emit(record);
        }
    }

    fn flush(&mut self) {
        self.emit_progress();
        self.emit_hists();
        if let Some(sink) = &mut self.sink {
            let _ = sink.writer.flush();
        }
    }
}

impl Drop for RunObserver {
    fn drop(&mut self) {
        if self.sink.is_some() {
            self.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultObs;
    use std::sync::{Arc, Mutex};

    /// A Write sink shared with the test (the observer owns a clone).
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn round(n: usize, delivered: u64, inbox: &[(u32, usize)]) -> RoundObs<'_> {
        RoundObs {
            round: n,
            executed: inbox.len(),
            delivered,
            inbox,
            compute: &[],
            unicast_ops: delivered,
            broadcast_ops: 0,
            messages: delivered,
            words: delivered * 2,
            wakes_scheduled: 0,
            halts: 0,
            faults: FaultObs::default(),
            machine_links: &[],
        }
    }

    #[test]
    fn counters_and_hists_accumulate() {
        let mut obs = RunObserver::new();
        obs.on_round(&round(0, 0, &[]));
        obs.on_round(&round(1, 4, &[(0, 2), (1, 2)]));
        obs.on_round(&round(2, 6, &[(0, 3), (1, 3)]));
        let c = obs.counters();
        assert_eq!(c.rounds_observed, 3);
        assert_eq!(c.max_round, 2);
        assert_eq!(c.delivered, 10);
        assert_eq!(c.words, 20);
        // Round 0 (init) is excluded from the traffic histogram.
        assert_eq!(obs.round_traffic_hist().count(), 2);
        assert_eq!(obs.inbox_hist().count(), 4);
        assert_eq!(obs.inbox_hist().max(), 3);
    }

    #[test]
    fn jsonl_stream_is_parseable_and_versioned() {
        let shared = Shared::default();
        let manifest = Manifest::new("unit-test", 42).with("n", 16).with("algo", "dra");
        let mut obs = RunObserver::new()
            .with_jsonl_writer(Box::new(shared.clone()))
            .with_flush_every(1)
            .with_manifest(&manifest);
        obs.on_span_open(&SpanObs { id: 1, parent: None, kind: "run", label: "t".into() });
        obs.on_round(&round(0, 0, &[]));
        obs.on_round(&round(1, 3, &[(0, 3)]));
        obs.on_span_close(
            &SpanObs { id: 1, parent: None, kind: "run", label: "t".into() },
            &SpanClose { wall_ns: 5, rounds: 1, messages: 3, words: 6 },
        );
        obs.flush();
        drop(obs);

        let text = String::from_utf8(shared.0.lock().unwrap().clone()).unwrap();
        let recs: Vec<Json> =
            text.lines().map(|l| Json::parse(l).expect("valid JSONL line")).collect();
        assert!(recs.len() >= 5);
        let kinds: Vec<&str> =
            recs.iter().map(|r| r.get("rec").and_then(Json::as_str).unwrap()).collect();
        assert_eq!(kinds[0], "manifest");
        assert!(kinds.contains(&"span-open"));
        assert!(kinds.contains(&"progress"));
        assert!(kinds.contains(&"span"));
        assert!(kinds.contains(&"hist"));
        for r in &recs {
            assert_eq!(r.get("v").and_then(Json::as_u64), Some(JSONL_VERSION));
        }
        let manifest_rec = &recs[0];
        assert_eq!(manifest_rec.get("seed").and_then(Json::as_u64), Some(42));
        assert_eq!(
            manifest_rec.get("config").and_then(|c| c.get("n")).and_then(Json::as_str),
            Some("16")
        );
    }

    #[test]
    fn summary_json_is_deterministic() {
        let build = || {
            let mut obs = RunObserver::new();
            for r in 0..50usize {
                obs.on_round(&round(r, (r as u64) * 3, &[(0, r), (1, r + 1)]));
            }
            obs.summary_json().render()
        };
        assert_eq!(build(), build());
        let parsed = Json::parse(&build()).unwrap();
        assert!(parsed.get("hists").and_then(|h| h.get("round_traffic")).is_some());
    }
}
