//! Streaming telemetry for the CONGEST engine and the DHC runners.
//!
//! The crate defines the **pure-observation** side of the workspace: a
//! [`Collector`] receives per-round engine events and span open/close
//! notifications, and may aggregate them into histograms, heartbeat
//! lines, or JSONL run records — but it can never influence the
//! simulation. The engine drives a collector only from its sequential
//! commit-fold bookkeeping (the same contract as the k-machine
//! accounting layer), so a collector-attached run is **bit-identical**
//! to a detached one at every `engine_threads` / `commit_shards`
//! setting; `crates/core/tests/obs_equivalence.rs` pins exactly that.
//!
//! Determinism is split deliberately:
//!
//! * **Deterministic**: everything derived from engine events — counts,
//!   [`Hist`] log2-bucketed histograms and their integer-rank
//!   percentiles (`p50`/`p90`/`p99`), span parentage, span
//!   round/message/word totals. These are pure functions of the run.
//! * **Wall-clock only**: span `wall_ns` timings, heartbeat pacing, and
//!   JSONL `elapsed_ms` fields. They live strictly outside the
//!   determinism-checked state and never feed back into it.
//!
//! # Example
//!
//! ```
//! use dhc_obs::{Collector, CollectorHandle, RoundObs, Span};
//!
//! #[derive(Default)]
//! struct CountRounds(u64);
//! impl Collector for CountRounds {
//!     fn on_round(&mut self, _round: &RoundObs<'_>) {
//!         self.0 += 1;
//!     }
//! }
//!
//! let handle = CollectorHandle::new(CountRounds::default());
//! let mut span = Span::root(Some(&handle), "run", "demo");
//! span.add(3, 120, 480); // rounds, messages, words
//! drop(span);            // closes the span on the collector
//! assert!(handle.with(|_c| true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
pub mod json;
pub mod schema;
mod sink;

pub use hist::Hist;
pub use sink::{Manifest, ObsCounters, RunObserver};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Realized fault activity of one committed round (all zero on clean
/// runs): per-delivery fates as drawn by the adversary layer, plus the
/// round's crash/restart schedule events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultObs {
    /// Deliveries the adversary dropped: charged to the sender, lost in
    /// transit.
    pub dropped: u64,
    /// Deliveries duplicated in transit (staged twice).
    pub duplicated: u64,
    /// Deliveries parked in the delay queue for a later round.
    pub delayed: u64,
    /// Nodes that crashed at the start of this round.
    pub crashes: u64,
    /// Nodes that restarted at the start of this round.
    pub restarts: u64,
}

impl FaultObs {
    /// Whether any fault was realized this round.
    pub fn any(&self) -> bool {
        self.dropped + self.duplicated + self.delayed + self.crashes + self.restarts > 0
    }
}

/// One committed engine round, as observed by the commit fold.
///
/// Every field is a pure function of the simulated execution (the
/// engine computes them from state it maintains anyway), so any
/// aggregate a collector derives from these events is deterministic.
/// Round `0` is the `init` phase; it has no deliveries.
#[derive(Debug, Clone, Copy)]
pub struct RoundObs<'a> {
    /// The simulated round number (`0` = the `init` phase).
    pub round: usize,
    /// Nodes that executed their callback this round (activated nodes
    /// minus halted/crashed ones, which consume mail without running).
    pub executed: usize,
    /// Messages delivered into inboxes at the start of this round.
    pub delivered: u64,
    /// `(node, inbox length)` for every activated node, ascending by
    /// node id — the raw material of the inbox-size histogram. Empty
    /// for round 0.
    pub inbox: &'a [(u32, usize)],
    /// Per-executed-node protocol compute charges (`ctx.charge`) in
    /// `executed` order. Empty when no collector pre-pass ran.
    pub compute: &'a [u64],
    /// Unicast send *operations* committed this round.
    pub unicast_ops: u64,
    /// Broadcast *operations* (`send_all` / `send_all_except`) committed
    /// this round — payloads, not per-edge copies.
    pub broadcast_ops: u64,
    /// Per-directed-edge messages charged this round (broadcasts count
    /// once per addressed neighbor).
    pub messages: u64,
    /// Message-words charged this round.
    pub words: u64,
    /// Wake-ups scheduled by this round's callbacks.
    pub wakes_scheduled: u64,
    /// Nodes that halted this round.
    pub halts: u64,
    /// Realized fault activity (all zero on clean runs).
    pub faults: FaultObs,
    /// This round's directed machine-pair link loads
    /// (`(link index, words)`, ascending) when the k-machine accounting
    /// layer is attached; empty otherwise.
    pub machine_links: &'a [(u32, u64)],
}

/// Identity of one span: spans form the `run → phase → class /
/// merge-level → round window` hierarchy via [`parent`](Self::parent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanObs {
    /// Unique id within the [`CollectorHandle`]'s lifetime (allocation
    /// order; concurrent opens race for ids but parentage is explicit).
    pub id: u64,
    /// The enclosing span, if any.
    pub parent: Option<u64>,
    /// Span kind: `"run"`, `"phase"`, `"class"`, `"merge-level"`, or a
    /// caller-defined kind.
    pub kind: &'static str,
    /// Human-readable label (e.g. `"class 3 n=120"`).
    pub label: String,
}

/// Closing summary of a span. `wall_ns` is wall-clock (measured by the
/// [`Span`] guard, outside all determinism-checked state); the totals
/// are simulated quantities supplied by the runner via [`Span::add`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanClose {
    /// Wall-clock duration between open and close, in nanoseconds.
    pub wall_ns: u64,
    /// Simulated rounds attributed to this span.
    pub rounds: u64,
    /// Messages attributed to this span.
    pub messages: u64,
    /// Message-words attributed to this span.
    pub words: u64,
}

/// A telemetry consumer. All methods default to no-ops so a collector
/// implements only what it needs.
///
/// Collectors are driven from the engine's sequential round bookkeeping
/// and from runner span guards; they observe the execution but can
/// never influence it. Implementations must be `Send` (Phase-1 class
/// simulations may run on worker threads, sharing one collector behind
/// the handle's mutex).
pub trait Collector: Send {
    /// One committed engine round (round 0 is `init`).
    fn on_round(&mut self, round: &RoundObs<'_>) {
        let _ = round;
    }
    /// A span opened.
    fn on_span_open(&mut self, span: &SpanObs) {
        let _ = span;
    }
    /// A span closed.
    fn on_span_close(&mut self, span: &SpanObs, close: &SpanClose) {
        let _ = (span, close);
    }
    /// Flush any buffered output (JSONL sinks write their histogram
    /// records here).
    fn flush(&mut self) {}
}

/// Delegating impl so a run can share its collector with the caller:
/// build an `Arc<Mutex<RunObserver>>`, hand a clone to
/// [`CollectorHandle::new`], and read the aggregates back out after the
/// run through the other clone.
impl<C: Collector> Collector for Arc<Mutex<C>> {
    fn on_round(&mut self, round: &RoundObs<'_>) {
        self.lock().unwrap_or_else(PoisonError::into_inner).on_round(round);
    }
    fn on_span_open(&mut self, span: &SpanObs) {
        self.lock().unwrap_or_else(PoisonError::into_inner).on_span_open(span);
    }
    fn on_span_close(&mut self, span: &SpanObs, close: &SpanClose) {
        self.lock().unwrap_or_else(PoisonError::into_inner).on_span_close(span, close);
    }
    fn flush(&mut self) {
        self.lock().unwrap_or_else(PoisonError::into_inner).flush();
    }
}

struct HandleInner {
    next_span: AtomicU64,
    collector: Mutex<Box<dyn Collector>>,
}

/// A cloneable, thread-safe handle to one [`Collector`].
///
/// The handle is what configurations carry: it is `Clone` (shared
/// reference), and `PartialEq`/`Eq` compare **identity** (two handles
/// are equal iff they share the same collector), so config structs that
/// derive `Eq` keep deriving it.
#[derive(Clone)]
pub struct CollectorHandle {
    inner: Arc<HandleInner>,
}

impl CollectorHandle {
    /// Wraps a collector for sharing.
    pub fn new(collector: impl Collector + 'static) -> Self {
        CollectorHandle {
            inner: Arc::new(HandleInner {
                next_span: AtomicU64::new(1),
                collector: Mutex::new(Box::new(collector)),
            }),
        }
    }

    /// Runs `f` with exclusive access to the collector. A poisoned lock
    /// (a collector panicked) is recovered — telemetry must never take
    /// the simulation down with it.
    pub fn with<R>(&self, f: impl FnOnce(&mut dyn Collector) -> R) -> R {
        let mut guard = self.inner.collector.lock().unwrap_or_else(PoisonError::into_inner);
        f(guard.as_mut())
    }

    /// Flushes the collector's buffered output.
    pub fn flush(&self) {
        self.with(|c| c.flush());
    }

    fn next_span_id(&self) -> u64 {
        self.inner.next_span.fetch_add(1, Ordering::Relaxed)
    }
}

impl PartialEq for CollectorHandle {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Eq for CollectorHandle {}

impl std::fmt::Debug for CollectorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CollectorHandle({:p})", Arc::as_ptr(&self.inner))
    }
}

/// RAII span guard: opens on construction, closes (with wall-clock
/// duration and accumulated totals) on drop. A disabled span — built
/// from a `None` handle — is a zero-cost no-op, so runners open spans
/// unconditionally.
#[derive(Debug)]
pub struct Span {
    active: Option<ActiveSpan>,
}

#[derive(Debug)]
struct ActiveSpan {
    handle: CollectorHandle,
    obs: SpanObs,
    start: Instant,
    rounds: u64,
    messages: u64,
    words: u64,
}

impl Span {
    /// Opens a root span on `handle` (disabled when `handle` is `None`).
    pub fn root(
        handle: Option<&CollectorHandle>,
        kind: &'static str,
        label: impl Into<String>,
    ) -> Span {
        Span::open(handle.cloned(), None, kind, label.into())
    }

    /// A permanently disabled span (for callers without a collector).
    pub fn disabled() -> Span {
        Span { active: None }
    }

    /// Opens a child of this span (disabled when this span is).
    pub fn child(&self, kind: &'static str, label: impl Into<String>) -> Span {
        match &self.active {
            Some(a) => Span::open(Some(a.handle.clone()), Some(a.obs.id), kind, label.into()),
            None => Span::disabled(),
        }
    }

    fn open(
        handle: Option<CollectorHandle>,
        parent: Option<u64>,
        kind: &'static str,
        label: String,
    ) -> Span {
        let Some(handle) = handle else { return Span::disabled() };
        let obs = SpanObs { id: handle.next_span_id(), parent, kind, label };
        handle.with(|c| c.on_span_open(&obs));
        Span {
            active: Some(ActiveSpan {
                handle,
                obs,
                start: Instant::now(),
                rounds: 0,
                messages: 0,
                words: 0,
            }),
        }
    }

    /// Adds simulated totals to the span's closing summary.
    pub fn add(&mut self, rounds: u64, messages: u64, words: u64) {
        if let Some(a) = &mut self.active {
            a.rounds += rounds;
            a.messages += messages;
            a.words += words;
        }
    }

    /// The span id, when enabled.
    pub fn id(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.obs.id)
    }

    /// Whether the span reports to a collector.
    pub fn is_enabled(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            let close = SpanClose {
                wall_ns: a.start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                rounds: a.rounds,
                messages: a.messages,
                words: a.words,
            };
            a.handle.with(|c| c.on_span_close(&a.obs, &close));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Opens = Arc<Mutex<Vec<(u64, Option<u64>, &'static str, String)>>>;
    type Closes = Arc<Mutex<Vec<(u64, u64, u64, u64)>>>;

    #[derive(Clone, Default)]
    struct Recorder {
        opens: Opens,
        closes: Closes,
    }

    impl Collector for Recorder {
        fn on_span_open(&mut self, span: &SpanObs) {
            self.opens.lock().unwrap().push((span.id, span.parent, span.kind, span.label.clone()));
        }
        fn on_span_close(&mut self, span: &SpanObs, close: &SpanClose) {
            self.closes.lock().unwrap().push((span.id, close.rounds, close.messages, close.words));
        }
    }

    #[test]
    fn spans_nest_and_close_with_totals() {
        let rec = Recorder::default();
        let handle = CollectorHandle::new(rec.clone());
        {
            let mut run = Span::root(Some(&handle), "run", "dra");
            run.add(10, 100, 400);
            let mut phase = run.child("phase", "phase1");
            phase.add(7, 70, 280);
            let class = phase.child("class", "class 0");
            assert!(class.is_enabled());
            assert_ne!(class.id(), phase.id());
        }
        let opens = rec.opens.lock().unwrap().clone();
        assert_eq!(opens.len(), 3);
        let (run_id, run_parent, run_kind, _) = opens[0].clone();
        let (phase_id, phase_parent, ..) = opens[1];
        let (_, class_parent, class_kind, class_label) = opens[2].clone();
        assert_eq!(run_parent, None);
        assert_eq!(run_kind, "run");
        assert_eq!(phase_parent, Some(run_id));
        assert_eq!(class_parent, Some(phase_id));
        assert_eq!(class_kind, "class");
        assert_eq!(class_label, "class 0");

        // Spans close innermost-first, carrying the totals from add().
        let closes = rec.closes.lock().unwrap().clone();
        assert_eq!(closes.len(), 3);
        assert_eq!(closes[1], (phase_id, 7, 70, 280));
        assert_eq!(closes[2], (run_id, 10, 100, 400));
    }

    #[test]
    fn disabled_spans_are_free_and_inert() {
        let mut s = Span::root(None, "run", "nothing");
        assert!(!s.is_enabled());
        assert_eq!(s.id(), None);
        s.add(1, 2, 3);
        let child = s.child("phase", "still nothing");
        assert!(!child.is_enabled());
    }

    #[test]
    fn handle_equality_is_identity() {
        let a = CollectorHandle::new(Recorder::default());
        let b = a.clone();
        let c = CollectorHandle::new(Recorder::default());
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(format!("{a:?}").starts_with("CollectorHandle("));
    }
}
