//! Distributed computation of Hamiltonian cycles in random graphs —
//! a full reproduction of Chatterjee, Fathi, Pandurangan, Pham,
//! *Fast and Efficient Distributed Computation of Hamiltonian Cycles in
//! Random Graphs* (ICDCS 2018), as a Rust workspace.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`graph`] — `G(n, p)` / `G(n, M)` / random-regular generators, CSR
//!   adjacency, BFS/diameter, partitions with zero-copy class topology
//!   views ([`Topology`], [`PartitionedGraph`]), cycle verification;
//! * [`congest`] — the synchronous CONGEST-model simulator with bandwidth
//!   enforcement, per-node resource metrics, and an optional k-machine
//!   accounting layer (intra-machine messages free, bandwidth-limited
//!   machine-pair links, round dilation);
//! * [`rotation`] — the sequential Angluin–Valiant / Pósa rotation solver;
//! * [`core`] — the paper's distributed algorithms (DRA, DHC1, DHC2,
//!   Upcast) and their runners;
//! * [`obs`] — the streaming telemetry layer: pure-observation
//!   [`Collector`]s driven by the engine's commit fold, `run → phase →
//!   class / merge-level` spans, float-free log2 histograms, and
//!   versioned JSONL run records (attach via
//!   [`DhcConfig::with_collector`]).
//!
//! # Quickstart
//!
//! ```
//! use dhc::core::{run_dhc2, DhcConfig};
//! use dhc::graph::{generator, rng::rng_from_seed, thresholds};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let n = 256;
//! let p = thresholds::edge_probability(n, 0.5, 6.0);
//! let g = generator::gnp(n, p, &mut rng_from_seed(1))?;
//! // Phase 1 runs its independent per-partition simulations on two
//! // worker threads; any parallelism level yields identical results.
//! let cfg = DhcConfig::new(7).with_partitions(8).with_parallelism(2);
//! let outcome = run_dhc2(&g, &cfg)?;
//! assert_eq!(outcome.cycle.len(), n);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dhc_congest as congest;
pub use dhc_core as core;
pub use dhc_graph as graph;
pub use dhc_obs as obs;
pub use dhc_rotation as rotation;

// Most-used items at the top level for convenience.
pub use dhc_congest::{Adversary, CrashEvent, MachineMap, MachineMetrics, MachineRoundLog};
pub use dhc_core::{
    run_collect_all, run_dhc1, run_dhc1_kmachine, run_dhc2, run_dhc2_kmachine, run_dra,
    run_dra_kmachine, run_upcast, run_upcast_kmachine, DhcConfig, DhcError, KMachineConfig,
    KMachineReport, RunOutcome,
};
pub use dhc_graph::{ClassView, Graph, HamiltonianCycle, Partition, PartitionedGraph, Topology};
pub use dhc_obs::{Collector, CollectorHandle, Hist, Manifest, RunObserver, Span};

/// Compiles the workspace README's code blocks as doctests, so the
/// documented quickstart can never drift from the real API.
#[cfg(doctest)]
#[doc = include_str!("../../../README.md")]
pub struct ReadmeDoctests;
