//! Pins the telemetry layer's **pure-observation contract**: attaching
//! a collector ([`DhcConfig::with_collector`]) must leave every
//! algorithm's outcomes, [`Metrics`](dhc_congest::Metrics), engine
//! traces, and realized fault schedules **bit-identical** to a detached
//! run — for DRA/DHC1/DHC2/Upcast, clean, adversarial, and under the
//! k-machine accounting layer, at engine threads {1, 4} × commit
//! shards {1, 3}. The collector's own deterministic aggregates
//! (counters + histogram percentiles) must in turn be identical across
//! every thread/shard configuration: telemetry is a pure function of
//! the simulated execution, never of its scheduling.

use dhc_congest::{Adversary, Config, Context, Inbox, Network, NodeId, Payload, Protocol, Trace};
use dhc_core::{
    run_dhc1, run_dhc2, run_dra, run_dra_kmachine, run_upcast, CollectorHandle, DhcConfig,
    DhcError, KMachineConfig, RunOutcome,
};
use dhc_graph::rng::rng_from_seed;
use dhc_graph::{generator, thresholds, Topology};
use dhc_obs::RunObserver;
use proptest::prelude::*;
use std::sync::{Arc, Mutex};

const ENGINE_THREADS: [usize; 2] = [1, 4];
const COMMIT_SHARDS: [usize; 2] = [1, 3];

/// A fresh observer shared between the run (via the handle) and the
/// test (via the other `Arc` clone), so aggregates can be read back.
fn observed() -> (CollectorHandle, Arc<Mutex<RunObserver>>) {
    let shared = Arc::new(Mutex::new(RunObserver::new()));
    (CollectorHandle::new(shared.clone()), shared)
}

fn assert_outcomes_identical(detached: &RunOutcome, attached: &RunOutcome, what: &str) {
    assert_eq!(detached.cycle.order(), attached.cycle.order(), "{what}: cycle diverged");
    assert_eq!(detached.metrics, attached.metrics, "{what}: metrics diverged");
    assert_eq!(detached.phases, attached.phases, "{what}: phase breakdown diverged");
}

/// Runs `run` detached and attached at every thread × shard
/// configuration, pinning (a) attached == detached per configuration
/// and (b) one identical collector summary across all configurations.
fn check_pure_observation(
    what: &str,
    base: &DhcConfig,
    run: impl Fn(&DhcConfig) -> Result<RunOutcome, DhcError>,
) {
    let mut summaries: Vec<String> = Vec::new();
    for threads in ENGINE_THREADS {
        for shards in COMMIT_SHARDS {
            let cfg = base.clone().with_engine_threads(threads).with_commit_shards(shards);
            let tag = format!("{what} @ {threads} threads / {shards} shards");
            let detached = run(&cfg).unwrap_or_else(|e| panic!("{tag}: detached run failed {e:?}"));
            let (handle, shared) = observed();
            let attached = run(&cfg.clone().with_collector(handle))
                .unwrap_or_else(|e| panic!("{tag}: attached run failed {e:?}"));
            assert_outcomes_identical(&detached, &attached, &tag);
            let obs = shared.lock().unwrap();
            assert!(obs.counters().rounds_observed > 0, "{tag}: collector saw no rounds");
            assert!(obs.counters().spans_closed > 0, "{tag}: collector saw no spans");
            summaries.push(obs.summary_json().render());
        }
    }
    summaries.dedup();
    assert_eq!(
        summaries.len(),
        1,
        "{what}: collector aggregates depend on engine threads / commit shards"
    );
}

#[test]
fn dra_attached_is_pure_observation() {
    let g = generator::gnp(144, 0.5, &mut rng_from_seed(90)).unwrap();
    check_pure_observation("dra", &DhcConfig::new(91), |cfg| run_dra(&g, cfg));
}

#[test]
fn dhc1_attached_is_pure_observation() {
    let n = 196;
    let p = thresholds::edge_probability(n, 0.5, 6.0);
    let g = generator::gnp(n, p, &mut rng_from_seed(70)).unwrap();
    // DHC1 succeeds whp, not surely: take the first succeeding seed.
    let base = (71..79)
        .map(|seed| DhcConfig::new(seed).with_partitions(8))
        .find(|cfg| run_dhc1(&g, cfg).is_ok())
        .expect("DHC1 should succeed for at least one of 8 seeds");
    check_pure_observation("dhc1", &base, |cfg| run_dhc1(&g, cfg));
}

#[test]
fn dhc2_attached_is_pure_observation() {
    let n = 192;
    let p = thresholds::edge_probability(n, 0.5, 6.0);
    let g = generator::gnp(n, p, &mut rng_from_seed(80)).unwrap();
    let base = (81..89)
        .map(|seed| DhcConfig::new(seed).with_partitions(6))
        .find(|cfg| run_dhc2(&g, cfg).is_ok())
        .expect("DHC2 should succeed for at least one of 8 seeds");
    check_pure_observation("dhc2", &base, |cfg| run_dhc2(&g, cfg));
}

#[test]
fn upcast_attached_is_pure_observation() {
    let n = 160;
    let p = 10.0 * (n as f64).ln() / n as f64;
    let g = generator::gnp(n, p, &mut rng_from_seed(60)).unwrap();
    let base = (61..69)
        .map(DhcConfig::new)
        .find(|cfg| run_upcast(&g, cfg).is_ok())
        .expect("Upcast should succeed for at least one of 8 seeds");
    check_pure_observation("upcast", &base, |cfg| run_upcast(&g, cfg));
}

#[test]
fn adversarial_run_attached_is_pure_observation() {
    // Real (non-null) faults: dropped/duplicated/delayed deliveries and
    // a crash/restart. The realized schedule is a pure function of the
    // fault seed and each delivery's identity, so an attached run must
    // realize exactly the same faults. The contract covers **both
    // shapes**: when the faulty run succeeds the outcomes must match,
    // and when it fails the typed error must match — either way the
    // collector's aggregates must be one and the same across every
    // thread/shard configuration.
    let g = generator::gnp(144, 0.5, &mut rng_from_seed(30)).unwrap();
    let adv = Adversary::seeded(7)
        .with_drop_ppm(2_000)
        .with_duplicate_ppm(2_000)
        .with_delay(2_000, 2)
        .with_crash(5, 2, Some(6));
    let base = DhcConfig::new(31).with_adversary(adv);
    let mut summaries: Vec<String> = Vec::new();
    let mut saw_fault = false;
    for threads in ENGINE_THREADS {
        for shards in COMMIT_SHARDS {
            let cfg = base.clone().with_engine_threads(threads).with_commit_shards(shards);
            let tag = format!("dra+adversary @ {threads} threads / {shards} shards");
            let detached = run_dra(&g, &cfg);
            let (handle, shared) = observed();
            let attached = run_dra(&g, &cfg.clone().with_collector(handle));
            match (&detached, &attached) {
                (Ok(d), Ok(a)) => assert_outcomes_identical(d, a, &tag),
                (Err(d), Err(a)) => {
                    assert_eq!(format!("{d:?}"), format!("{a:?}"), "{tag}: error diverged")
                }
                _ => panic!(
                    "{tag}: success/failure shape diverged (detached {:?}, attached {:?})",
                    detached.is_ok(),
                    attached.is_ok()
                ),
            }
            let obs = shared.lock().unwrap();
            let c = obs.counters();
            saw_fault |= c.dropped + c.duplicated + c.delayed + c.crashes > 0;
            summaries.push(obs.summary_json().render());
        }
    }
    summaries.dedup();
    assert_eq!(summaries.len(), 1, "adversarial collector aggregates depend on scheduling");
    assert!(saw_fault, "adversarial run realized no observable fault");
}

#[test]
fn kmachine_run_attached_is_pure_observation() {
    let g = generator::gnp(144, 0.5, &mut rng_from_seed(50)).unwrap();
    let kcfg = KMachineConfig::new(4);
    let base = (51..59)
        .map(DhcConfig::new)
        .find(|cfg| run_dra_kmachine(&g, cfg, &kcfg).is_ok())
        .expect("k-machine DRA should succeed for at least one of 8 seeds");
    for threads in ENGINE_THREADS {
        for shards in COMMIT_SHARDS {
            let cfg = base.clone().with_engine_threads(threads).with_commit_shards(shards);
            let tag = format!("kmachine @ {threads} threads / {shards} shards");
            let (d_out, d_rep) = run_dra_kmachine(&g, &cfg, &kcfg).unwrap();
            let (handle, shared) = observed();
            let (a_out, a_rep) =
                run_dra_kmachine(&g, &cfg.clone().with_collector(handle), &kcfg).unwrap();
            assert_outcomes_identical(&d_out, &a_out, &tag);
            // The whole machine-level report (link loads, dilation,
            // estimates) is part of the bit-identity contract.
            assert_eq!(format!("{d_rep:?}"), format!("{a_rep:?}"), "{tag}: report diverged");
            let obs = shared.lock().unwrap();
            assert!(
                obs.machine_link_hist().count() > 0,
                "{tag}: collector saw no machine link loads"
            );
        }
    }
}

/// Flood-echo protocol for engine-level **trace** equality (algorithm
/// runners do not retain engine traces, so this drives the engine
/// directly; trace events include the adversary's realized
/// drop/duplicate/delay/crash decisions, pinning fault schedules).
struct Flood {
    seen: bool,
    pending: usize,
    parent: Option<NodeId>,
}

#[derive(Clone, Debug)]
struct Tok;
impl Payload for Tok {}

impl Protocol for Flood {
    type Msg = Tok;
    fn init(&mut self, ctx: &mut Context<'_, Tok>) {
        if ctx.node() == 0 {
            self.seen = true;
            self.pending = ctx.degree();
            ctx.send_all(Tok);
            if self.pending == 0 {
                ctx.halt();
            }
        }
    }
    fn round(&mut self, ctx: &mut Context<'_, Tok>, inbox: Inbox<'_, Tok>) {
        for (from, _) in inbox.iter() {
            if self.seen {
                ctx.send(from, Tok);
            } else {
                self.seen = true;
                self.parent = Some(from);
                self.pending = ctx.degree() - 1;
                ctx.send_all_except(from, Tok);
            }
        }
        if self.seen && self.pending == 0 {
            if let Some(p) = self.parent {
                ctx.send(p, Tok);
            }
            ctx.halt();
        } else if !inbox.is_empty() {
            self.pending = self.pending.saturating_sub(inbox.len());
            if self.pending == 0 {
                if let Some(p) = self.parent {
                    ctx.send(p, Tok);
                }
                ctx.halt();
            }
        }
    }
}

fn run_traced<T: Topology>(
    topo: &T,
    threads: usize,
    shards: usize,
    adversary: Option<Adversary>,
    collector: Option<CollectorHandle>,
) -> (Trace, dhc_congest::Metrics) {
    let nodes: Vec<Flood> =
        (0..topo.node_count()).map(|_| Flood { seen: false, pending: 0, parent: None }).collect();
    let mut cfg = Config::default()
        .with_bandwidth_words(4)
        .with_trace_capacity(100_000)
        .with_engine_threads(threads)
        .with_commit_shards(shards);
    if let Some(adv) = adversary {
        cfg = cfg.with_adversary(adv);
    }
    if let Some(col) = collector {
        cfg = cfg.with_collector(col);
    }
    let mut net = Network::new(topo, cfg, nodes).unwrap();
    let _ = net.run();
    let trace = net.trace().clone();
    let (report, _) = net.finish();
    (trace, report.metrics)
}

#[test]
fn traces_and_fault_schedules_bit_identical_with_collector() {
    let g = generator::gnp(120, 0.3, &mut rng_from_seed(95)).unwrap();
    let adversaries =
        [None, Some(Adversary::seeded(9).with_drop_ppm(20_000).with_crash(3, 2, Some(5)))];
    for adv in &adversaries {
        for threads in ENGINE_THREADS {
            for shards in COMMIT_SHARDS {
                let tag =
                    format!("flood adv={} @ {threads} threads / {shards} shards", adv.is_some());
                let (dt, dm) = run_traced(&g, threads, shards, adv.clone(), None);
                let (handle, _shared) = observed();
                let (at, am) = run_traced(&g, threads, shards, adv.clone(), Some(handle));
                assert!(dt.iter().eq(at.iter()), "{tag}: trace diverged");
                assert_eq!(dm, am, "{tag}: metrics diverged");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random dense graphs and seeds: DRA attached == detached at every
    /// thread/shard combination, and the collector's deterministic
    /// summary is one and the same across all of them.
    #[test]
    fn prop_dra_attached_is_pure_observation(
        n in 24usize..56,
        seed in 0u64..500,
        graph_seed in 0u64..500,
    ) {
        let g = generator::gnp(n, 0.6, &mut rng_from_seed(graph_seed)).unwrap();
        let cfg = DhcConfig::new(seed);
        // DRA succeeds whp, not surely; skip unlucky draws (the
        // typed-failure path is pinned by the unit tests above).
        prop_assume!(run_dra(&g, &cfg).is_ok());
        let mut summaries: Vec<String> = Vec::new();
        for threads in ENGINE_THREADS {
            for shards in COMMIT_SHARDS {
                let cfg = cfg.clone().with_engine_threads(threads).with_commit_shards(shards);
                let detached = run_dra(&g, &cfg).unwrap();
                let (handle, shared) = observed();
                let attached = run_dra(&g, &cfg.clone().with_collector(handle)).unwrap();
                prop_assert_eq!(detached.cycle.order(), attached.cycle.order());
                prop_assert_eq!(&detached.metrics, &attached.metrics);
                summaries.push(shared.lock().unwrap().summary_json().render());
            }
        }
        summaries.dedup();
        prop_assert_eq!(summaries.len(), 1);
    }
}
