//! Pins the k-machine execution backend to the plain runs: for random
//! `G(n, p)` instances, `run_*_kmachine` must produce **bit-identical**
//! protocol outcomes (or the identical typed failure) and CONGEST
//! [`dhc_congest::Metrics`] to `run_*` at engine threads {1, 4}, the
//! machine-level accounting must be deterministic across thread counts,
//! and no directed machine link may ever exceed
//! [`KMachineConfig::link_bandwidth_words`] in any k-machine round under
//! the engine's deterministic link schedule.

use dhc_congest::machine::link_schedule;
use dhc_core::{
    run_dhc1, run_dhc1_kmachine, run_dhc2, run_dhc2_kmachine, run_dra, run_dra_kmachine,
    run_upcast, run_upcast_kmachine, DhcConfig, DhcError, KMachineConfig, KMachineReport,
    RunOutcome,
};
use dhc_graph::rng::rng_from_seed;
use dhc_graph::{generator, thresholds};
use proptest::prelude::*;

const ENGINE_THREADS: [usize; 2] = [1, 4];

type PlainResult = Result<RunOutcome, DhcError>;
type KmResult = Result<(RunOutcome, KMachineReport), DhcError>;

/// The backend is pure accounting: same cycle, same metrics, same phase
/// breakdown — or the same typed failure.
fn assert_equivalent(plain: &PlainResult, km: &KmResult, what: &str) {
    match (plain, km) {
        (Ok(p), Ok((k, _))) => {
            assert_eq!(p.cycle.order(), k.cycle.order(), "{what}: cycle diverged");
            assert_eq!(p.metrics, k.metrics, "{what}: metrics diverged");
            assert_eq!(p.phases, k.phases, "{what}: phase breakdown diverged");
        }
        (Err(p), Err(k)) => {
            assert_eq!(format!("{p:?}"), format!("{k:?}"), "{what}: failure diverged");
        }
        (p, k) => panic!(
            "{what}: success diverged: plain ok = {}, k-machine ok = {}",
            p.is_ok(),
            k.is_ok()
        ),
    }
}

/// Audits a report against the scheduling contract: the deterministic
/// per-link word schedule never puts more than `B` words on a link in
/// one k-machine round, per-round loads sum to the link totals, and the
/// dilated round count equals the schedule lengths summed over every
/// executed round of every phase.
fn assert_schedule_sound(report: &KMachineReport, kcfg: &KMachineConfig) {
    let b = kcfg.link_bandwidth_words;
    let mut scheduled_rounds = 0usize;
    let mut link_totals = vec![0u64; kcfg.k * kcfg.k];
    for log in &report.phase_logs {
        assert_eq!(log.machine_count(), kcfg.k);
        for round in log.rounds() {
            let (dilation, schedule) = link_schedule(&round.links, b);
            scheduled_rounds += dilation;
            for ((link, slots), &(raw_link, raw_words)) in schedule.iter().zip(&round.links) {
                assert_eq!(*link, raw_link);
                assert!(
                    slots.iter().all(|&w| w <= b as u64),
                    "link {link} oversubscribed in round {}: {slots:?}",
                    round.round
                );
                assert_eq!(slots.iter().sum::<u64>(), raw_words, "schedule lost words");
                link_totals[*link as usize] += raw_words;
            }
        }
    }
    let m = &report.machine;
    assert_eq!(scheduled_rounds, m.kmachine_rounds, "dilation diverged from the schedule");
    assert_eq!(link_totals, m.link_total_words, "link totals diverged from the logs");
    assert!(m.kmachine_rounds >= m.congest_rounds, "dilation cannot undercut the barrier floor");
    assert_eq!(
        m.machine_sent_words.iter().sum::<u64>(),
        m.link_total_words.iter().sum::<u64>(),
        "per-machine volumes diverged from link totals"
    );
    assert_eq!(m.machine_sent_words.iter().sum::<u64>(), m.machine_recv_words.iter().sum::<u64>());
    for mach in 0..kcfg.k {
        assert_eq!(m.link_total(mach, mach), 0, "intra-machine traffic leaked onto a link");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random instances, random machine counts, both engine thread
    /// counts: outcomes and CONGEST metrics bit-identical to the plain
    /// runs (successes *and* typed failures), machine accounting
    /// thread-independent, link schedule within budget.
    #[test]
    fn kmachine_backend_is_pure_accounting(
        n in 24usize..56,
        seed in 0u64..1000,
        k in 2usize..6,
        parts in 2usize..5,
    ) {
        let p = thresholds::edge_probability(n, 0.5, 5.0).max(0.3);
        let g = generator::gnp(n, p, &mut rng_from_seed(seed)).unwrap();
        let kcfg = KMachineConfig::new(k)
            .with_link_bandwidth_words(4)
            .with_rvp_seed(seed ^ 0xA11);

        let mut dhc2_reports: Vec<Option<KMachineReport>> = Vec::new();
        for threads in ENGINE_THREADS {
            let cfg = DhcConfig::new(seed ^ 0x7).with_engine_threads(threads);
            let cfg_parts = cfg.clone().with_partitions(parts);

            let dra_km = run_dra_kmachine(&g, &cfg, &kcfg);
            assert_equivalent(&run_dra(&g, &cfg), &dra_km, "dra");

            let dhc1_km = run_dhc1_kmachine(&g, &cfg_parts, &kcfg);
            assert_equivalent(&run_dhc1(&g, &cfg_parts), &dhc1_km, "dhc1");

            let dhc2_km = run_dhc2_kmachine(&g, &cfg_parts, &kcfg);
            assert_equivalent(&run_dhc2(&g, &cfg_parts), &dhc2_km, "dhc2");

            for report in [&dra_km, &dhc1_km, &dhc2_km].into_iter().flatten() {
                assert_schedule_sound(&report.1, &kcfg);
                prop_assert_eq!(
                    report.1.machine.machine_nodes.iter().sum::<usize>(), n,
                    "RVP must host every node"
                );
            }
            dhc2_reports.push(dhc2_km.ok().map(|(_, r)| r));
        }
        // Machine metrics are part of the determinism contract: identical
        // at every engine thread count.
        prop_assert_eq!(&dhc2_reports[0], &dhc2_reports[1],
            "machine accounting diverged across engine thread counts");
    }
}

#[test]
fn dhc2_success_case_is_equivalent_and_scheduled_within_budget() {
    // The proptest above accepts matching typed failures; this pins a
    // *successful* DHC2 run end to end at both thread counts.
    let n = 192;
    let p = thresholds::edge_probability(n, 0.5, 6.0);
    let g = generator::gnp(n, p, &mut rng_from_seed(80)).unwrap();
    let base = (81..89)
        .map(|seed| DhcConfig::new(seed).with_partitions(6))
        .find(|cfg| run_dhc2(&g, cfg).is_ok())
        .expect("DHC2 should succeed for at least one of 8 seeds");
    let kcfg = KMachineConfig::new(8).with_link_bandwidth_words(8).with_rvp_seed(3);
    let mut reports = Vec::new();
    for threads in ENGINE_THREADS {
        let cfg = base.clone().with_engine_threads(threads);
        let plain = run_dhc2(&g, &cfg);
        let km = run_dhc2_kmachine(&g, &cfg, &kcfg);
        assert!(plain.is_ok() && km.is_ok(), "seed-scanned success must reproduce");
        assert_equivalent(&plain, &km, "dhc2 success");
        let (_, report) = km.unwrap();
        assert_schedule_sound(&report, &kcfg);
        assert!(report.machine.cross_words() > 0);
        assert!(report.bound_factor().is_finite());
        reports.push(report);
    }
    assert_eq!(reports[0], reports[1], "machine accounting diverged across thread counts");
}

#[test]
fn upcast_kmachine_is_equivalent_and_shows_the_root_hotspot() {
    let n = 150;
    let p = thresholds::edge_probability(n, 0.5, 2.0);
    let g = generator::gnp(n, p, &mut rng_from_seed(40)).unwrap();
    let cfg = DhcConfig::new(41);
    let kcfg = KMachineConfig::new(4).with_rvp_seed(7);
    let plain = run_upcast(&g, &cfg);
    let km = run_upcast_kmachine(&g, &cfg, &kcfg);
    assert_equivalent(&plain, &km, "upcast");
    let (_, report) = km.unwrap();
    assert_schedule_sound(&report, &kcfg);
    // Upcast funnels everything through the root: the heaviest link total
    // clearly exceeds the mean link load.
    let m = &report.machine;
    let active_links = (kcfg.k * (kcfg.k - 1)) as u64;
    let mean = m.link_total_words.iter().sum::<u64>() / active_links;
    assert!(
        m.max_link_total() > 2 * mean,
        "expected a hotspot: max {} vs mean {}",
        m.max_link_total(),
        mean
    );
}

#[test]
fn materialized_phase1_oracle_agrees_under_kmachine_accounting() {
    // The machine log must not depend on the Phase-1 subgraph
    // representation either.
    let n = 144;
    let g = generator::gnp(n, 0.5, &mut rng_from_seed(90)).unwrap();
    let cfg = DhcConfig::new(91).with_partitions(3);
    let kcfg = KMachineConfig::new(4).with_rvp_seed(1);
    let view = run_dhc2_kmachine(&g, &cfg, &kcfg).unwrap();
    let copy = run_dhc2_kmachine(&g, &cfg.with_materialized_phase1(true), &kcfg).unwrap();
    assert_eq!(view.0.cycle.order(), copy.0.cycle.order());
    assert_eq!(view.0.metrics, copy.0.metrics);
    assert_eq!(view.1, copy.1, "machine accounting diverged view vs copy");
}
