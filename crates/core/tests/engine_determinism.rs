//! The round engine's within-round parallelism must be an implementation
//! detail: for a fixed seed, every `DhcConfig::with_engine_threads` level
//! (1, 2, and all cores) must produce exactly the same cycles, metrics,
//! traces, and errors for DRA, DHC1, and DHC2. The compute phase writes
//! only per-node effect scratch and the commit fold applies effects in
//! ascending node-id order — these tests pin that contract end to end.

use dhc_congest::{Config, Network, TraceEvent};
use dhc_core::dra::DraNode;
use dhc_core::{run_dhc1, run_dhc2, run_dra, DhcConfig};
use dhc_graph::{generator, rng::rng_from_seed, Graph};

fn dense_graph(n: usize, seed: u64) -> Graph {
    generator::gnp(n, 0.6, &mut rng_from_seed(seed)).unwrap()
}

/// Engine-thread settings the acceptance criteria pin: single-threaded,
/// two workers, and all available cores.
const THREAD_LEVELS: [usize; 3] = [1, 2, 0];

#[test]
fn dra_identical_across_engine_threads() {
    let g = generator::complete(24);
    let base = DhcConfig::new(3);
    let serial = run_dra(&g, &base.clone().with_engine_threads(1)).unwrap();
    for threads in THREAD_LEVELS {
        let out = run_dra(&g, &base.clone().with_engine_threads(threads)).unwrap();
        assert_eq!(serial.cycle.order(), out.cycle.order(), "cycle diverged at {threads} threads");
        assert_eq!(serial.metrics, out.metrics, "metrics diverged at {threads} threads");
        assert_eq!(serial.phases, out.phases, "phases diverged at {threads} threads");
    }
}

#[test]
fn dhc1_identical_across_engine_threads() {
    let g = dense_graph(160, 21);
    let base = DhcConfig::new(23).with_partitions(5);
    let serial = run_dhc1(&g, &base.clone().with_engine_threads(1));
    for threads in THREAD_LEVELS {
        let out = run_dhc1(&g, &base.clone().with_engine_threads(threads));
        match (&serial, &out) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.cycle.order(), b.cycle.order(), "{threads} threads");
                assert_eq!(a.metrics, b.metrics, "{threads} threads");
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "{threads} threads"),
            (a, b) => panic!("outcomes diverged at {threads} threads: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn dhc2_identical_across_engine_threads() {
    let g = dense_graph(192, 7);
    let base = DhcConfig::new(11).with_partitions(6);
    let serial = run_dhc2(&g, &base.clone().with_engine_threads(1)).unwrap();
    for threads in THREAD_LEVELS {
        let out = run_dhc2(&g, &base.clone().with_engine_threads(threads)).unwrap();
        assert_eq!(serial.cycle.order(), out.cycle.order(), "cycle diverged at {threads} threads");
        assert_eq!(serial.metrics, out.metrics, "metrics diverged at {threads} threads");
        assert_eq!(serial.phases, out.phases, "phases diverged at {threads} threads");
    }
}

/// Trace-level pin: the full engine event stream (sends, wake-ups, wakes,
/// halts) of a whole-graph DRA run is bit-identical at every thread count.
#[test]
fn dra_trace_identical_across_engine_threads() {
    let g = generator::complete(24);
    let run = |threads: usize| {
        let nodes: Vec<DraNode> = (0..24).map(|v| DraNode::new(v, 0, 99)).collect();
        let cfg = Config::default()
            .with_bandwidth_words(16)
            .with_trace_capacity(1_000_000)
            .with_engine_threads(threads);
        let mut net = Network::new(&g, cfg, nodes).unwrap();
        net.run().unwrap();
        let trace: Vec<TraceEvent> = net.trace().events();
        let (report, nodes) = net.finish();
        let links: Vec<_> = nodes.iter().map(|nd| (nd.cycindex, nd.succ, nd.pred)).collect();
        (report, trace, links)
    };
    let baseline = run(1);
    assert!(!baseline.1.is_empty(), "trace should have recorded events");
    for threads in [2, 4, 0] {
        assert_eq!(baseline, run(threads), "diverged at engine_threads = {threads}");
    }
}

/// The two parallelism axes (across Phase-1 partitions, within rounds)
/// compose without changing results.
#[test]
fn engine_threads_compose_with_phase1_parallelism() {
    let g = dense_graph(192, 7);
    let base = DhcConfig::new(11).with_partitions(6);
    let serial = run_dhc2(&g, &base.clone()).unwrap();
    let both = run_dhc2(&g, &base.with_parallelism(2).with_engine_threads(2)).unwrap();
    assert_eq!(serial.cycle.order(), both.cycle.order());
    assert_eq!(serial.metrics, both.metrics);
    assert_eq!(serial.phases, both.phases);
}
