//! Pins the **zero-adversary bit-identity oracle**: attaching a null
//! [`Adversary`] ([`Adversary::none`], or any adversary whose knobs are
//! all zero) must leave every algorithm's outcomes, [`Metrics`]
//! (`dhc_congest::Metrics`), and engine traces **bit-identical** to a
//! plain run with no adversary at all — for DRA/DHC1/DHC2/Upcast, at
//! every engine thread count, including typed-failure cases. This is
//! what licenses the adversary layer to exist next to the repo's
//! determinism contract: zero-knob runs provably preserve the paper's
//! clean synchronous CONGEST model.

use dhc_congest::{Adversary, Config, Context, Inbox, Network, NodeId, Payload, Protocol, Trace};
use dhc_core::{run_dhc1, run_dhc2, run_dra, run_upcast, DhcConfig, RunOutcome};
use dhc_graph::rng::rng_from_seed;
use dhc_graph::{generator, thresholds, Graph, Topology};

const ENGINE_THREADS: [usize; 2] = [1, 4];

/// Null adversaries to test: the canonical one and a seeded-but-idle
/// one (a bare fault seed influences nothing).
fn null_adversaries() -> [Adversary; 2] {
    [Adversary::none(), Adversary::seeded(123_456)]
}

fn assert_outcomes_identical(plain: &RunOutcome, adv: &RunOutcome, what: &str) {
    assert_eq!(plain.cycle.order(), adv.cycle.order(), "{what}: cycle diverged");
    assert_eq!(plain.metrics, adv.metrics, "{what}: metrics diverged");
    assert_eq!(plain.phases, adv.phases, "{what}: phase breakdown diverged");
}

#[test]
fn dra_bit_identical_with_null_adversary() {
    let n = 144;
    let g = generator::gnp(n, 0.5, &mut rng_from_seed(90)).unwrap();
    for threads in ENGINE_THREADS {
        let cfg = DhcConfig::new(91).with_engine_threads(threads);
        let plain = run_dra(&g, &cfg).unwrap();
        for null in null_adversaries() {
            let with = run_dra(&g, &cfg.clone().with_adversary(null)).unwrap();
            assert_outcomes_identical(&plain, &with, &format!("dra @ {threads} threads"));
        }
    }
}

#[test]
fn dhc1_bit_identical_with_null_adversary() {
    let n = 196;
    let p = thresholds::edge_probability(n, 0.5, 6.0);
    let g = generator::gnp(n, p, &mut rng_from_seed(70)).unwrap();
    // DHC1 succeeds whp, not surely: take the first succeeding seed.
    let base = (71..79)
        .map(|seed| DhcConfig::new(seed).with_partitions(8))
        .find(|cfg| run_dhc1(&g, cfg).is_ok())
        .expect("DHC1 should succeed for at least one of 8 seeds");
    for threads in ENGINE_THREADS {
        let cfg = base.clone().with_engine_threads(threads);
        let plain = run_dhc1(&g, &cfg).unwrap();
        let with = run_dhc1(&g, &cfg.with_adversary(Adversary::none())).unwrap();
        assert_outcomes_identical(&plain, &with, &format!("dhc1 @ {threads} threads"));
    }
}

#[test]
fn dhc2_bit_identical_with_null_adversary() {
    let n = 192;
    let p = thresholds::edge_probability(n, 0.5, 6.0);
    let g = generator::gnp(n, p, &mut rng_from_seed(80)).unwrap();
    let base = (81..89)
        .map(|seed| DhcConfig::new(seed).with_partitions(6))
        .find(|cfg| run_dhc2(&g, cfg).is_ok())
        .expect("DHC2 should succeed for at least one of 8 seeds");
    for threads in ENGINE_THREADS {
        let cfg = base.clone().with_engine_threads(threads);
        let plain = run_dhc2(&g, &cfg).unwrap();
        let with = run_dhc2(&g, &cfg.with_adversary(Adversary::none())).unwrap();
        assert_outcomes_identical(&plain, &with, &format!("dhc2 @ {threads} threads"));
    }
}

#[test]
fn upcast_bit_identical_with_null_adversary() {
    let n = 160;
    let p = 10.0 * (n as f64).ln() / n as f64;
    let g = generator::gnp(n, p, &mut rng_from_seed(60)).unwrap();
    let base = (61..69)
        .map(DhcConfig::new)
        .find(|cfg| run_upcast(&g, cfg).is_ok())
        .expect("Upcast should succeed for at least one of 8 seeds");
    for threads in ENGINE_THREADS {
        let cfg = base.clone().with_engine_threads(threads);
        let plain = run_upcast(&g, &cfg).unwrap();
        let with = run_upcast(&g, &cfg.with_adversary(Adversary::none())).unwrap();
        assert_outcomes_identical(&plain, &with, &format!("upcast @ {threads} threads"));
    }
}

#[test]
fn typed_failures_bit_identical_with_null_adversary() {
    // A disconnected graph makes Phase 1 fail; the typed error must not
    // depend on whether a null adversary is attached.
    let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
    let cfg = DhcConfig::new(0);
    let plain = run_dra(&g, &cfg).unwrap_err();
    for null in null_adversaries() {
        let with = run_dra(&g, &cfg.clone().with_adversary(null)).unwrap_err();
        assert_eq!(format!("{plain:?}"), format!("{with:?}"));
    }
    // Same for a round-cap failure.
    let g = generator::gnp(128, 0.5, &mut rng_from_seed(4)).unwrap();
    let cfg = DhcConfig::new(5).with_partitions(4).with_max_rounds(3);
    let plain = run_dhc2(&g, &cfg).unwrap_err();
    let with = run_dhc2(&g, &cfg.clone().with_adversary(Adversary::none())).unwrap_err();
    assert_eq!(format!("{plain:?}"), format!("{with:?}"));
}

/// Flood-echo protocol, used to pin **trace** equality (the algorithm
/// runners do not retain engine traces, so this drives the engine
/// directly with and without a null adversary attached).
struct Flood {
    seen: bool,
    pending: usize,
    parent: Option<NodeId>,
}

#[derive(Clone, Debug)]
struct Tok;
impl Payload for Tok {}

impl Protocol for Flood {
    type Msg = Tok;
    fn init(&mut self, ctx: &mut Context<'_, Tok>) {
        if ctx.node() == 0 {
            self.seen = true;
            self.pending = ctx.degree();
            ctx.send_all(Tok);
            if self.pending == 0 {
                ctx.halt();
            }
        }
    }
    fn round(&mut self, ctx: &mut Context<'_, Tok>, inbox: Inbox<'_, Tok>) {
        for (from, _) in inbox.iter() {
            if self.seen {
                ctx.send(from, Tok);
            } else {
                self.seen = true;
                self.parent = Some(from);
                self.pending = ctx.degree() - 1;
                ctx.send_all_except(from, Tok);
            }
        }
        if self.seen && self.pending == 0 {
            if let Some(p) = self.parent {
                ctx.send(p, Tok);
            }
            ctx.halt();
        } else if !inbox.is_empty() {
            self.pending = self.pending.saturating_sub(inbox.len());
            if self.pending == 0 {
                if let Some(p) = self.parent {
                    ctx.send(p, Tok);
                }
                ctx.halt();
            }
        }
    }
}

fn run_traced<T: Topology>(
    topo: &T,
    threads: usize,
    adversary: Option<Adversary>,
) -> (Trace, dhc_congest::Metrics) {
    let nodes: Vec<Flood> =
        (0..topo.node_count()).map(|_| Flood { seen: false, pending: 0, parent: None }).collect();
    let mut cfg = Config::default()
        .with_bandwidth_words(4)
        .with_trace_capacity(100_000)
        .with_engine_threads(threads);
    if let Some(adv) = adversary {
        cfg = cfg.with_adversary(adv);
    }
    let mut net = Network::new(topo, cfg, nodes).unwrap();
    let _ = net.run();
    let trace = net.trace().clone();
    let (report, _) = net.finish();
    (trace, report.metrics)
}

#[test]
fn traces_bit_identical_with_null_adversary() {
    let n = 120;
    let g = generator::gnp(n, 0.3, &mut rng_from_seed(95)).unwrap();
    for threads in ENGINE_THREADS {
        let (pt, pm) = run_traced(&g, threads, None);
        for null in null_adversaries() {
            let (at, am) = run_traced(&g, threads, Some(null));
            assert!(pt.iter().eq(at.iter()), "trace @ {threads} threads");
            assert_eq!(pm, am, "metrics @ {threads} threads");
        }
    }
}
