//! Phase-1 parallelism must be an implementation detail: for a fixed
//! seed, every `DhcConfig::with_parallelism` level must produce exactly
//! the same cycles, metrics, and errors. Each per-partition DRA
//! simulation is an isolated deterministic run keyed by global node
//! ids, and outcomes fold in partition order — these tests pin that
//! contract.

use dhc_core::{run_dhc1, run_dhc2, run_partition_cycles, DhcConfig, DhcError};
use dhc_graph::{generator, rng::rng_from_seed, Graph, Partition};

/// A dense instance on which DHC2 with several partitions succeeds for
/// the fixed seeds below.
fn dense_graph(n: usize, seed: u64) -> Graph {
    generator::gnp(n, 0.6, &mut rng_from_seed(seed)).unwrap()
}

#[test]
fn dhc2_identical_across_parallelism_levels() {
    let g = dense_graph(192, 7);
    let base = DhcConfig::new(11).with_partitions(6);
    let serial = run_dhc2(&g, &base.clone().with_parallelism(1)).unwrap();
    for threads in [2, 3, 8, 0] {
        let parallel = run_dhc2(&g, &base.clone().with_parallelism(threads)).unwrap();
        assert_eq!(
            serial.cycle.order(),
            parallel.cycle.order(),
            "cycle diverged at parallelism {threads}"
        );
        assert_eq!(serial.metrics, parallel.metrics, "metrics diverged at parallelism {threads}");
        assert_eq!(
            serial.phases, parallel.phases,
            "phase breakdown diverged at parallelism {threads}"
        );
    }
}

#[test]
fn dhc1_identical_across_parallelism_levels() {
    let g = dense_graph(160, 21);
    let base = DhcConfig::new(23).with_partitions(5);
    let serial = run_dhc1(&g, &base.clone().with_parallelism(1));
    let parallel = run_dhc1(&g, &base.clone().with_parallelism(4));
    match (serial, parallel) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.cycle.order(), b.cycle.order());
            assert_eq!(a.metrics, b.metrics);
        }
        (Err(a), Err(b)) => assert_eq!(a, b),
        (a, b) => panic!("serial and parallel outcomes diverged: {a:?} vs {b:?}"),
    }
}

#[test]
fn partition_cycles_identical_across_parallelism_levels() {
    let g = dense_graph(120, 3);
    let partition = Partition::random(120, 4, &mut rng_from_seed(5));
    let cfg = DhcConfig::new(9);
    let (serial_cycles, serial_metrics) =
        run_partition_cycles(&g, &partition, &cfg.clone().with_parallelism(1)).unwrap();
    let (parallel_cycles, parallel_metrics) =
        run_partition_cycles(&g, &partition, &cfg.clone().with_parallelism(4)).unwrap();
    assert_eq!(serial_cycles, parallel_cycles);
    assert_eq!(serial_metrics, parallel_metrics);
}

#[test]
fn failures_are_identical_across_parallelism_levels() {
    // Two disjoint triangles under one coloring: partition 0 spans both
    // components, so Phase 1 must fail identically at every level.
    let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
    let partition = Partition::from_colors(vec![0; 6], 1);
    let serial =
        run_partition_cycles(&g, &partition, &DhcConfig::new(1).with_parallelism(1)).unwrap_err();
    let parallel =
        run_partition_cycles(&g, &partition, &DhcConfig::new(1).with_parallelism(4)).unwrap_err();
    assert!(matches!(serial, DhcError::PartitionFailed { .. }), "{serial:?}");
    assert_eq!(serial, parallel);
}
