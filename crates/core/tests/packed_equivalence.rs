//! Pins the word-packed wire representation to the enum oracle.
//!
//! Two layers:
//!
//! * **Round-trip**: `unpack(pack(m)) == m` and `pack(m).words() ==
//!   m.words()` for every protocol message variant, over proptest-drawn
//!   field values — packing changes the in-memory form, never the
//!   identity or the CONGEST accounting.
//! * **Execution**: DRA / DHC1 / DHC2 / Upcast outcomes, metrics, and
//!   phase breakdowns are **bit-identical** with
//!   [`DhcConfig::with_packed_payloads`] on and off, at engine thread
//!   counts 1 and 4. Packed messages report the same `words()`, every
//!   per-node RNG stream is untouched, so the executions must not
//!   diverge anywhere.

use dhc_congest::{PackedPayload, Payload};
use dhc_core::dhc1::HypMsg;
use dhc_core::dra::DraMsg;
use dhc_core::upcast::UpMsg;
use dhc_core::{run_dhc1, run_dhc2, run_dra, run_upcast, DhcConfig, RunOutcome};
use dhc_graph::rng::rng_from_seed;
use dhc_graph::{generator, thresholds};
use proptest::prelude::*;

const ENGINE_THREADS: [usize; 2] = [1, 4];

fn assert_roundtrip<M: PackedPayload + PartialEq + std::fmt::Debug>(m: M) {
    let packed = m.pack();
    assert_eq!(packed.words(), m.words(), "packed words diverged for {m:?}");
    assert_eq!(M::unpack(&packed), m, "round-trip diverged for {m:?}");
}

fn dra_msg_strategy() -> impl Strategy<Value = DraMsg> {
    let id = any::<u32>();
    let idx = 0usize..(1usize << 32);
    prop_oneof![
        id.prop_map(|color| DraMsg::Color { color }),
        id.prop_map(|root| DraMsg::Wave { root }),
        (id, idx.clone()).prop_map(|(root, count)| DraMsg::WaveAck { root, count }),
        idx.clone().prop_map(|pos| DraMsg::Progress { pos }),
        Just(DraMsg::FreshAck),
        ((id, id), idx.clone(), idx.clone(), id, id)
            .prop_map(|(key, h, j, vj, vh)| DraMsg::Rotation { key, h, j, vj, vh }),
        (id, id).prop_map(|key| DraMsg::RotAck { key: (key.0, key.1) }),
        Just(DraMsg::Resume),
        (id, id, idx).prop_map(|(tail, head, size)| DraMsg::Done { tail, head, size }),
        any::<u8>().prop_map(|reason| DraMsg::Abort { reason }),
    ]
}

fn hyp_msg_strategy() -> impl Strategy<Value = HypMsg> {
    let id = any::<u32>();
    let idx = 0usize..(1usize << 32);
    prop_oneof![
        id.prop_map(|color| HypMsg::TermAnnounce { color }),
        idx.clone().prop_map(|pos| HypMsg::HypProgress { pos }),
        Just(HypMsg::HypFreshAck),
        idx.clone().prop_map(|pos| HypMsg::BecomeHead { pos }),
        Just(HypMsg::HypReject),
        ((id, id), idx.clone(), idx, id, id).prop_map(|(key, h, j, y, x)| HypMsg::HypRotation {
            key,
            h,
            j,
            y,
            x
        }),
        (id, id).prop_map(|key| HypMsg::HypRotAck { key: (key.0, key.1) }),
        Just(HypMsg::HypResume),
        (id, id).prop_map(|(x, y)| HypMsg::HypDone { x, y }),
        Just(HypMsg::HypAbort),
    ]
}

fn up_msg_strategy() -> impl Strategy<Value = UpMsg> {
    let id = any::<u32>();
    let idx = 0usize..(1usize << 32);
    prop_oneof![
        id.prop_map(|root| UpMsg::Wave { root }),
        (id, idx).prop_map(|(root, count)| UpMsg::WaveAck { root, count }),
        Just(UpMsg::Start),
        (id, id).prop_map(|(owner, other)| UpMsg::EdgeRec { owner, other }),
        Just(UpMsg::UpEnd),
        (id, id, id).prop_map(|(target, pa, pb)| UpMsg::Down { target, pa, pb }),
        Just(UpMsg::Abort),
    ]
}

proptest! {
    /// Every DRA message survives the packed wire form unchanged, with
    /// identical CONGEST word accounting.
    #[test]
    fn dra_msg_packs_losslessly(m in dra_msg_strategy()) {
        assert_roundtrip(m);
    }

    /// Every hypernode-stitch message survives the packed wire form
    /// unchanged, with identical CONGEST word accounting.
    #[test]
    fn hyp_msg_packs_losslessly(m in hyp_msg_strategy()) {
        assert_roundtrip(m);
    }

    /// Every Upcast message survives the packed wire form unchanged, with
    /// identical CONGEST word accounting.
    #[test]
    fn up_msg_packs_losslessly(m in up_msg_strategy()) {
        assert_roundtrip(m);
    }
}

fn assert_outcomes_identical(fat: &RunOutcome, lean: &RunOutcome, what: &str) {
    assert_eq!(fat.cycle.order(), lean.cycle.order(), "{what}: cycle diverged");
    assert_eq!(fat.metrics, lean.metrics, "{what}: metrics diverged");
    assert_eq!(fat.phases, lean.phases, "{what}: phase breakdown diverged");
}

#[test]
fn dra_bit_identical_packed_vs_enum_at_thread_counts() {
    let n = 144;
    let g = generator::gnp(n, 0.5, &mut rng_from_seed(120)).unwrap();
    let base = (121..129)
        .map(DhcConfig::new)
        .find(|cfg| run_dra(&g, cfg).is_ok())
        .expect("DRA should succeed for at least one of 8 seeds");
    for threads in ENGINE_THREADS {
        let cfg = base.clone().with_engine_threads(threads);
        let fat = run_dra(&g, &cfg).unwrap();
        let lean = run_dra(&g, &cfg.clone().with_packed_payloads(true)).unwrap();
        assert_outcomes_identical(&fat, &lean, &format!("dra @ {threads} threads"));
    }
}

#[test]
fn dhc1_bit_identical_packed_vs_enum_at_thread_counts() {
    let n = 196;
    let p = thresholds::edge_probability(n, 0.5, 6.0);
    let g = generator::gnp(n, p, &mut rng_from_seed(130)).unwrap();
    let base = (131..139)
        .map(|seed| DhcConfig::new(seed).with_partitions(8))
        .find(|cfg| run_dhc1(&g, cfg).is_ok())
        .expect("DHC1 should succeed for at least one of 8 seeds");
    for threads in ENGINE_THREADS {
        let cfg = base.clone().with_engine_threads(threads);
        let fat = run_dhc1(&g, &cfg).unwrap();
        let lean = run_dhc1(&g, &cfg.clone().with_packed_payloads(true)).unwrap();
        assert_outcomes_identical(&fat, &lean, &format!("dhc1 @ {threads} threads"));
    }
}

#[test]
fn dhc2_bit_identical_packed_vs_enum_at_thread_counts() {
    let n = 192;
    let p = thresholds::edge_probability(n, 0.5, 6.0);
    let g = generator::gnp(n, p, &mut rng_from_seed(140)).unwrap();
    let base = (141..149)
        .map(|seed| DhcConfig::new(seed).with_partitions(6))
        .find(|cfg| run_dhc2(&g, cfg).is_ok())
        .expect("DHC2 should succeed for at least one of 8 seeds");
    for threads in ENGINE_THREADS {
        let cfg = base.clone().with_engine_threads(threads);
        let fat = run_dhc2(&g, &cfg).unwrap();
        let lean = run_dhc2(&g, &cfg.clone().with_packed_payloads(true)).unwrap();
        assert_outcomes_identical(&fat, &lean, &format!("dhc2 @ {threads} threads"));
    }
}

#[test]
fn upcast_bit_identical_packed_vs_enum_at_thread_counts() {
    let n = 200;
    let p = thresholds::edge_probability(n, 0.5, 2.0);
    let g = generator::gnp(n, p, &mut rng_from_seed(150)).unwrap();
    for threads in ENGINE_THREADS {
        let cfg = DhcConfig::new(151).with_engine_threads(threads);
        let fat = run_upcast(&g, &cfg).unwrap();
        let lean = run_upcast(&g, &cfg.clone().with_packed_payloads(true)).unwrap();
        assert_outcomes_identical(&fat, &lean, &format!("upcast @ {threads} threads"));
    }
}

#[test]
fn packed_failures_are_bit_identical() {
    // A disconnected graph fails Phase 1; the typed error must not depend
    // on the wire representation.
    let g =
        dhc_graph::Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
    let cfg = DhcConfig::new(0);
    let fat = run_dra(&g, &cfg).unwrap_err();
    let lean = run_dra(&g, &cfg.with_packed_payloads(true)).unwrap_err();
    assert_eq!(format!("{fat:?}"), format!("{lean:?}"));
}
