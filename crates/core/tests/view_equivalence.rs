//! Pins the zero-copy Phase-1 class views to the copying oracle:
//! DHC1/DHC2 outcomes, metrics, and engine traces must be **bit-identical**
//! whether Phase 1 simulates each color class on a
//! [`dhc_graph::ClassView`] (the default) or on a materialized
//! [`dhc_graph::Graph::induced_subgraph`]
//! ([`DhcConfig::with_materialized_phase1`]), at every engine thread
//! count.

use dhc_congest::{Config, Context, Inbox, Network, NodeId, Payload, Protocol, Trace};
use dhc_core::{run_dhc1, run_dhc2, run_dra, run_partition_cycles, DhcConfig, RunOutcome};
use dhc_graph::rng::rng_from_seed;
use dhc_graph::{generator, thresholds, Graph, Partition, PartitionedGraph, Topology};

const ENGINE_THREADS: [usize; 2] = [1, 4];

fn assert_outcomes_identical(view: &RunOutcome, copy: &RunOutcome, what: &str) {
    assert_eq!(view.cycle.order(), copy.cycle.order(), "{what}: cycle diverged");
    assert_eq!(view.metrics, copy.metrics, "{what}: metrics diverged");
    assert_eq!(view.phases, copy.phases, "{what}: phase breakdown diverged");
}

#[test]
fn dhc1_bit_identical_view_vs_copy_at_thread_counts() {
    let n = 196;
    let p = thresholds::edge_probability(n, 0.5, 6.0);
    let g = generator::gnp(n, p, &mut rng_from_seed(70)).unwrap();
    // DHC1 succeeds whp, not surely: take the first succeeding seed.
    let base = (71..79)
        .map(|seed| DhcConfig::new(seed).with_partitions(8))
        .find(|cfg| run_dhc1(&g, cfg).is_ok())
        .expect("DHC1 should succeed for at least one of 8 seeds");
    for threads in ENGINE_THREADS {
        let cfg = base.clone().with_engine_threads(threads);
        let view = run_dhc1(&g, &cfg).unwrap();
        let copy = run_dhc1(&g, &cfg.clone().with_materialized_phase1(true)).unwrap();
        assert_outcomes_identical(&view, &copy, &format!("dhc1 @ {threads} threads"));
    }
}

#[test]
fn dhc2_bit_identical_view_vs_copy_at_thread_counts() {
    let n = 192;
    let p = thresholds::edge_probability(n, 0.5, 6.0);
    let g = generator::gnp(n, p, &mut rng_from_seed(80)).unwrap();
    let base = (81..89)
        .map(|seed| DhcConfig::new(seed).with_partitions(6))
        .find(|cfg| run_dhc2(&g, cfg).is_ok())
        .expect("DHC2 should succeed for at least one of 8 seeds");
    for threads in ENGINE_THREADS {
        let cfg = base.clone().with_engine_threads(threads);
        let view = run_dhc2(&g, &cfg).unwrap();
        let copy = run_dhc2(&g, &cfg.clone().with_materialized_phase1(true)).unwrap();
        assert_outcomes_identical(&view, &copy, &format!("dhc2 @ {threads} threads"));
    }
}

#[test]
fn dra_and_partition_cycles_bit_identical_view_vs_copy() {
    let n = 144;
    let g = generator::gnp(n, 0.5, &mut rng_from_seed(90)).unwrap();
    let cfg = DhcConfig::new(91);
    let view = run_dra(&g, &cfg).unwrap();
    let copy = run_dra(&g, &cfg.clone().with_materialized_phase1(true)).unwrap();
    assert_outcomes_identical(&view, &copy, "dra");

    let partition = Partition::random(n, 3, &mut rng_from_seed(92));
    let (cv, mv) = run_partition_cycles(&g, &partition, &cfg).unwrap();
    let (cc, mc) =
        run_partition_cycles(&g, &partition, &cfg.with_materialized_phase1(true)).unwrap();
    assert_eq!(cv, cc, "subcycles diverged");
    assert_eq!(mv, mc, "phase-1 metrics diverged");
}

#[test]
fn failures_are_bit_identical_view_vs_copy() {
    // A disconnected graph makes Phase 1 fail; the typed error must not
    // depend on the subgraph representation.
    let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
    let cfg = DhcConfig::new(0);
    let view = run_dra(&g, &cfg).unwrap_err();
    let copy = run_dra(&g, &cfg.with_materialized_phase1(true)).unwrap_err();
    assert_eq!(format!("{view:?}"), format!("{copy:?}"));
}

/// Flood-echo over one class, used to pin **trace** equality (the
/// algorithm runners do not retain per-partition traces, so this drives
/// the engine directly over both subgraph representations).
struct Flood {
    seen: bool,
    pending: usize,
    parent: Option<NodeId>,
}

#[derive(Clone, Debug)]
struct Tok;
impl Payload for Tok {}

impl Protocol for Flood {
    type Msg = Tok;
    fn init(&mut self, ctx: &mut Context<'_, Tok>) {
        if ctx.node() == 0 {
            self.seen = true;
            self.pending = ctx.degree();
            ctx.send_all(Tok);
            if self.pending == 0 {
                ctx.halt();
            }
        }
    }
    fn round(&mut self, ctx: &mut Context<'_, Tok>, inbox: Inbox<'_, Tok>) {
        for (from, _) in inbox.iter() {
            if self.seen {
                ctx.send(from, Tok);
            } else {
                self.seen = true;
                self.parent = Some(from);
                self.pending = ctx.degree() - 1;
                ctx.send_all_except(from, Tok);
            }
        }
        if self.seen && self.pending == 0 {
            if let Some(p) = self.parent {
                ctx.send(p, Tok);
            }
            ctx.halt();
        } else if !inbox.is_empty() {
            self.pending = self.pending.saturating_sub(inbox.len());
            if self.pending == 0 {
                if let Some(p) = self.parent {
                    ctx.send(p, Tok);
                }
                ctx.halt();
            }
        }
    }
}

fn run_traced<T: Topology>(topo: &T, threads: usize) -> (Trace, dhc_congest::Metrics) {
    let nodes: Vec<Flood> =
        (0..topo.node_count()).map(|_| Flood { seen: false, pending: 0, parent: None }).collect();
    let cfg = Config::default()
        .with_bandwidth_words(4)
        .with_trace_capacity(100_000)
        .with_engine_threads(threads);
    let mut net = Network::new(topo, cfg, nodes).unwrap();
    // Disconnected classes stall the flood; that is fine for trace
    // comparison purposes — both representations must stall identically.
    let _ = net.run();
    let trace = net.trace().clone();
    let (report, _) = net.finish();
    (trace, report.metrics)
}

#[test]
fn traces_bit_identical_on_class_view_vs_materialized_subgraph() {
    let n = 120;
    let g = generator::gnp(n, 0.3, &mut rng_from_seed(95)).unwrap();
    let partition = Partition::random(n, 4, &mut rng_from_seed(96));
    let pg = PartitionedGraph::new(&g, &partition);
    for c in 0..partition.class_count() {
        let Ok(view) = pg.class_view(c) else { continue };
        let (sub, _) = g.induced_subgraph(partition.class(c)).unwrap();
        for threads in ENGINE_THREADS {
            let (vt, vm) = run_traced(&view, threads);
            let (ct, cm) = run_traced(&sub, threads);
            assert!(vt.iter().eq(ct.iter()), "class {c} trace @ {threads} threads");
            assert_eq!(vm, cm, "class {c} metrics @ {threads} threads");
        }
    }
}
