//! Protocol-level invariant tests: drive the CONGEST protocols directly
//! and check the internal state they leave behind, not just the final
//! cycle.

use dhc_congest::{Config, Network};
use dhc_core::dra::DraNode;
use dhc_core::{run_dhc2, DhcConfig};
use dhc_graph::{generator, rng::rng_from_seed, thresholds, Partition};

/// Runs the DRA phase directly and returns the nodes.
fn run_dra_protocol(g: &dhc_graph::Graph, colors: &[u32], seed: u64) -> Vec<DraNode> {
    let nodes: Vec<DraNode> =
        (0..g.node_count()).map(|v| DraNode::new((v) as u32, colors[v], seed)).collect();
    let mut net =
        Network::new(g, Config::default().with_bandwidth_words(16), nodes).expect("valid network");
    net.run().expect("protocol terminates");
    net.into_nodes()
}

#[test]
fn dra_positions_form_a_permutation_per_partition() {
    let n = 120;
    let g = generator::gnp(n, 0.7, &mut rng_from_seed(80)).unwrap();
    let colors: Vec<u32> = (0..n).map(|v| (v % 3) as u32).collect();
    let nodes = run_dra_protocol(&g, &colors, 81);
    for c in 0..3u32 {
        let members: Vec<&DraNode> = nodes.iter().filter(|nd| nd.color == c).collect();
        let size = members.len();
        assert!(members.iter().all(|nd| nd.done), "partition {c} incomplete");
        // cycindex values are exactly 0..size.
        let mut seen = vec![false; size];
        for nd in &members {
            let idx = nd.cycindex.expect("on path");
            assert!(!seen[idx], "duplicate cycindex {idx} in partition {c}");
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Everyone learned the cycle size.
        assert!(members.iter().all(|nd| nd.cycle_size == Some(size)));
    }
}

#[test]
fn dra_succ_pred_are_mutually_inverse() {
    let n = 90;
    let g = generator::gnp(n, 0.6, &mut rng_from_seed(82)).unwrap();
    let colors = vec![0u32; n];
    let nodes = run_dra_protocol(&g, &colors, 83);
    for (v, nd) in nodes.iter().enumerate() {
        let s = nd.succ.expect("complete");
        let p = nd.pred.expect("complete");
        assert_eq!(nodes[(s) as usize].pred, Some(v as u32), "succ/pred inverse broken at {v}");
        assert_eq!(nodes[(p) as usize].succ, Some(v as u32), "pred/succ inverse broken at {v}");
        // Path neighbors are graph neighbors (cycle edges are real).
        assert!(g.has_edge((v) as u32, s));
    }
}

#[test]
fn dra_indices_follow_successors() {
    let n = 80;
    let g = generator::gnp(n, 0.6, &mut rng_from_seed(84)).unwrap();
    let nodes = run_dra_protocol(&g, &vec![0; n], 85);
    for (v, nd) in nodes.iter().enumerate() {
        let s = nd.succ.expect("complete");
        let vi = nd.cycindex.expect("complete");
        let si = nodes[(s) as usize].cycindex.expect("complete");
        assert_eq!(si, (vi + 1) % n, "index order broken at {v}");
    }
}

#[test]
fn dra_exactly_one_leader_per_partition() {
    let n = 100;
    let g = generator::gnp(n, 0.55, &mut rng_from_seed(86)).unwrap();
    let colors: Vec<u32> = (0..n).map(|v| (v % 2) as u32).collect();
    let nodes = run_dra_protocol(&g, &colors, 87);
    for c in 0..2u32 {
        let leaders: Vec<usize> = nodes
            .iter()
            .enumerate()
            .filter(|(_, nd)| nd.color == c && nd.is_leader())
            .map(|(v, _)| v)
            .collect();
        assert_eq!(leaders.len(), 1, "partition {c} leaders: {leaders:?}");
        // The leader is the minimum id of its class (min-id wave wins).
        let min_member = nodes
            .iter()
            .enumerate()
            .filter(|(_, nd)| nd.color == c)
            .map(|(v, _)| v)
            .min()
            .expect("non-empty");
        assert_eq!(leaders[0], min_member);
        // And the leader starts the path.
        assert_eq!(nodes[leaders[0]].cycindex, Some(0));
    }
}

#[test]
fn dra_respects_partition_boundaries() {
    // Cycle edges never cross colors.
    let n = 140;
    let g = generator::gnp(n, 0.5, &mut rng_from_seed(88)).unwrap();
    let colors: Vec<u32> = (0..n).map(|v| (v % 4) as u32).collect();
    let nodes = run_dra_protocol(&g, &colors, 89);
    for (v, nd) in nodes.iter().enumerate() {
        if let Some(s) = nd.succ {
            assert_eq!(colors[v], colors[(s) as usize], "cycle edge ({v},{s}) crosses partitions");
        }
    }
}

#[test]
fn dhc2_full_run_keeps_congest_bandwidth() {
    let n = 200;
    let p = thresholds::edge_probability(n, 0.5, 6.0);
    let g = generator::gnp(n, p, &mut rng_from_seed(90)).unwrap();
    let out = run_dhc2(&g, &DhcConfig::new(91).with_partitions(6)).unwrap();
    // The engine would have errored on violation; double-check the high-water.
    assert!(out.metrics.max_edge_words <= 16);
    // Messages are CONGEST-sized: average words per message is O(1).
    let avg_words = out.metrics.words as f64 / out.metrics.messages as f64;
    assert!(avg_words < 10.0, "avg message size {avg_words} words");
}

#[test]
fn dhc2_compute_is_balanced_but_upcast_is_not() {
    let n = 220;
    let p = thresholds::edge_probability(n, 0.5, 6.0);
    let g = generator::gnp(n, p, &mut rng_from_seed(92)).unwrap();
    let cfg = DhcConfig::new(93).with_partitions(6);
    let dhc2 = run_dhc2(&g, &cfg).unwrap();
    let upcast = dhc_core::run_upcast(&g, &cfg).unwrap();
    assert!(
        dhc2.metrics.compute_balance() < upcast.metrics.compute_balance(),
        "dhc2 balance {} should beat upcast {}",
        dhc2.metrics.compute_balance(),
        upcast.metrics.compute_balance()
    );
}

#[test]
fn explicit_partition_runs_match_struct_random_ones() {
    // Partition::from_colors and Partition::random with identical colors
    // must produce identical runs (the partition is the only input).
    let n = 150;
    let _g = generator::gnp(n, 0.5, &mut rng_from_seed(94)).unwrap();
    let mut rng = rng_from_seed(95);
    let random = Partition::random(n, 5, &mut rng);
    let explicit = Partition::from_colors(random.colors().to_vec(), 5);
    assert_eq!(random, explicit);
    assert!(random.classes().eq(explicit.classes()));
}
