//! Algorithm-level errors.

use dhc_congest::SimError;
use dhc_graph::cycle::CycleError;
use std::error::Error;
use std::fmt;

/// Why a distributed Hamiltonian-cycle run failed.
///
/// The paper's algorithms fail with probability `O(1/n)`; these variants
/// make every failure mode observable instead of hanging or panicking.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DhcError {
    /// The input graph has fewer than 3 nodes.
    GraphTooSmall {
        /// Node count.
        n: usize,
    },
    /// The simulation engine faulted (round cap, stall, bandwidth, ...).
    Simulation(SimError),
    /// A Phase-1 partition could not build its subcycle (too small,
    /// internally disconnected, or its rotation run starved).
    PartitionFailed {
        /// The partition color.
        color: u32,
        /// Human-readable reason captured from the aborting node.
        reason: PartitionFailure,
    },
    /// A DHC2 merge level found no bridge for some cycle pair (Lemma 8's
    /// whp event failed).
    NoBridge {
        /// Merge level (0-based).
        level: usize,
        /// Active color of the pair that failed.
        color: u32,
    },
    /// DHC1 Phase 2 could not stitch the subcycles (hypernode path
    /// starved).
    StitchFailed {
        /// Hypernodes placed on the path when the run starved.
        placed: usize,
        /// Total hypernodes.
        total: usize,
    },
    /// The Upcast root failed to find a Hamiltonian cycle in the sampled
    /// subgraph.
    RootSolveFailed {
        /// Number of distinct sampled edges the root had.
        sampled_edges: usize,
    },
    /// The assembled output did not verify as a Hamiltonian cycle
    /// (indicates a genuine algorithm failure, e.g. a partition whose
    /// induced subgraph was disconnected and formed several subcycles).
    InvalidCycle(CycleError),
    /// Invalid configuration (e.g. `δ` outside `(0, 1]`).
    InvalidConfig {
        /// Description of the offending parameter.
        what: &'static str,
    },
}

/// Reason a partition's Phase-1 DRA aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PartitionFailure {
    /// The partition had fewer than 3 members.
    TooSmall,
    /// The acting head ran out of unused edges.
    OutOfEdges,
}

impl fmt::Display for PartitionFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionFailure::TooSmall => write!(f, "fewer than 3 members"),
            PartitionFailure::OutOfEdges => write!(f, "head ran out of unused edges"),
        }
    }
}

impl fmt::Display for DhcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DhcError::GraphTooSmall { n } => {
                write!(f, "graph with {n} nodes cannot contain a hamiltonian cycle")
            }
            DhcError::Simulation(e) => write!(f, "simulation fault: {e}"),
            DhcError::PartitionFailed { color, reason } => {
                write!(f, "partition {color} failed phase 1: {reason}")
            }
            DhcError::NoBridge { level, color } => {
                write!(f, "no bridge found at merge level {level} for pair of color {color}")
            }
            DhcError::StitchFailed { placed, total } => {
                write!(f, "hypernode stitching starved with {placed}/{total} subcycles placed")
            }
            DhcError::RootSolveFailed { sampled_edges } => {
                write!(f, "upcast root found no hamiltonian cycle in {sampled_edges} sampled edges")
            }
            DhcError::InvalidCycle(e) => {
                write!(f, "assembled output is not a hamiltonian cycle: {e}")
            }
            DhcError::InvalidConfig { what } => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl Error for DhcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DhcError::Simulation(e) => Some(e),
            DhcError::InvalidCycle(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for DhcError {
    fn from(e: SimError) -> Self {
        DhcError::Simulation(e)
    }
}

impl From<CycleError> for DhcError {
    fn from(e: CycleError) -> Self {
        DhcError::InvalidCycle(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs: Vec<DhcError> = vec![
            DhcError::GraphTooSmall { n: 2 },
            DhcError::Simulation(SimError::Stalled { round: 1, unhalted: 2 }),
            DhcError::PartitionFailed { color: 3, reason: PartitionFailure::TooSmall },
            DhcError::NoBridge { level: 2, color: 4 },
            DhcError::StitchFailed { placed: 3, total: 8 },
            DhcError::RootSolveFailed { sampled_edges: 100 },
            DhcError::InvalidConfig { what: "delta" },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn conversions() {
        let e: DhcError = SimError::Stalled { round: 0, unhalted: 1 }.into();
        assert!(matches!(e, DhcError::Simulation(_)));
    }
}
