//! **DHC1** (the paper's Algorithm 2, `p = c ln n / √n`): Phase-1 partition
//! DRA over `√n` color classes, then a **hypernode DRA** that stitches the
//! `√n` subcycles into one Hamiltonian cycle.
//!
//! A *hypernode* is one edge of a subcycle: the node at `cycindex` 0
//! (`u_i`) and its cycle predecessor (`v_i`). The final cycle will traverse
//! subcycle `C_i` as the path between its two **terminals** `u_i, v_i`
//! that avoids the edge `(v_i, u_i)` — a path that can be walked in either
//! direction, which is what makes segment reversals sound ("hypernode
//! orientation").
//!
//! The stitching is a rotation-path construction over hypernodes:
//!
//! * the **live terminal** (the exit of the head hypernode) draws a random
//!   unused edge to a terminal of another hypernode and sends
//!   `HypProgress(pos)`;
//! * a terminal of an off-path hypernode accepts (`HypFreshAck`), becomes
//!   that hypernode's entry, and promotes its partner to the new live exit
//!   (`BecomeHead`);
//! * the exit terminal of an on-path hypernode `f_j` triggers a rotation:
//!   the segment `(j, h]` of the hypernode path reverses, each reversed
//!   hypernode swapping entry/exit roles (always realizable, since the
//!   subcycle path between terminals is undirected). The rotation
//!   parameters are flooded over the whole graph with an echo, after which
//!   the initiator resumes the new head — exactly the DRA pattern, one
//!   level up;
//! * an entry terminal, or the free terminal of the first hypernode while
//!   the path is incomplete, rejects the draw (`HypReject`) — these draws
//!   are the price of the orientation-sound construction;
//! * when the head's draw hits the free terminal of hypernode 0 and the
//!   path spans all `k` hypernodes, the cycle closes (`HypDone` flood).
//!
//! The final edge set: every non-terminal keeps its Phase-1
//! `(pred, succ)`; each terminal replaces its partner-side subcycle edge
//! with its cross-edge `link`.

use crate::kmachine::KMachineProbe;
use crate::output::NodeCycleOutput;
use crate::runner::{draw_colors, run_phase1_with, Phase1Outcome, PhaseBreakdown, RunOutcome};
use crate::{cycle_from_incident_pairs, DhcConfig, DhcError};
use dhc_congest::{
    Context, EngineScratch, EnumCodec, Inbox, MsgCodec, Network, NodeId, PackedCodec, PackedMsg,
    PackedPayload, Payload, Protocol, SimError, Span,
};
use dhc_graph::rng::derive_seed;
use dhc_graph::{Graph, Partition};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;
use std::marker::PhantomData;

/// Identifier of one hypernode-rotation broadcast: `(initiator, sequence)`.
pub type RotKey = (NodeId, u32);

/// Messages of the hypernode-stitching phase (exposed so equivalence
/// tests can pin the packed wire form against the enum oracle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HypMsg {
    /// A terminal announces itself (and its color) to all neighbors.
    TermAnnounce {
        /// The sender's partition color.
        color: u32,
    },
    /// Live terminal → drawn terminal: extend or rotate.
    HypProgress {
        /// The head hypernode's path position.
        pos: usize,
    },
    /// Fresh hypernode accepted the extension.
    HypFreshAck,
    /// Entry terminal → its partner: you are the new live exit.
    BecomeHead {
        /// The accepting hypernode's new path position.
        pos: usize,
    },
    /// Target was not usable (entry terminal, or early closing attempt).
    HypReject,
    /// Rotation broadcast (flooded over all edges, echo-terminated):
    /// reverse hypernode-path segment `(j, h]`.
    HypRotation {
        /// Instance key.
        key: RotKey,
        /// Old head hypernode position.
        h: usize,
        /// Rotation pivot hypernode position.
        j: usize,
        /// The drawn terminal (the pivot's exit).
        y: NodeId,
        /// The drawing live terminal.
        x: NodeId,
    },
    /// Echo for [`HypRotation`](HypMsg::HypRotation).
    HypRotAck {
        /// Instance key.
        key: RotKey,
    },
    /// Rotation finished; the new live terminal may act.
    HypResume,
    /// Success flood: closing cross-edge `(x, y)` chosen.
    HypDone {
        /// The drawing live terminal.
        x: NodeId,
        /// The closing target (hypernode 0's free terminal).
        y: NodeId,
    },
    /// Failure flood: the live terminal ran out of unused edges.
    HypAbort,
}

impl Payload for HypMsg {
    fn words(&self) -> usize {
        match self {
            HypMsg::TermAnnounce { .. }
            | HypMsg::HypProgress { .. }
            | HypMsg::HypFreshAck
            | HypMsg::BecomeHead { .. }
            | HypMsg::HypReject
            | HypMsg::HypResume
            | HypMsg::HypAbort => 1,
            HypMsg::HypRotation { .. } => 6,
            HypMsg::HypRotAck { .. } => 2,
            HypMsg::HypDone { .. } => 2,
        }
    }
}

impl PackedPayload for HypMsg {
    type Wire = PackedMsg;

    fn pack(&self) -> PackedMsg {
        match *self {
            HypMsg::TermAnnounce { color } => PackedMsg::new(0, &[color]),
            HypMsg::HypProgress { pos } => PackedMsg::new(1, &[pos as u32]),
            HypMsg::HypFreshAck => PackedMsg::new(2, &[0]),
            HypMsg::BecomeHead { pos } => PackedMsg::new(3, &[pos as u32]),
            HypMsg::HypReject => PackedMsg::new(4, &[0]),
            HypMsg::HypRotation { key, h, j, y, x } => {
                PackedMsg::new(5, &[key.0, key.1, h as u32, j as u32, y, x])
            }
            HypMsg::HypRotAck { key } => PackedMsg::new(6, &[key.0, key.1]),
            HypMsg::HypResume => PackedMsg::new(7, &[0]),
            HypMsg::HypDone { x, y } => PackedMsg::new(8, &[x, y]),
            HypMsg::HypAbort => PackedMsg::new(9, &[0]),
        }
    }

    fn unpack(m: &PackedMsg) -> Self {
        let w = m.payload();
        match m.tag {
            0 => HypMsg::TermAnnounce { color: w[0] },
            1 => HypMsg::HypProgress { pos: w[0] as usize },
            2 => HypMsg::HypFreshAck,
            3 => HypMsg::BecomeHead { pos: w[0] as usize },
            4 => HypMsg::HypReject,
            5 => HypMsg::HypRotation {
                key: (w[0], w[1]),
                h: w[2] as usize,
                j: w[3] as usize,
                y: w[4],
                x: w[5],
            },
            6 => HypMsg::HypRotAck { key: (w[0], w[1]) },
            7 => HypMsg::HypResume,
            8 => HypMsg::HypDone { x: w[0], y: w[1] },
            9 => HypMsg::HypAbort,
            t => panic!("unknown HypMsg tag {t}"),
        }
    }
}

/// Role of a terminal on the hypernode path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TermRole {
    /// Not carrying a cross edge (off-path hypernode, or the open start of
    /// the path at hypernode 0).
    Free,
    /// Carries the cross edge toward the previous hypernode.
    Entry,
    /// Carries the cross edge toward the next hypernode (the head's exit
    /// has no cross edge yet — it is the live end).
    Exit,
}

/// Per-node state of the stitching protocol, generic over the wire codec.
#[derive(Debug)]
pub(crate) struct HypNode<C: MsgCodec<HypMsg> = EnumCodec> {
    id: NodeId,
    color: u32,
    idx: usize,
    succ: NodeId,
    pred: NodeId,
    k: usize,
    rng: SmallRng,

    is_terminal: bool,
    /// The other terminal of this node's hypernode (terminals only).
    partner: NodeId,
    role: TermRole,
    hypidx: Option<usize>,
    /// The cross-edge neighbor this terminal uses in the final cycle.
    pub link: Option<NodeId>,
    unused: Vec<(NodeId, u32)>,
    announces_seen: bool,
    live: bool,
    awaiting: bool,

    // Rotation flood relay state (over all edges).
    rot_key: Option<RotKey>,
    rot_parent: Option<NodeId>,
    rot_pending: usize,
    rot_initiator: bool,
    rot_resume_target: Option<NodeId>,
    rot_seq: u32,

    /// Set when the stitch completed.
    pub done: bool,
    /// Set when the stitch aborted.
    pub failed: bool,

    _codec: PhantomData<C>,
}

impl<C: MsgCodec<HypMsg>> HypNode<C> {
    /// `state` is this node's Phase-1 result; `k` the number of subcycles.
    #[allow(clippy::too_many_arguments)] // mirrors the Phase-1 state tuple
    pub(crate) fn new(
        id: NodeId,
        color: u32,
        idx: usize,
        succ: NodeId,
        pred: NodeId,
        size: usize,
        k: usize,
        seed: u64,
    ) -> Self {
        // Terminals: cycindex 0 (u_i) and cycindex size-1 (v_i = pred u_i).
        let is_terminal = idx == 0 || idx == size - 1;
        let partner = if idx == 0 { pred } else { succ };
        // Hypernode 0 starts on the path: its u-terminal is the live exit,
        // its v-terminal the free path start (the eventual closing point).
        let (role, hypidx, live) = if color == 0 && is_terminal {
            if idx == 0 {
                (TermRole::Exit, Some(0), true)
            } else {
                (TermRole::Free, Some(0), false)
            }
        } else {
            (TermRole::Free, None, false)
        };
        HypNode {
            id,
            color,
            idx,
            succ,
            pred,
            k,
            rng: SmallRng::seed_from_u64(derive_seed(seed, 0x6000 + id as u64)),
            is_terminal,
            partner,
            role,
            hypidx,
            link: None,
            unused: Vec::new(),
            announces_seen: false,
            live,
            awaiting: false,
            rot_key: None,
            rot_parent: None,
            rot_pending: 0,
            rot_initiator: false,
            rot_resume_target: None,
            rot_seq: 0,
            done: false,
            failed: false,
            _codec: PhantomData,
        }
    }

    fn abort_flood(&mut self, ctx: &mut Context<'_, C::Wire>, skip: Option<NodeId>) {
        if self.done || self.failed {
            return;
        }
        self.failed = true;
        ctx.flood_except(skip, C::encode(HypMsg::HypAbort));
        ctx.halt();
    }

    fn done_flood(
        &mut self,
        ctx: &mut Context<'_, C::Wire>,
        x: NodeId,
        y: NodeId,
        skip: Option<NodeId>,
    ) {
        if self.done || self.failed {
            return;
        }
        self.done = true;
        if self.id == x {
            self.link = Some(y);
        }
        ctx.flood_except(skip, C::encode(HypMsg::HypDone { x, y }));
        ctx.halt();
    }

    /// The live terminal draws the next unused cross edge.
    fn head_act(&mut self, ctx: &mut Context<'_, C::Wire>) {
        debug_assert!(self.live && !self.awaiting);
        match self.unused.pop() {
            None => self.abort_flood(ctx, None),
            Some((t, _)) => {
                let pos = self.hypidx.expect("live terminal's hypernode is on the path");
                ctx.send(t, C::encode(HypMsg::HypProgress { pos }));
                self.awaiting = true;
                ctx.charge_compute(1);
            }
        }
    }

    fn remove_unused(&mut self, t: NodeId) {
        if let Some(i) = self.unused.iter().position(|&(x, _)| x == t) {
            self.unused.swap_remove(i);
        }
    }

    fn on_progress(&mut self, ctx: &mut Context<'_, C::Wire>, x: NodeId, pos: usize) {
        self.remove_unused(x);
        match self.hypidx {
            None => {
                // Fresh hypernode: this terminal becomes the entry.
                self.role = TermRole::Entry;
                self.link = Some(x);
                self.hypidx = Some(pos + 1);
                ctx.send(self.partner, C::encode(HypMsg::BecomeHead { pos: pos + 1 }));
                ctx.send(x, C::encode(HypMsg::HypFreshAck));
            }
            Some(j) => {
                match self.role {
                    TermRole::Exit if self.link.is_some() => {
                        // Rotation pivot: f_j's exit re-links to x (the old
                        // head hypernode's exit, which becomes its entry).
                        self.rot_seq += 1;
                        let key = (self.id, self.rot_seq);
                        self.rot_resume_target = self.link;
                        self.link = Some(x);
                        self.rot_key = Some(key);
                        self.rot_parent = None;
                        self.rot_initiator = true;
                        self.rot_pending = ctx.degree();
                        ctx.send_all(C::encode(HypMsg::HypRotation {
                            key,
                            h: pos,
                            j,
                            y: self.id,
                            x,
                        }));
                    }
                    TermRole::Free => {
                        // Only hypernode 0's open start is Free-on-path.
                        if pos == self.k - 1 {
                            // Closing: the path spans all hypernodes.
                            self.role = TermRole::Entry;
                            self.link = Some(x);
                            self.done_flood(ctx, x, self.id, None);
                        } else {
                            ctx.send(x, C::encode(HypMsg::HypReject));
                        }
                    }
                    _ => {
                        // Entry terminal (or live exit, unreachable):
                        // unusable in this orientation.
                        ctx.send(x, C::encode(HypMsg::HypReject));
                    }
                }
            }
        }
    }

    /// Applies a hypernode rotation to this terminal.
    fn apply_rotation(&mut self, h: usize, j: usize, y: NodeId, x: NodeId) {
        if !self.is_terminal || self.id == y {
            return;
        }
        let Some(idx) = self.hypidx else { return };
        if idx > j && idx <= h {
            self.hypidx = Some(h + j + 1 - idx);
            match self.role {
                TermRole::Entry => {
                    self.role = TermRole::Exit;
                    if self.link == Some(y) && idx == j + 1 {
                        // This is z: the new live end.
                        self.link = None;
                        self.live = true;
                        self.awaiting = true; // act only on HypResume
                    }
                }
                TermRole::Exit => {
                    self.role = TermRole::Entry;
                    if self.id == x {
                        // The old live end now carries the new cross edge.
                        self.link = Some(y);
                        self.live = false;
                        self.awaiting = false;
                    }
                }
                TermRole::Free => {}
            }
        }
    }

    fn rot_complete_check(&mut self, ctx: &mut Context<'_, C::Wire>) {
        if self.rot_pending != 0 || self.rot_key.is_none() {
            return;
        }
        if self.rot_initiator {
            let target = self.rot_resume_target.expect("initiator saved old link");
            ctx.send(target, C::encode(HypMsg::HypResume));
            self.rot_initiator = false;
        } else if let Some(p) = self.rot_parent {
            let key = self.rot_key.expect("checked above");
            ctx.send(p, C::encode(HypMsg::HypRotAck { key }));
            self.rot_parent = None;
        }
    }

    #[allow(clippy::too_many_arguments)] // one parameter per message field
    fn on_rotation(
        &mut self,
        ctx: &mut Context<'_, C::Wire>,
        from: NodeId,
        key: RotKey,
        h: usize,
        j: usize,
        y: NodeId,
        x: NodeId,
    ) {
        if self.rot_key == Some(key) {
            self.rot_pending = self.rot_pending.saturating_sub(1);
            self.rot_complete_check(ctx);
            return;
        }
        self.rot_key = Some(key);
        self.rot_parent = Some(from);
        self.rot_initiator = false;
        self.apply_rotation(h, j, y, x);
        self.rot_pending = ctx.degree() - 1;
        ctx.send_all_except(from, C::encode(HypMsg::HypRotation { key, h, j, y, x }));
        self.rot_complete_check(ctx);
    }

    /// This node's final two cycle neighbors.
    pub(crate) fn output(&self) -> Option<NodeCycleOutput> {
        if !self.is_terminal {
            return Some(NodeCycleOutput::new(self.pred, self.succ));
        }
        let link = self.link?;
        let inner = if self.idx == 0 { self.succ } else { self.pred };
        Some(NodeCycleOutput::new(inner, link))
    }
}

impl<C: MsgCodec<HypMsg>> Protocol for HypNode<C> {
    type Msg = C::Wire;

    fn init(&mut self, ctx: &mut Context<'_, C::Wire>) {
        if ctx.degree() == 0 {
            // Unreachable after a successful Phase 1, but keeps the engine
            // from stalling on degenerate inputs.
            self.failed = true;
            ctx.halt();
            return;
        }
        if self.is_terminal {
            ctx.send_all(C::encode(HypMsg::TermAnnounce { color: self.color }));
        }
        if self.live {
            // Ensure the initial head is invoked after the announce round
            // even if it has no terminal neighbors.
            ctx.wake_in(2);
        }
    }

    fn round(&mut self, ctx: &mut Context<'_, C::Wire>, inbox: Inbox<'_, C::Wire>) {
        if !self.announces_seen {
            self.announces_seen = true;
            if self.is_terminal {
                for (from, msg) in inbox.iter() {
                    if let HypMsg::TermAnnounce { color } = C::decode(msg) {
                        if color != self.color {
                            self.unused.push((from, color));
                        }
                    }
                }
                self.unused.shuffle(&mut self.rng);
            }
            if self.live && !self.awaiting {
                self.head_act(ctx);
                return;
            }
        }
        for (from, msg) in inbox.iter() {
            if self.done || self.failed {
                break;
            }
            match C::decode(msg) {
                HypMsg::TermAnnounce { .. } => {}
                HypMsg::HypProgress { pos } => self.on_progress(ctx, from, pos),
                HypMsg::HypFreshAck => {
                    // Our drawn terminal accepted: the cross edge stands.
                    self.link = Some(from);
                    self.live = false;
                    self.awaiting = false;
                }
                HypMsg::BecomeHead { pos } => {
                    self.role = TermRole::Exit;
                    self.hypidx = Some(pos);
                    self.link = None;
                    self.live = true;
                    self.awaiting = false;
                    self.head_act(ctx);
                }
                HypMsg::HypReject => {
                    // Draw wasted; try the next unused edge.
                    self.awaiting = false;
                    if self.live {
                        self.head_act(ctx);
                    }
                }
                HypMsg::HypRotation { key, h, j, y, x } => {
                    self.on_rotation(ctx, from, key, h, j, y, x)
                }
                HypMsg::HypRotAck { key } => {
                    if self.rot_key == Some(key) {
                        self.rot_pending = self.rot_pending.saturating_sub(1);
                        self.rot_complete_check(ctx);
                    }
                }
                HypMsg::HypResume => {
                    debug_assert!(self.live);
                    self.awaiting = false;
                    self.head_act(ctx);
                }
                HypMsg::HypDone { x, y } => self.done_flood(ctx, x, y, Some(from)),
                HypMsg::HypAbort => self.abort_flood(ctx, Some(from)),
            }
        }
    }

    fn memory_words(&self) -> usize {
        2 * self.unused.len() + 24
    }
}

/// Runs the full DHC1 algorithm, optionally instrumented with the
/// k-machine accounting probe (see [`crate::kmachine`]).
pub(crate) fn run(
    graph: &Graph,
    cfg: &DhcConfig,
    mut km: Option<&mut KMachineProbe>,
) -> Result<RunOutcome, DhcError> {
    cfg.validate()?;
    let n = graph.node_count();
    if n < 3 {
        return Err(DhcError::GraphTooSmall { n });
    }
    let (partition, _) = draw_colors(n, cfg);
    // Compact colors (drop empty classes) so hypernode indices are dense.
    let mut relabel: HashMap<u32, u32> = HashMap::new();
    let mut next = 0u32;
    for class in partition.classes() {
        if !class.is_empty() {
            relabel.insert(partition.color(class[0]), next);
            next += 1;
        }
    }
    let colors: Vec<u32> = (0..n).map(|v| relabel[&partition.color((v) as u32)]).collect();
    let k = next as usize;
    let compacted = Partition::from_colors(colors, k);

    let mut run_span = Span::root(cfg.collector.as_ref(), "run", format!("dhc1 n={n} k={k}"));
    let outcome = if cfg.packed_payloads {
        // On the packed wire every protocol's messages are `PackedMsg`,
        // so the `√n` Phase 1 class networks and the whole-graph stitch
        // network chain through one buffer set.
        let mut scratch: EngineScratch<PackedMsg> = EngineScratch::new();
        let phase1 = run_phase1_with::<PackedCodec>(
            graph,
            &compacted,
            cfg,
            km.as_deref_mut(),
            Some(&mut scratch),
            &run_span,
        )?;
        stitch::<PackedCodec>(graph, cfg, km, k, &phase1, &mut scratch, &run_span)?
    } else {
        // Enum wires differ per protocol (`DraMsg` vs `HypMsg`); Phase 1
        // chains its own internal scratch, the stitch starts cold.
        let phase1 = run_phase1_with::<EnumCodec>(
            graph,
            &compacted,
            cfg,
            km.as_deref_mut(),
            None,
            &run_span,
        )?;
        stitch::<EnumCodec>(graph, cfg, km, k, &phase1, &mut EngineScratch::new(), &run_span)?
    };
    run_span.add(outcome.metrics.rounds as u64, outcome.metrics.messages, outcome.metrics.words);
    drop(run_span);
    if let Some(col) = &cfg.collector {
        col.flush();
    }
    Ok(outcome)
}

/// The hypernode stitch (Phase 2), pinned to a wire codec, seeded from
/// `scratch` — warm with the Phase 1 buffers on the packed path.
fn stitch<C: MsgCodec<HypMsg>>(
    graph: &Graph,
    cfg: &DhcConfig,
    km: Option<&mut KMachineProbe>,
    k: usize,
    phase1: &Phase1Outcome,
    scratch: &mut EngineScratch<C::Wire>,
    parent: &Span,
) -> Result<RunOutcome, DhcError> {
    let mut metrics = phase1.metrics.clone();
    let mut phases = vec![PhaseBreakdown {
        name: "phase1".to_string(),
        rounds: phase1.metrics.rounds,
        messages: phase1.metrics.messages,
    }];

    if k == 1 {
        let pairs: Vec<NodeCycleOutput> =
            phase1.states.iter().map(|s| NodeCycleOutput::new(s.pred, s.succ)).collect();
        let cycle = cycle_from_incident_pairs(graph, &pairs)?;
        return Ok(RunOutcome { cycle, metrics, phases });
    }

    let mut phase_span = parent.child("phase", format!("hypernode-stitch k={k}"));
    let nodes: Vec<HypNode<C>> = phase1
        .states
        .iter()
        .enumerate()
        .map(|(v, s)| {
            HypNode::new((v) as u32, s.color, s.cycindex, s.succ, s.pred, s.cycle_size, k, cfg.seed)
        })
        .collect();
    let mut net = match km.as_deref() {
        Some(p) => Network::new_with_machines(graph, cfg.sim_config(), nodes, p.global_map())?,
        None => Network::new_with_scratch(graph, cfg.sim_config(), nodes, scratch)?,
    };
    let run_result = net.run();
    let (report, nodes) = net.finish();
    let phase2_metrics = report.metrics;
    let phase2_machine_log = report.machine_log;
    let placed = nodes.iter().filter_map(|nd| nd.hypidx).max().map(|m| m + 1).unwrap_or(0);
    match run_result {
        Ok(_) => {}
        Err(SimError::Stalled { round, unhalted }) => {
            if std::env::var("DHC1_DEBUG").is_ok() {
                eprintln!("STALLED round={round} unhalted={unhalted} placed={placed}");
                for nd in nodes.iter().filter(|nd| nd.is_terminal) {
                    eprintln!(
                        "  term id={} color={} role={:?} hypidx={:?} link={:?} live={} awaiting={} unused={} rot_pending={}",
                        nd.id, nd.color, nd.role, nd.hypidx, nd.link, nd.live, nd.awaiting,
                        nd.unused.len(), nd.rot_pending
                    );
                }
            }
            return Err(DhcError::StitchFailed { placed, total: k });
        }
        Err(e) => return Err(e.into()),
    }
    if nodes.iter().any(|nd| nd.failed) {
        if std::env::var("DHC1_DEBUG").is_ok() {
            eprintln!("ABORTED placed={placed}");
        }
        return Err(DhcError::StitchFailed { placed, total: k });
    }
    metrics.merge(&phase2_metrics);
    if let (Some(p), Some(log)) = (km, phase2_machine_log) {
        p.absorb_phase_log(log);
    }
    phase_span.add(phase2_metrics.rounds as u64, phase2_metrics.messages, phase2_metrics.words);
    drop(phase_span);
    phases.push(PhaseBreakdown {
        name: "hypernode-stitch".to_string(),
        rounds: phase2_metrics.rounds,
        messages: phase2_metrics.messages,
    });

    let pairs: Vec<NodeCycleOutput> = nodes
        .iter()
        .map(|nd| nd.output().ok_or(DhcError::StitchFailed { placed, total: k }))
        .collect::<Result<_, _>>()?;
    let cycle = cycle_from_incident_pairs(graph, &pairs)?;
    Ok(RunOutcome { cycle, metrics, phases })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhc_graph::{generator, rng::rng_from_seed, thresholds};

    #[test]
    fn message_words_are_constant() {
        assert_eq!(HypMsg::TermAnnounce { color: 1 }.words(), 1);
        assert_eq!(HypMsg::HypRotation { key: (0, 1), h: 2, j: 3, y: 4, x: 5 }.words(), 6);
        assert_eq!(HypMsg::HypDone { x: 1, y: 2 }.words(), 2);
    }

    #[test]
    fn dhc1_end_to_end_at_paper_operating_point() {
        // p = c ln n / sqrt(n): the DHC1 regime. The guarantee is
        // probabilistic (success 1 - O(1/n)), so scan a small seed
        // window instead of betting on one stream.
        let n = 256;
        let p = thresholds::edge_probability(n, 0.5, 6.0);
        let g = generator::gnp(n, p, &mut rng_from_seed(50)).unwrap();
        let out = (51..59)
            .filter_map(|seed| run(&g, &DhcConfig::new(seed).with_delta(0.5), None).ok())
            .next()
            .expect("DHC1 should succeed for at least one of 8 seeds");
        assert_eq!(out.cycle.len(), n);
        assert_eq!(out.phases.len(), 2);
        assert_eq!(out.phases[1].name, "hypernode-stitch");
    }

    #[test]
    fn dhc1_with_few_partitions_on_dense_graph() {
        // Few hypernodes need high cross-terminal density: with k
        // hypernodes a live terminal draws from only 2(k-1) foreign
        // terminals, so k = 8 at p = 0.8 keeps starvation unlikely.
        let n = 160;
        let g = generator::gnp(n, 0.8, &mut rng_from_seed(52)).unwrap();
        let out = run(&g, &DhcConfig::new(53).with_partitions(6), None).unwrap();
        assert_eq!(out.cycle.len(), n);
    }

    #[test]
    fn dhc1_single_partition_short_circuits() {
        let n = 64;
        let g = generator::gnp(n, 0.5, &mut rng_from_seed(54)).unwrap();
        let out = run(&g, &DhcConfig::new(55).with_delta(1.0), None).unwrap();
        assert_eq!(out.cycle.len(), n);
        assert_eq!(out.phases.len(), 1);
    }

    #[test]
    fn dhc1_is_deterministic() {
        let n = 128;
        let g = generator::gnp(n, 0.8, &mut rng_from_seed(56)).unwrap();
        // Any seed works for a determinism check; use the first in a
        // small window whose run succeeds on this dense instance.
        let cfg = (57..65)
            .map(|seed| DhcConfig::new(seed).with_partitions(8))
            .find(|cfg| run(&g, cfg, None).is_ok())
            .expect("DHC1 should succeed for at least one of 8 seeds");
        let a = run(&g, &cfg, None).unwrap();
        let b = run(&g, &cfg, None).unwrap();
        assert_eq!(a.cycle.order(), b.cycle.order());
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
    }

    #[test]
    fn dhc1_stitch_failure_on_cross_sparse_graph() {
        // Two cliques joined by a single edge, forced 2-coloring: Phase 1
        // succeeds per clique, but the hypernode graph has (almost surely)
        // no usable terminal-to-terminal edges: typed stitch failure.
        let mut edges = vec![(0, 8)];
        for u in 0..8 {
            for v in (u + 1)..8 {
                edges.push((u, v));
                edges.push((u + 8, v + 8));
            }
        }
        let g = Graph::from_edges(16, edges).unwrap();
        let cfg = DhcConfig::new(3).with_partitions(2);
        // Control the partition via the config's seed-derived coloring is
        // random; instead check that whatever happens is a typed outcome.
        match run(&g, &cfg, None) {
            Ok(out) => assert_eq!(out.cycle.len(), 16),
            Err(e) => assert!(
                matches!(e, DhcError::StitchFailed { .. } | DhcError::PartitionFailed { .. }),
                "{e:?}"
            ),
        }
    }
}
