//! Per-node cycle output and global assembly.
//!
//! The paper's output convention: *"at the end, each node will know which
//! of its incident edges belong to the HC (exactly two of them)"*. Nodes
//! therefore report an unordered pair of cycle neighbors; the runner
//! assembles and verifies the global cycle.

use crate::DhcError;
use dhc_graph::{cycle::CycleError, Graph, HamiltonianCycle, NodeId};

/// A node's local view of the final Hamiltonian cycle: its two incident
/// cycle edges, as the neighbor at the other end of each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeCycleOutput {
    /// One cycle neighbor.
    pub a: NodeId,
    /// The other cycle neighbor.
    pub b: NodeId,
}

impl NodeCycleOutput {
    /// Creates the output pair (order irrelevant).
    pub fn new(a: NodeId, b: NodeId) -> Self {
        NodeCycleOutput { a, b }
    }
}

/// Assembles the per-node incident pairs into a verified
/// [`HamiltonianCycle`].
///
/// Walks the pairs starting at node 0 and checks mutual consistency
/// (if `u` lists `v`, then `v` must list `u`).
///
/// # Errors
///
/// Returns [`DhcError::InvalidCycle`] if the pairs do not describe a single
/// Hamiltonian cycle of `graph`.
pub fn cycle_from_incident_pairs(
    graph: &Graph,
    pairs: &[NodeCycleOutput],
) -> Result<HamiltonianCycle, DhcError> {
    let n = graph.node_count();
    if pairs.len() != n {
        return Err(DhcError::InvalidCycle(CycleError::NotAPermutation {
            expected: n,
            actual: pairs.len(),
        }));
    }
    if n < 3 {
        return Err(DhcError::GraphTooSmall { n });
    }
    // Walk from node 0; at each node pick the incident neighbor we did not
    // come from.
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    let mut prev = usize::MAX;
    let mut cur = 0usize;
    for _ in 0..n {
        order.push(cur as NodeId);
        let p = &pairs[cur];
        if p.a >= (n) as u32 || p.b >= (n) as u32 {
            return Err(DhcError::InvalidCycle(CycleError::RepeatedOrInvalidNode {
                node: (p.a.max(p.b)) as usize,
            }));
        }
        let next = if prev == usize::MAX {
            p.a
        } else if p.a == (prev) as u32 {
            p.b
        } else if p.b == (prev) as u32 {
            p.a
        } else {
            // Inconsistent: we arrived from a node this one does not list.
            return Err(DhcError::InvalidCycle(CycleError::MissingSuccessor { node: cur }));
        };
        // Mutual consistency: `next` must list `cur`.
        let np = &pairs[(next.min((n - 1) as u32)) as usize];
        if next >= (n) as u32 || (np.a != (cur) as u32 && np.b != (cur) as u32) {
            return Err(DhcError::InvalidCycle(CycleError::MissingSuccessor {
                node: (next.min((n - 1) as u32)) as usize,
            }));
        }
        prev = cur;
        cur = (next) as usize;
        if cur == 0 && order.len() < n {
            return Err(DhcError::InvalidCycle(CycleError::NotASingleCycle {
                cycle_length: order.len(),
                expected: n,
            }));
        }
    }
    if cur != 0 {
        return Err(DhcError::InvalidCycle(CycleError::NotASingleCycle {
            cycle_length: n,
            expected: n,
        }));
    }
    HamiltonianCycle::from_order(graph, order).map_err(DhcError::InvalidCycle)
}

/// Builds the incident pairs from a successor map (convenience for
/// protocols that track `succ`/`pred`).
///
/// # Errors
///
/// Returns [`DhcError::InvalidCycle`] if any successor or predecessor is
/// missing.
pub(crate) fn pairs_from_links(
    succ: &[Option<NodeId>],
    pred: &[Option<NodeId>],
) -> Result<Vec<NodeCycleOutput>, DhcError> {
    let n = succ.len();
    let mut out = Vec::with_capacity(n);
    for v in 0..n {
        match (succ[v], pred[v]) {
            (Some(s), Some(p)) => out.push(NodeCycleOutput::new(p, s)),
            _ => return Err(DhcError::InvalidCycle(CycleError::MissingSuccessor { node: v })),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhc_graph::generator;

    fn ring_pairs(n: usize) -> Vec<NodeCycleOutput> {
        (0..n)
            .map(|i| NodeCycleOutput::new(((i + n - 1) % n) as u32, ((i + 1) % n) as u32))
            .collect()
    }

    #[test]
    fn assembles_ring() {
        let g = generator::cycle_graph(6);
        let hc = cycle_from_incident_pairs(&g, &ring_pairs(6)).unwrap();
        assert_eq!(hc.len(), 6);
    }

    #[test]
    fn rejects_two_cycles() {
        let g = generator::complete(6);
        // Two triangles.
        let mut pairs = Vec::new();
        for i in 0..3 {
            pairs.push(NodeCycleOutput::new((i + 2) % 3, (i + 1) % 3));
        }
        for i in 0..3 {
            pairs.push(NodeCycleOutput::new(3 + (i + 2) % 3, 3 + (i + 1) % 3));
        }
        assert!(matches!(
            cycle_from_incident_pairs(&g, &pairs),
            Err(DhcError::InvalidCycle(CycleError::NotASingleCycle { cycle_length: 3, .. }))
        ));
    }

    #[test]
    fn rejects_inconsistent_pairs() {
        let g = generator::complete(4);
        // Node 1 doesn't list node 0 back.
        let pairs = vec![
            NodeCycleOutput::new(1, 3),
            NodeCycleOutput::new(2, 3),
            NodeCycleOutput::new(1, 3),
            NodeCycleOutput::new(2, 0),
        ];
        assert!(cycle_from_incident_pairs(&g, &pairs).is_err());
    }

    #[test]
    fn rejects_wrong_length() {
        let g = generator::complete(4);
        assert!(cycle_from_incident_pairs(&g, &ring_pairs(3)).is_err());
    }

    #[test]
    fn rejects_non_edges() {
        let g = generator::path_graph(4); // 3-0 missing
        assert!(cycle_from_incident_pairs(&g, &ring_pairs(4)).is_err());
    }

    #[test]
    fn pairs_from_links_roundtrip() {
        let succ: Vec<Option<u32>> = vec![Some(1), Some(2), Some(0)];
        let pred: Vec<Option<u32>> = vec![Some(2), Some(0), Some(1)];
        let pairs = pairs_from_links(&succ, &pred).unwrap();
        let g = generator::cycle_graph(3);
        assert!(cycle_from_incident_pairs(&g, &pairs).is_ok());
    }

    #[test]
    fn pairs_from_links_missing_errors() {
        let succ: Vec<Option<u32>> = vec![Some(1), None, Some(0)];
        let pred: Vec<Option<u32>> = vec![Some(2), Some(0), Some(1)];
        assert!(pairs_from_links(&succ, &pred).is_err());
    }
}
