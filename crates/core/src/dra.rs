//! The **Distributed Rotation Algorithm** (the paper's Algorithm 1) as a
//! CONGEST protocol, generalized to run on every color class of a vertex
//! partition simultaneously (Phase 1 of DHC1/DHC2; a single class is plain
//! DRA).
//!
//! Per partition, the protocol proceeds in three stages, all message-driven:
//!
//! 1. **Color exchange** (1 round): every node learns which neighbors share
//!    its color; these are the only edges the partition may use.
//! 2. **Leader election + size count**: simultaneous min-id flood waves
//!    with echo. The winning wave's parents form a BFS tree; the echo
//!    convergecast counts the partition size at the leader. (The paper
//!    assumes an initial head and a known size; this stage constructs
//!    both, at the `O(D)` cost the analysis already budgets.)
//! 3. **Rotation path growth**: the leader starts the path (`cycindex 0`).
//!    The acting head draws a uniformly random unused same-color edge and
//!    sends `Progress(pos)`. A fresh receiver appends itself and becomes
//!    head (replying `FreshAck` so the old head learns its successor). An
//!    on-path receiver initiates a **rotation broadcast**: the renumbering
//!    parameters `(h, j, v_j, v_h)` are flooded through the partition with
//!    an echo acknowledgement; when the echo completes, the initiator sends
//!    `Resume` to the new head (its old successor). When the head's draw
//!    hits the leader while the path spans the whole partition, the leader
//!    floods `Done(tail, head, size)` and the partition terminates.
//!
//! Failures (a partition smaller than 3, or a head running out of unused
//! edges — the paper's event `E2`) abort the partition via an `Abort`
//! flood, so the simulation always terminates with a typed outcome.

use crate::error::PartitionFailure;
use dhc_congest::{
    Context, EnumCodec, Inbox, MsgCodec, NodeId, PackedMsg, PackedPayload, Payload, Protocol,
};
use dhc_graph::rng::derive_seed;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::marker::PhantomData;

/// Identifier of one rotation broadcast instance: `(initiator, sequence)`.
pub type RotKey = (NodeId, u32);

/// Messages of the distributed rotation protocol.
///
/// Every variant carries a constant number of node ids / indices, i.e.
/// `O(log n)` bits — one CONGEST message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DraMsg {
    /// Announce own color (round 1).
    Color {
        /// The sender's partition color.
        color: u32,
    },
    /// Leader-election flood wave carrying the smallest id seen.
    Wave {
        /// Candidate leader id.
        root: NodeId,
    },
    /// Echo for [`Wave`](DraMsg::Wave): subtree size convergecast.
    WaveAck {
        /// The wave this ack belongs to.
        root: NodeId,
        /// Nodes in the acked subtree (including the sender).
        count: usize,
    },
    /// Head → drawn neighbor: "extend or rotate; I am at position `pos`".
    Progress {
        /// The head's path position (0-based `cycindex`).
        pos: usize,
    },
    /// Fresh receiver → old head: "I appended myself; I am your successor".
    FreshAck,
    /// Rotation broadcast: renumber positions in `(j, h]` via
    /// `i ← h + j + 1 − i` and swap successor/predecessor pointers.
    Rotation {
        /// Instance key.
        key: RotKey,
        /// Old head position.
        h: usize,
        /// Rotation pivot position (the initiator's position).
        j: usize,
        /// Id of the pivot node `v_j`.
        vj: NodeId,
        /// Id of the old head `v_h`.
        vh: NodeId,
    },
    /// Echo for [`Rotation`](DraMsg::Rotation).
    RotAck {
        /// Instance key.
        key: RotKey,
    },
    /// Initiator → new head after the rotation echo completes.
    Resume,
    /// Success flood: the cycle closed.
    Done {
        /// The path start (leader).
        tail: NodeId,
        /// The final head (whose closing edge reached the tail).
        head: NodeId,
        /// Partition size = cycle length.
        size: usize,
    },
    /// Failure flood.
    Abort {
        /// Encoded [`PartitionFailure`].
        reason: u8,
    },
}

impl Payload for DraMsg {
    fn words(&self) -> usize {
        match self {
            DraMsg::Color { .. } | DraMsg::Wave { .. } | DraMsg::Progress { .. } => 1,
            DraMsg::FreshAck | DraMsg::Resume => 1,
            DraMsg::WaveAck { .. } => 2,
            DraMsg::Rotation { .. } => 6,
            DraMsg::RotAck { .. } => 2,
            DraMsg::Done { .. } => 3,
            DraMsg::Abort { .. } => 1,
        }
    }
}

impl PackedPayload for DraMsg {
    type Wire = PackedMsg;

    fn pack(&self) -> PackedMsg {
        match *self {
            DraMsg::Color { color } => PackedMsg::new(0, &[color]),
            DraMsg::Wave { root } => PackedMsg::new(1, &[root]),
            DraMsg::WaveAck { root, count } => PackedMsg::new(2, &[root, count as u32]),
            DraMsg::Progress { pos } => PackedMsg::new(3, &[pos as u32]),
            DraMsg::FreshAck => PackedMsg::new(4, &[0]),
            DraMsg::Rotation { key, h, j, vj, vh } => {
                PackedMsg::new(5, &[key.0, key.1, h as u32, j as u32, vj, vh])
            }
            DraMsg::RotAck { key } => PackedMsg::new(6, &[key.0, key.1]),
            DraMsg::Resume => PackedMsg::new(7, &[0]),
            DraMsg::Done { tail, head, size } => PackedMsg::new(8, &[tail, head, size as u32]),
            DraMsg::Abort { reason } => PackedMsg::new(9, &[reason as u32]),
        }
    }

    fn unpack(m: &PackedMsg) -> Self {
        let w = m.payload();
        match m.tag {
            0 => DraMsg::Color { color: w[0] },
            1 => DraMsg::Wave { root: w[0] },
            2 => DraMsg::WaveAck { root: w[0], count: w[1] as usize },
            3 => DraMsg::Progress { pos: w[0] as usize },
            4 => DraMsg::FreshAck,
            5 => DraMsg::Rotation {
                key: (w[0], w[1]),
                h: w[2] as usize,
                j: w[3] as usize,
                vj: w[4],
                vh: w[5],
            },
            6 => DraMsg::RotAck { key: (w[0], w[1]) },
            7 => DraMsg::Resume,
            8 => DraMsg::Done { tail: w[0], head: w[1], size: w[2] as usize },
            9 => DraMsg::Abort { reason: w[0] as u8 },
            t => panic!("unknown DraMsg tag {t}"),
        }
    }
}

fn encode_failure(f: PartitionFailure) -> u8 {
    match f {
        PartitionFailure::TooSmall => 0,
        PartitionFailure::OutOfEdges => 1,
    }
}

fn decode_failure(b: u8) -> PartitionFailure {
    match b {
        0 => PartitionFailure::TooSmall,
        _ => PartitionFailure::OutOfEdges,
    }
}

/// Per-node state of the DRA protocol.
///
/// Generic over the wire [`MsgCodec`]: [`EnumCodec`] (default) exchanges
/// the [`DraMsg`] enum itself, [`PackedCodec`](dhc_congest::PackedCodec)
/// the word-packed [`PackedMsg`] form. Both execute identically — the
/// codec only chooses the in-memory representation in flight.
#[derive(Debug)]
pub struct DraNode<C: MsgCodec<DraMsg> = EnumCodec> {
    id: NodeId,
    /// Partition color of this node.
    pub color: u32,
    rng: SmallRng,
    /// Same-color neighbors (the partition-internal edges).
    part_nbrs: Vec<NodeId>,
    colors_known: bool,
    /// Whether the partition edges are *all* of this node's edges (true
    /// in the per-class-view simulations that dominate Phase 1). When
    /// set, partition floods lower onto the engine's O(1) broadcast
    /// fabric; otherwise they stay per-neighbor unicasts over the
    /// same-color subset.
    flood_all: bool,

    // Leader election.
    best_root: NodeId,
    wave_parent: Option<NodeId>,
    wave_pending: usize,
    wave_acc: usize,
    is_leader: bool,

    // Rotation-path state.
    /// Shuffled unused same-color edges.
    unused: Vec<NodeId>,
    /// Path position (the paper's `cycindex`), once on the path.
    pub cycindex: Option<usize>,
    /// Successor on the (sub)cycle.
    pub succ: Option<NodeId>,
    /// Predecessor on the (sub)cycle.
    pub pred: Option<NodeId>,
    is_head: bool,
    awaiting_reply: bool,
    await_resume: bool,
    /// Partition size; known by the leader after election, by everyone
    /// after `Done`.
    pub cycle_size: Option<usize>,

    // Rotation broadcast bookkeeping.
    rot_key: Option<RotKey>,
    rot_parent: Option<NodeId>,
    rot_pending: usize,
    rot_initiator: bool,
    rot_resume_target: Option<NodeId>,
    rot_seq: u32,

    /// Set when this node's partition completed its subcycle.
    pub done: bool,
    /// Set when this node's partition aborted.
    pub failed: Option<PartitionFailure>,

    _codec: PhantomData<C>,
}

impl<C: MsgCodec<DraMsg>> DraNode<C> {
    /// Creates the protocol state for node `id` with partition color
    /// `color`; randomness is derived from `(seed, id)`.
    pub fn new(id: NodeId, color: u32, seed: u64) -> Self {
        Self::with_rng_stream(id, color, derive_seed(seed, id as u64))
    }

    /// Like [`new`](DraNode::new), but with the RNG stream seed given
    /// directly. The partition runner uses this to key each node's
    /// stream by its **global** id even when the node runs under a
    /// local id inside a per-partition subgraph simulation, so results
    /// are identical however partitions are scheduled.
    pub fn with_rng_stream(id: NodeId, color: u32, stream: u64) -> Self {
        DraNode {
            id,
            color,
            rng: SmallRng::seed_from_u64(stream),
            part_nbrs: Vec::new(),
            colors_known: false,
            flood_all: false,
            best_root: id,
            wave_parent: None,
            wave_pending: 0,
            wave_acc: 0,
            is_leader: false,
            unused: Vec::new(),
            cycindex: None,
            succ: None,
            pred: None,
            is_head: false,
            awaiting_reply: false,
            await_resume: false,
            cycle_size: None,
            rot_key: None,
            rot_parent: None,
            rot_pending: 0,
            rot_initiator: false,
            rot_resume_target: None,
            rot_seq: 0,
            done: false,
            failed: None,
            _codec: PhantomData,
        }
    }

    /// Whether this node ended as its partition's leader (path start).
    pub fn is_leader(&self) -> bool {
        self.is_leader
    }

    fn fail_and_flood(&mut self, ctx: &mut Context<'_, C::Wire>, reason: PartitionFailure) {
        self.failed = Some(reason);
        self.flood(ctx, DraMsg::Abort { reason: encode_failure(reason) }, None);
        ctx.halt();
    }

    /// The head draws the next unused edge and sends `Progress`.
    fn head_act(&mut self, ctx: &mut Context<'_, C::Wire>) {
        debug_assert!(self.is_head && !self.awaiting_reply && !self.await_resume);
        match self.unused.pop() {
            None => self.fail_and_flood(ctx, PartitionFailure::OutOfEdges),
            Some(u) => {
                let pos = self.cycindex.expect("head is on the path");
                ctx.send(u, C::encode(DraMsg::Progress { pos }));
                self.awaiting_reply = true;
                ctx.charge_compute(1);
            }
        }
    }

    fn remove_unused(&mut self, v: NodeId) {
        if let Some(i) = self.unused.iter().position(|&x| x == v) {
            self.unused.swap_remove(i);
        }
    }

    /// Floods `msg` over the partition edges, optionally skipping one
    /// neighbor (the relay pattern). Uses the broadcast fabric when the
    /// partition spans the whole neighborhood — one payload copy instead
    /// of `deg(v)` — and is observationally identical either way.
    fn flood(&self, ctx: &mut Context<'_, C::Wire>, msg: DraMsg, skip: Option<NodeId>) {
        if self.flood_all {
            ctx.flood_except(skip, C::encode(msg));
        } else {
            let wire = C::encode(msg);
            for &to in &self.part_nbrs {
                if Some(to) != skip {
                    ctx.send(to, wire.clone());
                }
            }
        }
    }

    fn wave_complete_check(&mut self, ctx: &mut Context<'_, C::Wire>) {
        if self.wave_pending != 0 {
            return;
        }
        match self.wave_parent {
            Some(p) => {
                let count = 1 + self.wave_acc;
                ctx.send(p, C::encode(DraMsg::WaveAck { root: self.best_root, count }));
            }
            None => {
                if self.best_root == self.id {
                    // Leader: knows the partition (component) size.
                    let size = 1 + self.wave_acc;
                    self.is_leader = true;
                    self.cycle_size = Some(size);
                    if size < 3 {
                        self.fail_and_flood(ctx, PartitionFailure::TooSmall);
                        return;
                    }
                    self.cycindex = Some(0);
                    self.is_head = true;
                    self.head_act(ctx);
                }
            }
        }
    }

    fn rot_complete_check(&mut self, ctx: &mut Context<'_, C::Wire>) {
        if self.rot_pending != 0 || self.rot_key.is_none() {
            return;
        }
        if self.rot_initiator {
            let target =
                self.rot_resume_target.expect("initiator saved its old successor as resume target");
            ctx.send(target, C::encode(DraMsg::Resume));
            self.rot_initiator = false;
        } else if let Some(p) = self.rot_parent {
            let key = self.rot_key.expect("checked above");
            ctx.send(p, C::encode(DraMsg::RotAck { key }));
        }
        // Keep rot_key so late duplicates of this instance are recognized;
        // pending stays 0 and further duplicates are ignored via saturation.
    }

    /// Applies the renumbering `i ← h + j + 1 − i` (plus pointer fixes) to
    /// this node for rotation `(h, j, vj, vh)`.
    fn apply_rotation(&mut self, h: usize, j: usize, vj: NodeId, vh: NodeId) {
        let Some(idx) = self.cycindex else { return };
        if self.id == vj {
            // The pivot's successor becomes the old head (set at initiation
            // for the initiator, but a pivot also receives the flood echoes
            // as duplicates, never re-applying thanks to rot_key).
            return;
        }
        if idx > j && idx <= h {
            let new_idx = h + j + 1 - idx;
            std::mem::swap(&mut self.succ, &mut self.pred);
            if idx == h {
                // Old head: new predecessor is the pivot.
                self.pred = Some(vj);
                if new_idx != h {
                    self.is_head = false;
                    self.awaiting_reply = false;
                }
            }
            if new_idx == h {
                // New head; waits for Resume before acting.
                self.succ = None;
                self.is_head = true;
                self.awaiting_reply = false;
                self.await_resume = true;
            }
            self.cycindex = Some(new_idx);
            let _ = vh; // vh is identified positionally (idx == h)
        }
    }

    fn on_progress(&mut self, ctx: &mut Context<'_, C::Wire>, s: NodeId, pos: usize) {
        self.remove_unused(s);
        match self.cycindex {
            None => {
                // Fresh node: append self, become head.
                self.cycindex = Some(pos + 1);
                self.pred = Some(s);
                self.is_head = true;
                ctx.send(s, C::encode(DraMsg::FreshAck));
                self.head_act(ctx);
            }
            Some(0) if self.is_leader && self.cycle_size == Some(pos + 1) => {
                // Closing edge: the head at the last position reached the
                // path start. Flood success.
                self.pred = Some(s);
                self.done = true;
                let size = self.cycle_size.expect("leader knows size");
                let tail = self.id;
                self.flood(ctx, DraMsg::Done { tail, head: s, size }, None);
                ctx.halt();
            }
            Some(j) => {
                // Rotation: this node is the pivot v_j.
                let h = pos;
                self.rot_seq += 1;
                let key = (self.id, self.rot_seq);
                self.rot_resume_target = self.succ;
                self.succ = Some(s);
                self.rot_key = Some(key);
                self.rot_parent = None;
                self.rot_initiator = true;
                self.rot_pending = self.part_nbrs.len();
                self.flood(ctx, DraMsg::Rotation { key, h, j, vj: self.id, vh: s }, None);
                // At least the old head s is a partition neighbor, so
                // rot_pending >= 1 here.
            }
        }
    }

    #[allow(clippy::too_many_arguments)] // one parameter per message field
    fn on_rotation(
        &mut self,
        ctx: &mut Context<'_, C::Wire>,
        s: NodeId,
        key: RotKey,
        h: usize,
        j: usize,
        vj: NodeId,
        vh: NodeId,
    ) {
        if self.rot_key == Some(key) {
            // Duplicate: counts as this neighbor's response.
            self.rot_pending = self.rot_pending.saturating_sub(1);
            self.rot_complete_check(ctx);
            return;
        }
        self.rot_key = Some(key);
        self.rot_parent = Some(s);
        self.rot_initiator = false;
        self.apply_rotation(h, j, vj, vh);
        self.rot_pending = self.part_nbrs.len() - 1;
        self.flood(ctx, DraMsg::Rotation { key, h, j, vj, vh }, Some(s));
        self.rot_complete_check(ctx);
    }

    fn on_done(
        &mut self,
        ctx: &mut Context<'_, C::Wire>,
        s: NodeId,
        tail: NodeId,
        head: NodeId,
        size: usize,
    ) {
        if self.done || self.failed.is_some() {
            return;
        }
        self.done = true;
        self.cycle_size = Some(size);
        if self.id == head {
            self.succ = Some(tail);
            self.awaiting_reply = false;
            self.is_head = false;
        }
        self.flood(ctx, DraMsg::Done { tail, head, size }, Some(s));
        ctx.halt();
    }

    fn on_abort(&mut self, ctx: &mut Context<'_, C::Wire>, s: NodeId, reason: u8) {
        if self.done || self.failed.is_some() {
            return;
        }
        self.failed = Some(decode_failure(reason));
        self.flood(ctx, DraMsg::Abort { reason }, Some(s));
        ctx.halt();
    }
}

impl<C: MsgCodec<DraMsg>> Protocol for DraNode<C> {
    type Msg = C::Wire;

    fn init(&mut self, ctx: &mut Context<'_, C::Wire>) {
        if ctx.degree() == 0 {
            // An isolated node can never participate (and would otherwise
            // never be invoked again): fail its 1-node partition component.
            self.failed = Some(PartitionFailure::TooSmall);
            ctx.halt();
            return;
        }
        ctx.send_all(C::encode(DraMsg::Color { color: self.color }));
    }

    fn round(&mut self, ctx: &mut Context<'_, C::Wire>, inbox: Inbox<'_, C::Wire>) {
        if !self.colors_known {
            // Round 1: all Color messages arrive together.
            for (from, msg) in inbox.iter() {
                if let DraMsg::Color { color } = C::decode(msg) {
                    if color == self.color {
                        self.part_nbrs.push(from);
                    }
                }
            }
            self.colors_known = true;
            self.flood_all = self.part_nbrs.len() == ctx.degree();
            if self.part_nbrs.is_empty() {
                // Isolated within its partition: a 1-node component.
                self.failed = Some(PartitionFailure::TooSmall);
                ctx.halt();
                return;
            }
            self.unused = self.part_nbrs.clone();
            self.unused.shuffle(&mut self.rng);
            // Start leader election.
            self.best_root = self.id;
            self.wave_parent = None;
            self.wave_pending = self.part_nbrs.len();
            self.wave_acc = 0;
            self.flood(ctx, DraMsg::Wave { root: self.id }, None);
            return;
        }
        for (from, msg) in inbox.iter() {
            if self.done || self.failed.is_some() {
                break;
            }
            match C::decode(msg) {
                DraMsg::Color { .. } => {}
                DraMsg::Wave { root } => {
                    if root < self.best_root {
                        self.best_root = root;
                        self.wave_parent = Some(from);
                        self.wave_acc = 0;
                        self.wave_pending = self.part_nbrs.len() - 1;
                        self.flood(ctx, DraMsg::Wave { root }, Some(from));
                        self.wave_complete_check(ctx);
                    } else if root == self.best_root {
                        self.wave_pending = self.wave_pending.saturating_sub(1);
                        self.wave_complete_check(ctx);
                    }
                    // root > best_root: stale wave, ignore.
                }
                DraMsg::WaveAck { root, count } => {
                    if root == self.best_root {
                        self.wave_acc += count;
                        self.wave_pending = self.wave_pending.saturating_sub(1);
                        self.wave_complete_check(ctx);
                    }
                }
                DraMsg::Progress { pos } => self.on_progress(ctx, from, pos),
                DraMsg::FreshAck => {
                    self.succ = Some(from);
                    self.awaiting_reply = false;
                    self.is_head = false;
                }
                DraMsg::Rotation { key, h, j, vj, vh } => {
                    self.on_rotation(ctx, from, key, h, j, vj, vh)
                }
                DraMsg::RotAck { key } => {
                    if self.rot_key == Some(key) {
                        self.rot_pending = self.rot_pending.saturating_sub(1);
                        self.rot_complete_check(ctx);
                    }
                }
                DraMsg::Resume => {
                    debug_assert!(self.is_head && self.await_resume);
                    self.await_resume = false;
                    self.head_act(ctx);
                }
                DraMsg::Done { tail, head, size } => self.on_done(ctx, from, tail, head, size),
                DraMsg::Abort { reason } => self.on_abort(ctx, from, reason),
            }
        }
    }

    fn memory_words(&self) -> usize {
        // Unused list + partition neighbor list + O(1) scalars.
        self.unused.len() + self.part_nbrs.len() + 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_sizes_are_constant_words() {
        assert_eq!(DraMsg::Color { color: 1 }.words(), 1);
        assert_eq!(DraMsg::Rotation { key: (1, 2), h: 3, j: 4, vj: 5, vh: 6 }.words(), 6);
        assert_eq!(DraMsg::Done { tail: 0, head: 1, size: 2 }.words(), 3);
    }

    #[test]
    fn failure_codec_roundtrip() {
        for f in [PartitionFailure::TooSmall, PartitionFailure::OutOfEdges] {
            assert_eq!(decode_failure(encode_failure(f)), f);
        }
    }

    #[test]
    fn new_node_defaults() {
        let n: DraNode = DraNode::new(5, 2, 9);
        assert_eq!(n.color, 2);
        assert!(n.cycindex.is_none());
        assert!(!n.is_leader());
        assert!(n.failed.is_none());
    }
}
