//! The **k-machine model** conversion (the paper's §IV extension) —
//! estimated *and* measured.
//!
//! The paper notes that its fully-distributed algorithms "can be used to
//! obtain efficient algorithms in other distributed message-passing models
//! such as the k-machine model \[16\]" (Klauck, Nanongkai, Pandurangan,
//! Robinson, SODA 2015). In the k-machine model, `k` machines are
//! pairwise connected by links of `O(polylog n)` bandwidth per round, and
//! the `n` graph nodes are distributed across machines via the
//! *random-vertex-partition* (RVP).
//!
//! The KNPR **Conversion Theorem** turns any CONGEST algorithm that runs in
//! `T` rounds with `M` total messages — where every node sends at most
//! `Δ'` messages per round — into a k-machine algorithm running in
//! `Õ(M/k² + T·Δ'/k)` rounds whp. This module provides both sides of that
//! claim:
//!
//! * [`RandomVertexPartition`] — the RVP assignment plus its balance
//!   statistics (machines hold `Õ(n/k)` nodes whp);
//! * [`ConversionEstimate`] — the theorem's bound instantiated with
//!   *measured* `T`, `M`, `Δ'` from a [`dhc_congest::Metrics`];
//! * the **k-machine execution backend** —
//!   [`run_dra_kmachine`] / [`run_dhc1_kmachine`] / [`run_dhc2_kmachine`] /
//!   [`run_upcast_kmachine`] execute the unchanged protocols with the
//!   simulator's [machine accounting layer](dhc_congest::machine)
//!   attached: nodes are hosted by `k` machines, intra-machine messages
//!   are free, each directed machine-pair link carries
//!   [`KMachineConfig::link_bandwidth_words`] per k-machine round, and
//!   every CONGEST round dilates into `max(1, ⌈max link load / B⌉)`
//!   k-machine rounds. The protocol outcome, CONGEST metrics, and typed
//!   failures are **bit-identical** to the plain runs (pinned by
//!   `crates/core/tests/kmachine_equivalence.rs`); the returned
//!   [`KMachineReport`] pairs the measured [`MachineMetrics`] with the
//!   [`ConversionEstimate`] for the same run, so the theorem's shape can
//!   be compared against an actual simulated conversion (experiment E11).

use crate::runner::RunOutcome;
use crate::{DhcConfig, DhcError};
use dhc_congest::machine::{MachineMap, MachineMetrics, MachineRoundLog};
use dhc_congest::Metrics;
use dhc_graph::rng::rng_from_seed;
use dhc_graph::{Graph, NodeId};
use rand::Rng;

/// A random assignment of `n` graph nodes to `k` machines.
///
/// # Example
///
/// ```
/// use dhc_core::kmachine::RandomVertexPartition;
///
/// let rvp = RandomVertexPartition::new(1000, 10, 7);
/// assert_eq!(rvp.machine_count(), 10);
/// assert_eq!(rvp.loads().iter().sum::<usize>(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomVertexPartition {
    assignment: Vec<usize>,
    /// Nodes hosted per machine, tallied once at construction —
    /// `balance()` and the per-machine accounting read it in loops.
    loads: Vec<usize>,
    k: usize,
}

impl RandomVertexPartition {
    /// Assigns each of `n` nodes to one of `k` machines uniformly at
    /// random (seeded).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(n: usize, k: usize, seed: u64) -> Self {
        assert!(k > 0, "need at least one machine");
        let mut rng = rng_from_seed(seed);
        let mut loads = vec![0usize; k];
        let assignment: Vec<usize> = (0..n)
            .map(|_| {
                let m = rng.gen_range(0..k);
                loads[m] += 1;
                m
            })
            .collect();
        RandomVertexPartition { assignment, loads, k }
    }

    /// The machine hosting node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn machine_of(&self, v: NodeId) -> usize {
        self.assignment[(v) as usize]
    }

    /// The full `node → machine` assignment.
    pub fn assignments(&self) -> &[usize] {
        &self.assignment
    }

    /// Number of machines `k`.
    pub fn machine_count(&self) -> usize {
        self.k
    }

    /// Nodes hosted per machine (precomputed at construction).
    pub fn loads(&self) -> &[usize] {
        &self.loads
    }

    /// `max load / (n/k)` — the RVP balance factor (close to 1 whp for
    /// `n ≫ k log k`).
    pub fn balance(&self) -> f64 {
        let n = self.assignment.len();
        if n == 0 {
            return 1.0;
        }
        let max = self.loads.iter().copied().max().unwrap_or(0) as f64;
        max / (n as f64 / self.k as f64)
    }
}

/// The KNPR conversion bound instantiated with measured CONGEST costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConversionEstimate {
    /// Measured CONGEST rounds `T`.
    pub congest_rounds: usize,
    /// Measured total messages `M`.
    pub messages: u64,
    /// Measured max per-node sends in one round `Δ'`.
    pub max_node_sends_per_round: usize,
    /// Number of machines `k`.
    pub k: usize,
    /// The bandwidth-balancing term `M/k²`.
    pub volume_term: f64,
    /// The hotspot term `T·Δ'/k`.
    pub hotspot_term: f64,
}

impl ConversionEstimate {
    /// Instantiates the conversion theorem's `Õ(M/k² + T·Δ'/k)` bound from
    /// a measured run.
    ///
    /// The result suppresses the polylog factors, as `Õ` does; it is a
    /// *shape* estimate for comparing algorithms and machine counts, not a
    /// wall-clock prediction.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn from_metrics(metrics: &Metrics, k: usize) -> Self {
        assert!(k > 0, "need at least one machine");
        let kf = k as f64;
        ConversionEstimate {
            congest_rounds: metrics.rounds,
            messages: metrics.messages,
            max_node_sends_per_round: metrics.max_node_sends_per_round,
            k,
            volume_term: metrics.messages as f64 / (kf * kf),
            hotspot_term: metrics.rounds as f64 * metrics.max_node_sends_per_round as f64 / kf,
        }
    }

    /// The combined `Õ`-bound (sum of both terms).
    pub fn round_bound(&self) -> f64 {
        self.volume_term + self.hotspot_term
    }
}

/// Configuration of a k-machine simulation run.
///
/// # Example
///
/// ```
/// use dhc_core::kmachine::KMachineConfig;
///
/// let kcfg = KMachineConfig::new(8).with_link_bandwidth_words(16).with_rvp_seed(5);
/// assert_eq!((kcfg.k, kcfg.link_bandwidth_words, kcfg.rvp_seed), (8, 16, 5));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KMachineConfig {
    /// Number of machines `k`.
    pub k: usize,
    /// Per-directed-machine-link budget in words per k-machine round —
    /// the model's `O(polylog n)` bandwidth, made concrete.
    pub link_bandwidth_words: usize,
    /// Seed of the random vertex partition (independent of the
    /// algorithm's [`DhcConfig::seed`], as the model's RVP is).
    pub rvp_seed: u64,
}

impl KMachineConfig {
    /// A configuration for `k` machines with the default link bandwidth
    /// (8 words ≈ `log n` for the experiment scales) and RVP seed.
    pub fn new(k: usize) -> Self {
        KMachineConfig { k, link_bandwidth_words: 8, rvp_seed: 0x6B6D }
    }

    /// Replaces the per-link word budget.
    pub fn with_link_bandwidth_words(mut self, words: usize) -> Self {
        self.link_bandwidth_words = words;
        self
    }

    /// Replaces the RVP seed.
    pub fn with_rvp_seed(mut self, seed: u64) -> Self {
        self.rvp_seed = seed;
        self
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`DhcError::InvalidConfig`] for out-of-range values.
    pub fn validate(&self) -> Result<(), DhcError> {
        if self.k == 0 {
            return Err(DhcError::InvalidConfig { what: "k must be >= 1" });
        }
        if self.link_bandwidth_words == 0 {
            return Err(DhcError::InvalidConfig { what: "link_bandwidth_words must be >= 1" });
        }
        Ok(())
    }
}

/// Result of a measured k-machine simulation: the machine-level
/// accounting next to the conversion theorem's estimate for the *same*
/// run.
#[derive(Debug, Clone, PartialEq)]
pub struct KMachineReport {
    /// Measured machine-level cost (dilated rounds, per-link loads,
    /// per-machine hosted nodes and volumes).
    pub machine: MachineMetrics,
    /// The `Õ(M/k² + T·Δ'/k)` bound instantiated from the run's CONGEST
    /// metrics.
    pub estimate: ConversionEstimate,
    /// The RVP balance factor of the machine assignment used.
    pub rvp_balance: f64,
    /// Per-phase round logs (Phase 1's parallel classes merged into one
    /// log), retained so tests and experiments can audit the round-level
    /// link loads behind [`machine`](Self::machine).
    pub phase_logs: Vec<MachineRoundLog>,
}

impl KMachineReport {
    /// `measured k-machine rounds / estimate.round_bound()` — the
    /// constant the `Õ` bound hides for this run (∞ if the bound is 0).
    pub fn bound_factor(&self) -> f64 {
        let bound = self.estimate.round_bound();
        if bound == 0.0 {
            f64::INFINITY
        } else {
            self.machine.kmachine_rounds as f64 / bound
        }
    }
}

/// Internal carrier threaded through the algorithm runners when a
/// k-machine simulation is requested: owns the machine assignment and
/// accumulates each protocol phase's [`MachineRoundLog`] into sequential
/// [`MachineMetrics`].
pub(crate) struct KMachineProbe {
    assignment: Vec<usize>,
    k: usize,
    link_bandwidth_words: usize,
    acc: Option<MachineMetrics>,
    logs: Vec<MachineRoundLog>,
}

impl KMachineProbe {
    fn new(rvp: &RandomVertexPartition, link_bandwidth_words: usize) -> Self {
        KMachineProbe {
            assignment: rvp.assignments().to_vec(),
            k: rvp.machine_count(),
            link_bandwidth_words,
            acc: None,
            logs: Vec::new(),
        }
    }

    pub(crate) fn machine_count(&self) -> usize {
        self.k
    }

    pub(crate) fn machine_of(&self, v: NodeId) -> usize {
        self.assignment[(v) as usize]
    }

    /// The map for a whole-graph network (global node ids).
    pub(crate) fn global_map(&self) -> MachineMap {
        MachineMap::new(self.assignment.clone(), self.k)
    }

    /// The map for a partition-class network: local ids through the
    /// class member list (`local → global`).
    pub(crate) fn class_map(&self, members: &[NodeId]) -> MachineMap {
        MachineMap::new(members.iter().map(|&g| self.assignment[(g) as usize]).collect(), self.k)
    }

    /// Test-only: a probe with an explicit assignment (the public path
    /// always derives one from a [`RandomVertexPartition`]).
    #[cfg(test)]
    pub(crate) fn with_assignment(
        assignment: Vec<usize>,
        k: usize,
        link_bandwidth_words: usize,
    ) -> Self {
        KMachineProbe { assignment, k, link_bandwidth_words, acc: None, logs: Vec::new() }
    }

    /// Test-only: the absorbed per-phase logs.
    #[cfg(test)]
    pub(crate) fn logs(&self) -> &[MachineRoundLog] {
        &self.logs
    }

    /// Folds one completed phase's log into the sequential accumulator.
    /// Phases that ran concurrently in simulated time (Phase 1's classes)
    /// must be merged with
    /// [`MachineRoundLog::absorb_parallel`] *before* this call.
    pub(crate) fn absorb_phase_log(&mut self, log: MachineRoundLog) {
        let metrics = log.finalize(self.link_bandwidth_words);
        match &mut self.acc {
            Some(acc) => acc.merge_sequential(&metrics),
            None => self.acc = Some(metrics),
        }
        self.logs.push(log);
    }
}

/// Shared implementation of the `run_*_kmachine` entry points.
fn run_kmachine(
    graph: &Graph,
    cfg: &DhcConfig,
    kcfg: &KMachineConfig,
    run: impl FnOnce(&Graph, &DhcConfig, Option<&mut KMachineProbe>) -> Result<RunOutcome, DhcError>,
) -> Result<(RunOutcome, KMachineReport), DhcError> {
    kcfg.validate()?;
    let rvp = RandomVertexPartition::new(graph.node_count(), kcfg.k, kcfg.rvp_seed);
    let mut probe = KMachineProbe::new(&rvp, kcfg.link_bandwidth_words);
    // The k-machine wrapper gets its own root span; the wrapped
    // algorithm opens its usual `run` root alongside, so the JSONL
    // stream shows both the conversion and the underlying execution.
    let mut km_span = dhc_congest::Span::root(
        cfg.collector.as_ref(),
        "kmachine",
        format!("kmachine k={} n={}", kcfg.k, graph.node_count()),
    );
    let outcome = run(graph, cfg, Some(&mut probe))?;
    km_span.add(outcome.metrics.rounds as u64, outcome.metrics.messages, outcome.metrics.words);
    drop(km_span);
    let estimate = ConversionEstimate::from_metrics(&outcome.metrics, kcfg.k);
    let KMachineProbe { acc, logs, .. } = probe;
    let mut machine =
        acc.unwrap_or_else(|| MachineRoundLog::empty(kcfg.k).finalize(kcfg.link_bandwidth_words));
    machine.machine_nodes = rvp.loads().to_vec();
    Ok((
        outcome,
        KMachineReport { machine, estimate, rvp_balance: rvp.balance(), phase_logs: logs },
    ))
}

/// Runs the plain **DRA** under k-machine semantics: same outcome and
/// CONGEST metrics as [`crate::run_dra`], plus the measured machine-level
/// accounting.
///
/// # Errors
///
/// Exactly [`crate::run_dra`]'s errors, plus
/// [`DhcError::InvalidConfig`] for an invalid [`KMachineConfig`].
pub fn run_dra_kmachine(
    graph: &Graph,
    cfg: &DhcConfig,
    kcfg: &KMachineConfig,
) -> Result<(RunOutcome, KMachineReport), DhcError> {
    run_kmachine(graph, cfg, kcfg, crate::runner::run_dra_with)
}

/// Runs **DHC1** under k-machine semantics (see [`run_dra_kmachine`]).
///
/// # Errors
///
/// Exactly [`crate::run_dhc1`]'s errors, plus
/// [`DhcError::InvalidConfig`] for an invalid [`KMachineConfig`].
pub fn run_dhc1_kmachine(
    graph: &Graph,
    cfg: &DhcConfig,
    kcfg: &KMachineConfig,
) -> Result<(RunOutcome, KMachineReport), DhcError> {
    run_kmachine(graph, cfg, kcfg, crate::dhc1::run)
}

/// Runs **DHC2** under k-machine semantics (see [`run_dra_kmachine`]).
///
/// # Errors
///
/// Exactly [`crate::run_dhc2`]'s errors, plus
/// [`DhcError::InvalidConfig`] for an invalid [`KMachineConfig`].
pub fn run_dhc2_kmachine(
    graph: &Graph,
    cfg: &DhcConfig,
    kcfg: &KMachineConfig,
) -> Result<(RunOutcome, KMachineReport), DhcError> {
    run_kmachine(graph, cfg, kcfg, crate::dhc2::run)
}

/// Runs **Upcast** under k-machine semantics (see [`run_dra_kmachine`]).
/// Upcast's root hotspot shows up directly: the links into the root's
/// machine dominate [`MachineMetrics::link_total_words`].
///
/// # Errors
///
/// Exactly [`crate::run_upcast`]'s errors, plus
/// [`DhcError::InvalidConfig`] for an invalid [`KMachineConfig`].
pub fn run_upcast_kmachine(
    graph: &Graph,
    cfg: &DhcConfig,
    kcfg: &KMachineConfig,
) -> Result<(RunOutcome, KMachineReport), DhcError> {
    run_kmachine(graph, cfg, kcfg, |g, c, km| crate::upcast::run(g, c, false, km))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_dhc2, DhcConfig};
    use dhc_graph::{generator, rng::rng_from_seed as graph_rng, thresholds};

    #[test]
    fn rvp_covers_all_nodes() {
        let rvp = RandomVertexPartition::new(500, 7, 1);
        assert_eq!(rvp.loads().iter().sum::<usize>(), 500);
        assert!((0..500).all(|v| rvp.machine_of(v) < 7));
        // The precomputed loads match a fresh tally of the assignment.
        let mut tally = [0usize; 7];
        for &m in rvp.assignments() {
            tally[m] += 1;
        }
        assert_eq!(rvp.loads(), &tally[..]);
    }

    #[test]
    fn rvp_is_balanced_whp() {
        let rvp = RandomVertexPartition::new(100_000, 16, 2);
        assert!(rvp.balance() < 1.1, "balance {}", rvp.balance());
    }

    #[test]
    fn rvp_deterministic() {
        assert_eq!(RandomVertexPartition::new(100, 4, 9), RandomVertexPartition::new(100, 4, 9));
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        RandomVertexPartition::new(10, 0, 0);
    }

    #[test]
    fn kmachine_config_validates() {
        assert!(KMachineConfig::new(4).validate().is_ok());
        assert!(KMachineConfig::new(0).validate().is_err());
        assert!(KMachineConfig::new(4).with_link_bandwidth_words(0).validate().is_err());
    }

    #[test]
    fn conversion_terms_scale_with_k() {
        let m = Metrics {
            rounds: 1000,
            messages: 1_000_000,
            max_node_sends_per_round: 50,
            ..Default::default()
        };
        let e4 = ConversionEstimate::from_metrics(&m, 4);
        let e16 = ConversionEstimate::from_metrics(&m, 16);
        assert!(e16.round_bound() < e4.round_bound());
        assert!((e4.volume_term - 62_500.0).abs() < 1e-9);
        assert!((e4.hotspot_term - 12_500.0).abs() < 1e-9);
    }

    #[test]
    fn conversion_from_real_dhc2_run() {
        let n = 200;
        let p = thresholds::edge_probability(n, 0.5, 6.0);
        let g = generator::gnp(n, p, &mut graph_rng(70)).unwrap();
        let out = run_dhc2(&g, &DhcConfig::new(71).with_partitions(6)).unwrap();
        let est = ConversionEstimate::from_metrics(&out.metrics, 8);
        assert!(est.max_node_sends_per_round > 0);
        assert!(est.round_bound() > 0.0);
        // More machines, smaller bound.
        let est32 = ConversionEstimate::from_metrics(&out.metrics, 32);
        assert!(est32.round_bound() < est.round_bound());
    }

    #[test]
    fn measured_dhc2_matches_plain_run_and_accounts_machines() {
        let n = 200;
        let p = thresholds::edge_probability(n, 0.5, 6.0);
        let g = generator::gnp(n, p, &mut graph_rng(70)).unwrap();
        let cfg = DhcConfig::new(71).with_partitions(6);
        let plain = run_dhc2(&g, &cfg).unwrap();
        let kcfg = KMachineConfig::new(4).with_rvp_seed(9);
        let (out, report) = run_dhc2_kmachine(&g, &cfg, &kcfg).unwrap();
        // The backend is pure accounting: outcome and metrics unchanged.
        assert_eq!(out.cycle.order(), plain.cycle.order());
        assert_eq!(out.metrics, plain.metrics);
        assert_eq!(out.phases, plain.phases);
        // Machine accounting is present and self-consistent.
        let m = &report.machine;
        assert_eq!(m.k, 4);
        assert_eq!(m.machine_nodes.iter().sum::<usize>(), n);
        assert!(m.kmachine_rounds >= m.congest_rounds);
        assert!(m.cross_words() > 0, "a 4-machine run must cross links");
        assert_eq!(
            m.machine_sent_words.iter().sum::<u64>(),
            m.machine_recv_words.iter().sum::<u64>()
        );
        // Dilated rounds sit within a constant factor of the estimate.
        assert!(report.bound_factor().is_finite());
        // Diagonal links (intra-machine) never carry words.
        for mach in 0..4 {
            assert_eq!(m.link_total(mach, mach), 0);
        }
        // Phase logs: phase 1 + ceil(log2 6) = 3 merge levels.
        assert_eq!(report.phase_logs.len(), out.phases.len());
    }

    #[test]
    fn single_machine_run_is_all_intra() {
        let g = generator::complete(24);
        let cfg = DhcConfig::new(3);
        let (out, report) = run_dra_kmachine(&g, &cfg, &KMachineConfig::new(1)).unwrap();
        assert_eq!(out.cycle.len(), 24);
        assert_eq!(report.machine.cross_words(), 0);
        // Every executed round costs exactly the barrier round.
        assert_eq!(report.machine.kmachine_rounds, report.machine.congest_rounds);
        assert_eq!(report.machine.max_dilation, 1);
    }

    #[test]
    fn more_machines_fewer_kmachine_rounds_for_dhc2() {
        let n = 200;
        let p = thresholds::edge_probability(n, 0.5, 6.0);
        let g = generator::gnp(n, p, &mut graph_rng(70)).unwrap();
        let cfg = DhcConfig::new(71).with_partitions(6);
        let kcfg = |k| KMachineConfig::new(k).with_link_bandwidth_words(4).with_rvp_seed(1);
        let (_, r2) = run_dhc2_kmachine(&g, &cfg, &kcfg(2)).unwrap();
        let (_, r8) = run_dhc2_kmachine(&g, &cfg, &kcfg(8)).unwrap();
        assert!(
            r8.machine.kmachine_rounds < r2.machine.kmachine_rounds,
            "k=8 {} !< k=2 {}",
            r8.machine.kmachine_rounds,
            r2.machine.kmachine_rounds
        );
    }
}
