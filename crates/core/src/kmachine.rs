//! The **k-machine model** conversion (the paper's §IV extension).
//!
//! The paper notes that its fully-distributed algorithms "can be used to
//! obtain efficient algorithms in other distributed message-passing models
//! such as the k-machine model \[16\]" (Klauck, Nanongkai, Pandurangan,
//! Robinson, SODA 2015). In the k-machine model, `k` machines are
//! pairwise connected by links of `O(polylog n)` bandwidth per round, and
//! the `n` graph nodes are distributed across machines via the
//! *random-vertex-partition* (RVP).
//!
//! The KNPR **Conversion Theorem** turns any CONGEST algorithm that runs in
//! `T` rounds with `M` total messages — where every node sends at most
//! `Δ'` messages per round — into a k-machine algorithm running in
//! `Õ(M/k² + T·Δ'/k)` rounds whp. This module provides:
//!
//! * [`RandomVertexPartition`] — the RVP assignment plus its balance
//!   statistics (machines hold `Õ(n/k)` nodes whp);
//! * [`ConversionEstimate`] — the theorem's bound instantiated with
//!   *measured* `T`, `M`, `Δ'` from a [`dhc_congest::Metrics`], which is
//!   exactly what the fully-distributed property buys: because DHC2's
//!   per-node communication is balanced, its converted round count is
//!   dominated by `M/k²` rather than a hotspot term.

use dhc_congest::Metrics;
use dhc_graph::rng::rng_from_seed;
use dhc_graph::NodeId;
use rand::Rng;

/// A random assignment of `n` graph nodes to `k` machines.
///
/// # Example
///
/// ```
/// use dhc_core::kmachine::RandomVertexPartition;
///
/// let rvp = RandomVertexPartition::new(1000, 10, 7);
/// assert_eq!(rvp.machine_count(), 10);
/// assert_eq!(rvp.loads().iter().sum::<usize>(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomVertexPartition {
    assignment: Vec<usize>,
    k: usize,
}

impl RandomVertexPartition {
    /// Assigns each of `n` nodes to one of `k` machines uniformly at
    /// random (seeded).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(n: usize, k: usize, seed: u64) -> Self {
        assert!(k > 0, "need at least one machine");
        let mut rng = rng_from_seed(seed);
        let assignment = (0..n).map(|_| rng.gen_range(0..k)).collect();
        RandomVertexPartition { assignment, k }
    }

    /// The machine hosting node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn machine_of(&self, v: NodeId) -> usize {
        self.assignment[v]
    }

    /// Number of machines `k`.
    pub fn machine_count(&self) -> usize {
        self.k
    }

    /// Nodes hosted per machine.
    pub fn loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.k];
        for &m in &self.assignment {
            loads[m] += 1;
        }
        loads
    }

    /// `max load / (n/k)` — the RVP balance factor (close to 1 whp for
    /// `n ≫ k log k`).
    pub fn balance(&self) -> f64 {
        let n = self.assignment.len();
        if n == 0 {
            return 1.0;
        }
        let max = self.loads().into_iter().max().unwrap_or(0) as f64;
        max / (n as f64 / self.k as f64)
    }
}

/// The KNPR conversion bound instantiated with measured CONGEST costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConversionEstimate {
    /// Measured CONGEST rounds `T`.
    pub congest_rounds: usize,
    /// Measured total messages `M`.
    pub messages: u64,
    /// Measured max per-node sends in one round `Δ'`.
    pub max_node_sends_per_round: usize,
    /// Number of machines `k`.
    pub k: usize,
    /// The bandwidth-balancing term `M/k²`.
    pub volume_term: f64,
    /// The hotspot term `T·Δ'/k`.
    pub hotspot_term: f64,
}

impl ConversionEstimate {
    /// Instantiates the conversion theorem's `Õ(M/k² + T·Δ'/k)` bound from
    /// a measured run.
    ///
    /// The result suppresses the polylog factors, as `Õ` does; it is a
    /// *shape* estimate for comparing algorithms and machine counts, not a
    /// wall-clock prediction.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn from_metrics(metrics: &Metrics, k: usize) -> Self {
        assert!(k > 0, "need at least one machine");
        let kf = k as f64;
        ConversionEstimate {
            congest_rounds: metrics.rounds,
            messages: metrics.messages,
            max_node_sends_per_round: metrics.max_node_sends_per_round,
            k,
            volume_term: metrics.messages as f64 / (kf * kf),
            hotspot_term: metrics.rounds as f64 * metrics.max_node_sends_per_round as f64 / kf,
        }
    }

    /// The combined `Õ`-bound (sum of both terms).
    pub fn round_bound(&self) -> f64 {
        self.volume_term + self.hotspot_term
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_dhc2, DhcConfig};
    use dhc_graph::{generator, rng::rng_from_seed as graph_rng, thresholds};

    #[test]
    fn rvp_covers_all_nodes() {
        let rvp = RandomVertexPartition::new(500, 7, 1);
        assert_eq!(rvp.loads().iter().sum::<usize>(), 500);
        assert!((0..500).all(|v| rvp.machine_of(v) < 7));
    }

    #[test]
    fn rvp_is_balanced_whp() {
        let rvp = RandomVertexPartition::new(100_000, 16, 2);
        assert!(rvp.balance() < 1.1, "balance {}", rvp.balance());
    }

    #[test]
    fn rvp_deterministic() {
        assert_eq!(RandomVertexPartition::new(100, 4, 9), RandomVertexPartition::new(100, 4, 9));
    }

    #[test]
    #[should_panic(expected = "at least one machine")]
    fn zero_machines_rejected() {
        RandomVertexPartition::new(10, 0, 0);
    }

    #[test]
    fn conversion_terms_scale_with_k() {
        let m = Metrics {
            rounds: 1000,
            messages: 1_000_000,
            max_node_sends_per_round: 50,
            ..Default::default()
        };
        let e4 = ConversionEstimate::from_metrics(&m, 4);
        let e16 = ConversionEstimate::from_metrics(&m, 16);
        assert!(e16.round_bound() < e4.round_bound());
        assert!((e4.volume_term - 62_500.0).abs() < 1e-9);
        assert!((e4.hotspot_term - 12_500.0).abs() < 1e-9);
    }

    #[test]
    fn conversion_from_real_dhc2_run() {
        let n = 200;
        let p = thresholds::edge_probability(n, 0.5, 6.0);
        let g = generator::gnp(n, p, &mut graph_rng(70)).unwrap();
        let out = run_dhc2(&g, &DhcConfig::new(71).with_partitions(6)).unwrap();
        let est = ConversionEstimate::from_metrics(&out.metrics, 8);
        assert!(est.max_node_sends_per_round > 0);
        assert!(est.round_bound() > 0.0);
        // More machines, smaller bound.
        let est32 = ConversionEstimate::from_metrics(&out.metrics, 32);
        assert!(est32.round_bound() < est.round_bound());
    }
}
