//! **DHC2** (the paper's Algorithm 3): Phase-1 partition DRA followed by
//! `⌈log₂ k⌉` parallel **merge levels**.
//!
//! After Phase 1 there are `k = n^{1-δ}` vertex-disjoint subcycles, indexed
//! by color. At each level, cycles of colors `(2t, 2t+1)` form a pair; the
//! even ("active") cycle finds a **bridge** to its partner — a pair of
//! vertex-disjoint cross edges `(v, w)` and `(succ v, x)` with
//! `x ∈ {succ w, pred w}` — splices the two cycles by replacing one cycle
//! edge on each side with the cross edges, renumbers, and both cycles adopt
//! color `⌊color/2⌋`. A color left without a partner skips the level.
//!
//! ## Distributed realization (one CONGEST protocol per level)
//!
//! 1. **Color exchange** (1 round): neighbors learn each other's current
//!    colors.
//! 2. **Bridge discovery**: every passive node `w` sends
//!    `(succ w, pred w, idx w, size)` to its active-colored neighbors; every
//!    active node `u` pipelines its partner-colored neighbor ids to its
//!    cycle predecessor `v`. Node `v` then knows, for each partner neighbor
//!    `w`, whether `succ w` or `pred w` is adjacent to `u = succ v` — i.e.
//!    whether `((v,w),(u,x))` is a bridge. This realizes the paper's
//!    `verify`/`verified` exchange with explicit CONGEST-size messages.
//! 3. **Candidate selection**: the active cycle's coordinator (its
//!    `cycindex`-0 node) floods a collect request over the cycle's color
//!    class; the echo aggregates the minimum candidate (the paper's
//!    "smallest bridge" rule).
//! 4. **Decision broadcast**: the coordinator floods the chosen bridge and
//!    both cycle sizes over the union of the two color classes; every node
//!    locally recomputes its index, successor/predecessor, size, and new
//!    color (the paper's `Renumbering` + `color ← ⌈color/2⌉`).
//!
//! Levels are separated by a global barrier (one protocol execution per
//! level), which the paper's synchronous phase structure assumes.

use crate::kmachine::KMachineProbe;
use crate::output::pairs_from_links;
use crate::runner::{draw_colors, run_phase1, PhaseBreakdown, RunOutcome};
use crate::{cycle_from_incident_pairs, DhcConfig, DhcError};
use dhc_congest::{
    Context, EngineScratch, EnumCodec, Inbox, Metrics, MsgCodec, Network, NodeId, PackedCodec,
    PackedMsg, PackedPayload, Payload, Protocol, SimError, Span,
};
use dhc_graph::{Graph, Partition};
use std::collections::{HashMap, HashSet};

/// Which of the partner's cycle edges the bridge replaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum Case {
    /// Replace `(w, succ w)`; cross edges `(v, w)` and `(succ v, succ w)`.
    /// The partner cycle is traversed reversed in the merged cycle.
    SuccSide,
    /// Replace `(pred w, w)`; cross edges `(v, w)` and `(succ v, pred w)`.
    /// The partner cycle keeps its orientation.
    PredSide,
}

/// A bridge candidate, generated at the active-side node `v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Candidate {
    v_id: NodeId,
    w_id: NodeId,
    u_id: NodeId,
    x_id: NodeId,
    v_idx: usize,
    w_idx: usize,
    s2: usize,
    case: Case,
}

impl Candidate {
    /// Total order for the "smallest bridge" rule.
    fn key(&self) -> (NodeId, NodeId, u8) {
        (self.v_id, self.w_id, if self.case == Case::SuccSide { 0 } else { 1 })
    }
}

fn min_cand(a: Option<Candidate>, b: Option<Candidate>) -> Option<Candidate> {
    match (a, b) {
        (None, x) | (x, None) => x,
        (Some(x), Some(y)) => Some(if x.key() <= y.key() { x } else { y }),
    }
}

/// The chosen bridge plus everything needed for local renumbering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Decision {
    case: Case,
    v_idx: usize,
    w_idx: usize,
    s1: usize,
    s2: usize,
    v_id: NodeId,
    w_id: NodeId,
    u_id: NodeId,
    x_id: NodeId,
}

/// One node's cycle bookkeeping between levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CycleState {
    pub color: u32,
    pub idx: usize,
    pub succ: NodeId,
    pub pred: NodeId,
    pub size: usize,
}

/// Applies the splice to one node's state. `active_side` says whether the
/// node belongs to the even-colored (active) cycle.
pub(crate) fn apply_decision(st: &mut CycleState, d: &Decision, active_side: bool) {
    let u_idx = (d.v_idx + 1) % d.s1;
    if active_side {
        // Cycle 1 keeps orientation; reindex so u sits at 0 and v at s1-1.
        st.idx = (st.idx + d.s1 - u_idx) % d.s1;
        if st.idx == d.s1 - 1 {
            // This is v: its successor becomes w.
            st.succ = d.w_id;
        }
        if st.idx == 0 {
            // This is u: its predecessor becomes x.
            st.pred = d.x_id;
        }
    } else {
        match d.case {
            Case::SuccSide => {
                // Cycle 2 reversed: w at s1, then pred-direction.
                let old_idx = st.idx;
                st.idx = d.s1 + ((d.w_idx + d.s2 - old_idx) % d.s2);
                std::mem::swap(&mut st.succ, &mut st.pred);
                if old_idx == d.w_idx {
                    st.pred = d.v_id;
                }
                if old_idx == (d.w_idx + 1) % d.s2 {
                    // This is x = succ(w): its (post-swap) successor is u.
                    st.succ = d.u_id;
                }
            }
            Case::PredSide => {
                // Cycle 2 keeps orientation: w at s1, forward.
                let old_idx = st.idx;
                st.idx = d.s1 + ((old_idx + d.s2 - d.w_idx) % d.s2);
                if old_idx == d.w_idx {
                    st.pred = d.v_id;
                }
                if old_idx == (d.w_idx + d.s2 - 1) % d.s2 {
                    // This is x = pred(w): its successor is u.
                    st.succ = d.u_id;
                }
            }
        }
    }
    st.size = d.s1 + d.s2;
    st.color /= 2;
}

/// Messages of one merge level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum MergeMsg {
    /// Current color announcement (round 1).
    Color { color: u32 },
    /// Passive node → active neighbors: cycle bookkeeping needed to test
    /// bridges (the paper's `verified` reply, batched).
    SuccPred { succ: NodeId, pred: NodeId, idx: usize, size: usize },
    /// Pipelined item: one partner-colored neighbor id of the sender
    /// (sent from `u` to its cycle predecessor `v`).
    NbrItem { x: NodeId },
    /// End of the pipelined neighbor list.
    NbrEnd,
    /// Collect-wave flood over the active color class.
    CollectReq,
    /// Collect-wave echo carrying the subtree's best candidate.
    CollectReply { best: Option<Candidate> },
    /// The chosen bridge, flooded over both color classes.
    Decision(Decision),
    /// No bridge exists for this pair: abort flood.
    NoBridge,
}

impl Payload for MergeMsg {
    fn words(&self) -> usize {
        match self {
            MergeMsg::Color { .. } | MergeMsg::NbrItem { .. } | MergeMsg::NbrEnd => 1,
            MergeMsg::CollectReq | MergeMsg::NoBridge => 1,
            MergeMsg::SuccPred { .. } => 4,
            MergeMsg::CollectReply { .. } => 9,
            MergeMsg::Decision(_) => 9,
        }
    }
}

/// The merge level's packed wire form: 9 `u32` slots (a bridge decision is
/// four node ids, two indices, two sizes, and a case), 40 bytes inline
/// versus 56 for the padded enum. The bridge case rides in the tag;
/// logical [`words`](Payload::words) are preserved exactly — a
/// `CollectReply` is 9 CONGEST words whether or not a candidate is inside.
impl PackedPayload for MergeMsg {
    type Wire = PackedMsg<9>;

    fn pack(&self) -> PackedMsg<9> {
        match *self {
            MergeMsg::Color { color } => PackedMsg::new(0, &[color]),
            MergeMsg::SuccPred { succ, pred, idx, size } => {
                PackedMsg::new(1, &[succ, pred, idx as u32, size as u32])
            }
            MergeMsg::NbrItem { x } => PackedMsg::new(2, &[x]),
            MergeMsg::NbrEnd => PackedMsg::new(3, &[0]),
            MergeMsg::CollectReq => PackedMsg::new(4, &[0]),
            MergeMsg::NoBridge => PackedMsg::new(5, &[0]),
            MergeMsg::CollectReply { best: None } => PackedMsg::new(6, &[0; 9]),
            MergeMsg::CollectReply { best: Some(c) } => PackedMsg::new(
                if c.case == Case::SuccSide { 7 } else { 8 },
                &[
                    c.v_id,
                    c.w_id,
                    c.u_id,
                    c.x_id,
                    c.v_idx as u32,
                    c.w_idx as u32,
                    c.s2 as u32,
                    0,
                    0,
                ],
            ),
            MergeMsg::Decision(d) => PackedMsg::new(
                if d.case == Case::SuccSide { 9 } else { 10 },
                &[
                    d.v_id,
                    d.w_id,
                    d.u_id,
                    d.x_id,
                    d.v_idx as u32,
                    d.w_idx as u32,
                    d.s1 as u32,
                    d.s2 as u32,
                    0,
                ],
            ),
        }
    }

    fn unpack(m: &PackedMsg<9>) -> Self {
        let w = m.payload();
        match m.tag {
            0 => MergeMsg::Color { color: w[0] },
            1 => MergeMsg::SuccPred {
                succ: w[0],
                pred: w[1],
                idx: w[2] as usize,
                size: w[3] as usize,
            },
            2 => MergeMsg::NbrItem { x: w[0] },
            3 => MergeMsg::NbrEnd,
            4 => MergeMsg::CollectReq,
            5 => MergeMsg::NoBridge,
            6 => MergeMsg::CollectReply { best: None },
            t @ (7 | 8) => MergeMsg::CollectReply {
                best: Some(Candidate {
                    v_id: w[0],
                    w_id: w[1],
                    u_id: w[2],
                    x_id: w[3],
                    v_idx: w[4] as usize,
                    w_idx: w[5] as usize,
                    s2: w[6] as usize,
                    case: if t == 7 { Case::SuccSide } else { Case::PredSide },
                }),
            },
            t @ (9 | 10) => MergeMsg::Decision(Decision {
                v_id: w[0],
                w_id: w[1],
                u_id: w[2],
                x_id: w[3],
                v_idx: w[4] as usize,
                w_idx: w[5] as usize,
                s1: w[6] as usize,
                s2: w[7] as usize,
                case: if t == 9 { Case::SuccSide } else { Case::PredSide },
            }),
            t => panic!("unknown MergeMsg tag {t}"),
        }
    }
}

/// Role of a node at this level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Role {
    /// Even color with an existing partner color: initiates the merge.
    Active,
    /// Odd color: answers queries, receives the decision.
    Passive,
    /// Even color without a partner this level: skips (color halves).
    Leftover,
}

/// Per-node protocol state for one merge level.
///
/// Generic over the wire [`MsgCodec`]: [`EnumCodec`] (default) exchanges
/// the [`MergeMsg`] enum itself, [`PackedCodec`](dhc_congest::PackedCodec)
/// the 9-word [`PackedMsg`] form. Both execute identically — the codec
/// only chooses the in-memory representation in flight.
#[derive(Debug)]
pub(crate) struct MergeNode<C: MsgCodec<MergeMsg> = EnumCodec> {
    _codec: std::marker::PhantomData<C>,
    id: NodeId,
    st: CycleState,
    role: Role,
    colors_known: bool,

    same_nbrs: Vec<NodeId>,
    partner_nbrs: Vec<NodeId>,
    relay_nbrs: Vec<NodeId>,
    /// Whether the relay set (both paired color classes) covers the whole
    /// neighborhood — always true at the last merge level — so the
    /// decision/abort floods can ride the O(1) broadcast fabric.
    relay_all: bool,

    /// As `u`: queue of partner-neighbor ids to pipeline to `pred`.
    send_queue: Vec<NodeId>,
    sent_end: bool,
    /// As `v`: the successor's partner-neighbor set.
    uset: HashSet<NodeId>,
    nbr_end_received: bool,
    /// As `v`: partner neighbors' bookkeeping: (w, succ, pred, idx, size).
    succpred: Vec<(NodeId, NodeId, NodeId, usize, usize)>,

    cand: Option<Candidate>,
    cand_ready: bool,

    // Collect wave (active color class only).
    collect_seen: bool,
    collect_parent: Option<NodeId>,
    collect_pending: usize,
    collect_replied: bool,
    best: Option<Candidate>,

    /// Set once this node applied the level's decision (or skipped).
    pub decided: bool,
    /// Set when the pair had no bridge.
    pub no_bridge: bool,
}

impl<C: MsgCodec<MergeMsg>> MergeNode<C> {
    pub(crate) fn new(id: NodeId, st: CycleState, colors_remaining: usize) -> Self {
        let role = if st.color % 2 == 1 {
            Role::Passive
        } else if (st.color as usize + 1) < colors_remaining {
            Role::Active
        } else {
            Role::Leftover
        };
        MergeNode {
            _codec: std::marker::PhantomData,
            id,
            st,
            role,
            colors_known: false,
            same_nbrs: Vec::new(),
            partner_nbrs: Vec::new(),
            relay_nbrs: Vec::new(),
            relay_all: false,
            send_queue: Vec::new(),
            sent_end: false,
            uset: HashSet::new(),
            nbr_end_received: false,
            succpred: Vec::new(),
            cand: None,
            cand_ready: false,
            collect_seen: false,
            collect_parent: None,
            collect_pending: 0,
            collect_replied: false,
            best: None,
            decided: false,
            no_bridge: false,
        }
    }

    /// Final state after the level (valid once `decided` or leftover).
    pub(crate) fn state(&self) -> CycleState {
        self.st
    }

    fn is_coordinator(&self) -> bool {
        self.role == Role::Active && self.st.idx == 0
    }

    /// Sends up to 4 queued neighbor-list items (+ terminator) per round.
    fn pump_pipeline(&mut self, ctx: &mut Context<'_, C::Wire>) {
        if self.role != Role::Active || self.sent_end {
            return;
        }
        let to = self.st.pred;
        for _ in 0..4 {
            match self.send_queue.pop() {
                Some(x) => ctx.send(to, C::encode(MergeMsg::NbrItem { x })),
                None => {
                    ctx.send(to, C::encode(MergeMsg::NbrEnd));
                    self.sent_end = true;
                    return;
                }
            }
        }
        ctx.wake_in(1);
    }

    /// Computes this node's best local bridge candidate once all inputs
    /// arrived.
    fn finalize_candidate(&mut self, ctx: &mut Context<'_, C::Wire>) {
        if self.role != Role::Active || self.cand_ready || !self.nbr_end_received {
            return;
        }
        let u_id = self.st.succ;
        for &(w, sw, pw, w_idx, s2) in &self.succpred {
            let cand = if self.uset.contains(&sw) {
                Some(Candidate {
                    v_id: self.id,
                    w_id: w,
                    u_id,
                    x_id: sw,
                    v_idx: self.st.idx,
                    w_idx,
                    s2,
                    case: Case::SuccSide,
                })
            } else if self.uset.contains(&pw) {
                Some(Candidate {
                    v_id: self.id,
                    w_id: w,
                    u_id,
                    x_id: pw,
                    v_idx: self.st.idx,
                    w_idx,
                    s2,
                    case: Case::PredSide,
                })
            } else {
                None
            };
            self.cand = min_cand(self.cand, cand);
        }
        ctx.charge_compute(self.succpred.len() as u64);
        self.cand_ready = true;
        self.best = min_cand(self.best, self.cand);
    }

    /// Collect-wave completion check (active color class).
    fn collect_check(&mut self, ctx: &mut Context<'_, C::Wire>) {
        if self.role != Role::Active
            || !self.collect_seen
            || !self.cand_ready
            || self.collect_replied
            || self.collect_pending != 0
        {
            return;
        }
        self.collect_replied = true;
        match self.collect_parent {
            Some(p) => ctx.send(p, C::encode(MergeMsg::CollectReply { best: self.best })),
            None => {
                // Coordinator: decide.
                debug_assert!(self.is_coordinator());
                match self.best {
                    None => {
                        self.no_bridge = true;
                        self.relay_flood(ctx, MergeMsg::NoBridge, None);
                        ctx.halt();
                    }
                    Some(c) => {
                        let d = Decision {
                            case: c.case,
                            v_idx: c.v_idx,
                            w_idx: c.w_idx,
                            s1: self.st.size,
                            s2: c.s2,
                            v_id: c.v_id,
                            w_id: c.w_id,
                            u_id: c.u_id,
                            x_id: c.x_id,
                        };
                        apply_decision(&mut self.st, &d, true);
                        self.decided = true;
                        self.relay_flood(ctx, MergeMsg::Decision(d), None);
                        ctx.halt();
                    }
                }
            }
        }
    }

    /// Floods `msg` over the two paired color classes, optionally
    /// skipping the neighbor it arrived from. Broadcasts when the relay
    /// set is the whole neighborhood (observationally identical).
    fn relay_flood(&self, ctx: &mut Context<'_, C::Wire>, msg: MergeMsg, skip: Option<NodeId>) {
        let wire = C::encode(msg);
        if self.relay_all {
            ctx.flood_except(skip, wire);
        } else {
            for &to in &self.relay_nbrs {
                if Some(to) != skip {
                    ctx.send(to, wire.clone());
                }
            }
        }
    }

    fn on_decision(&mut self, ctx: &mut Context<'_, C::Wire>, from: NodeId, d: Decision) {
        if self.decided || self.no_bridge {
            return;
        }
        apply_decision(&mut self.st, &d, self.role == Role::Active);
        self.decided = true;
        self.relay_flood(ctx, MergeMsg::Decision(d), Some(from));
        ctx.halt();
    }

    fn on_no_bridge(&mut self, ctx: &mut Context<'_, C::Wire>, from: NodeId) {
        if self.decided || self.no_bridge {
            return;
        }
        self.no_bridge = true;
        self.relay_flood(ctx, MergeMsg::NoBridge, Some(from));
        ctx.halt();
    }
}

impl<C: MsgCodec<MergeMsg>> Protocol for MergeNode<C> {
    type Msg = C::Wire;

    fn init(&mut self, ctx: &mut Context<'_, C::Wire>) {
        if ctx.degree() == 0 {
            // Unreachable after a successful Phase 1; guards degenerate use.
            self.no_bridge = true;
            ctx.halt();
            return;
        }
        ctx.send_all(C::encode(MergeMsg::Color { color: self.st.color }));
    }

    fn round(&mut self, ctx: &mut Context<'_, C::Wire>, inbox: Inbox<'_, C::Wire>) {
        if !self.colors_known {
            self.colors_known = true;
            let (active_c, partner_c) = match self.role {
                Role::Active => (self.st.color, self.st.color + 1),
                Role::Passive => (self.st.color - 1, self.st.color),
                Role::Leftover => {
                    // Skips the level entirely; its color halves.
                    self.st.color /= 2;
                    self.decided = true;
                    ctx.halt();
                    return;
                }
            };
            for (from, wire) in inbox.iter() {
                if let MergeMsg::Color { color } = C::decode(wire) {
                    if color == self.st.color {
                        self.same_nbrs.push(from);
                    }
                    let other = if self.role == Role::Active { partner_c } else { active_c };
                    if color == other {
                        self.partner_nbrs.push(from);
                    }
                    if color == active_c || color == partner_c {
                        self.relay_nbrs.push(from);
                    }
                }
            }
            self.relay_all = self.relay_nbrs.len() == ctx.degree();
            match self.role {
                Role::Active => {
                    // As u: pipeline partner-neighbor ids to pred.
                    self.send_queue = self.partner_nbrs.clone();
                    self.pump_pipeline(ctx);
                    if self.is_coordinator() {
                        self.collect_seen = true;
                        self.collect_parent = None;
                        self.collect_pending = self.same_nbrs.len();
                        let nbrs = self.same_nbrs.clone();
                        for to in nbrs {
                            ctx.send(to, C::encode(MergeMsg::CollectReq));
                        }
                        // A coordinator with no same-color neighbors would be
                        // a 1-node cycle, which Phase 1 excludes (size >= 3).
                    }
                }
                Role::Passive => {
                    // Answer with cycle bookkeeping (the `verified` data).
                    let wire = C::encode(MergeMsg::SuccPred {
                        succ: self.st.succ,
                        pred: self.st.pred,
                        idx: self.st.idx,
                        size: self.st.size,
                    });
                    let nbrs = self.partner_nbrs.clone();
                    for to in nbrs {
                        ctx.send(to, wire.clone());
                    }
                }
                Role::Leftover => unreachable!("handled above"),
            }
            return;
        }

        for (from, wire) in inbox.iter() {
            if self.decided || self.no_bridge {
                break;
            }
            match C::decode(wire) {
                MergeMsg::Color { .. } => {}
                MergeMsg::SuccPred { succ, pred, idx, size } => {
                    self.succpred.push((from, succ, pred, idx, size));
                }
                MergeMsg::NbrItem { x } => {
                    self.uset.insert(x);
                }
                MergeMsg::NbrEnd => {
                    self.nbr_end_received = true;
                }
                MergeMsg::CollectReq => {
                    if self.collect_seen {
                        self.collect_pending = self.collect_pending.saturating_sub(1);
                    } else {
                        self.collect_seen = true;
                        self.collect_parent = Some(from);
                        self.collect_pending = self.same_nbrs.len() - 1;
                        let nbrs = self.same_nbrs.clone();
                        for to in nbrs {
                            if to != from {
                                ctx.send(to, C::encode(MergeMsg::CollectReq));
                            }
                        }
                    }
                }
                MergeMsg::CollectReply { best } => {
                    self.best = min_cand(self.best, best);
                    self.collect_pending = self.collect_pending.saturating_sub(1);
                }
                MergeMsg::Decision(d) => {
                    self.on_decision(ctx, from, d);
                }
                MergeMsg::NoBridge => {
                    self.on_no_bridge(ctx, from);
                }
            }
        }
        if self.decided || self.no_bridge {
            return;
        }
        self.pump_pipeline(ctx);
        self.finalize_candidate(ctx);
        self.collect_check(ctx);
    }

    fn memory_words(&self) -> usize {
        self.same_nbrs.len()
            + self.partner_nbrs.len()
            + self.relay_nbrs.len()
            + self.send_queue.len()
            + self.uset.len()
            + 5 * self.succpred.len()
            + 32
    }
}

/// Runs the full DHC2 algorithm, optionally instrumented with the
/// k-machine accounting probe (see [`crate::kmachine`]).
pub(crate) fn run(
    graph: &Graph,
    cfg: &DhcConfig,
    km: Option<&mut KMachineProbe>,
) -> Result<RunOutcome, DhcError> {
    cfg.validate()?;
    let n = graph.node_count();
    if n < 3 {
        return Err(DhcError::GraphTooSmall { n });
    }
    let (partition, _) = draw_colors(n, cfg);
    run_with_colors(graph, cfg, &partition, km)
}

/// Runs DHC2 with an explicit Phase-1 partition (used by tests and
/// experiments that control the coloring).
pub(crate) fn run_with_colors(
    graph: &Graph,
    cfg: &DhcConfig,
    partition: &Partition,
    mut km: Option<&mut KMachineProbe>,
) -> Result<RunOutcome, DhcError> {
    let n = graph.node_count();
    // Compact colors: relabel non-empty classes to 0..k'-1 so pairing works.
    let mut relabel: HashMap<u32, u32> = HashMap::new();
    let mut next = 0u32;
    for class in partition.classes() {
        if !class.is_empty() {
            relabel.insert(partition.color(class[0]), next);
            next += 1;
        }
    }
    let colors: Vec<u32> = (0..n).map(|v| relabel[&partition.color((v) as u32)]).collect();
    let k = next as usize;
    let compacted = Partition::from_colors(colors, k);

    let mut run_span = Span::root(cfg.collector.as_ref(), "run", format!("dhc2 n={n} k={k}"));
    let phase1 = run_phase1(graph, &compacted, cfg, km.as_deref_mut(), &run_span)?;
    let mut metrics = phase1.metrics.clone();
    let mut phases = vec![PhaseBreakdown {
        name: "phase1".to_string(),
        rounds: phase1.metrics.rounds,
        messages: phase1.metrics.messages,
    }];

    let mut states: Vec<CycleState> = phase1
        .states
        .iter()
        .map(|s| CycleState {
            color: s.color,
            idx: s.cycindex,
            succ: s.succ,
            pred: s.pred,
            size: s.cycle_size,
        })
        .collect();

    if cfg.packed_payloads {
        run_merge_levels::<PackedCodec>(
            graph,
            cfg,
            &mut states,
            k,
            &mut metrics,
            &mut phases,
            km,
            &run_span,
        )?;
    } else {
        run_merge_levels::<EnumCodec>(
            graph,
            cfg,
            &mut states,
            k,
            &mut metrics,
            &mut phases,
            km,
            &run_span,
        )?;
    }

    let succ: Vec<Option<NodeId>> = states.iter().map(|s| Some(s.succ)).collect();
    let pred: Vec<Option<NodeId>> = states.iter().map(|s| Some(s.pred)).collect();
    let pairs = pairs_from_links(&succ, &pred)?;
    let cycle = cycle_from_incident_pairs(graph, &pairs)?;
    run_span.add(metrics.rounds as u64, metrics.messages, metrics.words);
    drop(run_span);
    if let Some(col) = &cfg.collector {
        col.flush();
    }
    Ok(RunOutcome { cycle, metrics, phases })
}

/// The `⌈log₂ k⌉` merge levels, monomorphized on the wire codec (the
/// [`DhcConfig::packed_payloads`] dispatch happens once, in
/// [`run_with_colors`]). All levels speak the same wire type, so one
/// buffer set chains through every level's whole-graph network.
#[allow(clippy::too_many_arguments)]
fn run_merge_levels<C: MsgCodec<MergeMsg>>(
    graph: &Graph,
    cfg: &DhcConfig,
    states: &mut [CycleState],
    k: usize,
    metrics: &mut Metrics,
    phases: &mut Vec<PhaseBreakdown>,
    mut km: Option<&mut KMachineProbe>,
    parent: &Span,
) -> Result<(), DhcError> {
    let n = graph.node_count();
    let mut colors_remaining = k;
    let mut level = 0usize;
    let mut merge_scratch: EngineScratch<C::Wire> = EngineScratch::new();
    while colors_remaining > 1 {
        let mut level_span =
            parent.child("merge-level", format!("merge-level-{level} cycles={colors_remaining}"));
        let nodes: Vec<MergeNode<C>> =
            (0..n).map(|v| MergeNode::new((v) as u32, states[v], colors_remaining)).collect();
        let mut net = match km.as_deref() {
            Some(p) => Network::new_with_machines(graph, cfg.sim_config(), nodes, p.global_map())?,
            None => Network::new_with_scratch(graph, cfg.sim_config(), nodes, &mut merge_scratch)?,
        };
        let run_result = net.run();
        let (report, nodes) = net.finish_with_scratch(&mut merge_scratch);
        let level_metrics: Metrics = report.metrics;
        let level_machine_log = report.machine_log;
        match run_result {
            Ok(_) => {}
            Err(SimError::Stalled { .. }) => {
                // A pair with no cross edges at all cannot even deliver the
                // NoBridge flood; report the stuck pair.
                let color = nodes
                    .iter()
                    .find(|nd| !nd.decided && !nd.no_bridge)
                    .map(|nd| nd.state().color & !1)
                    .unwrap_or(0);
                return Err(DhcError::NoBridge { level, color });
            }
            Err(e) => return Err(e.into()),
        }
        if let Some(nd) = nodes.iter().find(|nd| nd.no_bridge) {
            return Err(DhcError::NoBridge { level, color: nd.state().color & !1 });
        }
        for (v, nd) in nodes.iter().enumerate() {
            states[v] = nd.state();
        }
        metrics.merge(&level_metrics);
        if let (Some(p), Some(log)) = (km.as_deref_mut(), level_machine_log) {
            p.absorb_phase_log(log);
        }
        level_span.add(level_metrics.rounds as u64, level_metrics.messages, level_metrics.words);
        drop(level_span);
        phases.push(PhaseBreakdown {
            name: format!("merge-level-{level}"),
            rounds: level_metrics.rounds,
            messages: level_metrics.messages,
        });
        colors_remaining = colors_remaining.div_ceil(2);
        level += 1;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhc_graph::{generator, rng::rng_from_seed, thresholds};
    use proptest::prelude::*;

    #[test]
    fn apply_decision_succ_side_matches_manual_splice() {
        // Cycle 1 (color 0): nodes 0,1,2 with idx 0,1,2 (succ: 0->1->2->0).
        // Cycle 2 (color 1): nodes 3,4,5 with idx 0,1,2 (succ: 3->4->5->3).
        // Bridge: v = node 1 (idx 1), u = succ v = node 2 (idx 2);
        // w = node 4 (idx 1), x = succ w = node 5 (case SuccSide).
        // Cross edges (1,4) and (2,5). New cycle (order by new idx):
        // u=2 (0), 0 (1), v=1 (2), w=4 (3), 3 (4), x=5 (5); closing 5->2.
        let d = Decision {
            case: Case::SuccSide,
            v_idx: 1,
            w_idx: 1,
            s1: 3,
            s2: 3,
            v_id: 1,
            w_id: 4,
            u_id: 2,
            x_id: 5,
        };
        let mk = |color, idx, succ, pred| CycleState { color, idx, succ, pred, size: 3 };
        let mut sts = vec![
            mk(0, 0, 1, 2), // node 0
            mk(0, 1, 2, 0), // node 1 = v
            mk(0, 2, 0, 1), // node 2 = u
            mk(1, 0, 4, 5), // node 3
            mk(1, 1, 5, 3), // node 4 = w
            mk(1, 2, 3, 4), // node 5 = x
        ];
        for (i, st) in sts.iter_mut().enumerate() {
            apply_decision(st, &d, i < 3);
        }
        // New indices.
        assert_eq!(sts[2].idx, 0); // u
        assert_eq!(sts[0].idx, 1);
        assert_eq!(sts[1].idx, 2); // v
        assert_eq!(sts[4].idx, 3); // w
        assert_eq!(sts[3].idx, 4);
        assert_eq!(sts[5].idx, 5); // x
                                   // Pointers around the splice.
        assert_eq!(sts[1].succ, 4); // v -> w
        assert_eq!(sts[4].pred, 1); // w <- v
        assert_eq!(sts[5].succ, 2); // x -> u
        assert_eq!(sts[2].pred, 5); // u <- x
                                    // Cycle 2 interior reversed: node 3 (between w and x in new order).
        assert_eq!(sts[3].succ, 5);
        assert_eq!(sts[3].pred, 4);
        for st in &sts {
            assert_eq!(st.size, 6);
            assert_eq!(st.color, 0);
        }
        // Walk the successor map: must be one 6-cycle with consistent idx.
        let succ: Vec<u32> = sts.iter().map(|s| s.succ).collect();
        let mut seen = [false; 6];
        let mut cur = 0;
        for _ in 0..6 {
            assert!(!seen[cur]);
            seen[cur] = true;
            cur = succ[cur] as usize;
        }
        assert_eq!(cur, 0);
        for (i, st) in sts.iter().enumerate() {
            let next = sts[st.succ as usize].idx;
            assert_eq!(next, (st.idx + 1) % 6, "node {i}");
        }
    }

    #[test]
    fn apply_decision_pred_side_matches_manual_splice() {
        // Same two triangles; bridge with x = pred w = node 3.
        // v = 1, u = 2, w = 4, x = 3. Cross edges (1,4),(2,3).
        // New cycle: u=2(0), 0(1), v=1(2), w=4(3), 5(4), x=3(5); closing 3->2.
        let d = Decision {
            case: Case::PredSide,
            v_idx: 1,
            w_idx: 1,
            s1: 3,
            s2: 3,
            v_id: 1,
            w_id: 4,
            u_id: 2,
            x_id: 3,
        };
        let mk = |color, idx, succ, pred| CycleState { color, idx, succ, pred, size: 3 };
        let mut sts = vec![
            mk(0, 0, 1, 2),
            mk(0, 1, 2, 0),
            mk(0, 2, 0, 1),
            mk(1, 0, 4, 5), // node 3 = x (pred of w)
            mk(1, 1, 5, 3), // node 4 = w
            mk(1, 2, 3, 4), // node 5
        ];
        for (i, st) in sts.iter_mut().enumerate() {
            apply_decision(st, &d, i < 3);
        }
        assert_eq!(sts[4].idx, 3); // w right after v
        assert_eq!(sts[5].idx, 4);
        assert_eq!(sts[3].idx, 5); // x last
        assert_eq!(sts[1].succ, 4); // v -> w
        assert_eq!(sts[4].pred, 1);
        assert_eq!(sts[3].succ, 2); // x -> u
        assert_eq!(sts[2].pred, 3);
        let succ: Vec<u32> = sts.iter().map(|s| s.succ).collect();
        let mut cur = 0;
        let mut seen = [false; 6];
        for _ in 0..6 {
            assert!(!seen[cur]);
            seen[cur] = true;
            cur = succ[cur] as usize;
        }
        assert_eq!(cur, 0);
        for st in &sts {
            let next = sts[st.succ as usize].idx;
            assert_eq!(next, (st.idx + 1) % 6);
        }
    }

    #[test]
    fn candidate_ordering() {
        let c1 = Candidate {
            v_id: 1,
            w_id: 5,
            u_id: 2,
            x_id: 6,
            v_idx: 0,
            w_idx: 0,
            s2: 3,
            case: Case::SuccSide,
        };
        let c2 = Candidate { v_id: 2, ..c1 };
        assert_eq!(min_cand(Some(c1), Some(c2)), Some(c1));
        assert_eq!(min_cand(None, Some(c2)), Some(c2));
        assert_eq!(min_cand(None, None), None);
    }

    #[test]
    fn dhc2_end_to_end_on_dense_random_graph() {
        let n = 256;
        let delta = 0.5;
        let p = thresholds::edge_probability(n, delta, 6.0);
        let g = generator::gnp(n, p, &mut rng_from_seed(20)).unwrap();
        let out = run(&g, &DhcConfig::new(21).with_delta(delta), None).unwrap();
        assert_eq!(out.cycle.len(), n);
        // Phase breakdown: phase1 + ceil(log2 k) levels.
        let k = DhcConfig::new(0).with_delta(delta).partition_count(n);
        let levels = (k as f64).log2().ceil() as usize;
        assert_eq!(out.phases.len(), 1 + levels);
    }

    #[test]
    fn dhc2_single_partition_reduces_to_dra() {
        let n = 96;
        let p = thresholds::edge_probability(n, 1.0, 12.0);
        let g = generator::gnp(n, p, &mut rng_from_seed(22)).unwrap();
        let out = run(&g, &DhcConfig::new(23).with_delta(1.0), None).unwrap();
        assert_eq!(out.cycle.len(), n);
        assert_eq!(out.phases.len(), 1);
    }

    #[test]
    fn dhc2_three_partitions_with_leftover() {
        // k = 3 exercises the leftover path (colors (0,1) pair, 2 waits).
        let n = 192;
        let p = 0.35;
        let g = generator::gnp(n, p, &mut rng_from_seed(24)).unwrap();
        let out = run(&g, &DhcConfig::new(25).with_partitions(3), None).unwrap();
        assert_eq!(out.cycle.len(), n);
        // ceil(log2 3) = 2 levels.
        assert_eq!(out.phases.len(), 3);
    }

    #[test]
    fn dhc2_no_bridge_detected() {
        // Two disjoint cliques with a forced per-clique coloring: Phase 1
        // succeeds per clique, but no cross edges exist, so the merge level
        // cannot find (or even announce the lack of) a bridge.
        let mut edges = Vec::new();
        for u in 0..8 {
            for v in (u + 1)..8 {
                edges.push((u, v));
                edges.push((u + 8, v + 8));
            }
        }
        let g = Graph::from_edges(16, edges).unwrap();
        let colors: Vec<u32> = (0..16).map(|v| if v < 8 { 0 } else { 1 }).collect();
        let partition = Partition::from_colors(colors, 2);
        let err = run_with_colors(&g, &DhcConfig::new(1), &partition, None).unwrap_err();
        assert!(matches!(err, DhcError::NoBridge { level: 0, color: 0 }), "{err:?}");
    }

    #[test]
    fn dhc2_is_deterministic() {
        let n = 128;
        let p = 0.6;
        let g = generator::gnp(n, p, &mut rng_from_seed(30)).unwrap();
        let cfg = DhcConfig::new(32).with_partitions(4);
        let a = run(&g, &cfg, None).unwrap();
        let b = run(&g, &cfg, None).unwrap();
        assert_eq!(a.cycle.order(), b.cycle.order());
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
    }

    #[test]
    fn clustered_explicit_colors_packed_matches_enum() {
        // The e16 operating point in miniature: dense clusters as classes,
        // merge-tree-aligned bridges, and the 9-word packed merge wire
        // pinned bit-for-bit against the enum oracle.
        let (k, s) = (5, 24);
        let p = 8.0 * (s as f64).ln() / (s as f64 - 1.0);
        let (g, colors) =
            generator::clustered(k, s, p.min(1.0), 3.0, &mut rng_from_seed(60)).unwrap();
        let partition = Partition::from_colors(colors, k);
        let base = (61..69)
            .map(DhcConfig::new)
            .find(|cfg| run_with_colors(&g, cfg, &partition, None).is_ok())
            .expect("clustered DHC2 should succeed for at least one of 8 seeds");
        let fat = run_with_colors(&g, &base, &partition, None).unwrap();
        let lean = run_with_colors(&g, &base.clone().with_packed_payloads(true), &partition, None)
            .unwrap();
        assert_eq!(fat.cycle.order(), lean.cycle.order());
        assert_eq!(fat.metrics, lean.metrics);
        assert_eq!(fat.phases, lean.phases);
    }

    proptest! {
        /// Every merge-level message survives the 9-word packed wire form
        /// unchanged, with identical CONGEST word accounting.
        #[test]
        fn merge_msg_packs_losslessly(m in merge_msg_strategy()) {
            let packed = m.pack();
            prop_assert_eq!(packed.words(), m.words());
            prop_assert_eq!(MergeMsg::unpack(&packed), m.clone());
        }
    }

    fn cand_strategy() -> impl Strategy<Value = Candidate> {
        let id = any::<u32>();
        let idx = 0usize..(1usize << 32);
        let case = any::<bool>().prop_map(|b| if b { Case::SuccSide } else { Case::PredSide });
        ((id, id, id, id), (idx.clone(), idx.clone(), idx, case)).prop_map(
            |((v_id, w_id, u_id, x_id), (v_idx, w_idx, s2, case))| Candidate {
                v_id,
                w_id,
                u_id,
                x_id,
                v_idx,
                w_idx,
                s2,
                case,
            },
        )
    }

    fn merge_msg_strategy() -> impl Strategy<Value = MergeMsg> {
        let id = any::<u32>();
        let idx = 0usize..(1usize << 32);
        prop_oneof![
            id.prop_map(|color| MergeMsg::Color { color }),
            (id, id, idx.clone(), idx.clone())
                .prop_map(|(succ, pred, idx, size)| MergeMsg::SuccPred { succ, pred, idx, size }),
            id.prop_map(|x| MergeMsg::NbrItem { x }),
            Just(MergeMsg::NbrEnd),
            Just(MergeMsg::CollectReq),
            Just(MergeMsg::NoBridge),
            prop_oneof![Just(None), cand_strategy().prop_map(Some)]
                .prop_map(|best| MergeMsg::CollectReply { best }),
            (cand_strategy(), idx.clone(), idx).prop_map(|(c, s1, s2)| {
                MergeMsg::Decision(Decision {
                    case: c.case,
                    v_idx: c.v_idx,
                    w_idx: c.w_idx,
                    s1,
                    s2,
                    v_id: c.v_id,
                    w_id: c.w_id,
                    u_id: c.u_id,
                    x_id: c.x_id,
                })
            }),
        ]
    }
}
