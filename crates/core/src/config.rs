//! Algorithm configuration.

use dhc_congest::{Adversary, CollectorHandle, Config as SimConfig, NodeId};

/// Configuration shared by all distributed algorithms in this crate.
///
/// # Example
///
/// ```
/// use dhc_core::DhcConfig;
///
/// let cfg = DhcConfig::new(42).with_delta(0.5).with_max_rounds(500_000);
/// assert_eq!(cfg.seed, 42);
/// assert_eq!(cfg.delta, 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DhcConfig {
    /// Master seed; every node derives its own stream from it.
    pub seed: u64,
    /// The paper's sparsity exponent `δ ∈ (0, 1]`: DHC2 uses
    /// `n^{1-δ}` partitions (`δ = 0.5` reproduces DHC1's `√n`;
    /// `δ = 1` is a single partition, i.e. plain DRA).
    pub delta: f64,
    /// Overrides the partition count directly (takes precedence over
    /// [`delta`](Self::delta) when set).
    pub partitions: Option<usize>,
    /// Hard cap on simulated rounds per protocol phase.
    pub max_rounds: usize,
    /// Per-edge-per-round bandwidth in `Θ(log n)`-bit words. The protocol
    /// messages carry up to ~9 ids, i.e. still `O(log n)` bits; the default
    /// budget of 16 words keeps the CONGEST discipline (constant words per
    /// edge per round) while letting one protocol message fit in one round.
    pub bandwidth_words: usize,
    /// Upcast: each node samples `ceil(sample_factor · ln n)` incident
    /// edges (the paper's `c' log n`).
    pub sample_factor: f64,
    /// Upcast: retries for the root's local rotation solve.
    pub root_solve_retries: usize,
    /// Worker threads for Phase 1's independent per-partition DRA
    /// simulations: `1` (the default) runs them sequentially, `0` uses
    /// all available cores. Results are **identical for every value**
    /// — each partition's simulation is an isolated deterministic run
    /// keyed by the master seed, and outputs are folded in partition
    /// order — so this trades wall-clock time only.
    pub parallelism: usize,
    /// Worker threads for the round engine's **within-round** compute
    /// phase (`dhc_congest::Config::engine_threads`): `1` (the default)
    /// runs a round's active nodes sequentially, `0` uses all available
    /// cores. Orthogonal to [`parallelism`](Self::parallelism) — that
    /// knob spreads *whole partition simulations* across threads, this
    /// one parallelizes *inside every simulated round* — and the two
    /// compose multiplicatively when both are raised. Results are
    /// **identical for every value**: the engine commits each round's
    /// effects in ascending node-id order regardless of thread count.
    pub engine_threads: usize,
    /// Shard count for the round engine's commit fold
    /// (`dhc_congest::Config::commit_shards`): `0` (the default)
    /// auto-shards, any other value forces that many shards. Results
    /// are **identical for every value** — the sharded merge reproduces
    /// the sequential fold bit for bit; the knob exists for
    /// benchmarking and the equivalence suites.
    pub commit_shards: usize,
    /// Protocol messages travel as **word-packed** wire values
    /// ([`dhc_congest::PackedMsg`], 28 bytes inline) instead of the
    /// padded logical enums when `true` — the memory-lean hot path for
    /// million-node runs. Outcomes, [`dhc_congest::Metrics`], and
    /// traces are **bit-identical** either way: packing changes only
    /// the in-memory representation, never the CONGEST word accounting
    /// (pinned by `crates/core/tests/packed_equivalence.rs`). Applies
    /// to the DRA (Phase 1), the DHC1 hypernode stitch, Upcast, and
    /// DHC2's merge levels (whose 9-word bridge decisions ride a wider
    /// `PackedMsg<9>` wire, 40 bytes vs 56 for the enum).
    pub packed_payloads: bool,
    /// Phase 1 runs each color class as a **zero-copy**
    /// [`dhc_graph::ClassView`] over one shared
    /// [`dhc_graph::PartitionedGraph`] by default (`false`). Setting
    /// this to `true` materializes every class with
    /// [`dhc_graph::Graph::induced_subgraph`] instead — the equivalence
    /// oracle and the benchmarking baseline (experiment `e14`).
    /// Outcomes, metrics, and traces are **bit-identical** either way:
    /// both representations expose the same node count and the same
    /// sorted local-id neighbor lists (pinned by
    /// `crates/core/tests/view_equivalence.rs`).
    pub materialize_phase1: bool,
    /// Record the engine's per-round message counts (the one O(rounds)
    /// metrics vector) in every simulation the algorithms run. Default
    /// `true`; set `false` for long memory-lean runs — the streaming
    /// [`dhc_congest::Metrics::max_round_traffic`] aggregate is
    /// maintained incrementally either way.
    pub record_round_traffic: bool,
    /// Optional seeded fault model applied to **every** simulation an
    /// algorithm runs (Phase-1 per-class runs, DHC1 stitching, DHC2
    /// merge levels, Upcast): message drop / duplicate / bounded delay
    /// and node crash/restart schedules, all pure functions of the fault
    /// seed. `None` (the default) — or [`Adversary::none`] — keeps the
    /// clean synchronous CONGEST model of the paper, bit-for-bit. Crash
    /// schedules name *global* node ids; per-class runs translate them
    /// to class-local ids and give each class its own fault stream (see
    /// [`Adversary::for_class`]).
    pub adversary: Option<Adversary>,
    /// Optional telemetry collector (see the `dhc-obs` crate), attached to
    /// **every** simulation an algorithm runs (Phase-1 per-class runs,
    /// DHC1 stitching, DHC2 merge levels, Upcast) and driven by the
    /// runners' span hierarchy (`run → phase → class / merge-level`).
    /// Pure observation: outcomes, [`dhc_congest::Metrics`], traces,
    /// and realized fault schedules are **bit-identical** with and
    /// without a collector at every `engine_threads` / `commit_shards`
    /// setting (pinned by `crates/core/tests/obs_equivalence.rs`).
    pub collector: Option<CollectorHandle>,
}

impl DhcConfig {
    /// Creates a configuration with the given seed and defaults matching
    /// the paper's operating points.
    pub fn new(seed: u64) -> Self {
        DhcConfig {
            seed,
            delta: 0.5,
            partitions: None,
            max_rounds: 5_000_000,
            bandwidth_words: 16,
            sample_factor: 8.0,
            root_solve_retries: 8,
            parallelism: 1,
            engine_threads: 1,
            commit_shards: 0,
            materialize_phase1: false,
            record_round_traffic: true,
            packed_payloads: false,
            adversary: None,
            collector: None,
        }
    }

    /// Sets the sparsity exponent `δ`.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Overrides the number of Phase-1 partitions.
    pub fn with_partitions(mut self, k: usize) -> Self {
        self.partitions = Some(k);
        self
    }

    /// Sets the per-phase round cap.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Sets the Upcast sampling factor (`c'`).
    pub fn with_sample_factor(mut self, f: f64) -> Self {
        self.sample_factor = f;
        self
    }

    /// Sets the Phase-1 worker-thread count (`0` = all available
    /// cores). Parallelism never changes results, only wall-clock time;
    /// see [`parallelism`](Self::parallelism).
    pub fn with_parallelism(mut self, threads: usize) -> Self {
        self.parallelism = threads;
        self
    }

    /// Sets the round engine's within-round worker-thread count (`0` =
    /// all available cores). Never changes results, only wall-clock
    /// time; see [`engine_threads`](Self::engine_threads).
    pub fn with_engine_threads(mut self, threads: usize) -> Self {
        self.engine_threads = threads;
        self
    }

    /// Forces the round engine's commit-fold shard count (`0` = auto).
    /// Never changes results, only scheduling; see
    /// [`commit_shards`](Self::commit_shards).
    pub fn with_commit_shards(mut self, shards: usize) -> Self {
        self.commit_shards = shards;
        self
    }

    /// Selects the Phase-1 subgraph representation: `false` (the
    /// default) simulates each color class on a zero-copy class view,
    /// `true` materializes induced subgraphs — the equivalence oracle.
    /// Never changes results; see
    /// [`materialize_phase1`](Self::materialize_phase1).
    pub fn with_materialized_phase1(mut self, materialize: bool) -> Self {
        self.materialize_phase1 = materialize;
        self
    }

    /// `true` sends protocol messages in the word-packed wire form —
    /// the memory-lean path. Never changes results; see
    /// [`packed_payloads`](Self::packed_payloads).
    pub fn with_packed_payloads(mut self, packed: bool) -> Self {
        self.packed_payloads = packed;
        self
    }

    /// Enables or disables the O(rounds) per-round traffic log; see
    /// [`record_round_traffic`](Self::record_round_traffic).
    pub fn with_round_traffic(mut self, record: bool) -> Self {
        self.record_round_traffic = record;
        self
    }

    /// Attaches a seeded fault model to every simulation the algorithms
    /// run; see [`adversary`](Self::adversary).
    pub fn with_adversary(mut self, adversary: Adversary) -> Self {
        self.adversary = Some(adversary);
        self
    }

    /// Attaches a telemetry collector to every simulation the algorithms
    /// run. Pure observation — see [`collector`](Self::collector).
    pub fn with_collector(mut self, collector: CollectorHandle) -> Self {
        self.collector = Some(collector);
        self
    }

    /// The concrete worker-thread count for `jobs` independent
    /// partition simulations, resolving `parallelism == 0` to the
    /// machine's available cores and never exceeding the job count.
    pub fn effective_parallelism(&self, jobs: usize) -> usize {
        let requested = if self.parallelism == 0 {
            std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
        } else {
            self.parallelism
        };
        requested.min(jobs).max(1)
    }

    /// Number of Phase-1 partitions for an `n`-node graph.
    pub fn partition_count(&self, n: usize) -> usize {
        match self.partitions {
            Some(k) => k.clamp(1, n.max(1)),
            None => dhc_graph::thresholds::num_partitions(n.max(1), self.delta),
        }
    }

    /// The simulator configuration corresponding to this algorithm
    /// configuration, for whole-graph simulations (DRA over all nodes,
    /// DHC1 stitching, DHC2 merge levels, Upcast). Any configured
    /// [`adversary`](Self::adversary) is attached as-is.
    pub fn sim_config(&self) -> SimConfig {
        let mut sim = SimConfig::default()
            .with_max_rounds(self.max_rounds)
            .with_bandwidth_words(self.bandwidth_words)
            .with_engine_threads(self.engine_threads)
            .with_commit_shards(self.commit_shards)
            .with_record_round_traffic(self.record_round_traffic);
        if let Some(adv) = &self.adversary {
            sim = sim.with_adversary(adv.clone());
        }
        if let Some(col) = &self.collector {
            sim = sim.with_collector(col.clone());
        }
        sim
    }

    /// The simulator configuration for one Phase-1 color class simulated
    /// over local ids: like [`sim_config`](Self::sim_config), but any
    /// configured adversary is translated with
    /// [`Adversary::for_class`] — crash schedules map global node ids to
    /// the class's local ids (crashes outside `members` do not apply),
    /// and each class gets its own fault stream.
    pub fn sim_config_for_class(&self, color: u32, members: &[NodeId]) -> SimConfig {
        let mut sim = SimConfig::default()
            .with_max_rounds(self.max_rounds)
            .with_bandwidth_words(self.bandwidth_words)
            .with_engine_threads(self.engine_threads)
            .with_commit_shards(self.commit_shards)
            .with_record_round_traffic(self.record_round_traffic);
        if let Some(adv) = &self.adversary {
            sim = sim.with_adversary(adv.for_class(members, color));
        }
        if let Some(col) = &self.collector {
            sim = sim.with_collector(col.clone());
        }
        sim
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`DhcError::InvalidConfig`](crate::DhcError::InvalidConfig)
    /// for out-of-range values.
    pub fn validate(&self) -> Result<(), crate::DhcError> {
        if !(self.delta > 0.0 && self.delta <= 1.0) {
            return Err(crate::DhcError::InvalidConfig { what: "delta must be in (0, 1]" });
        }
        if self.bandwidth_words == 0 {
            return Err(crate::DhcError::InvalidConfig { what: "bandwidth_words must be >= 1" });
        }
        if self.sample_factor <= 0.0 {
            return Err(crate::DhcError::InvalidConfig { what: "sample_factor must be positive" });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_count_follows_delta() {
        let cfg = DhcConfig::new(0).with_delta(0.5);
        assert_eq!(cfg.partition_count(1024), 32);
        let cfg = DhcConfig::new(0).with_delta(1.0);
        assert_eq!(cfg.partition_count(1024), 1);
    }

    #[test]
    fn partition_override_wins() {
        let cfg = DhcConfig::new(0).with_delta(0.5).with_partitions(7);
        assert_eq!(cfg.partition_count(1024), 7);
        // Clamped to n.
        let cfg = DhcConfig::new(0).with_partitions(500);
        assert_eq!(cfg.partition_count(10), 10);
    }

    #[test]
    fn validation() {
        assert!(DhcConfig::new(0).validate().is_ok());
        assert!(DhcConfig::new(0).with_delta(0.0).validate().is_err());
        assert!(DhcConfig::new(0).with_delta(1.5).validate().is_err());
        let mut cfg = DhcConfig::new(0);
        cfg.sample_factor = -1.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn parallelism_resolution() {
        let cfg = DhcConfig::new(0);
        assert_eq!(cfg.parallelism, 1);
        assert_eq!(cfg.effective_parallelism(100), 1);
        let cfg = cfg.with_parallelism(8);
        assert_eq!(cfg.effective_parallelism(3), 3); // never more threads than jobs
        assert_eq!(cfg.effective_parallelism(100), 8);
        assert_eq!(cfg.effective_parallelism(0), 1); // degenerate job count
        let auto = DhcConfig::new(0).with_parallelism(0);
        assert!(auto.effective_parallelism(usize::MAX) >= 1);
    }

    #[test]
    fn sim_config_propagates() {
        let cfg = DhcConfig::new(0).with_max_rounds(123);
        assert_eq!(cfg.sim_config().max_rounds, 123);
        assert_eq!(cfg.sim_config().bandwidth_words, 16);
        assert_eq!(cfg.sim_config().engine_threads, 1);
        let cfg = cfg.with_engine_threads(0);
        assert_eq!(cfg.sim_config().engine_threads, 0);
    }

    #[test]
    fn collector_propagates_to_every_sim_config() {
        struct Noop;
        impl dhc_congest::Collector for Noop {}
        let cfg = DhcConfig::new(0);
        assert_eq!(cfg.sim_config().collector, None);
        assert_eq!(cfg.sim_config_for_class(0, &[0, 1]).collector, None);
        let handle = CollectorHandle::new(Noop);
        let cfg = cfg.with_collector(handle.clone());
        // Both whole-graph and per-class simulations share the one handle.
        assert_eq!(cfg.sim_config().collector, Some(handle.clone()));
        assert_eq!(cfg.sim_config_for_class(3, &[0, 1]).collector, Some(handle));
    }

    #[test]
    fn adversary_propagates_whole_graph_and_per_class() {
        let cfg = DhcConfig::new(0);
        assert_eq!(cfg.sim_config().adversary, None);
        assert_eq!(cfg.sim_config_for_class(0, &[0, 1]).adversary, None);

        let adv = Adversary::seeded(9).with_drop_ppm(5).with_crash(4, 2, None);
        let cfg = cfg.with_adversary(adv.clone());
        assert_eq!(cfg.sim_config().adversary, Some(adv.clone()));
        // Per-class: the class containing global node 4 (local id 1)
        // keeps the crash under its local id; another class drops it.
        let with4 = cfg.sim_config_for_class(1, &[2, 4, 7]).adversary.unwrap();
        assert_eq!(with4.crashes.len(), 1);
        assert_eq!(with4.crashes[0].node, 1);
        assert_eq!(with4.drop_ppm, 5);
        let without4 = cfg.sim_config_for_class(2, &[0, 5]).adversary.unwrap();
        assert!(without4.crashes.is_empty());
        assert_ne!(with4.fault_seed, without4.fault_seed);
    }
}
