//! Distributed Hamiltonian-cycle algorithms in the CONGEST model.
//!
//! This crate is the primary contribution of the workspace: faithful,
//! message-level implementations of the algorithms of *Fast and Efficient
//! Distributed Computation of Hamiltonian Cycles in Random Graphs*
//! (Chatterjee, Fathi, Pandurangan, Pham; ICDCS 2018), running on the
//! [`dhc_congest`] simulator:
//!
//! * [`dra`] — the **Distributed Rotation Algorithm** (the paper's
//!   Algorithm 1): per-partition leader election (flood/echo waves), path
//!   growth by random unused edges, rotation renumbering broadcast with
//!   echo-based termination, and cycle closing. Run on a single partition
//!   (`δ = 1`) it is itself a distributed HC algorithm in `O~(n)` rounds.
//! * [`dhc1`] — Algorithm 2 (`p = c ln n / √n`): Phase 1 partitions the
//!   graph into `√n` color classes that run DRA in parallel; Phase 2 forms
//!   one *hypernode* per subcycle and runs a terminal-aware DRA over the
//!   hypernode graph to stitch the subcycles.
//! * [`dhc2`] — Algorithm 3 (`p = c ln n / n^δ`): Phase 1 with `n^{1-δ}`
//!   classes; Phase 2 merges cycle pairs level by level through *bridges*
//!   (two vertex-disjoint cross edges), `⌈log₂ n^{1-δ}⌉` levels.
//! * [`upcast`] — the centralized baseline of the paper's §III: leader
//!   election + BFS tree, `Θ(log n)` edge samples per node, pipelined
//!   upcast, local solve at the root (via [`dhc_rotation::posa`]), and a
//!   routed downcast of each node's two cycle edges.
//! * [`mod@reference`] — centralized re-implementations of
//!   DHC1/DHC2 used as correctness oracles in tests;
//! * [`kmachine`] — the paper's §IV k-machine conversion, both
//!   **estimated** ([`kmachine::ConversionEstimate`], the KNPR
//!   `Õ(M/k² + T·Δ'/k)` bound on measured CONGEST metrics) and
//!   **measured** ([`run_dra_kmachine`] / [`run_dhc1_kmachine`] /
//!   [`run_dhc2_kmachine`] / [`run_upcast_kmachine`]: the unchanged
//!   protocols execute with the simulator's machine accounting layer
//!   attached, and the run's real link loads and dilated round count come
//!   back in a [`KMachineReport`]).
//!
//! Every algorithm returns a [`RunOutcome`] containing the verified
//! [`dhc_graph::HamiltonianCycle`] and full [`dhc_congest::Metrics`]
//! (rounds, messages, words, per-node memory and compute) — the quantities
//! the paper's theorems bound.
//!
//! # Example
//!
//! ```
//! use dhc_core::{run_dhc2, DhcConfig};
//! use dhc_graph::{generator, rng::rng_from_seed, thresholds};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let n = 256;
//! let delta = 0.5;
//! let p = thresholds::edge_probability(n, delta, 6.0);
//! let g = generator::gnp(n, p, &mut rng_from_seed(42))?;
//! // 8 partitions of ~32 nodes each (the delta-derived default of sqrt(n)
//! // partitions would make the per-partition subgraphs very small at this n).
//! let outcome = run_dhc2(&g, &DhcConfig::new(7).with_delta(delta).with_partitions(8))?;
//! assert_eq!(outcome.cycle.len(), n);
//! println!("rounds: {}", outcome.metrics.rounds);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod dhc1;
pub mod dhc2;
pub mod dra;
mod error;
pub mod kmachine;
mod output;
pub mod reference;
mod runner;
pub mod upcast;

pub use config::DhcConfig;
pub use dhc_congest::{
    Adversary, Collector, CollectorHandle, CrashEvent, FaultObs, RoundObs, Span,
};
pub use error::{DhcError, PartitionFailure};
pub use kmachine::{
    run_dhc1_kmachine, run_dhc2_kmachine, run_dra_kmachine, run_upcast_kmachine, KMachineConfig,
    KMachineReport,
};
pub use output::{cycle_from_incident_pairs, NodeCycleOutput};
pub use runner::{
    run_collect_all, run_dhc1, run_dhc2, run_dhc2_with_colors, run_dra, run_partition_cycles,
    run_upcast, PhaseBreakdown, RunOutcome, Subcycle,
};
