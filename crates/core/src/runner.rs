//! High-level entry points: run a whole algorithm on a graph and get back
//! a verified cycle plus metrics.

use crate::dra::DraNode;
use crate::output::pairs_from_links;
use crate::{cycle_from_incident_pairs, DhcConfig, DhcError};
use dhc_congest::{Metrics, Network};
use dhc_graph::rng::{derive_seed, rng_from_seed};
use dhc_graph::{Graph, HamiltonianCycle, NodeId, Partition};

/// Per-phase cost breakdown of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Phase name (e.g. `"phase1"`, `"merge-level-3"`).
    pub name: String,
    /// Rounds spent in this phase.
    pub rounds: usize,
    /// Messages sent in this phase.
    pub messages: u64,
}

/// Result of a successful distributed Hamiltonian-cycle run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The verified Hamiltonian cycle.
    pub cycle: HamiltonianCycle,
    /// Aggregated metrics over all phases (rounds add up).
    pub metrics: Metrics,
    /// Per-phase breakdown.
    pub phases: Vec<PhaseBreakdown>,
}

/// One node's Phase-1 result, extracted from the protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Phase1State {
    pub color: u32,
    pub cycindex: usize,
    pub succ: NodeId,
    pub pred: NodeId,
    pub cycle_size: usize,
}

/// Outcome of Phase 1 across all partitions.
#[derive(Debug, Clone)]
pub(crate) struct Phase1Outcome {
    pub states: Vec<Phase1State>,
    pub metrics: Metrics,
}

/// Runs the per-partition DRA (Phase 1 of DHC1/DHC2) for the given node
/// coloring and validates that every partition built a full subcycle.
pub(crate) fn run_phase1(
    graph: &Graph,
    colors: &[u32],
    cfg: &DhcConfig,
) -> Result<Phase1Outcome, DhcError> {
    let n = graph.node_count();
    let nodes: Vec<DraNode> = (0..n)
        .map(|v| DraNode::new(v, colors[v], derive_seed(cfg.seed, 0x0001)))
        .collect();
    let mut net = Network::new(graph, cfg.sim_config(), nodes)?;
    let report = net.run()?;
    let nodes = net.into_nodes();

    // Validate: everyone done, nobody failed.
    for node in &nodes {
        if let Some(reason) = node.failed {
            return Err(DhcError::PartitionFailed { color: node.color, reason });
        }
    }
    // Validate: per-color, the subcycle spans the whole class (guards
    // against internally disconnected partitions that each built a
    // component-local cycle).
    let mut class_size = std::collections::HashMap::new();
    for node in &nodes {
        *class_size.entry(node.color).or_insert(0usize) += 1;
    }
    let mut states = Vec::with_capacity(n);
    for node in &nodes {
        let expected = class_size[&node.color];
        let (Some(cycindex), Some(succ), Some(pred), Some(cycle_size), true) =
            (node.cycindex, node.succ, node.pred, node.cycle_size, node.done)
        else {
            return Err(DhcError::PartitionFailed {
                color: node.color,
                reason: crate::error::PartitionFailure::OutOfEdges,
            });
        };
        if cycle_size != expected {
            // A component-local cycle: the partition was disconnected.
            return Err(DhcError::PartitionFailed {
                color: node.color,
                reason: crate::error::PartitionFailure::TooSmall,
            });
        }
        states.push(Phase1State { color: node.color, cycindex, succ, pred, cycle_size });
    }
    Ok(Phase1Outcome { states, metrics: report.metrics })
}

/// One partition's completed subcycle, as produced by
/// [`run_partition_cycles`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subcycle {
    /// The partition color.
    pub color: u32,
    /// Member nodes in cycle order (global ids).
    pub order: Vec<NodeId>,
}

/// Runs only **Phase 1** (the per-partition distributed rotation) and
/// returns the verified subcycles — the building block both DHC1 and DHC2
/// start from, exposed for callers who want to drive the composition
/// themselves (or inspect the intermediate state).
///
/// # Errors
///
/// Returns a [`DhcError`] if any partition fails or the simulation faults.
///
/// # Example
///
/// ```
/// use dhc_core::{run_partition_cycles, DhcConfig};
/// use dhc_graph::{generator, rng::rng_from_seed, Partition};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generator::gnp(120, 0.6, &mut rng_from_seed(1))?;
/// let partition = Partition::random(120, 3, &mut rng_from_seed(2));
/// let (cycles, metrics) = run_partition_cycles(&g, &partition, &DhcConfig::new(3))?;
/// assert_eq!(cycles.len(), 3);
/// assert_eq!(cycles.iter().map(|c| c.order.len()).sum::<usize>(), 120);
/// assert!(metrics.rounds > 0);
/// # Ok(())
/// # }
/// ```
pub fn run_partition_cycles(
    graph: &Graph,
    partition: &Partition,
    cfg: &DhcConfig,
) -> Result<(Vec<Subcycle>, Metrics), DhcError> {
    cfg.validate()?;
    let n = graph.node_count();
    if n < 3 {
        return Err(DhcError::GraphTooSmall { n });
    }
    let outcome = run_phase1(graph, partition.colors(), cfg)?;
    // Group nodes per color and order them by cycindex.
    let mut by_color: std::collections::BTreeMap<u32, Vec<(usize, NodeId)>> =
        std::collections::BTreeMap::new();
    for (v, st) in outcome.states.iter().enumerate() {
        by_color.entry(st.color).or_default().push((st.cycindex, v));
    }
    let mut cycles = Vec::with_capacity(by_color.len());
    for (color, mut members) in by_color {
        members.sort_unstable();
        cycles.push(Subcycle { color, order: members.into_iter().map(|(_, v)| v).collect() });
    }
    Ok((cycles, outcome.metrics))
}

/// Runs the plain **Distributed Rotation Algorithm** on the whole graph
/// (a single partition; the paper's `δ = 1` case, `O~(n)` rounds).
///
/// # Errors
///
/// Returns a [`DhcError`] if the configuration is invalid, the graph is too
/// small, the rotation starves, or the simulation faults.
///
/// # Example
///
/// ```
/// use dhc_core::{run_dra, DhcConfig};
/// use dhc_graph::{generator, rng::rng_from_seed, thresholds};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let n = 128;
/// let p = thresholds::edge_probability(n, 1.0, 10.0);
/// let g = generator::gnp(n, p, &mut rng_from_seed(5))?;
/// let outcome = run_dra(&g, &DhcConfig::new(1))?;
/// assert_eq!(outcome.cycle.len(), n);
/// # Ok(())
/// # }
/// ```
pub fn run_dra(graph: &Graph, cfg: &DhcConfig) -> Result<RunOutcome, DhcError> {
    cfg.validate()?;
    let n = graph.node_count();
    if n < 3 {
        return Err(DhcError::GraphTooSmall { n });
    }
    let colors = vec![0u32; n];
    let outcome = run_phase1(graph, &colors, cfg)?;
    let succ: Vec<Option<NodeId>> = outcome.states.iter().map(|s| Some(s.succ)).collect();
    let pred: Vec<Option<NodeId>> = outcome.states.iter().map(|s| Some(s.pred)).collect();
    let pairs = pairs_from_links(&succ, &pred)?;
    let cycle = cycle_from_incident_pairs(graph, &pairs)?;
    let phases = vec![PhaseBreakdown {
        name: "dra".to_string(),
        rounds: outcome.metrics.rounds,
        messages: outcome.metrics.messages,
    }];
    Ok(RunOutcome { cycle, metrics: outcome.metrics, phases })
}

/// Draws the Phase-1 coloring for `graph` under `cfg` (each node picks a
/// uniform color; the distributed algorithm does this locally — the runner
/// precomputes it so the partition is reproducible and inspectable).
pub(crate) fn draw_colors(n: usize, cfg: &DhcConfig) -> (Partition, usize) {
    let k = cfg.partition_count(n);
    let mut rng = rng_from_seed(derive_seed(cfg.seed, 0x00C0));
    (Partition::random(n, k, &mut rng), k)
}

/// Runs **DHC2** (the paper's Algorithm 3): Phase-1 partition DRA plus
/// `O(log n)` bridge-merge levels.
///
/// # Errors
///
/// Returns a [`DhcError`] on invalid configuration, partition failure,
/// missing bridges, or simulation faults.
pub fn run_dhc2(graph: &Graph, cfg: &DhcConfig) -> Result<RunOutcome, DhcError> {
    crate::dhc2::run(graph, cfg)
}

/// Runs **DHC1** (the paper's Algorithm 2): Phase-1 partition DRA plus the
/// hypernode-DRA stitching phase.
///
/// # Errors
///
/// Returns a [`DhcError`] on invalid configuration, partition failure,
/// stitch starvation, or simulation faults.
pub fn run_dhc1(graph: &Graph, cfg: &DhcConfig) -> Result<RunOutcome, DhcError> {
    crate::dhc1::run(graph, cfg)
}

/// Runs the **Upcast** algorithm (the paper's §III): BFS-tree sampling
/// upcast, local solve at the root, routed downcast.
///
/// # Errors
///
/// Returns a [`DhcError`] on root-solve failure or simulation faults.
pub fn run_upcast(graph: &Graph, cfg: &DhcConfig) -> Result<RunOutcome, DhcError> {
    crate::upcast::run(graph, cfg, false)
}

/// Runs the trivial `O(m)` baseline: like Upcast but every node upcasts
/// **all** of its incident edges, so the root sees the whole topology
/// (the "collect everything at one node" strawman from §I-A).
///
/// # Errors
///
/// Returns a [`DhcError`] on root-solve failure or simulation faults.
pub fn run_collect_all(graph: &Graph, cfg: &DhcConfig) -> Result<RunOutcome, DhcError> {
    crate::upcast::run(graph, cfg, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhc_graph::{generator, thresholds};

    #[test]
    fn dra_on_complete_graph() {
        let g = generator::complete(24);
        let out = run_dra(&g, &DhcConfig::new(3)).unwrap();
        assert_eq!(out.cycle.len(), 24);
        assert!(out.metrics.rounds > 0);
        assert_eq!(out.phases.len(), 1);
    }

    #[test]
    fn dra_on_random_graph_above_threshold() {
        let n = 200;
        let p = thresholds::edge_probability(n, 1.0, 12.0);
        let g = generator::gnp(n, p, &mut dhc_graph::rng::rng_from_seed(8)).unwrap();
        let out = run_dra(&g, &DhcConfig::new(4)).unwrap();
        assert_eq!(out.cycle.len(), n);
    }

    #[test]
    fn dra_rejects_tiny_graph() {
        let g = generator::complete(2);
        assert!(matches!(run_dra(&g, &DhcConfig::new(0)), Err(DhcError::GraphTooSmall { n: 2 })));
    }

    #[test]
    fn dra_fails_cleanly_on_disconnected_graph() {
        let g = dhc_graph::Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
            .unwrap();
        let err = run_dra(&g, &DhcConfig::new(0)).unwrap_err();
        assert!(matches!(err, DhcError::PartitionFailed { .. }), "{err:?}");
    }

    #[test]
    fn dra_fails_cleanly_on_star() {
        let g = generator::star(8);
        let err = run_dra(&g, &DhcConfig::new(0)).unwrap_err();
        assert!(matches!(err, DhcError::PartitionFailed { .. }), "{err:?}");
    }

    #[test]
    fn dra_is_deterministic() {
        let g = generator::complete(16);
        let a = run_dra(&g, &DhcConfig::new(11)).unwrap();
        let b = run_dra(&g, &DhcConfig::new(11)).unwrap();
        assert_eq!(a.cycle.order(), b.cycle.order());
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
    }

    #[test]
    fn dra_different_seeds_differ() {
        let g = generator::complete(16);
        let a = run_dra(&g, &DhcConfig::new(1)).unwrap();
        let b = run_dra(&g, &DhcConfig::new(2)).unwrap();
        // Cycles almost surely differ on K_16.
        assert_ne!(a.cycle.order(), b.cycle.order());
    }

    #[test]
    fn dra_memory_stays_local() {
        // Fully-distributed property: peak memory O(degree), not O(n).
        let n = 128;
        let p = 0.2;
        let g = generator::gnp(n, p, &mut dhc_graph::rng::rng_from_seed(1)).unwrap();
        let out = run_dra(&g, &DhcConfig::new(5)).unwrap();
        let max_mem = out.metrics.max_memory();
        assert!(max_mem <= 2 * g.max_degree() + 64, "max mem {max_mem}");
    }
}
