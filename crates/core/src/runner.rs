//! High-level entry points: run a whole algorithm on a graph and get back
//! a verified cycle plus metrics.

use crate::dra::{DraMsg, DraNode};
use crate::error::PartitionFailure;
use crate::kmachine::KMachineProbe;
use crate::output::pairs_from_links;
use crate::{cycle_from_incident_pairs, DhcConfig, DhcError};
use dhc_congest::machine::{MachineMap, MachineRoundLog};
use dhc_congest::{EngineScratch, EnumCodec, Metrics, MsgCodec, Network, PackedCodec, Span};
use dhc_graph::rng::{derive_seed, rng_from_seed};
use dhc_graph::{Graph, HamiltonianCycle, NodeId, Partition, PartitionedGraph, Topology};

/// Per-phase cost breakdown of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Phase name (e.g. `"phase1"`, `"merge-level-3"`).
    pub name: String,
    /// Rounds spent in this phase.
    pub rounds: usize,
    /// Messages sent in this phase.
    pub messages: u64,
}

/// Result of a successful distributed Hamiltonian-cycle run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The verified Hamiltonian cycle.
    pub cycle: HamiltonianCycle,
    /// Aggregated metrics over all phases (rounds add up).
    pub metrics: Metrics,
    /// Per-phase breakdown.
    pub phases: Vec<PhaseBreakdown>,
}

/// One node's Phase-1 result, extracted from the protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Phase1State {
    pub color: u32,
    pub cycindex: usize,
    pub succ: NodeId,
    pub pred: NodeId,
    pub cycle_size: usize,
}

/// Outcome of Phase 1 across all partitions.
#[derive(Debug, Clone)]
pub(crate) struct Phase1Outcome {
    pub states: Vec<Phase1State>,
    pub metrics: Metrics,
}

/// One node's raw Phase-1 protocol result, already mapped back to
/// global ids.
#[derive(Debug, Clone, Copy)]
struct RawPhase1 {
    color: u32,
    failed: Option<PartitionFailure>,
    done: bool,
    cycindex: Option<usize>,
    succ: Option<NodeId>,
    pred: Option<NodeId>,
    cycle_size: Option<usize>,
}

/// One partition's completed simulation: its member map (`local →
/// global`, borrowed from the partition's flat class storage), the
/// extracted protocol states, and the run's metrics.
struct PartitionRun<'a> {
    map: &'a [NodeId],
    raw: Vec<RawPhase1>,
    metrics: Metrics,
    /// Per-round cross-machine traffic when this class ran under the
    /// k-machine accounting layer.
    machine_log: Option<MachineRoundLog>,
}

/// Simulates one color class's DRA instance on its induced subgraph,
/// given as any [`Topology`] over local ids — a zero-copy
/// [`dhc_graph::ClassView`] on the hot path, or a materialized
/// [`Graph`] when [`DhcConfig::materialize_phase1`] selects the
/// copying oracle. `map` is the class member list (`local → global`,
/// ascending), which both representations share.
///
/// Local ids run over `0..map.len()` in ascending global-id order, but
/// each node's RNG stream stays keyed by its **global** id, so the run
/// is a pure function of `(graph, members, color, seed)` — independent
/// of how the other partitions are scheduled, and independent of the
/// subgraph representation (both expose identical sorted local-id
/// neighbor lists). Messages that crossed partition boundaries in a
/// whole-graph simulation carried only the round-1 color exchange,
/// which the subgraph construction resolves up front.
fn run_one_partition<'a, T: Topology, C: MsgCodec<DraMsg>>(
    topo: &T,
    color: u32,
    map: &'a [NodeId],
    cfg: &DhcConfig,
    seed_base: u64,
    machines: Option<MachineMap>,
    mut scratch: Option<&mut EngineScratch<C::Wire>>,
) -> Result<PartitionRun<'a>, DhcError> {
    let protocols: Vec<DraNode<C>> = map
        .iter()
        .enumerate()
        .map(|(local, &global)| {
            DraNode::with_rng_stream((local) as u32, color, derive_seed(seed_base, global as u64))
        })
        .collect();
    // Per-class simulator config: a configured adversary is translated
    // to this class's local ids and its own fault stream.
    let sim = cfg.sim_config_for_class(color, map);
    let mut net = match machines {
        Some(m) => Network::new_with_machines(topo, sim, protocols, m)?,
        None => match scratch.as_deref_mut() {
            Some(s) => Network::new_with_scratch(topo, sim, protocols, s)?,
            None => Network::new(topo, sim, protocols)?,
        },
    };
    // Even on error, route teardown through the scratch so a failed
    // class donates its buffers to the next attempt.
    let run_result = net.run();
    let (report, nodes) = match scratch {
        Some(s) => net.finish_with_scratch(s),
        None => net.finish(),
    };
    run_result?;
    let raw = nodes
        .iter()
        .map(|node| RawPhase1 {
            color,
            failed: node.failed,
            done: node.done,
            cycindex: node.cycindex,
            succ: node.succ.map(|s| map[(s) as usize]),
            pred: node.pred.map(|p| map[(p) as usize]),
            cycle_size: node.cycle_size,
        })
        .collect();
    Ok(PartitionRun { map, raw, metrics: report.metrics, machine_log: report.machine_log })
}

/// Charges the round-1 `Color` announcements that cross partition
/// boundaries. The distributed algorithm pays one 1-word message per
/// directed edge in round 1 regardless of the receiver's color, but
/// the cross-color share does not exist inside the per-partition
/// subgraph simulations — without this correction the partitioned
/// runner would systematically under-report message/word totals and
/// per-node load relative to a whole-graph execution.
fn account_cross_color_exchange(
    metrics: &mut Metrics,
    graph: &Graph,
    colors: &[u32],
    pg: Option<&PartitionedGraph<'_>>,
) {
    let n = graph.node_count();
    let mut total = 0u64;
    let cross: Vec<u64> = match pg {
        // O(n): the grouped adjacency already knows every node's
        // cross-color degree (degree minus same-color neighbors).
        Some(pg) => (0..n)
            .map(|v| {
                let c = pg.cross_degree((v) as u32) as u64;
                total += c;
                c
            })
            .collect(),
        // Copying oracle path: O(m) edge scan.
        None => {
            let mut cross = vec![0u64; n];
            for (u, v) in graph.edges() {
                if colors[(u) as usize] != colors[(v) as usize] {
                    cross[(u) as usize] += 1;
                    cross[(v) as usize] += 1;
                    total += 2;
                }
            }
            cross
        }
    };
    if total == 0 {
        return;
    }
    metrics.messages += total;
    metrics.words += total;
    for (v, &c) in cross.iter().enumerate() {
        // Symmetric: each cross edge carries one announcement each way,
        // and the old whole-graph engine charged one compute unit per
        // delivered message.
        metrics.sent_per_node[v] += c;
        metrics.received_per_node[v] += c;
        metrics.compute_per_node[v] += c;
    }
    if metrics.round_traffic.is_empty() {
        metrics.round_traffic.push(total);
    } else {
        metrics.round_traffic[0] += total;
    }
    metrics.max_round_traffic = metrics.max_round_traffic.max(metrics.round_traffic[0]);
    // In round 1 every node's outbox is its full degree, and each edge
    // carries at least the 1-word color announcement.
    let max_degree = graph.max_degree();
    metrics.max_node_sends_per_round = metrics.max_node_sends_per_round.max(max_degree);
    metrics.max_edge_words = metrics.max_edge_words.max(1);
}

/// Runs the per-partition DRA (Phase 1 of DHC1/DHC2) for the given
/// partition and validates that every partition built a full subcycle.
///
/// Each color class is an **isolated** simulation over its induced
/// subgraph — by default a zero-copy [`dhc_graph::ClassView`] into one
/// shared [`PartitionedGraph`] built in a single `O(n + m)` pass (no
/// per-class CSR, no per-class `O(n)` remap), or a materialized
/// [`Graph::induced_subgraph`] when [`DhcConfig::materialize_phase1`]
/// selects the copying oracle. The classes execute concurrently on up
/// to [`DhcConfig::effective_parallelism`] worker threads (the paper's
/// Phase 1 runs its `√n` / `n^{1-δ}` DRA instances simultaneously —
/// this is the same structure, exploited for wall-clock speed).
/// Outcomes are folded in ascending color order and every per-node
/// stream is keyed by the global node id, so the result is identical
/// for every parallelism level and for both subgraph representations.
pub(crate) fn run_phase1(
    graph: &Graph,
    partition: &Partition,
    cfg: &DhcConfig,
    km: Option<&mut KMachineProbe>,
    parent: &Span,
) -> Result<Phase1Outcome, DhcError> {
    if cfg.packed_payloads {
        run_phase1_with::<PackedCodec>(graph, partition, cfg, km, None, parent)
    } else {
        run_phase1_with::<EnumCodec>(graph, partition, cfg, km, None, parent)
    }
}

/// [`run_phase1`] pinned to a wire codec (the flag dispatch happens once,
/// up front — every per-class simulation below is monomorphized on `C`).
///
/// When the classes run sequentially, one [`EngineScratch`] chains
/// through all of them, so the `√n` per-class networks share a single
/// set of mailbox/effect/commit buffers instead of allocating `√n`
/// sets. A caller-provided `ext` scratch joins that chain (and keeps
/// the warmed buffers afterwards) — [`crate::dhc1`]'s packed path hands
/// the same scratch to the stitch network, whose wire type coincides.
pub(crate) fn run_phase1_with<C: MsgCodec<DraMsg>>(
    graph: &Graph,
    partition: &Partition,
    cfg: &DhcConfig,
    km: Option<&mut KMachineProbe>,
    ext: Option<&mut EngineScratch<C::Wire>>,
    parent: &Span,
) -> Result<Phase1Outcome, DhcError> {
    let n = graph.node_count();
    let seed_base = derive_seed(cfg.seed, 0x0001);
    let jobs: Vec<usize> =
        (0..partition.class_count()).filter(|&c| !partition.class(c).is_empty()).collect();
    let mut phase_span = parent.child("phase", format!("phase1 classes={}", jobs.len()));

    // The zero-copy grouping; `None` selects the copying oracle.
    let pg = (!cfg.materialize_phase1).then(|| PartitionedGraph::new(graph, partition));

    // Immutable view of the machine assignment for the job closures; the
    // probe itself is only touched again after the jobs complete.
    let spec = km.as_deref();
    let threads = cfg.effective_parallelism(jobs.len());
    let run_job = |&class: &usize,
                   scratch: Option<&mut EngineScratch<C::Wire>>|
     -> Result<PartitionRun<'_>, DhcError> {
        let members = partition.class(class);
        let color = class as u32;
        let machines = spec.map(|p| p.class_map(members));
        let mut span = phase_span.child("class", format!("class {color} n={}", members.len()));
        let result = match &pg {
            Some(pg) => {
                let view = pg.class_view(class).expect("job classes are non-empty");
                run_one_partition::<_, C>(&view, color, members, cfg, seed_base, machines, scratch)
            }
            None => {
                let (sub, _) = graph
                    .induced_subgraph(members)
                    .expect("partition classes hold valid, distinct node ids");
                run_one_partition::<_, C>(&sub, color, members, cfg, seed_base, machines, scratch)
            }
        };
        if let Ok(run) = &result {
            span.add(run.metrics.rounds as u64, run.metrics.messages, run.metrics.words);
        }
        result
    };
    let results: Vec<Result<PartitionRun<'_>, DhcError>> = if threads <= 1 {
        // Sequential classes share one buffer set — the caller's, when
        // provided, so the reuse extends beyond this phase.
        let mut own = EngineScratch::new();
        let scratch = ext.unwrap_or(&mut own);
        jobs.iter().map(|class| run_job(class, Some(&mut *scratch))).collect()
    } else {
        // The pool joins its workers when dropped at the end of this
        // call; per-round reuse lives inside the engine's own pool, this
        // one only amortizes across the partition classes. Concurrent
        // classes cannot share one scratch; each allocates its own.
        let pool = dhc_pool::WorkerPool::new(threads);
        let mut slots: Vec<(usize, Option<Result<PartitionRun<'_>, DhcError>>)> =
            jobs.iter().map(|&c| (c, None)).collect();
        pool.run_mut(&mut slots, &|_, (class, slot)| *slot = Some(run_job(class, None)));
        slots.into_iter().map(|(_, slot)| slot.expect("pool ran every job")).collect()
    };

    // Fold in partition (color) order: simulation faults surface for the
    // lowest failing color, metrics compose as one parallel phase, and
    // per-node states scatter back to global ids. The classes' machine
    // logs merge round-by-round — they execute concurrently in simulated
    // time, so their round-r messages share the machine links.
    let mut metrics = Metrics::empty(n);
    let mut phase_log = spec.map(|p| MachineRoundLog::empty(p.machine_count()));
    let mut raw_of: Vec<Option<RawPhase1>> = vec![None; n];
    for result in results {
        let run = result?;
        metrics.absorb_parallel(&run.metrics, run.map);
        if let (Some(pl), Some(log)) = (phase_log.as_mut(), run.machine_log.as_ref()) {
            pl.absorb_parallel(log);
        }
        for (local, &global) in run.map.iter().enumerate() {
            raw_of[(global) as usize] = Some(run.raw[local]);
        }
    }
    account_cross_color_exchange(&mut metrics, graph, partition.colors(), pg.as_ref());
    phase_span.add(metrics.rounds as u64, metrics.messages, metrics.words);
    // The synthesized round-1 cross-partition color announcements cross
    // machine links too. Each announcement is one **broadcast** op
    // (`send_all(Color)` in init), so the machine layer's semantics
    // charge the payload once per (sender, receiving machine), no matter
    // how many neighbors the machine hosts. The per-class simulations
    // already charged every machine hosting a same-color neighbor of the
    // sender; the correction charges exactly the machines reached *only*
    // through cross-color neighbors, in the init slot (round 0, where
    // the class runs record their announcement sends) — so the merged
    // round-0 loads equal a whole-graph machine-instrumented execution's
    // (pinned by `phase1_round0_matches_whole_graph_broadcast_oracle`).
    if let (Some(pl), Some(p)) = (phase_log.as_mut(), spec) {
        let colors = partition.colors();
        let k = p.machine_count();
        // Per-sender epoch marks: which machines host a same-color /
        // cross-color neighbor of the current node.
        let mut same_epoch = vec![0u32; k];
        let mut cross_epoch = vec![0u32; k];
        let mut touched: Vec<usize> = Vec::with_capacity(k);
        for u in 0..n {
            let epoch = u as u32 + 1;
            touched.clear();
            for &v in graph.neighbors((u) as u32) {
                let m = p.machine_of(v);
                if same_epoch[m] != epoch && cross_epoch[m] != epoch {
                    touched.push(m);
                }
                if colors[u] == colors[(v) as usize] {
                    same_epoch[m] = epoch;
                } else {
                    cross_epoch[m] = epoch;
                }
            }
            let mu = p.machine_of((u) as u32);
            for &m in &touched {
                if cross_epoch[m] == epoch && same_epoch[m] != epoch {
                    pl.charge(0, mu, m, 1);
                }
            }
        }
    }
    if let (Some(probe), Some(pl)) = (km, phase_log) {
        probe.absorb_phase_log(pl);
    }

    // Validate in global node order (stable error selection): everyone
    // done, nobody failed.
    let raw_of: Vec<RawPhase1> = raw_of
        .into_iter()
        .collect::<Option<_>>()
        .expect("every node belongs to exactly one color class");
    for node in &raw_of {
        if let Some(reason) = node.failed {
            return Err(DhcError::PartitionFailed { color: node.color, reason });
        }
    }
    // Validate: per-color, the subcycle spans the whole class (guards
    // against internally disconnected partitions that each built a
    // component-local cycle).
    let mut class_size = std::collections::HashMap::new();
    for node in &raw_of {
        *class_size.entry(node.color).or_insert(0usize) += 1;
    }
    let mut states = Vec::with_capacity(n);
    for node in &raw_of {
        let expected = class_size[&node.color];
        let (Some(cycindex), Some(succ), Some(pred), Some(cycle_size), true) =
            (node.cycindex, node.succ, node.pred, node.cycle_size, node.done)
        else {
            return Err(DhcError::PartitionFailed {
                color: node.color,
                reason: PartitionFailure::OutOfEdges,
            });
        };
        if cycle_size != expected {
            // A component-local cycle: the partition was disconnected.
            return Err(DhcError::PartitionFailed {
                color: node.color,
                reason: PartitionFailure::TooSmall,
            });
        }
        states.push(Phase1State { color: node.color, cycindex, succ, pred, cycle_size });
    }
    Ok(Phase1Outcome { states, metrics })
}

/// One partition's completed subcycle, as produced by
/// [`run_partition_cycles`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subcycle {
    /// The partition color.
    pub color: u32,
    /// Member nodes in cycle order (global ids).
    pub order: Vec<NodeId>,
}

/// Runs only **Phase 1** (the per-partition distributed rotation) and
/// returns the verified subcycles — the building block both DHC1 and DHC2
/// start from, exposed for callers who want to drive the composition
/// themselves (or inspect the intermediate state).
///
/// # Errors
///
/// Returns a [`DhcError`] if any partition fails or the simulation faults.
///
/// # Example
///
/// ```
/// use dhc_core::{run_partition_cycles, DhcConfig};
/// use dhc_graph::{generator, rng::rng_from_seed, Partition};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = generator::gnp(120, 0.6, &mut rng_from_seed(1))?;
/// let partition = Partition::random(120, 3, &mut rng_from_seed(2));
/// let (cycles, metrics) = run_partition_cycles(&g, &partition, &DhcConfig::new(3))?;
/// assert_eq!(cycles.len(), 3);
/// assert_eq!(cycles.iter().map(|c| c.order.len()).sum::<usize>(), 120);
/// assert!(metrics.rounds > 0);
/// # Ok(())
/// # }
/// ```
pub fn run_partition_cycles(
    graph: &Graph,
    partition: &Partition,
    cfg: &DhcConfig,
) -> Result<(Vec<Subcycle>, Metrics), DhcError> {
    cfg.validate()?;
    let n = graph.node_count();
    if n < 3 {
        return Err(DhcError::GraphTooSmall { n });
    }
    let mut run_span = Span::root(cfg.collector.as_ref(), "run", format!("partition-cycles n={n}"));
    let outcome = run_phase1(graph, partition, cfg, None, &run_span)?;
    run_span.add(outcome.metrics.rounds as u64, outcome.metrics.messages, outcome.metrics.words);
    drop(run_span);
    if let Some(col) = &cfg.collector {
        col.flush();
    }
    // Group nodes per color and order them by cycindex.
    let mut by_color: std::collections::BTreeMap<u32, Vec<(usize, NodeId)>> =
        std::collections::BTreeMap::new();
    for (v, st) in outcome.states.iter().enumerate() {
        by_color.entry(st.color).or_default().push((st.cycindex, (v) as u32));
    }
    let mut cycles = Vec::with_capacity(by_color.len());
    for (color, mut members) in by_color {
        members.sort_unstable();
        cycles.push(Subcycle { color, order: members.into_iter().map(|(_, v)| v).collect() });
    }
    Ok((cycles, outcome.metrics))
}

/// Runs the plain **Distributed Rotation Algorithm** on the whole graph
/// (a single partition; the paper's `δ = 1` case, `O~(n)` rounds).
///
/// # Errors
///
/// Returns a [`DhcError`] if the configuration is invalid, the graph is too
/// small, the rotation starves, or the simulation faults.
///
/// # Example
///
/// ```
/// use dhc_core::{run_dra, DhcConfig};
/// use dhc_graph::{generator, rng::rng_from_seed, thresholds};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let n = 128;
/// let p = thresholds::edge_probability(n, 1.0, 10.0);
/// let g = generator::gnp(n, p, &mut rng_from_seed(5))?;
/// let outcome = run_dra(&g, &DhcConfig::new(1))?;
/// assert_eq!(outcome.cycle.len(), n);
/// # Ok(())
/// # }
/// ```
pub fn run_dra(graph: &Graph, cfg: &DhcConfig) -> Result<RunOutcome, DhcError> {
    run_dra_with(graph, cfg, None)
}

/// [`run_dra`], optionally instrumented with the k-machine accounting
/// probe (see [`crate::kmachine`]).
pub(crate) fn run_dra_with(
    graph: &Graph,
    cfg: &DhcConfig,
    km: Option<&mut KMachineProbe>,
) -> Result<RunOutcome, DhcError> {
    cfg.validate()?;
    let n = graph.node_count();
    if n < 3 {
        return Err(DhcError::GraphTooSmall { n });
    }
    let partition = Partition::from_colors(vec![0u32; n], 1);
    let mut run_span = Span::root(cfg.collector.as_ref(), "run", format!("dra n={n}"));
    let outcome = run_phase1(graph, &partition, cfg, km, &run_span)?;
    let succ: Vec<Option<NodeId>> = outcome.states.iter().map(|s| Some(s.succ)).collect();
    let pred: Vec<Option<NodeId>> = outcome.states.iter().map(|s| Some(s.pred)).collect();
    let pairs = pairs_from_links(&succ, &pred)?;
    let cycle = cycle_from_incident_pairs(graph, &pairs)?;
    let phases = vec![PhaseBreakdown {
        name: "dra".to_string(),
        rounds: outcome.metrics.rounds,
        messages: outcome.metrics.messages,
    }];
    run_span.add(outcome.metrics.rounds as u64, outcome.metrics.messages, outcome.metrics.words);
    drop(run_span);
    if let Some(col) = &cfg.collector {
        col.flush();
    }
    Ok(RunOutcome { cycle, metrics: outcome.metrics, phases })
}

/// Draws the Phase-1 coloring for `graph` under `cfg` (each node picks a
/// uniform color; the distributed algorithm does this locally — the runner
/// precomputes it so the partition is reproducible and inspectable).
pub(crate) fn draw_colors(n: usize, cfg: &DhcConfig) -> (Partition, usize) {
    let k = cfg.partition_count(n);
    let mut rng = rng_from_seed(derive_seed(cfg.seed, 0x00C0));
    (Partition::random(n, k, &mut rng), k)
}

/// Runs **DHC2** (the paper's Algorithm 3): Phase-1 partition DRA plus
/// `O(log n)` bridge-merge levels.
///
/// # Errors
///
/// Returns a [`DhcError`] on invalid configuration, partition failure,
/// missing bridges, or simulation faults.
pub fn run_dhc2(graph: &Graph, cfg: &DhcConfig) -> Result<RunOutcome, DhcError> {
    crate::dhc2::run(graph, cfg, None)
}

/// [`run_dhc2`] with an explicit Phase-1 coloring instead of the random
/// draw — the entry point for clustered operating points (see
/// [`dhc_graph::generator::clustered`]) where the graph's community
/// structure *is* the partition. `cfg.partitions` is ignored.
///
/// # Errors
///
/// Returns a [`DhcError`] on invalid configuration, partition failure,
/// missing bridges, or simulation faults.
///
/// # Panics
///
/// Panics if `colors.len() != graph.node_count()`, `num_colors == 0`, or
/// any color is `>= num_colors`.
pub fn run_dhc2_with_colors(
    graph: &Graph,
    cfg: &DhcConfig,
    colors: &[u32],
    num_colors: usize,
) -> Result<RunOutcome, DhcError> {
    cfg.validate()?;
    let n = graph.node_count();
    if n < 3 {
        return Err(DhcError::GraphTooSmall { n });
    }
    assert_eq!(colors.len(), n, "one color per node");
    let partition = Partition::from_colors(colors.to_vec(), num_colors);
    crate::dhc2::run_with_colors(graph, cfg, &partition, None)
}

/// Runs **DHC1** (the paper's Algorithm 2): Phase-1 partition DRA plus the
/// hypernode-DRA stitching phase.
///
/// # Errors
///
/// Returns a [`DhcError`] on invalid configuration, partition failure,
/// stitch starvation, or simulation faults.
pub fn run_dhc1(graph: &Graph, cfg: &DhcConfig) -> Result<RunOutcome, DhcError> {
    crate::dhc1::run(graph, cfg, None)
}

/// Runs the **Upcast** algorithm (the paper's §III): BFS-tree sampling
/// upcast, local solve at the root, routed downcast.
///
/// # Errors
///
/// Returns a [`DhcError`] on root-solve failure or simulation faults.
pub fn run_upcast(graph: &Graph, cfg: &DhcConfig) -> Result<RunOutcome, DhcError> {
    crate::upcast::run(graph, cfg, false, None)
}

/// Runs the trivial `O(m)` baseline: like Upcast but every node upcasts
/// **all** of its incident edges, so the root sees the whole topology
/// (the "collect everything at one node" strawman from §I-A).
///
/// # Errors
///
/// Returns a [`DhcError`] on root-solve failure or simulation faults.
pub fn run_collect_all(graph: &Graph, cfg: &DhcConfig) -> Result<RunOutcome, DhcError> {
    crate::upcast::run(graph, cfg, true, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhc_graph::{generator, thresholds};

    #[test]
    fn dra_on_complete_graph() {
        let g = generator::complete(24);
        let out = run_dra(&g, &DhcConfig::new(3)).unwrap();
        assert_eq!(out.cycle.len(), 24);
        assert!(out.metrics.rounds > 0);
        assert_eq!(out.phases.len(), 1);
    }

    #[test]
    fn dra_on_random_graph_above_threshold() {
        let n = 200;
        let p = thresholds::edge_probability(n, 1.0, 12.0);
        let g = generator::gnp(n, p, &mut dhc_graph::rng::rng_from_seed(8)).unwrap();
        let out = run_dra(&g, &DhcConfig::new(4)).unwrap();
        assert_eq!(out.cycle.len(), n);
    }

    #[test]
    fn dra_rejects_tiny_graph() {
        let g = generator::complete(2);
        assert!(matches!(run_dra(&g, &DhcConfig::new(0)), Err(DhcError::GraphTooSmall { n: 2 })));
    }

    #[test]
    fn dra_fails_cleanly_on_disconnected_graph() {
        let g = dhc_graph::Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
            .unwrap();
        let err = run_dra(&g, &DhcConfig::new(0)).unwrap_err();
        assert!(matches!(err, DhcError::PartitionFailed { .. }), "{err:?}");
    }

    #[test]
    fn dra_fails_cleanly_on_star() {
        let g = generator::star(8);
        let err = run_dra(&g, &DhcConfig::new(0)).unwrap_err();
        assert!(matches!(err, DhcError::PartitionFailed { .. }), "{err:?}");
    }

    #[test]
    fn dra_is_deterministic() {
        let g = generator::complete(16);
        let a = run_dra(&g, &DhcConfig::new(11)).unwrap();
        let b = run_dra(&g, &DhcConfig::new(11)).unwrap();
        assert_eq!(a.cycle.order(), b.cycle.order());
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
    }

    #[test]
    fn dra_different_seeds_differ() {
        let g = generator::complete(16);
        let a = run_dra(&g, &DhcConfig::new(1)).unwrap();
        let b = run_dra(&g, &DhcConfig::new(2)).unwrap();
        // Cycles almost surely differ on K_16.
        assert_ne!(a.cycle.order(), b.cycle.order());
    }

    #[test]
    fn cross_color_exchange_accounting() {
        // Square 0-1-2-3 colored by parity: all 4 edges are cross-color,
        // so round 1 pays 8 directed 1-word announcements.
        let g = dhc_graph::Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let colors = [0, 1, 0, 1];
        let mut m = Metrics::empty(4);
        account_cross_color_exchange(&mut m, &g, &colors, None);
        assert_eq!(m.messages, 8);
        assert_eq!(m.words, 8);
        assert_eq!(m.sent_per_node, vec![2, 2, 2, 2]);
        assert_eq!(m.received_per_node, vec![2, 2, 2, 2]);
        assert_eq!(m.round_traffic, vec![8]);
        assert_eq!(m.max_node_sends_per_round, 2);

        // The O(n) grouped-adjacency fast path agrees with the edge scan.
        let partition = Partition::from_colors(colors.to_vec(), 2);
        let pg = PartitionedGraph::new(&g, &partition);
        let mut fast = Metrics::empty(4);
        account_cross_color_exchange(&mut fast, &g, &colors, Some(&pg));
        assert_eq!(fast, m);

        // Uniform coloring: nothing crosses, metrics untouched.
        let mut m = Metrics::empty(4);
        account_cross_color_exchange(&mut m, &g, &[0; 4], None);
        assert_eq!(m, Metrics::empty(4));
        let uniform = Partition::from_colors(vec![0; 4], 1);
        let pg = PartitionedGraph::new(&g, &uniform);
        let mut m = Metrics::empty(4);
        account_cross_color_exchange(&mut m, &g, &[0; 4], Some(&pg));
        assert_eq!(m, Metrics::empty(4));
    }

    #[test]
    fn phase1_round0_matches_whole_graph_broadcast_oracle() {
        // Two triangles joined by cross edges, with explicit colors and
        // machine assignment. The init color announcement is one 1-word
        // broadcast per node, so a whole-graph machine-instrumented run
        // charges it once per (sender, receiving machine) — the merged
        // Phase-1 round-0 link loads (class-run broadcasts + synthesized
        // cross-color correction) must equal exactly that oracle.
        let g = Graph::from_edges(
            6,
            [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (0, 3), (0, 4), (2, 4)],
        )
        .unwrap();
        let partition = Partition::from_colors(vec![0, 0, 0, 1, 1, 1], 2);
        let assignment = vec![0usize, 0, 1, 0, 1, 1];
        let k = 2;
        // DRA succeeds whp, not surely: take the first succeeding seed.
        let probe = (5..13)
            .find_map(|seed| {
                let mut probe = KMachineProbe::with_assignment(assignment.clone(), k, 4);
                run_phase1(
                    &g,
                    &partition,
                    &DhcConfig::new(seed),
                    Some(&mut probe),
                    &Span::disabled(),
                )
                .ok()
                .map(|_| probe)
            })
            .expect("Phase 1 on two triangles should succeed for at least one of 8 seeds");
        let round0 = &probe.logs()[0].rounds()[0];
        assert_eq!(round0.round, 0);
        let mut expected = vec![0u64; k * k];
        for u in 0..6 {
            let mut machines: Vec<usize> =
                g.neighbors(u).iter().map(|&v| assignment[v as usize]).collect();
            machines.sort_unstable();
            machines.dedup();
            for m in machines {
                if m != assignment[u as usize] {
                    expected[assignment[u as usize] * k + m] += 1;
                }
            }
        }
        let mut got = vec![0u64; k * k];
        for &(link, words) in &round0.links {
            got[link as usize] = words;
        }
        assert_eq!(got, expected, "round-0 link loads diverged from the broadcast oracle");
    }

    #[test]
    fn dra_memory_stays_local() {
        // Fully-distributed property: peak memory O(degree), not O(n).
        // DRA succeeds whp, not surely; take the first succeeding seed
        // in a small window.
        let n = 128;
        let p = 0.2;
        let g = generator::gnp(n, p, &mut dhc_graph::rng::rng_from_seed(1)).unwrap();
        let out = (5..13)
            .filter_map(|seed| run_dra(&g, &DhcConfig::new(seed)).ok())
            .next()
            .expect("DRA should succeed for at least one of 8 seeds");
        let max_mem = out.metrics.max_memory();
        assert!(max_mem <= 2 * g.max_degree() + 64, "max mem {max_mem}");
    }
}
