//! Centralized reference implementations of DHC1/DHC2.
//!
//! These run the *same algorithmic ideas* (random partition, per-class
//! rotation, bridge merging / hypernode stitching) sequentially, with
//! direct access to the whole graph. They exist as **oracles**: the
//! distributed protocols and these references must agree on feasibility,
//! and any cycle either side produces is independently verified. They are
//! also handy for experiments that need many trials cheaply (no simulator
//! cost).

use crate::DhcError;
use dhc_graph::rng::{derive_seed, rng_from_seed};
use dhc_graph::{Graph, HamiltonianCycle, NodeId, Partition};
use dhc_rotation::{posa, PosaConfig};
use rand::Rng;

/// One subcycle during centralized merging: the global-id visiting order.
#[derive(Debug, Clone)]
struct Cycle {
    order: Vec<NodeId>,
}

impl Cycle {
    fn succ(&self, i: usize) -> NodeId {
        self.order[(i + 1) % self.order.len()]
    }
}

/// Runs the centralized analogue of DHC2: random `k`-coloring, sequential
/// rotation per class, then pairwise bridge merging level by level.
///
/// # Errors
///
/// Mirrors the distributed failure modes: [`DhcError::PartitionFailed`],
/// [`DhcError::NoBridge`], [`DhcError::GraphTooSmall`].
pub fn dhc2_reference(graph: &Graph, k: usize, seed: u64) -> Result<HamiltonianCycle, DhcError> {
    let n = graph.node_count();
    if n < 3 {
        return Err(DhcError::GraphTooSmall { n });
    }
    let mut rng = rng_from_seed(derive_seed(seed, 0x4EFA));
    let partition = Partition::random(n, k.clamp(1, n), &mut rng);
    let mut cycles = phase1_cycles(graph, &partition, seed)?;

    // Merge pairs level by level (the paper's Figure 3).
    let mut level = 0usize;
    while cycles.len() > 1 {
        let mut next: Vec<Cycle> = Vec::with_capacity(cycles.len().div_ceil(2));
        let mut iter = cycles.chunks_exact(2);
        for pair in iter.by_ref() {
            let merged = merge_pair(graph, &pair[0], &pair[1])
                .ok_or(DhcError::NoBridge { level, color: (next.len() * 2) as u32 })?;
            next.push(merged);
        }
        if let [leftover] = iter.remainder() {
            next.push(leftover.clone());
        }
        cycles = next;
        level += 1;
    }
    let order = cycles.pop().expect("at least one cycle").order;
    HamiltonianCycle::from_order(graph, order).map_err(DhcError::InvalidCycle)
}

/// Runs the centralized analogue of DHC1: Phase 1 as above, then hypernode
/// stitching with terminal bookkeeping.
///
/// # Errors
///
/// Mirrors the distributed failure modes ([`DhcError::StitchFailed`] when
/// the hypernode path starves).
pub fn dhc1_reference(graph: &Graph, k: usize, seed: u64) -> Result<HamiltonianCycle, DhcError> {
    let n = graph.node_count();
    if n < 3 {
        return Err(DhcError::GraphTooSmall { n });
    }
    let mut rng = rng_from_seed(derive_seed(seed, 0x4EFB));
    let partition = Partition::random(n, k.clamp(1, n), &mut rng);
    let cycles = phase1_cycles(graph, &partition, seed)?;
    if cycles.len() == 1 {
        return HamiltonianCycle::from_order(graph, cycles.into_iter().next().unwrap().order)
            .map_err(DhcError::InvalidCycle);
    }
    stitch_hypernodes(graph, cycles, &mut rng)
}

/// Phase 1: a verified subcycle per non-empty color class.
fn phase1_cycles(graph: &Graph, partition: &Partition, seed: u64) -> Result<Vec<Cycle>, DhcError> {
    let mut cycles = Vec::new();
    for (color, class) in partition.classes().enumerate() {
        if class.is_empty() {
            continue;
        }
        if class.len() < 3 {
            return Err(DhcError::PartitionFailed {
                color: color as u32,
                reason: crate::error::PartitionFailure::TooSmall,
            });
        }
        let (sub, map) = graph.induced_subgraph(class).expect("non-empty class");
        let mut rng = rng_from_seed(derive_seed(seed, 0x1000 + color as u64));
        let (cycle, _) = posa(&sub, &PosaConfig::default(), &mut rng).map_err(|_| {
            DhcError::PartitionFailed {
                color: color as u32,
                reason: crate::error::PartitionFailure::OutOfEdges,
            }
        })?;
        let order: Vec<NodeId> = cycle.order().iter().map(|&local| map[(local) as usize]).collect();
        cycles.push(Cycle { order });
    }
    Ok(cycles)
}

/// Finds a bridge between two cycles and splices them (first usable bridge;
/// the distributed version picks the minimum, which only affects which of
/// the many valid cycles results).
fn merge_pair(graph: &Graph, a: &Cycle, b: &Cycle) -> Option<Cycle> {
    let sb = b.order.len();
    // Position of each b-node for O(1) lookups.
    let mut pos_b = std::collections::HashMap::with_capacity(sb);
    for (i, &w) in b.order.iter().enumerate() {
        pos_b.insert(w, i);
    }
    for (i, &v) in a.order.iter().enumerate() {
        let u = a.succ(i);
        for &w in graph.neighbors(v) {
            let Some(&j) = pos_b.get(&w) else { continue };
            let x_succ = b.succ(j);
            let x_pred = b.order[(j + sb - 1) % sb];
            if graph.has_edge(u, x_succ) {
                // Case A: drop (v,u) and (w, succ w); cross (v,w),(u,succ w).
                return Some(splice(a, b, i, j, true));
            }
            if graph.has_edge(u, x_pred) {
                // Case B: drop (v,u) and (pred w, w); cross (v,w),(u,pred w).
                return Some(splice(a, b, i, j, false));
            }
        }
    }
    None
}

/// Builds the merged visiting order. `i` = position of `v` in `a`;
/// `j` = position of `w` in `b`; `succ_side` selects case A.
fn splice(a: &Cycle, b: &Cycle, i: usize, j: usize, succ_side: bool) -> Cycle {
    let (sa, sb) = (a.order.len(), b.order.len());
    let mut order = Vec::with_capacity(sa + sb);
    // Start at u = succ(v), walk a forward around to v.
    for t in 0..sa {
        order.push(a.order[(i + 1 + t) % sa]);
    }
    if succ_side {
        // w, then b reversed: w, pred(w), ..., succ(w).
        for t in 0..sb {
            order.push(b.order[(j + sb - t) % sb]);
        }
    } else {
        // w, then b forward: w, succ(w), ..., pred(w).
        for t in 0..sb {
            order.push(b.order[(j + t) % sb]);
        }
    }
    Cycle { order }
}

/// Hypernode stitching with terminal bookkeeping (the
/// construction, sequential form). Hypernode `i`'s terminals are the first
/// and last node of cycle `i`'s order.
fn stitch_hypernodes<R: Rng + ?Sized>(
    graph: &Graph,
    cycles: Vec<Cycle>,
    rng: &mut R,
) -> Result<HamiltonianCycle, DhcError> {
    let k = cycles.len();
    // terminal -> (hypernode index, which end).
    let mut owner = std::collections::HashMap::new();
    for (h, c) in cycles.iter().enumerate() {
        owner.insert(c.order[0], (h, 0u8));
        owner.insert(*c.order.last().expect("non-empty"), (h, 1u8));
    }
    // Path over hypernodes; per placed hypernode remember (entry_end).
    // entry_end e means the final cycle enters at that end and exits at the
    // other. The live endpoint is the exit terminal of the last hypernode.
    let mut path: Vec<(usize, u8)> = vec![(0, 0)]; // start: enter h0 at end 0
    let mut on_path = vec![false; k];
    on_path[0] = true;
    // Cross links: links[h] = (node attached before entry, node attached
    // after exit) in path order.
    let mut entry_link: Vec<Option<NodeId>> = vec![None; k];
    let mut exit_link: Vec<Option<NodeId>> = vec![None; k];
    let term = |h: usize, end: u8| -> NodeId {
        if end == 0 {
            cycles[h].order[0]
        } else {
            *cycles[h].order.last().expect("non-empty")
        }
    };
    // Unused draw lists per terminal.
    let mut unused: std::collections::HashMap<NodeId, Vec<NodeId>> = owner
        .keys()
        .map(|&t| {
            let mut l: Vec<NodeId> =
                graph.neighbors(t).iter().copied().filter(|x| owner.contains_key(x)).collect();
            use rand::seq::SliceRandom;
            l.shuffle(rng);
            (t, l)
        })
        .collect();

    let max_steps = 50 * k * ((k.max(2)) as f64).ln().ceil() as usize + 100;
    for _ in 0..max_steps {
        let &(head_h, head_entry) = path.last().expect("non-empty path");
        let exit_end = 1 - head_entry;
        let x = term(head_h, exit_end);
        let Some(y) = unused.get_mut(&x).and_then(Vec::pop) else {
            return Err(DhcError::StitchFailed { placed: path.len(), total: k });
        };
        if let Some(l) = unused.get_mut(&y) {
            if let Some(p) = l.iter().position(|&t| t == x) {
                l.swap_remove(p);
            }
        }
        let (hy, end_y) = owner[&y];
        if hy == head_h {
            continue; // own partner: unusable
        }
        if !on_path[hy] {
            // Extend: enter hy at end_y.
            exit_link[head_h] = Some(y);
            entry_link[hy] = Some(x);
            on_path[hy] = true;
            path.push((hy, end_y));
            continue;
        }
        // hy on path: find its position.
        let jpos = path.iter().position(|&(h, _)| h == hy).expect("on path");
        let (_, entry_j) = path[jpos];
        let exit_j = 1 - entry_j;
        if jpos == 0 && end_y == entry_j {
            // The free start terminal: closing edge if the path is full.
            if path.len() == k {
                entry_link[path[0].0] = Some(x);
                exit_link[head_h] = Some(y);
                return realize(graph, &cycles, &path, &entry_link, &exit_link);
            }
            continue; // early closing attempt: rejected
        }
        if end_y != exit_j || jpos + 1 >= path.len() {
            continue; // entry terminal (or the head itself): rejected
        }
        // Rotation: reverse the segment after jpos; reversed hypernodes flip
        // their entry end; the pivot's exit re-links to x.
        let old_next_entry = path[jpos + 1].0;
        exit_link[hy] = Some(x);
        entry_link[old_next_entry] = None;
        let mut seg: Vec<(usize, u8)> = path.split_off(jpos + 1);
        seg.reverse();
        for e in &mut seg {
            // Flip orientation; swap entry/exit links accordingly.
            e.1 = 1 - e.1;
            let h = e.0;
            std::mem::swap(&mut entry_link[h], &mut exit_link[h]);
        }
        // The old head's (now first of seg) entry link is the new cross
        // edge to the pivot's exit terminal.
        let first = seg[0].0;
        entry_link[first] = Some(x);
        exit_link[hy] = Some(term(first, seg[0].1));
        // New head: last of seg; clear its exit link (live end).
        let last = seg.last().expect("non-empty segment").0;
        exit_link[last] = None;
        path.extend(seg);
    }
    Err(DhcError::StitchFailed { placed: path.len(), total: k })
}

/// Assembles the final order from the hypernode path.
fn realize(
    graph: &Graph,
    cycles: &[Cycle],
    path: &[(usize, u8)],
    _entry_link: &[Option<NodeId>],
    _exit_link: &[Option<NodeId>],
) -> Result<HamiltonianCycle, DhcError> {
    let mut order = Vec::new();
    for &(h, entry_end) in path {
        let c = &cycles[h].order;
        if entry_end == 0 {
            // Enter at first element, exit at last: forward walk.
            order.extend(c.iter().copied());
        } else {
            order.extend(c.iter().rev().copied());
        }
    }
    HamiltonianCycle::from_order(graph, order).map_err(DhcError::InvalidCycle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhc_graph::{generator, thresholds};

    #[test]
    fn dhc2_reference_solves_paper_regime() {
        let n = 300;
        let p = thresholds::edge_probability(n, 0.5, 6.0);
        let g = generator::gnp(n, p, &mut rng_from_seed(60)).unwrap();
        let cycle = dhc2_reference(&g, 8, 61).unwrap();
        assert_eq!(cycle.len(), n);
    }

    #[test]
    fn dhc1_reference_solves_paper_regime() {
        let n = 300;
        let p = thresholds::edge_probability(n, 0.5, 6.0);
        let g = generator::gnp(n, p, &mut rng_from_seed(62)).unwrap();
        let cycle = dhc1_reference(&g, 8, 63).unwrap();
        assert_eq!(cycle.len(), n);
    }

    #[test]
    fn references_fail_on_disconnected_cliques() {
        let mut edges = Vec::new();
        for u in 0..12 {
            for v in (u + 1)..12 {
                edges.push((u, v));
                edges.push((u + 12, v + 12));
            }
        }
        let g = Graph::from_edges(24, edges).unwrap();
        // With 2+ colors, some class straddles both cliques whp -> phase-1
        // failure; with 1 color the single posa run fails. Either way: Err.
        assert!(dhc2_reference(&g, 2, 1).is_err());
        assert!(dhc1_reference(&g, 2, 1).is_err());
    }

    #[test]
    fn reference_single_partition_is_posa() {
        let n = 150;
        let p = thresholds::edge_probability(n, 1.0, 12.0);
        let g = generator::gnp(n, p, &mut rng_from_seed(64)).unwrap();
        let cycle = dhc1_reference(&g, 1, 65).unwrap();
        assert_eq!(cycle.len(), n);
    }

    #[test]
    fn reference_is_deterministic() {
        let n = 200;
        let g = generator::gnp(n, 0.5, &mut rng_from_seed(66)).unwrap();
        let a = dhc2_reference(&g, 4, 68).unwrap();
        let b = dhc2_reference(&g, 4, 68).unwrap();
        assert_eq!(a.order(), b.order());
    }

    #[test]
    fn splice_cases_produce_valid_cycles() {
        // Two triangles inside K6: splice both ways and verify.
        let g = generator::complete(6);
        let a = Cycle { order: vec![0, 1, 2] };
        let b = Cycle { order: vec![3, 4, 5] };
        for succ_side in [true, false] {
            let m = splice(&a, &b, 1, 1, succ_side);
            assert_eq!(m.order.len(), 6);
            assert!(HamiltonianCycle::from_order(&g, m.order).is_ok());
        }
    }
}
