//! The **Upcast** algorithm (the paper's §III): a conceptually simple
//! *centralized* approach that still respects the CONGEST bandwidth limit
//! but gives up the fully-distributed memory restriction.
//!
//! 1. **Leader election + BFS tree** (`O(D)` rounds): simultaneous min-id
//!    flood waves with echo; the winning wave's parent pointers form a BFS
//!    tree, and the echo counts the nodes (the root verifies it reached all
//!    `n`). The root then broadcasts `Start` down the tree so upcasting
//!    begins only on a stable tree.
//! 2. **Sampling + upcast**: every node samples `⌈c′ ln n⌉` of its incident
//!    edges uniformly without replacement (or *all* of them in the trivial
//!    `O(m)` collect-everything baseline) and pipelines the records up the
//!    tree, a bounded number of words per tree edge per round. Each node
//!    remembers through which child it saw each record owner — the routing
//!    table for the downcast. Congestion is bounded by the largest
//!    root-child subtree load, which Lemma 18 shows is balanced in
//!    `G(n, p)`.
//! 3. **Local solve**: the root assembles the sampled subgraph and runs the
//!    sequential rotation algorithm ([`dhc_rotation::posa`]), retrying with
//!    fresh randomness a configured number of times.
//! 4. **Downcast**: the root sends each node its two incident cycle edges,
//!    routed along the tree (same pipelining, same congestion bound). Every
//!    node halts when it has its own record and has forwarded all of its
//!    descendants'.
//!
//! The root's routing table and record buffer are `Θ(n log n)` words — this
//! is exactly the paper's point that Upcast is *not* fully distributed; the
//! per-node memory metrics expose it (experiment E8).

use crate::kmachine::KMachineProbe;
use crate::output::NodeCycleOutput;
use crate::runner::{PhaseBreakdown, RunOutcome};
use crate::{cycle_from_incident_pairs, DhcConfig, DhcError};
use dhc_congest::{
    Context, EnumCodec, Inbox, MsgCodec, Network, NodeId, PackedCodec, PackedMsg, PackedPayload,
    Payload, Protocol, Span,
};
use dhc_graph::rng::derive_seed;
use dhc_graph::{Graph, GraphBuilder};
use dhc_rotation::{posa_with_restarts, PosaConfig};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::{HashMap, VecDeque};
use std::marker::PhantomData;

/// Records forwarded per tree edge per round (each is ≤ 3 words, so 4 of
/// them fit the default 16-word budget).
const BATCH: usize = 4;

/// Messages of the Upcast protocol (exposed so equivalence tests can
/// pin the packed wire form against the enum oracle).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpMsg {
    /// Leader-election flood (minimum id wins).
    Wave {
        /// Candidate leader id.
        root: NodeId,
    },
    /// Election echo: subtree size.
    WaveAck {
        /// The wave this ack belongs to.
        root: NodeId,
        /// Nodes in the acked subtree (including the sender).
        count: usize,
    },
    /// Root → tree: election finished, begin upcasting.
    Start,
    /// One sampled edge `(owner, other)`, traveling rootward.
    EdgeRec {
        /// The node that sampled the edge.
        owner: NodeId,
        /// The edge's other endpoint.
        other: NodeId,
    },
    /// A child finished its subtree's upcast stream.
    UpEnd,
    /// One downcast record: `target`'s two cycle neighbors.
    Down {
        /// The node this record is for.
        target: NodeId,
        /// One cycle neighbor.
        pa: NodeId,
        /// The other cycle neighbor.
        pb: NodeId,
    },
    /// Abort flood (root solve failed or graph disconnected).
    Abort,
}

impl Payload for UpMsg {
    fn words(&self) -> usize {
        match self {
            UpMsg::Wave { .. } | UpMsg::Start | UpMsg::UpEnd | UpMsg::Abort => 1,
            UpMsg::WaveAck { .. } | UpMsg::EdgeRec { .. } => 2,
            UpMsg::Down { .. } => 3,
        }
    }
}

impl PackedPayload for UpMsg {
    type Wire = PackedMsg;

    fn pack(&self) -> PackedMsg {
        match *self {
            UpMsg::Wave { root } => PackedMsg::new(0, &[root]),
            UpMsg::WaveAck { root, count } => PackedMsg::new(1, &[root, count as u32]),
            UpMsg::Start => PackedMsg::new(2, &[0]),
            UpMsg::EdgeRec { owner, other } => PackedMsg::new(3, &[owner, other]),
            UpMsg::UpEnd => PackedMsg::new(4, &[0]),
            UpMsg::Down { target, pa, pb } => PackedMsg::new(5, &[target, pa, pb]),
            UpMsg::Abort => PackedMsg::new(6, &[0]),
        }
    }

    fn unpack(m: &PackedMsg) -> Self {
        let w = m.payload();
        match m.tag {
            0 => UpMsg::Wave { root: w[0] },
            1 => UpMsg::WaveAck { root: w[0], count: w[1] as usize },
            2 => UpMsg::Start,
            3 => UpMsg::EdgeRec { owner: w[0], other: w[1] },
            4 => UpMsg::UpEnd,
            5 => UpMsg::Down { target: w[0], pa: w[1], pb: w[2] },
            6 => UpMsg::Abort,
            t => panic!("unknown UpMsg tag {t}"),
        }
    }
}

/// Per-node state of the Upcast protocol, generic over the wire codec.
#[derive(Debug)]
pub(crate) struct UpcastNode<C: MsgCodec<UpMsg> = EnumCodec> {
    id: NodeId,
    rng: SmallRng,
    /// `true` for the collect-everything baseline (sample = all edges).
    all_edges: bool,
    sample_factor: f64,
    sample_count: usize,
    root_retries: usize,
    seed: u64,

    // Election.
    best_root: NodeId,
    parent: Option<NodeId>,
    pending: usize,
    acc: usize,
    children: Vec<NodeId>,
    started: bool,

    // Upcast.
    upqueue: VecDeque<(NodeId, NodeId)>,
    /// Routing table: record owner → the child it arrived through.
    route: HashMap<NodeId, NodeId>,
    up_end_pending: usize,
    sent_up_end: bool,
    /// Root only: all collected records.
    records: Vec<(NodeId, NodeId)>,

    // Downcast.
    downqueues: HashMap<NodeId, VecDeque<(NodeId, NodeId, NodeId)>>,
    down_received: usize,
    solved: bool,

    /// This node's two cycle neighbors, once known.
    pub output: Option<NodeCycleOutput>,
    /// Set if the run aborted (root failure or disconnected graph).
    pub aborted: bool,
    /// Root only: number of distinct sampled edges it solved over.
    pub root_edge_count: usize,
    /// Size of the routing table (= descendants in the BFS tree); the
    /// Lemma 18 subtree-balance experiment reads this.
    pub subtree_descendants: usize,

    _codec: PhantomData<C>,
}

impl<C: MsgCodec<UpMsg>> UpcastNode<C> {
    pub(crate) fn new(id: NodeId, cfg: &DhcConfig, all_edges: bool) -> Self {
        UpcastNode {
            id,
            rng: SmallRng::seed_from_u64(derive_seed(cfg.seed, 0x5000 + id as u64)),
            all_edges,
            sample_factor: cfg.sample_factor,
            sample_count: 0,
            root_retries: cfg.root_solve_retries,
            seed: cfg.seed,
            best_root: id,
            parent: None,
            pending: 0,
            acc: 0,
            children: Vec::new(),
            started: false,
            upqueue: VecDeque::new(),
            route: HashMap::new(),
            up_end_pending: 0,
            sent_up_end: false,
            records: Vec::new(),
            downqueues: HashMap::new(),
            down_received: 0,
            solved: false,
            output: None,
            aborted: false,
            root_edge_count: 0,
            subtree_descendants: 0,
            _codec: PhantomData,
        }
    }

    fn is_root(&self) -> bool {
        self.parent.is_none() && self.best_root == self.id
    }

    fn wave_check(&mut self, ctx: &mut Context<'_, C::Wire>) {
        if self.pending != 0 {
            return;
        }
        match self.parent {
            Some(p) => {
                ctx.send(
                    p,
                    C::encode(UpMsg::WaveAck { root: self.best_root, count: 1 + self.acc }),
                );
            }
            None if self.best_root == self.id => {
                let count = 1 + self.acc;
                if count != ctx.n() {
                    // Disconnected graph: cannot collect everything.
                    self.abort(ctx, None);
                    return;
                }
                self.begin_upcast(ctx);
            }
            None => {}
        }
    }

    fn begin_upcast(&mut self, ctx: &mut Context<'_, C::Wire>) {
        self.started = true;
        self.up_end_pending = self.children.len();
        // Draw the samples.
        let mut nbrs: Vec<NodeId> = ctx.neighbors().to_vec();
        let k = if self.all_edges {
            nbrs.len()
        } else {
            let n = ctx.n().max(2) as f64;
            (self.sample_factor_ln(n)).min(nbrs.len())
        };
        nbrs.shuffle(&mut self.rng);
        nbrs.truncate(k);
        self.sample_count = k;
        ctx.charge_compute(k as u64);
        if self.is_root() {
            for other in nbrs {
                self.records.push((self.id, other));
            }
            self.root_finish_check(ctx);
        } else {
            for other in nbrs {
                self.upqueue.push_back((self.id, other));
            }
        }
        let children = self.children.clone();
        for c in children {
            ctx.send(c, C::encode(UpMsg::Start));
        }
        // Pumping happens once, at the end of the round callback.
    }

    /// The paper's `c' log n` sample size.
    fn sample_factor_ln(&self, n: f64) -> usize {
        (self.sample_factor * n.ln()).ceil() as usize
    }

    fn pump_up(&mut self, ctx: &mut Context<'_, C::Wire>) {
        if !self.started || self.is_root() {
            return;
        }
        let Some(p) = self.parent else { return };
        let mut sent = 0;
        while sent < BATCH {
            match self.upqueue.pop_front() {
                Some((owner, other)) => {
                    ctx.send(p, C::encode(UpMsg::EdgeRec { owner, other }));
                    sent += 1;
                }
                None => break,
            }
        }
        if !self.upqueue.is_empty() {
            ctx.wake_in(1);
        } else if !self.sent_up_end && self.up_end_pending == 0 {
            ctx.send(p, C::encode(UpMsg::UpEnd));
            self.sent_up_end = true;
        }
    }

    fn root_finish_check(&mut self, ctx: &mut Context<'_, C::Wire>) {
        if !self.is_root() || self.solved || self.up_end_pending != 0 || !self.started {
            return;
        }
        self.solved = true;
        self.subtree_descendants = self.route.len();
        // Build the sampled subgraph and solve locally.
        let n = ctx.n();
        let mut b = GraphBuilder::with_capacity(n, self.records.len());
        for &(a, c) in &self.records {
            // Records are validated edges of G by construction.
            let _ = b.add_edge(a, c);
        }
        let local = b.build();
        self.root_edge_count = local.edge_count();
        ctx.charge_compute(self.records.len() as u64);
        let mut rng = SmallRng::seed_from_u64(derive_seed(self.seed, 0x7A00));
        let cycle = match posa_with_restarts(
            &local,
            &PosaConfig::default(),
            self.root_retries.max(1),
            &mut rng,
        ) {
            Ok((cycle, stats)) => {
                ctx.charge_compute(stats.steps as u64);
                cycle
            }
            Err(_) => {
                self.abort(ctx, None);
                return;
            }
        };
        // Enqueue every node's two cycle neighbors.
        let succ = cycle.to_successors();
        let mut pred = vec![0usize; n];
        for (v, &s) in succ.iter().enumerate() {
            pred[(s) as usize] = v;
        }
        for t in 0..n as NodeId {
            if t == self.id {
                self.output =
                    Some(NodeCycleOutput::new(pred[t as usize] as NodeId, succ[t as usize]));
            } else if let Some(&child) = self.route.get(&t) {
                self.downqueues.entry(child).or_default().push_back((
                    t,
                    pred[t as usize] as NodeId,
                    succ[t as usize],
                ));
            }
        }
        // Pumping happens once, at the end of the round callback.
    }

    fn pump_down(&mut self, ctx: &mut Context<'_, C::Wire>) {
        let mut any_left = false;
        let children: Vec<NodeId> = self.downqueues.keys().copied().collect();
        for c in children {
            let q = self.downqueues.get_mut(&c).expect("key just listed");
            for _ in 0..BATCH {
                match q.pop_front() {
                    Some((target, pa, pb)) => {
                        ctx.send(c, C::encode(UpMsg::Down { target, pa, pb }))
                    }
                    None => break,
                }
            }
            if !q.is_empty() {
                any_left = true;
            }
        }
        if any_left {
            ctx.wake_in(1);
        } else {
            self.halt_check(ctx);
        }
    }

    fn halt_check(&mut self, ctx: &mut Context<'_, C::Wire>) {
        let queues_empty = self.downqueues.values().all(VecDeque::is_empty);
        if !queues_empty || !self.solved {
            return;
        }
        if self.is_root() {
            ctx.halt();
            return;
        }
        if self.output.is_some() && self.down_received == self.route.len() + 1 {
            ctx.halt();
        }
    }

    fn abort(&mut self, ctx: &mut Context<'_, C::Wire>, skip: Option<NodeId>) {
        if self.aborted {
            return;
        }
        self.aborted = true;
        // Flood over all edges so even non-tree neighbors terminate.
        ctx.flood_except(skip, C::encode(UpMsg::Abort));
        ctx.halt();
    }
}

impl<C: MsgCodec<UpMsg>> Protocol for UpcastNode<C> {
    type Msg = C::Wire;

    fn init(&mut self, ctx: &mut Context<'_, C::Wire>) {
        self.best_root = self.id;
        self.parent = None;
        self.pending = ctx.degree();
        if self.pending == 0 {
            // Isolated node: nothing can work.
            self.aborted = true;
            ctx.halt();
            return;
        }
        ctx.send_all(C::encode(UpMsg::Wave { root: self.id }));
    }

    fn round(&mut self, ctx: &mut Context<'_, C::Wire>, inbox: Inbox<'_, C::Wire>) {
        // Election waves are handled as a batch with a *randomized* parent
        // choice among the senders that delivered the best root this round.
        // (Deterministic tie-breaking would funnel whole BFS levels through
        // the lowest-id parent and destroy the subtree balance that Lemma 18
        // relies on for the pipelined congestion bound.)
        let wave_min = inbox
            .iter()
            .filter_map(|(_, m)| match C::decode(m) {
                UpMsg::Wave { root } => Some(root),
                _ => None,
            })
            .min();
        if let Some(r) = wave_min {
            let senders: Vec<NodeId> = inbox
                .iter()
                .filter(|&(_, m)| matches!(C::decode(m), UpMsg::Wave { root } if root == r))
                .map(|(f, _)| f)
                .collect();
            if r < self.best_root {
                self.best_root = r;
                let parent = *senders.choose(&mut self.rng).expect("non-empty senders");
                self.parent = Some(parent);
                self.acc = 0;
                self.children.clear();
                // The co-senders of this wave already count as responses.
                self.pending = (ctx.degree() - 1).saturating_sub(senders.len() - 1);
                ctx.send_all_except(parent, C::encode(UpMsg::Wave { root: r }));
                self.wave_check(ctx);
            } else if r == self.best_root {
                self.pending = self.pending.saturating_sub(senders.len());
                self.wave_check(ctx);
            }
        }
        for (from, msg) in inbox.iter() {
            if self.aborted {
                return;
            }
            match C::decode(msg) {
                UpMsg::Wave { .. } => {} // handled in the batch above
                UpMsg::WaveAck { root, count } => {
                    if root == self.best_root {
                        self.acc += count;
                        self.children.push(from);
                        self.pending = self.pending.saturating_sub(1);
                        self.wave_check(ctx);
                    }
                }
                UpMsg::Start => {
                    if !self.started {
                        self.begin_upcast(ctx);
                    }
                }
                UpMsg::EdgeRec { owner, other } => {
                    self.route.entry(owner).or_insert(from);
                    if self.is_root() {
                        self.records.push((owner, other));
                    } else {
                        self.upqueue.push_back((owner, other));
                    }
                }
                UpMsg::UpEnd => {
                    self.up_end_pending = self.up_end_pending.saturating_sub(1);
                    if self.is_root() {
                        self.root_finish_check(ctx);
                    }
                }
                UpMsg::Down { target, pa, pb } => {
                    self.down_received += 1;
                    self.solved = true;
                    self.subtree_descendants = self.route.len();
                    if target == self.id {
                        self.output = Some(NodeCycleOutput::new(pa, pb));
                    } else if let Some(&child) = self.route.get(&target) {
                        self.downqueues.entry(child).or_default().push_back((target, pa, pb));
                    }
                }
                UpMsg::Abort => {
                    self.abort(ctx, Some(from));
                    return;
                }
            }
        }
        if self.aborted {
            return;
        }
        self.pump_up(ctx);
        if self.solved {
            self.pump_down(ctx);
        }
        self.halt_check(ctx);
    }

    fn memory_words(&self) -> usize {
        self.upqueue.len() * 2
            + self.route.len() * 2
            + self.records.len() * 2
            + self.downqueues.values().map(|q| q.len() * 3).sum::<usize>()
            + self.children.len()
            + 24
    }
}

/// Runs Upcast (or the collect-everything baseline when `all_edges`),
/// optionally instrumented with the k-machine accounting probe (see
/// [`crate::kmachine`]).
pub(crate) fn run(
    graph: &Graph,
    cfg: &DhcConfig,
    all_edges: bool,
    km: Option<&mut KMachineProbe>,
) -> Result<RunOutcome, DhcError> {
    if cfg.packed_payloads {
        run_with::<PackedCodec>(graph, cfg, all_edges, km)
    } else {
        run_with::<EnumCodec>(graph, cfg, all_edges, km)
    }
}

/// [`run`] pinned to a wire codec.
fn run_with<C: MsgCodec<UpMsg>>(
    graph: &Graph,
    cfg: &DhcConfig,
    all_edges: bool,
    km: Option<&mut KMachineProbe>,
) -> Result<RunOutcome, DhcError> {
    cfg.validate()?;
    let n = graph.node_count();
    if n < 3 {
        return Err(DhcError::GraphTooSmall { n });
    }
    let algo = if all_edges { "collect-all" } else { "upcast" };
    let mut run_span = Span::root(cfg.collector.as_ref(), "run", format!("{algo} n={n}"));
    let mut phase_span = run_span.child("phase", algo);
    let nodes: Vec<UpcastNode<C>> =
        (0..n).map(|v| UpcastNode::new((v) as u32, cfg, all_edges)).collect();
    let mut net = match km.as_deref() {
        Some(p) => Network::new_with_machines(graph, cfg.sim_config(), nodes, p.global_map())?,
        None => Network::new(graph, cfg.sim_config(), nodes)?,
    };
    net.run()?;
    let (report, nodes) = net.finish();
    if let (Some(p), Some(log)) = (km, report.machine_log) {
        p.absorb_phase_log(log);
    }
    if let Some(root) = nodes.iter().find(|nd| nd.aborted) {
        return Err(DhcError::RootSolveFailed { sampled_edges: root.root_edge_count });
    }
    let pairs: Vec<_> = nodes
        .iter()
        .map(|nd| nd.output.ok_or(DhcError::RootSolveFailed { sampled_edges: 0 }))
        .collect::<Result<_, _>>()?;
    let cycle = cycle_from_incident_pairs(graph, &pairs)?;
    let phases = vec![PhaseBreakdown {
        name: algo.to_string(),
        rounds: report.metrics.rounds,
        messages: report.metrics.messages,
    }];
    let m = &report.metrics;
    phase_span.add(m.rounds as u64, m.messages, m.words);
    drop(phase_span);
    run_span.add(m.rounds as u64, m.messages, m.words);
    drop(run_span);
    if let Some(col) = &cfg.collector {
        col.flush();
    }
    Ok(RunOutcome { cycle, metrics: report.metrics, phases })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhc_graph::{generator, rng::rng_from_seed, thresholds};

    #[test]
    fn upcast_on_dense_random_graph() {
        let n = 200;
        let p = thresholds::edge_probability(n, 0.5, 2.0);
        let g = generator::gnp(n, p, &mut rng_from_seed(40)).unwrap();
        let out = run(&g, &DhcConfig::new(41), false, None).unwrap();
        assert_eq!(out.cycle.len(), n);
        assert_eq!(out.phases[0].name, "upcast");
    }

    #[test]
    fn upcast_root_memory_is_large_but_leaves_small() {
        // The defining non-fully-distributed property: the root holds
        // Theta(n log n) words while typical nodes hold far less.
        let n = 200;
        let p = thresholds::edge_probability(n, 0.5, 2.0);
        let g = generator::gnp(n, p, &mut rng_from_seed(42)).unwrap();
        let out = run(&g, &DhcConfig::new(43), false, None).unwrap();
        let mems = &out.metrics.peak_memory_per_node;
        let max = *mems.iter().max().unwrap();
        let median = {
            let mut s = mems.clone();
            s.sort_unstable();
            s[n / 2]
        };
        assert!(max > 2 * n, "root memory should be Omega(n): {max}");
        assert!(median < max / 4, "median {median} vs max {max}");
    }

    #[test]
    fn collect_all_baseline_works_and_costs_more() {
        let n = 150;
        let p = 0.3;
        let g = generator::gnp(n, p, &mut rng_from_seed(44)).unwrap();
        let up = run(&g, &DhcConfig::new(45), false, None).unwrap();
        let all = run(&g, &DhcConfig::new(45), true, None).unwrap();
        assert_eq!(up.cycle.len(), n);
        assert_eq!(all.cycle.len(), n);
        assert!(
            all.metrics.messages > up.metrics.messages,
            "collect-all {} should send more than upcast {}",
            all.metrics.messages,
            up.metrics.messages
        );
    }

    #[test]
    fn upcast_fails_cleanly_when_sample_too_sparse() {
        // With a tiny sampling factor on a sparse graph, the sampled
        // subgraph whp has no Hamiltonian cycle: typed failure.
        let n = 120;
        let p = thresholds::edge_probability(n, 1.0, 8.0);
        let g = generator::gnp(n, p, &mut rng_from_seed(46)).unwrap();
        let cfg = DhcConfig::new(47).with_sample_factor(0.3);
        let err = run(&g, &cfg, false, None).unwrap_err();
        assert!(matches!(err, DhcError::RootSolveFailed { .. }), "{err:?}");
    }

    #[test]
    fn upcast_rejects_disconnected_graph() {
        let mut edges = Vec::new();
        for u in 0..6 {
            for v in (u + 1)..6 {
                edges.push((u, v));
                edges.push((u + 6, v + 6));
            }
        }
        let g = Graph::from_edges(12, edges).unwrap();
        let err = run(&g, &DhcConfig::new(0), false, None).unwrap_err();
        assert!(matches!(err, DhcError::RootSolveFailed { .. }), "{err:?}");
    }

    #[test]
    fn upcast_is_deterministic() {
        let n = 100;
        let g = generator::gnp(n, 0.3, &mut rng_from_seed(48)).unwrap();
        let a = run(&g, &DhcConfig::new(49), false, None).unwrap();
        let b = run(&g, &DhcConfig::new(49), false, None).unwrap();
        assert_eq!(a.cycle.order(), b.cycle.order());
        assert_eq!(a.metrics.rounds, b.metrics.rounds);
    }

    #[test]
    fn message_words() {
        assert_eq!(UpMsg::Wave { root: 1 }.words(), 1);
        assert_eq!(UpMsg::EdgeRec { owner: 1, other: 2 }.words(), 2);
        assert_eq!(UpMsg::Down { target: 1, pa: 2, pb: 3 }.words(), 3);
    }
}
