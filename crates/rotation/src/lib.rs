//! Sequential extension–rotation algorithms for Hamiltonian cycles in
//! random graphs.
//!
//! This crate implements the classical randomized procedure of Angluin and
//! Valiant (the "rotation algorithm", also treated in Mitzenmacher & Upfal
//! ch. 5) that the paper's **Distributed Rotation Algorithm (DRA)**
//! distributes:
//!
//! * [`RotationPath`] — the path data structure with `O(segment)` Pósa
//!   rotations and position bookkeeping matching the paper's renumbering
//!   rule `i ← h + j + 1 − i`;
//! * [`posa`] — the full algorithm: grow a path by random unused edges,
//!   rotate on collisions, close when the head reaches the tail; fully
//!   instrumented ([`RotationStats`]) so experiment **E1** can check the
//!   `7 n ln n` step bound of Theorem 2;
//! * [`posa_subsampled`] — the *relaxed* process from the Theorem 2 proof,
//!   in which every node's unused list is an independent `q`-subsample
//!   (`q = 1 − √(1−p)`) of its incident edges;
//! * [`greedy`] — a no-rotation baseline demonstrating why rotations are
//!   necessary (ablation experiment).
//!
//! The Upcast algorithm's root uses [`posa`] as its local solver.
//!
//! # Example
//!
//! ```
//! use dhc_graph::{generator, rng::rng_from_seed, thresholds};
//! use dhc_rotation::{posa, PosaConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let n = 256;
//! let p = thresholds::edge_probability(n, 1.0, 8.0); // c ln n / n
//! let mut rng = rng_from_seed(1);
//! let g = generator::gnp(n, p, &mut rng)?;
//! let (cycle, stats) = posa(&g, &PosaConfig::default(), &mut rng)?;
//! assert_eq!(cycle.len(), n);
//! assert!(stats.steps <= dhc_graph::thresholds::dra_step_budget(n, 1.0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod greedy;
mod path;
mod posa;
mod stats;

pub use error::RotationError;
pub use greedy::{greedy, GreedyOutcome};
pub use path::RotationPath;
pub use posa::{posa, posa_subsampled, posa_with_restarts, PosaConfig};
pub use stats::RotationStats;
