//! The rotation-path data structure.

use dhc_graph::NodeId;

/// A simple path under construction, supporting Pósa rotations.
///
/// Maintains the visiting order and each node's position (the paper's
/// `cycindex`, here 0-based). A rotation at path position `j` — triggered
/// by an edge from the head to the node at `j` — reverses the segment
/// `j+1 ..= h` in `O(segment length)` time, matching the paper's
/// renumbering rule `i ← h + j + 1 − i` (1-based).
///
/// # Example
///
/// ```
/// use dhc_rotation::RotationPath;
///
/// let mut p = RotationPath::new(6, 0);
/// p.extend(3);
/// p.extend(5);
/// p.extend(1);
/// assert_eq!(p.head(), 1);
/// // Edge (1, 0): rotation at position 0 reverses [3, 5, 1] -> new head 3.
/// p.rotate(0);
/// assert_eq!(p.order(), &[0, 1, 5, 3]);
/// assert_eq!(p.head(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotationPath {
    order: Vec<NodeId>,
    /// `position[v] = Some(i)` iff `order[i] == v`.
    position: Vec<Option<usize>>,
    rotations: usize,
}

impl RotationPath {
    /// Creates a path over a universe of `n` nodes, containing only `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= n`.
    pub fn new(n: usize, start: NodeId) -> Self {
        assert!(start < (n) as u32, "start {start} out of range for {n} nodes");
        let mut position = vec![None; n];
        position[(start) as usize] = Some(0);
        RotationPath { order: vec![start], position, rotations: 0 }
    }

    /// Current head (last node of the path).
    pub fn head(&self) -> NodeId {
        *self.order.last().expect("path is never empty")
    }

    /// First node of the path (the paper's `v₁`).
    pub fn tail(&self) -> NodeId {
        self.order[0]
    }

    /// Number of nodes on the path.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Always false; a path contains at least its start node.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `v` is on the path.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the universe.
    pub fn contains(&self, v: NodeId) -> bool {
        self.position[(v) as usize].is_some()
    }

    /// Position of `v` on the path, if present.
    pub fn position_of(&self, v: NodeId) -> Option<usize> {
        self.position[(v) as usize]
    }

    /// The visiting order.
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of rotations performed so far.
    pub fn rotation_count(&self) -> usize {
        self.rotations
    }

    /// Appends `v` as the new head.
    ///
    /// # Panics
    ///
    /// Panics if `v` is already on the path or outside the universe.
    pub fn extend(&mut self, v: NodeId) {
        assert!(self.position[(v) as usize].is_none(), "node {v} already on path");
        self.position[(v) as usize] = Some(self.order.len());
        self.order.push(v);
    }

    /// Pósa rotation for a discovered edge `(head, order[j])`: reverses the
    /// segment after `j`, making the old `order[j + 1]` the new head.
    ///
    /// If `j` is the head's own position this is a no-op; if `j` is the
    /// position just before the head, the path is unchanged too (the
    /// reversed segment has length 1).
    ///
    /// # Panics
    ///
    /// Panics if `j >= len()`.
    pub fn rotate(&mut self, j: usize) {
        let h = self.order.len() - 1;
        assert!(j <= h, "rotation position {j} out of range");
        if j + 1 >= h {
            // Segment of length <= 1: nothing moves.
            self.rotations += 1;
            return;
        }
        self.order[j + 1..].reverse();
        for i in j + 1..self.order.len() {
            self.position[(self.order[i]) as usize] = Some(i);
        }
        self.rotations += 1;
    }

    /// Consumes the path, returning the visiting order.
    pub fn into_order(self) -> Vec<NodeId> {
        self.order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_path_is_single_node() {
        let p = RotationPath::new(4, 2);
        assert_eq!(p.head(), 2);
        assert_eq!(p.tail(), 2);
        assert_eq!(p.len(), 1);
        assert!(p.contains(2));
        assert!(!p.contains(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_bad_start() {
        RotationPath::new(3, 3);
    }

    #[test]
    fn extend_tracks_positions() {
        let mut p = RotationPath::new(5, 0);
        p.extend(4);
        p.extend(2);
        assert_eq!(p.order(), &[0, 4, 2]);
        assert_eq!(p.position_of(4), Some(1));
        assert_eq!(p.head(), 2);
    }

    #[test]
    #[should_panic(expected = "already on path")]
    fn extend_rejects_duplicate() {
        let mut p = RotationPath::new(3, 0);
        p.extend(1);
        p.extend(1);
    }

    #[test]
    fn rotation_matches_paper_renumbering() {
        // Paper figure 2: path v1..vh, edge (vh, vj); nodes j+1..h reverse.
        // 1-based formula i <- h + j + 1 - i; 0-based equivalent below.
        let mut p = RotationPath::new(8, 0);
        for v in 1..8 {
            p.extend(v);
        }
        // Edge (7, 2): j = position of 2 = 2 (0-based). New order:
        // 0 1 2 | 7 6 5 4 3.
        p.rotate(2);
        assert_eq!(p.order(), &[0, 1, 2, 7, 6, 5, 4, 3]);
        assert_eq!(p.head(), 3);
        // Check the renumbering formula: for old position i (0-based) in
        // j+1..=h, new position = h + j + 1 - i.
        let (h, j) = (7usize, 2usize);
        for old_i in (j + 1)..=h {
            let node = old_i as u32; // nodes were laid out in order initially
            assert_eq!(p.position_of(node), Some(h + j + 1 - old_i));
        }
    }

    #[test]
    fn rotation_at_predecessor_is_noop() {
        let mut p = RotationPath::new(4, 0);
        p.extend(1);
        p.extend(2);
        p.extend(3);
        let before = p.order().to_vec();
        p.rotate(2); // predecessor of head
        assert_eq!(p.order(), &before[..]);
        assert_eq!(p.rotation_count(), 1);
    }

    #[test]
    fn rotation_preserves_vertex_set() {
        let mut p = RotationPath::new(10, 0);
        for v in [5, 3, 8, 1, 9, 2] {
            p.extend(v);
        }
        let mut before: Vec<_> = p.order().to_vec();
        before.sort_unstable();
        p.rotate(1);
        let mut after: Vec<_> = p.order().to_vec();
        after.sort_unstable();
        assert_eq!(before, after);
        // Positions stay consistent.
        for (i, &v) in p.order().iter().enumerate() {
            assert_eq!(p.position_of(v), Some(i));
        }
    }

    #[test]
    fn into_order_returns_final_order() {
        let mut p = RotationPath::new(3, 1);
        p.extend(0);
        p.extend(2);
        assert_eq!(p.into_order(), vec![1, 0, 2]);
    }
}
