//! Greedy no-rotation baseline (ablation: why rotations matter).

use dhc_graph::{Graph, HamiltonianCycle, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Result of one [`greedy`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GreedyOutcome {
    /// A Hamiltonian cycle was found (lucky on dense graphs).
    Cycle(HamiltonianCycle),
    /// The walk got stuck; reports the best path length over all restarts
    /// and the total number of extension steps consumed.
    Stuck {
        /// Longest simple path reached.
        best_path_len: usize,
        /// Extension steps consumed across restarts.
        steps: usize,
    },
}

/// Greedy path growth **without rotations**: from the head, step to a
/// uniformly random unvisited neighbor; restart from scratch when stuck,
/// up to `restarts` times.
///
/// This is the natural straw-man the rotation algorithm improves on — it
/// stalls once the remaining fresh neighbors thin out (expected stall point
/// around `n − n/(np)` nodes). The ablation experiment contrasts its
/// success rate with [`posa`](crate::posa)'s at the paper's thresholds.
pub fn greedy<R: Rng + ?Sized>(graph: &Graph, restarts: usize, rng: &mut R) -> GreedyOutcome {
    let n = graph.node_count();
    let mut best = 0usize;
    let mut steps = 0usize;
    if n < 3 {
        return GreedyOutcome::Stuck { best_path_len: n, steps };
    }
    for _ in 0..restarts.max(1) {
        let mut on_path = vec![false; n];
        let start = rng.gen_range(0..n) as NodeId;
        let mut order = vec![start];
        on_path[start as usize] = true;
        loop {
            let head = *order.last().expect("non-empty");
            let fresh: Vec<NodeId> =
                graph.neighbors(head).iter().copied().filter(|&w| !on_path[w as usize]).collect();
            match fresh.choose(rng) {
                None => break,
                Some(&w) => {
                    on_path[w as usize] = true;
                    order.push(w);
                    steps += 1;
                }
            }
        }
        best = best.max(order.len());
        if order.len() == n && graph.has_edge(*order.last().unwrap(), order[0]) {
            let cycle = HamiltonianCycle::from_order(graph, order)
                .expect("checked length, distinctness, and edges");
            return GreedyOutcome::Cycle(cycle);
        }
    }
    GreedyOutcome::Stuck { best_path_len: best, steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhc_graph::{generator, rng::rng_from_seed};

    #[test]
    fn finds_cycle_on_complete_graph() {
        let g = generator::complete(12);
        match greedy(&g, 20, &mut rng_from_seed(0)) {
            GreedyOutcome::Cycle(c) => assert_eq!(c.len(), 12),
            GreedyOutcome::Stuck { .. } => panic!("greedy must succeed on K_12 in 20 restarts"),
        }
    }

    #[test]
    fn stuck_on_star() {
        let g = generator::star(6);
        match greedy(&g, 5, &mut rng_from_seed(1)) {
            GreedyOutcome::Stuck { best_path_len, .. } => assert!(best_path_len <= 3),
            GreedyOutcome::Cycle(_) => panic!("star has no hamiltonian cycle"),
        }
    }

    #[test]
    fn tiny_graph_is_stuck() {
        let g = generator::complete(2);
        assert!(matches!(greedy(&g, 1, &mut rng_from_seed(2)), GreedyOutcome::Stuck { .. }));
    }

    #[test]
    fn usually_stalls_at_threshold_density() {
        // At p = 3 ln n / n, greedy without rotations rarely finishes.
        let n = 300;
        let p = 3.0 * (n as f64).ln() / n as f64;
        let g = generator::gnp(n, p, &mut rng_from_seed(3)).unwrap();
        match greedy(&g, 3, &mut rng_from_seed(4)) {
            GreedyOutcome::Stuck { best_path_len, .. } => {
                assert!(best_path_len >= n / 2, "greedy should get reasonably far");
                assert!(best_path_len <= n);
            }
            GreedyOutcome::Cycle(_) => {
                // Possible but unlikely; accept.
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generator::complete(10);
        let a = format!("{:?}", greedy(&g, 2, &mut rng_from_seed(7)));
        let b = format!("{:?}", greedy(&g, 2, &mut rng_from_seed(7)));
        assert_eq!(a, b);
    }
}
