//! Errors for the sequential rotation algorithms.

use std::error::Error;
use std::fmt;

/// Why a rotation run failed to produce a Hamiltonian cycle.
///
/// These correspond to the failure events analyzed in the paper's
/// Theorem 2: `E2` (a node's unused-edge list runs dry) and `E1`
/// (the step budget elapses first).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RotationError {
    /// Graphs with fewer than 3 nodes have no Hamiltonian cycle.
    GraphTooSmall {
        /// Number of nodes.
        n: usize,
    },
    /// The head's unused-edge list became empty (event `E2`).
    OutOfEdges {
        /// The stuck head node.
        head: usize,
        /// Steps executed before getting stuck.
        steps: usize,
        /// Path length at the time (`n` means only the closing edge was
        /// missing).
        path_len: usize,
    },
    /// The step budget elapsed without closing the cycle (event `E1`).
    StepBudgetExceeded {
        /// The configured budget.
        budget: usize,
        /// Path length reached.
        path_len: usize,
    },
}

impl fmt::Display for RotationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RotationError::GraphTooSmall { n } => {
                write!(f, "graph with {n} nodes cannot contain a hamiltonian cycle")
            }
            RotationError::OutOfEdges { head, steps, path_len } => write!(
                f,
                "head {head} ran out of unused edges after {steps} steps (path length {path_len})"
            ),
            RotationError::StepBudgetExceeded { budget, path_len } => {
                write!(f, "step budget {budget} exhausted at path length {path_len}")
            }
        }
    }
}

impl Error for RotationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for e in [
            RotationError::GraphTooSmall { n: 2 },
            RotationError::OutOfEdges { head: 1, steps: 10, path_len: 4 },
            RotationError::StepBudgetExceeded { budget: 100, path_len: 8 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
