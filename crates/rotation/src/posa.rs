//! The sequential extension–rotation (Pósa / Angluin–Valiant) algorithm.

use crate::{RotationError, RotationPath, RotationStats};
use dhc_graph::{Graph, HamiltonianCycle, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration for [`posa`] and [`posa_subsampled`].
#[derive(Debug, Clone, PartialEq)]
pub struct PosaConfig {
    /// Step budget; `None` uses the paper's Theorem 2 budget
    /// `7 n ln n` (via [`dhc_graph::thresholds::dra_step_budget`] with
    /// factor [`budget_factor`](Self::budget_factor)).
    pub step_budget: Option<usize>,
    /// Multiplier on the default budget (the paper notes larger budgets
    /// drive the failure probability to `O(1/n^α)`).
    pub budget_factor: f64,
    /// Start node; `None` picks one at random.
    pub start: Option<NodeId>,
}

impl Default for PosaConfig {
    fn default() -> Self {
        PosaConfig { step_budget: None, budget_factor: 1.0, start: None }
    }
}

impl PosaConfig {
    fn budget(&self, n: usize) -> usize {
        self.step_budget
            .unwrap_or_else(|| dhc_graph::thresholds::dra_step_budget(n, self.budget_factor))
    }
}

/// Runs the rotation algorithm on `graph`, returning the Hamiltonian cycle
/// and step statistics.
///
/// This is the sequential form of the paper's Algorithm 1 (DRA):
///
/// 1. start a path at one node (the *head*);
/// 2. the head draws a uniformly random **unused** incident edge
///    `(head, u)` and marks it used in both endpoints' lists;
/// 3. if `u` is off the path, extend; if `u` is on the path at position
///    `j`, perform a Pósa rotation (reverse the suffix after `j`),
///    making the old `order[j+1]` the head;
/// 4. when the path spans all `n` nodes and the drawn edge hits the tail,
///    the cycle closes.
///
/// # Errors
///
/// * [`RotationError::GraphTooSmall`] for `n < 3`;
/// * [`RotationError::OutOfEdges`] when the head's unused list is empty
///   (Theorem 2's event `E2`);
/// * [`RotationError::StepBudgetExceeded`] when the budget elapses
///   (event `E1`).
///
/// # Example
///
/// See the [crate-level example](crate).
pub fn posa<R: Rng + ?Sized>(
    graph: &Graph,
    config: &PosaConfig,
    rng: &mut R,
) -> Result<(HamiltonianCycle, RotationStats), RotationError> {
    let unused = full_unused_lists(graph, rng);
    run_directed(graph, unused, config, rng)
}

/// Runs the rotation algorithm on the **relaxed process** from the
/// Theorem 2 proof: each node's unused list is an independent
/// `q`-subsample of its incident edges, `q = 1 − √(1 − p)` (so that the
/// subsampled lists are a legal coupling with `G(n, p)` edges).
///
/// This exists so experiment E1 can compare the analyzed process with the
/// actual algorithm; the relaxed process is *weaker* (fewer usable edges),
/// so its success is evidence for the real one.
///
/// # Errors
///
/// Same as [`posa`]; additionally `p` outside `(0, 1]` yields
/// [`RotationError::GraphTooSmall`]-free panic-less behavior by clamping.
pub fn posa_subsampled<R: Rng + ?Sized>(
    graph: &Graph,
    p: f64,
    config: &PosaConfig,
    rng: &mut R,
) -> Result<(HamiltonianCycle, RotationStats), RotationError> {
    let p = p.clamp(0.0, 1.0);
    let q = 1.0 - (1.0 - p).sqrt();
    // Each present edge survives into a node's (directed) unused list with
    // probability q/p, so the list marginally contains each potential edge
    // with probability q, independently per direction — the relaxed process.
    let keep = if p > 0.0 { (q / p).clamp(0.0, 1.0) } else { 0.0 };
    let mut unused: Vec<Vec<NodeId>> = Vec::with_capacity(graph.node_count());
    for v in 0..graph.node_count() {
        let mut list: Vec<NodeId> =
            graph.neighbors((v) as u32).iter().copied().filter(|_| rng.gen_bool(keep)).collect();
        list.shuffle(rng);
        unused.push(list);
    }
    run_directed(graph, unused, config, rng)
}

/// Runs [`posa`] up to `attempts` times with independent randomness,
/// returning the first success together with the cumulative statistics of
/// all attempts (failed attempts' steps are included, so the cost is
/// honest).
///
/// This is the restart strategy the Upcast root uses; the paper's
/// observation that failure probability is `O(1/n³)` per attempt makes a
/// handful of restarts overwhelmingly sufficient.
///
/// # Errors
///
/// Returns the *last* attempt's error if every attempt failed.
pub fn posa_with_restarts<R: Rng + ?Sized>(
    graph: &Graph,
    config: &PosaConfig,
    attempts: usize,
    rng: &mut R,
) -> Result<(HamiltonianCycle, RotationStats), RotationError> {
    let mut total = RotationStats::default();
    let mut last_err = RotationError::GraphTooSmall { n: graph.node_count() };
    for _ in 0..attempts.max(1) {
        match posa(graph, config, rng) {
            Ok((cycle, stats)) => {
                total.steps += stats.steps;
                total.extensions += stats.extensions;
                total.rotations += stats.rotations;
                total.closing_phase_steps += stats.closing_phase_steps;
                total.final_path_len = stats.final_path_len;
                return Ok((cycle, total));
            }
            Err(e) => {
                if let RotationError::OutOfEdges { steps, path_len, .. } = e {
                    total.steps += steps;
                    total.final_path_len = path_len;
                }
                last_err = e;
            }
        }
    }
    Err(last_err)
}

/// Builds shuffled full unused-edge lists.
fn full_unused_lists<R: Rng + ?Sized>(graph: &Graph, rng: &mut R) -> Vec<Vec<NodeId>> {
    (0..graph.node_count())
        .map(|v| {
            let mut list = graph.neighbors((v) as u32).to_vec();
            list.shuffle(rng);
            list
        })
        .collect()
}

/// Core loop shared by both entry points. `unused[v]` is a pre-shuffled
/// list; drawing a random unused edge = popping the last element. Removing
/// an arbitrary element with `swap_remove` keeps the remaining order a
/// uniform random permutation, so pops stay uniform draws.
fn run_directed<R: Rng + ?Sized>(
    graph: &Graph,
    mut unused: Vec<Vec<NodeId>>,
    config: &PosaConfig,
    rng: &mut R,
) -> Result<(HamiltonianCycle, RotationStats), RotationError> {
    let n = graph.node_count();
    if n < 3 {
        return Err(RotationError::GraphTooSmall { n });
    }
    let budget = config.budget(n);
    let start = match config.start {
        Some(s) => s,
        None => (rng.gen_range(0..n)) as u32,
    };
    let mut path = RotationPath::new(n, start);
    let mut stats = RotationStats::default();

    loop {
        if stats.steps >= budget {
            return Err(RotationError::StepBudgetExceeded { budget, path_len: path.len() });
        }
        let head = path.head();
        // Draw a random unused edge at the head; also unmark the reverse
        // direction (the paper's line 13).
        let u = match unused[(head) as usize].pop() {
            None => {
                return Err(RotationError::OutOfEdges {
                    head: head as usize,
                    steps: stats.steps,
                    path_len: path.len(),
                });
            }
            Some(u) => {
                if let Some(pos) = unused[u as usize].iter().position(|&x| x == head) {
                    unused[u as usize].swap_remove(pos);
                }
                u
            }
        };
        stats.steps += 1;

        if !path.contains(u) {
            path.extend(u);
            stats.extensions += 1;
            continue;
        }
        if path.len() == n {
            stats.closing_phase_steps += 1;
            if u == path.tail() {
                stats.final_path_len = n;
                let order = path.into_order();
                let cycle = HamiltonianCycle::from_order(graph, order)
                    .expect("rotation invariants guarantee a valid cycle");
                return Ok((cycle, stats));
            }
        }
        let j = path.position_of(u).expect("u is on the path");
        path.rotate(j);
        stats.rotations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhc_graph::{generator, rng::rng_from_seed, thresholds};

    #[test]
    fn solves_complete_graph() {
        let g = generator::complete(20);
        let (cycle, stats) = posa(&g, &PosaConfig::default(), &mut rng_from_seed(0)).unwrap();
        assert_eq!(cycle.len(), 20);
        assert!(stats.steps >= 20);
        assert_eq!(stats.final_path_len, 20);
    }

    #[test]
    fn solves_cycle_graph() {
        // C_n is its own unique Hamiltonian cycle; rotations at degree 2
        // still find it.
        let g = generator::cycle_graph(12);
        let (cycle, _) = posa(&g, &PosaConfig::default(), &mut rng_from_seed(1)).unwrap();
        assert_eq!(cycle.len(), 12);
    }

    #[test]
    fn solves_random_graph_at_threshold() {
        let n = 400;
        let p = thresholds::edge_probability(n, 1.0, 12.0);
        let g = generator::gnp(n, p, &mut rng_from_seed(2)).unwrap();
        let (cycle, stats) = posa(&g, &PosaConfig::default(), &mut rng_from_seed(3)).unwrap();
        assert_eq!(cycle.len(), n);
        // Theorem 2 bound: steps <= 7 n ln n.
        assert!(stats.normalized_steps(n) <= 7.0, "normalized {}", stats.normalized_steps(n));
    }

    #[test]
    fn fails_on_tiny_graph() {
        let g = generator::complete(2);
        assert_eq!(
            posa(&g, &PosaConfig::default(), &mut rng_from_seed(0)).unwrap_err(),
            RotationError::GraphTooSmall { n: 2 }
        );
    }

    #[test]
    fn fails_on_disconnected_graph_with_out_of_edges() {
        // Two triangles, no Hamiltonian cycle; heads must run dry.
        let g = dhc_graph::Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
            .unwrap();
        let err = posa(&g, &PosaConfig::default(), &mut rng_from_seed(4)).unwrap_err();
        assert!(matches!(err, RotationError::OutOfEdges { .. }), "{err:?}");
    }

    #[test]
    fn fails_on_star_graph() {
        // Star has no HC; the hub exhausts or budget runs out.
        let g = generator::star(8);
        let err = posa(&g, &PosaConfig::default(), &mut rng_from_seed(5)).unwrap_err();
        assert!(matches!(
            err,
            RotationError::OutOfEdges { .. } | RotationError::StepBudgetExceeded { .. }
        ));
    }

    #[test]
    fn tiny_budget_exhausts() {
        let g = generator::complete(30);
        let cfg = PosaConfig { step_budget: Some(3), ..Default::default() };
        let err = posa(&g, &cfg, &mut rng_from_seed(6)).unwrap_err();
        assert_eq!(err, RotationError::StepBudgetExceeded { budget: 3, path_len: 4 });
    }

    #[test]
    fn fixed_start_is_respected_and_deterministic() {
        let g = generator::complete(15);
        let cfg = PosaConfig { start: Some(7), ..Default::default() };
        let (a, _) = posa(&g, &cfg, &mut rng_from_seed(9)).unwrap();
        let (b, _) = posa(&g, &cfg, &mut rng_from_seed(9)).unwrap();
        assert_eq!(a.order(), b.order());
        assert_eq!(a.order()[0], 7);
    }

    #[test]
    fn subsampled_process_succeeds_on_dense_graph() {
        let n = 300;
        let p = thresholds::edge_probability(n, 0.5, 4.0); // dense: c ln n / sqrt n
        let g = generator::gnp(n, p, &mut rng_from_seed(10)).unwrap();
        let (cycle, _) =
            posa_subsampled(&g, p, &PosaConfig::default(), &mut rng_from_seed(11)).unwrap();
        assert_eq!(cycle.len(), n);
    }

    #[test]
    fn restarts_recover_from_unlucky_attempts() {
        // K_6 fails often on a single attempt (closing edge consumed), but
        // restarts almost always find a cycle.
        let g = generator::complete(6);
        let mut successes = 0;
        for seed in 0..20 {
            if posa_with_restarts(&g, &PosaConfig::default(), 12, &mut rng_from_seed(seed)).is_ok()
            {
                successes += 1;
            }
        }
        assert!(successes >= 19, "restarts succeeded only {successes}/20 times");
    }

    #[test]
    fn restarts_exhaust_on_impossible_graph() {
        let g = generator::star(6);
        let err =
            posa_with_restarts(&g, &PosaConfig::default(), 3, &mut rng_from_seed(0)).unwrap_err();
        assert!(matches!(
            err,
            RotationError::OutOfEdges { .. } | RotationError::StepBudgetExceeded { .. }
        ));
    }

    #[test]
    fn stats_add_up() {
        let g = generator::complete(25);
        let (_, stats) = posa(&g, &PosaConfig::default(), &mut rng_from_seed(12)).unwrap();
        // Every step is an extension, a rotation, or the final closing draw.
        assert_eq!(stats.steps, stats.extensions + stats.rotations + 1);
        assert_eq!(stats.extensions, 24); // n - 1 extensions exactly
    }
}
