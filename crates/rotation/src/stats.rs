//! Instrumentation for rotation runs.

/// Counters from one rotation-algorithm run, in the units of the paper's
/// Theorem 2 (one *step* = one random edge drawn by the head).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RotationStats {
    /// Total steps (edges drawn).
    pub steps: usize,
    /// Steps that extended the path by a fresh node.
    pub extensions: usize,
    /// Steps that triggered a rotation (target already on the path).
    pub rotations: usize,
    /// Steps drawn while the path already spanned all nodes (searching for
    /// the closing edge).
    pub closing_phase_steps: usize,
    /// Final path length when the run ended.
    pub final_path_len: usize,
}

impl RotationStats {
    /// `steps / (n ln n)` — the normalized step count that Theorem 2 bounds
    /// by the constant 7.
    pub fn normalized_steps(&self, n: usize) -> f64 {
        let nf = (n.max(2)) as f64;
        self.steps as f64 / (nf * nf.ln())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        let s = RotationStats { steps: 700, ..Default::default() };
        let norm = s.normalized_steps(100);
        assert!((norm - 700.0 / (100.0 * (100.0f64).ln())).abs() < 1e-12);
    }

    #[test]
    fn default_is_zeroed() {
        let s = RotationStats::default();
        assert_eq!(s.steps, 0);
        assert_eq!(s.final_path_len, 0);
    }
}
