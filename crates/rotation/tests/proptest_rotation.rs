//! Property-based tests for rotation-path mechanics and the Pósa solver.

use dhc_graph::{generator, rng::rng_from_seed, thresholds};
use dhc_rotation::{posa, PosaConfig, RotationPath};
use proptest::prelude::*;

proptest! {
    /// Rotations never change the vertex set and keep positions consistent.
    #[test]
    fn rotation_is_a_permutation_action(
        extends in prop::collection::vec(1usize..30, 5..29),
        rotate_at in prop::collection::vec(0usize..20, 0..10),
    ) {
        let mut path = RotationPath::new(30, 0);
        let mut members = vec![0u32];
        for v in extends {
            if !path.contains(v as u32) {
                path.extend(v as u32);
                members.push(v as u32);
            }
        }
        for j in rotate_at {
            let j = j % path.len();
            path.rotate(j);
            // Vertex set unchanged.
            let mut got: Vec<_> = path.order().to_vec();
            got.sort_unstable();
            let mut want = members.clone();
            want.sort_unstable();
            prop_assert_eq!(got, want);
            // Position map consistent.
            for (i, &v) in path.order().iter().enumerate() {
                prop_assert_eq!(path.position_of(v), Some(i));
            }
        }
    }

    /// A rotation is an involution on the order when applied at the same j
    /// twice (reversing the same suffix twice restores it), provided no
    /// extension happens in between and j < len-1.
    #[test]
    fn double_rotation_restores_order(len in 3usize..25, j in 0usize..23) {
        prop_assume!(j + 2 < len);
        let mut path = RotationPath::new(25, 0);
        for v in 1..len {
            path.extend((v) as u32);
        }
        let before = path.order().to_vec();
        path.rotate(j);
        path.rotate(j);
        prop_assert_eq!(path.order(), &before[..]);
    }

    /// Pósa either returns a verified Hamiltonian cycle (with exactly n-1
    /// extensions) or a typed error — never a malformed cycle. (Even K_n can
    /// fail for tiny n: the closing edge may be consumed by an earlier draw;
    /// the paper's guarantee is probabilistic.)
    #[test]
    fn posa_on_complete_graphs_well_behaved(n in 3usize..40, seed in any::<u64>()) {
        let g = generator::complete(n);
        match posa(&g, &PosaConfig::default(), &mut rng_from_seed(seed)) {
            Ok((cycle, stats)) => {
                prop_assert_eq!(cycle.len(), n);
                prop_assert_eq!(stats.extensions, n - 1);
            }
            Err(e) => {
                let typed = matches!(
                    e,
                    dhc_rotation::RotationError::OutOfEdges { .. }
                        | dhc_rotation::RotationError::StepBudgetExceeded { .. }
                );
                prop_assert!(typed, "unexpected error kind: {e:?}");
            }
        }
    }

    /// On G(n, p) above threshold, success rate is high and any produced
    /// cycle verifies (verification is inside the constructor).
    #[test]
    fn posa_output_always_verifies(seed in any::<u64>()) {
        let n = 128;
        let p = thresholds::edge_probability(n, 1.0, 10.0);
        let g = generator::gnp(n, p, &mut rng_from_seed(seed)).unwrap();
        // Either outcome is legal; a returned cycle is valid by construction.
        let _ = posa(&g, &PosaConfig::default(), &mut rng_from_seed(seed ^ 1));
    }
}
