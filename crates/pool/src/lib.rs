//! A tiny persistent worker pool for data-parallel index batches.
//!
//! The CONGEST round engine dispatches one batch of per-node jobs per
//! simulated round — often millions of batches per run. A scoped-thread
//! stand-in (spawn + join per batch) pays thread-creation latency on
//! every round, which dwarfs the per-node work at realistic sizes. This
//! crate keeps `threads - 1` workers parked on a condvar for the
//! lifetime of the pool; a batch dispatch is one mutex lock plus a
//! `notify_all`, and the caller participates in the batch itself, so a
//! pool of one is exactly a sequential loop.
//!
//! The only entry point is [`WorkerPool::run_mut`]: apply `f(i, &mut
//! items[i])` to every element of a slice, each index claimed by
//! exactly one worker in chunks. There is no work output channel —
//! results live in the mutated elements, which is precisely the shape
//! of the engine's per-node effect scratch and per-shard commit
//! buffers.
//!
//! Panics inside `f` are caught per chunk, the batch is drained to
//! completion (remaining indices still run), and the first payload is
//! re-thrown on the calling thread once every worker has left the
//! batch — so a panicking round cannot leave a worker holding a
//! dangling reference to the caller's stack frame.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A fixed-size pool of persistent worker threads.
///
/// `WorkerPool::new(t)` spawns `t - 1` background workers; the thread
/// calling [`run_mut`](Self::run_mut) always participates as the
/// `t`-th, so `new(1)` spawns nothing and runs batches inline.
/// Dropping the pool joins every worker.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

struct Shared {
    state: Mutex<PoolState>,
    work_cv: Condvar,
}

struct PoolState {
    /// Bumped once per dispatched batch; workers run a batch at most
    /// once by remembering the last epoch they served.
    epoch: u64,
    batch: Option<Arc<Batch>>,
    shutdown: bool,
}

/// Type-erased view of one `run_mut` call, shared with the workers.
struct Batch {
    /// Trampoline: `call(ctx, i)` runs `f(i, &mut items[i])`.
    call: unsafe fn(*const (), usize),
    ctx: ConstPtr,
    len: usize,
    chunk: usize,
    next: AtomicUsize,
    done: Mutex<DoneState>,
    done_cv: Condvar,
}

struct DoneState {
    completed: usize,
    panic: Option<Box<dyn Any + Send>>,
}

/// Raw pointer to the caller's stack context. Sound to share because
/// `run_mut` does not return until every claimed chunk has completed
/// and no worker dereferences the pointer after claiming past `len`.
struct ConstPtr(*const ());
// SAFETY: the pointee is a `Ctx { items, f }` whose `f: Sync` and whose
// `items` elements are `Send` and accessed at disjoint indices only.
unsafe impl Send for ConstPtr {}
unsafe impl Sync for ConstPtr {}

struct Ctx<'f, T, F> {
    items: *mut T,
    f: &'f F,
}

/// Monomorphic trampoline stored in the type-erased [`Batch`].
///
/// # Safety
///
/// `ctx` must point to a live `Ctx<'_, T, F>` whose `items` is valid
/// for `idx`, and no other thread may touch `items[idx]` concurrently.
unsafe fn call_one<T, F: Fn(usize, &mut T)>(ctx: *const (), idx: usize) {
    // SAFETY: `run_mut` keeps the `Ctx` alive until every index has
    // completed, and the atomic chunk counter hands each index to
    // exactly one worker, so this `&mut` is unique.
    unsafe {
        let ctx = &*ctx.cast::<Ctx<'_, T, F>>();
        (ctx.f)(idx, &mut *ctx.items.add(idx));
    }
}

impl Batch {
    /// Claims and runs chunks until the index space is exhausted.
    fn run_chunks(&self) {
        loop {
            let start = self.next.fetch_add(self.chunk, Ordering::SeqCst);
            if start >= self.len {
                break;
            }
            let end = (start + self.chunk).min(self.len);
            let result = catch_unwind(AssertUnwindSafe(|| {
                for idx in start..end {
                    // SAFETY: `start..end` ranges from `fetch_add` are
                    // disjoint across workers and within `0..len`.
                    unsafe { (self.call)(self.ctx.0, idx) };
                }
            }));
            let mut done = self.done.lock().unwrap();
            // A panicked chunk still counts as completed: the closure
            // will not be re-entered for those indices, and the caller
            // only needs to know no worker is still inside them.
            done.completed += end - start;
            if let Err(payload) = result {
                if done.panic.is_none() {
                    done.panic = Some(payload);
                }
            }
            if done.completed == self.len {
                self.done_cv.notify_all();
            }
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    let mut seen = 0u64;
    loop {
        let batch = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    if let Some(b) = st.batch.clone() {
                        break b;
                    }
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        batch.run_chunks();
    }
}

impl WorkerPool {
    /// Creates a pool with `threads` total workers (callers count as
    /// one; values below 1 are clamped to 1).
    ///
    /// # Panics
    ///
    /// Panics if the operating system refuses to spawn a thread.
    pub fn new(threads: usize) -> Self {
        let workers = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState { epoch: 0, batch: None, shutdown: false }),
            work_cv: Condvar::new(),
        });
        let handles = (1..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dhc-pool-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("failed to spawn dhc-pool worker")
            })
            .collect();
        WorkerPool { shared, handles, workers }
    }

    /// Total worker count, including the calling thread.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f(i, &mut items[i])` for every `i`, splitting the index
    /// space across the pool. Blocks until every index has completed.
    /// With one worker — or at most one item — this is an inline loop
    /// with no synchronization at all.
    ///
    /// # Panics
    ///
    /// If any invocation of `f` panics, the first payload is re-thrown
    /// here after the whole batch has drained; the pool remains usable.
    pub fn run_mut<T: Send, F: Fn(usize, &mut T) + Sync>(&self, items: &mut [T], f: &F) {
        let len = items.len();
        if self.workers <= 1 || len <= 1 {
            for (i, item) in items.iter_mut().enumerate() {
                f(i, item);
            }
            return;
        }
        // ~8 chunks per worker amortizes the counter while keeping the
        // tail balanced when per-item cost is uneven.
        let chunk = (len / (self.workers * 8)).max(1);
        let ctx = Ctx { items: items.as_mut_ptr(), f };
        let batch = Arc::new(Batch {
            call: call_one::<T, F>,
            ctx: ConstPtr(std::ptr::addr_of!(ctx).cast()),
            len,
            chunk,
            next: AtomicUsize::new(0),
            done: Mutex::new(DoneState { completed: 0, panic: None }),
            done_cv: Condvar::new(),
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            st.epoch = st.epoch.wrapping_add(1);
            st.batch = Some(Arc::clone(&batch));
            self.shared.work_cv.notify_all();
        }
        batch.run_chunks();
        let payload = {
            let mut done = batch.done.lock().unwrap();
            while done.completed < len {
                done = batch.done_cv.wait(done).unwrap();
            }
            done.panic.take()
        };
        // `completed == len` proves no worker will dereference `ctx`
        // again (any further claim lands past `len` and bails), so the
        // borrow of `items` ends here. Clear the slot so late-waking
        // workers drop their interest immediately.
        self.shared.state.lock().unwrap().batch = None;
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Weak;

    #[test]
    fn every_index_exactly_once() {
        let pool = WorkerPool::new(4);
        let mut items: Vec<u64> = vec![0; 10_000];
        pool.run_mut(&mut items, &|i, slot| *slot += i as u64 + 1);
        for (i, &v) in items.iter().enumerate() {
            assert_eq!(v, i as u64 + 1, "index {i} visited {v} times the wrong amount");
        }
    }

    #[test]
    fn reuse_across_many_batches() {
        let pool = WorkerPool::new(3);
        let mut items: Vec<u64> = vec![0; 257];
        for round in 0..500 {
            pool.run_mut(&mut items, &|i, slot| *slot += i as u64);
            let _ = round;
        }
        for (i, &v) in items.iter().enumerate() {
            assert_eq!(v, 500 * i as u64);
        }
    }

    #[test]
    fn single_worker_pool_spawns_no_threads_and_runs_inline() {
        let pool = WorkerPool::new(1);
        assert!(pool.handles.is_empty());
        assert_eq!(pool.workers(), 1);
        let mut items = vec![0usize; 17];
        pool.run_mut(&mut items, &|i, slot| *slot = i * 2);
        assert_eq!(items[16], 32);
    }

    #[test]
    fn fewer_items_than_workers() {
        let pool = WorkerPool::new(8);
        let mut items = vec![1u8, 2];
        pool.run_mut(&mut items, &|_, slot| *slot *= 10);
        assert_eq!(items, vec![10, 20]);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = WorkerPool::new(4);
        let mut items: Vec<u32> = Vec::new();
        pool.run_mut(&mut items, &|_, _| unreachable!());
    }

    #[test]
    fn panic_in_worker_propagates_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let mut items: Vec<u32> = (0..1000).collect();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_mut(&mut items, &|i, _| {
                if i == 337 {
                    panic!("boom at 337");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom at 337");
        // The pool is still serviceable after a panicked batch.
        pool.run_mut(&mut items, &|i, slot| *slot = i as u32 + 7);
        assert_eq!(items[999], 1006);
    }

    #[test]
    fn shutdown_joins_workers_without_leaks() {
        let pool = WorkerPool::new(4);
        let weak: Weak<Shared> = Arc::downgrade(&pool.shared);
        let mut items = vec![0u8; 64];
        pool.run_mut(&mut items, &|_, slot| *slot = 1);
        drop(pool);
        // Every worker released its Arc on shutdown, so nothing keeps
        // the shared state alive.
        assert!(weak.upgrade().is_none(), "worker threads leaked the shared pool state");
    }

    #[test]
    fn workers_actually_participate() {
        // With enough items and workers, at least one index must run
        // off the calling thread; count distinct thread ids.
        let pool = WorkerPool::new(4);
        let seen = AtomicU64::new(0);
        let caller = std::thread::current().id();
        let mut items = vec![0u8; 100_000];
        pool.run_mut(&mut items, &|_, _| {
            if std::thread::current().id() != caller {
                seen.fetch_add(1, Ordering::Relaxed);
            }
            // A little spin so the caller cannot drain everything
            // before the workers wake.
            std::hint::black_box((0..50).sum::<u64>());
        });
        assert!(seen.load(Ordering::Relaxed) > 0, "no background worker claimed any chunk");
    }
}
