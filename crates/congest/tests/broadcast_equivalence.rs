//! Property tests for the broadcast fabric: a protocol using the
//! `send_all` / `send_all_except` broadcast effects and its explicit
//! per-neighbor-unicast twin must be **observationally identical** — same
//! per-node inbox streams (contents *and* order), same `Metrics`, same
//! `Trace` — at every `engine_threads` setting.
//!
//! This is the contract that makes the shared-payload flood routing an
//! implementation detail: one arena record per flooding op, but per-edge
//! accounting, sender-sorted delivery, and call-order interleaving
//! exactly as if `deg(v)` copies had been sent.

use dhc_congest::{Config, Context, Inbox, Network, NodeId, Payload, Protocol, TraceEvent};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Clone, Debug, PartialEq, Eq)]
struct Num(u64);
impl Payload for Num {}

/// One scripted send op, executed during one activation.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// `send_all` (or its unicast expansion).
    All,
    /// `send_all_except(neighbors[i % deg])` (or its expansion).
    Except(usize),
    /// One unicast `send(neighbors[i % deg])`.
    Uni(usize),
}

/// Runs a per-node op script; `expand` selects the unicast twin.
#[derive(Debug)]
struct Scripted {
    script: VecDeque<Vec<Op>>,
    expand: bool,
    /// Monotone payload tag so receivers can check order.
    counter: u64,
    /// `(round, inbox contents)` per activation.
    log: Vec<(usize, Vec<(NodeId, u64)>)>,
}

impl Scripted {
    fn exec(&mut self, ctx: &mut Context<'_, Num>, op: Op) {
        let deg = ctx.degree();
        if deg == 0 {
            return;
        }
        let tag = self.counter;
        self.counter += 1;
        match op {
            Op::All => {
                if self.expand {
                    for i in 0..deg {
                        let to = ctx.neighbors()[i];
                        ctx.send(to, Num(tag));
                    }
                } else {
                    ctx.send_all(Num(tag));
                }
            }
            Op::Except(i) => {
                let skip = ctx.neighbors()[i % deg];
                if self.expand {
                    for j in 0..deg {
                        let to = ctx.neighbors()[j];
                        if to != skip {
                            ctx.send(to, Num(tag));
                        }
                    }
                } else {
                    ctx.send_all_except(skip, Num(tag));
                }
            }
            Op::Uni(i) => {
                let to = ctx.neighbors()[i % deg];
                ctx.send(to, Num(tag));
            }
        }
    }
}

impl Protocol for Scripted {
    type Msg = Num;

    fn init(&mut self, ctx: &mut Context<'_, Num>) {
        // Every node activates in every round until its script runs dry,
        // so scripts execute on a fixed schedule in both variants.
        if self.script.is_empty() {
            ctx.halt();
        } else {
            ctx.wake_in(1);
        }
    }

    fn round(&mut self, ctx: &mut Context<'_, Num>, inbox: Inbox<'_, Num>) {
        let got: Vec<(NodeId, u64)> = inbox.iter().map(|(from, &Num(x))| (from, x)).collect();
        assert_eq!(got.len(), inbox.len(), "Inbox::len must match its iteration");
        self.log.push((ctx.round_number(), got));
        match self.script.pop_front() {
            Some(ops) => {
                for op in ops {
                    self.exec(ctx, op);
                }
                ctx.wake_in(1);
            }
            None => ctx.halt(),
        }
    }
}

type NodeLog = Vec<(usize, Vec<(NodeId, u64)>)>;

fn run_scripts(
    scripts: &[Vec<Vec<Op>>],
    edge_prob: f64,
    graph_seed: u64,
    expand: bool,
    threads: usize,
) -> (dhc_congest::Metrics, Vec<TraceEvent>, Vec<NodeLog>) {
    let n = scripts.len();
    let g = dhc_graph::generator::gnp(n, edge_prob, &mut dhc_graph::rng::rng_from_seed(graph_seed))
        .expect("valid gnp");
    let nodes: Vec<Scripted> = scripts
        .iter()
        .map(|s| Scripted { script: s.clone().into(), expand, counter: 0, log: Vec::new() })
        .collect();
    // Up to 4 ops per activation, each at most 1 word per edge.
    let cfg = Config::default()
        .with_bandwidth_words(4)
        .with_trace_capacity(1_000_000)
        .with_engine_threads(threads);
    let mut net = Network::new(&g, cfg, nodes).unwrap();
    net.run().unwrap();
    let trace = net.trace().events();
    let (report, nodes) = net.finish();
    (report.metrics, trace, nodes.into_iter().map(|nd| nd.log).collect())
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u32..3, 0usize..8).prop_map(|(kind, i)| match kind {
        0 => Op::All,
        1 => Op::Except(i),
        _ => Op::Uni(i),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Broadcast-based and unicast-expanded executions of the same random
    /// script are bit-identical in outcomes, `Metrics`, and `Trace`, at
    /// engine threads 1 and 4.
    #[test]
    fn broadcast_and_unicast_twin_are_bit_identical(
        scripts in prop::collection::vec(
            prop::collection::vec(prop::collection::vec(op_strategy(), 0..4), 0..4),
            4..10,
        ),
        edge_pct in 20u64..90,
        graph_seed in 0u64..1_000,
    ) {
        let edge_prob = edge_pct as f64 / 100.0;
        let broadcast = run_scripts(&scripts, edge_prob, graph_seed, false, 1);
        let unicast = run_scripts(&scripts, edge_prob, graph_seed, true, 1);
        prop_assert_eq!(&broadcast.0, &unicast.0, "Metrics diverged from the unicast twin");
        prop_assert_eq!(&broadcast.1, &unicast.1, "Trace diverged from the unicast twin");
        prop_assert_eq!(&broadcast.2, &unicast.2, "inbox logs diverged from the unicast twin");

        let b4 = run_scripts(&scripts, edge_prob, graph_seed, false, 4);
        prop_assert_eq!(&broadcast.0, &b4.0, "broadcast metrics diverged at 4 threads");
        prop_assert_eq!(&broadcast.1, &b4.1, "broadcast trace diverged at 4 threads");
        prop_assert_eq!(&broadcast.2, &b4.2, "broadcast logs diverged at 4 threads");
        let u4 = run_scripts(&scripts, edge_prob, graph_seed, true, 4);
        prop_assert_eq!(&unicast.0, &u4.0, "unicast metrics diverged at 4 threads");
        prop_assert_eq!(&unicast.2, &u4.2, "unicast logs diverged at 4 threads");
    }
}
