//! Property tests for the round engine's scheduling semantics: arbitrary
//! interleavings of `wake_in`, `halt`, and message sends must never lose
//! a round, never run a halted node, and must produce bit-identical
//! results at every `engine_threads` setting.

use dhc_congest::{Config, Context, Inbox, Network, NodeId, Payload, Protocol, TraceEvent};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Clone, Debug)]
struct Ping;
impl Payload for Ping {}

/// One scripted action: `(wake delta, send to left ring neighbor, send to
/// right ring neighbor)`. A node consumes one action per activation and
/// halts once its script is exhausted.
type Step = (usize, bool, bool);

#[derive(Debug)]
struct Scripted {
    id: NodeId,
    script: VecDeque<Step>,
    /// `(round, inbox len)` per activation.
    activations: Vec<(usize, usize)>,
    /// Every wake target this node requested.
    expected_wakes: Vec<usize>,
    halt_round: Option<usize>,
}

impl Scripted {
    fn new(id: NodeId, script: Vec<Step>) -> Self {
        Scripted {
            id,
            script: script.into(),
            activations: Vec::new(),
            expected_wakes: Vec::new(),
            halt_round: None,
        }
    }
}

impl Protocol for Scripted {
    type Msg = Ping;

    fn init(&mut self, ctx: &mut Context<'_, Ping>) {
        if self.script.is_empty() {
            self.halt_round = Some(0);
            ctx.halt();
        } else {
            let delta = 1 + self.id % 3;
            self.expected_wakes.push((delta) as usize);
            ctx.wake_in((delta) as usize);
        }
    }

    fn round(&mut self, ctx: &mut Context<'_, Ping>, inbox: Inbox<'_, Ping>) {
        assert!(self.halt_round.is_none(), "engine invoked a halted node");
        let r = ctx.round_number();
        self.activations.push((r, inbox.len()));
        match self.script.pop_front() {
            Some((delta, left, right)) => {
                let n = ctx.n();
                if left {
                    ctx.send((self.id + (n) as u32 - 1) % (n) as u32, Ping);
                }
                if right {
                    ctx.send((self.id + 1) % (n) as u32, Ping);
                }
                self.expected_wakes.push(r + delta);
                ctx.wake_in(delta);
            }
            None => {
                self.halt_round = Some(r);
                ctx.halt();
            }
        }
    }
}

/// Per-node observable outcome, for cross-thread-count comparison.
type NodeLog = (Vec<(usize, usize)>, Vec<usize>, Option<usize>);

fn run_scripts(
    scripts: &[Vec<Step>],
    threads: usize,
) -> (dhc_congest::Metrics, Vec<TraceEvent>, Vec<NodeLog>) {
    let n = scripts.len();
    let g = dhc_graph::generator::cycle_graph(n);
    let nodes: Vec<Scripted> =
        scripts.iter().enumerate().map(|(v, s)| Scripted::new((v) as u32, s.clone())).collect();
    let cfg = Config::default().with_trace_capacity(1_000_000).with_engine_threads(threads);
    let mut net = Network::new(&g, cfg, nodes).unwrap();
    net.run().unwrap();
    assert!(net.is_finished());
    let trace = net.trace().events();
    let (report, nodes) = net.finish();
    let logs =
        nodes.into_iter().map(|nd| (nd.activations, nd.expected_wakes, nd.halt_round)).collect();
    (report.metrics, trace, logs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn wake_halt_and_sends_are_deterministic_and_lossless(
        scripts in prop::collection::vec(
            prop::collection::vec((1usize..5, any::<bool>(), any::<bool>()), 0..6),
            3..9,
        ),
    ) {
        let (metrics, trace, logs) = run_scripts(&scripts, 1);
        // Identical at 4 engine threads (and with the parallel code path
        // genuinely exercised: 4 > 1 always builds the worker pool).
        let (m4, t4, l4) = run_scripts(&scripts, 4);
        prop_assert_eq!(&metrics, &m4, "metrics diverged between 1 and 4 engine threads");
        prop_assert_eq!(&trace, &t4, "trace diverged between 1 and 4 engine threads");
        prop_assert_eq!(&logs, &l4, "node logs diverged between 1 and 4 engine threads");

        for (v, (activations, expected_wakes, halt_round)) in logs.iter().enumerate() {
            let halt = halt_round.expect("every scripted node halts");
            // A halted node is never run again.
            prop_assert!(
                activations.windows(2).all(|w| w[0].0 < w[1].0),
                "node {v}: activations not strictly increasing: {activations:?}"
            );
            prop_assert!(
                activations.iter().all(|&(r, _)| r <= halt),
                "node {v} ran after halting in round {halt}: {activations:?}"
            );
            // No wake-up is lost: every requested target the node lived to
            // see is an actual activation round (quiescent fast-forwarding
            // may skip rounds, but never a scheduled one).
            for &t in expected_wakes {
                if t <= halt {
                    prop_assert!(
                        activations.iter().any(|&(r, _)| r == t),
                        "node {v} lost its wake-up for round {t}: {activations:?}"
                    );
                }
            }
        }
        // Simulated time covers every activation.
        let last = logs.iter().flat_map(|(a, _, _)| a.iter().map(|&(r, _)| r)).max().unwrap_or(0);
        prop_assert!(metrics.rounds >= last);
    }
}
