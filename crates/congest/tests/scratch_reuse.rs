//! Pins [`EngineScratch`] recycling to fresh-construction semantics.
//!
//! A network seeded from a warm scratch must behave **bit-identically**
//! to one built by `Network::new`: same metrics, same final node
//! states, same typed errors — across differently-sized graphs, at
//! every thread count, and even when the donor run errored mid-round
//! and left staged state behind.

use dhc_congest::{
    Config, Context, EngineScratch, Inbox, Metrics, Network, Payload, Protocol, SimError,
};
use dhc_graph::Graph;

#[derive(Clone, Debug, PartialEq, Eq)]
struct Num(u64);
impl Payload for Num {}

/// A little traffic generator: node 0 floods a hop-counted token;
/// every receiver acks it with a unicast and re-floods it once; every
/// node self-wakes each round and halts after a fixed count — touching
/// unicast, broadcast, wake-ups, and the halt path, with every node
/// guaranteed to halt.
#[derive(Debug)]
struct Gossip {
    rounds_left: u64,
    seen: bool,
    acked: u64,
}

impl Protocol for Gossip {
    type Msg = Num;

    fn init(&mut self, ctx: &mut Context<'_, Num>) {
        if ctx.node() == 0 {
            self.seen = true;
            ctx.send_all(Num(64));
        }
        ctx.wake_in(1);
    }

    fn round(&mut self, ctx: &mut Context<'_, Num>, inbox: Inbox<'_, Num>) {
        for (from, &Num(k)) in inbox.iter() {
            if k == 0 {
                self.acked += 1;
            } else {
                ctx.send(from, Num(0));
                if k > 1 && !self.seen {
                    self.seen = true;
                    ctx.send_all_except(from, Num(k - 1));
                }
            }
        }
        self.rounds_left = self.rounds_left.saturating_sub(1);
        if self.rounds_left == 0 {
            ctx.halt();
        } else {
            ctx.wake_in(1);
        }
    }

    fn memory_words(&self) -> usize {
        3
    }
}

/// A sender that blows the per-edge budget in round 1, so the run dies
/// with a typed bandwidth error and staged state in flight.
#[derive(Debug)]
struct Blaster;

impl Protocol for Blaster {
    type Msg = Num;

    fn init(&mut self, ctx: &mut Context<'_, Num>) {
        if ctx.node() == 0 {
            ctx.send_all(Num(5));
        }
    }

    fn round(&mut self, ctx: &mut Context<'_, Num>, inbox: Inbox<'_, Num>) {
        for (from, _) in inbox.iter() {
            for _ in 0..64 {
                ctx.send(from, Num(1));
            }
        }
        ctx.halt();
    }
}

/// Paths, stars, and a clique in assorted sizes — the scratch has to
/// grow and shrink across takes.
fn graphs() -> Vec<Graph> {
    let path = |n: u32| Graph::from_edges(n as usize, (1..n).map(|v| (v - 1, v))).unwrap();
    let star = |n: u32| Graph::from_edges(n as usize, (1..n).map(|v| (0, v))).unwrap();
    let clique = |n: u32| {
        Graph::from_edges(n as usize, (0..n).flat_map(|u| (u + 1..n).map(move |v| (u, v)))).unwrap()
    };
    vec![path(12), clique(9), star(40), path(5), star(17), clique(6)]
}

fn nodes(g: &Graph, extra_rounds: u64) -> Vec<Gossip> {
    let rounds = g.node_count() as u64 + extra_rounds;
    (0..g.node_count()).map(|_| Gossip { rounds_left: rounds, seen: false, acked: 0 }).collect()
}

fn run_fresh(g: &Graph, cfg: Config, hops: u64) -> (Metrics, Vec<u64>) {
    let mut net = Network::new(g, cfg, nodes(g, hops)).unwrap();
    net.run().unwrap();
    let (report, states) = net.finish();
    (report.metrics, states.into_iter().map(|s| s.acked).collect())
}

fn run_recycled(
    g: &Graph,
    cfg: Config,
    hops: u64,
    scratch: &mut EngineScratch<Num>,
) -> (Metrics, Vec<u64>) {
    let mut net = Network::new_with_scratch(g, cfg, nodes(g, hops), scratch).unwrap();
    net.run().unwrap();
    let (report, states) = net.finish_with_scratch(scratch);
    (report.metrics, states.into_iter().map(|s| s.acked).collect())
}

fn config(threads: usize) -> Config {
    Config::default().with_engine_threads(threads)
}

#[test]
fn recycled_networks_match_fresh_across_sizes() {
    for threads in [1, 4] {
        let mut scratch = EngineScratch::new();
        assert!(!scratch.is_warm());
        for (i, g) in graphs().iter().enumerate() {
            let fresh = run_fresh(g, config(threads), 3);
            let lean = run_recycled(g, config(threads), 3, &mut scratch);
            assert_eq!(fresh, lean, "graph #{i} diverged at {threads} threads");
            assert!(scratch.is_warm());
        }
    }
}

#[test]
fn scratch_poisoned_by_errored_run_stays_bit_identical() {
    let g = Graph::from_edges(8, (1..8).map(|v| (0, v))).unwrap();
    let mut scratch = EngineScratch::new();

    // Donor run dies mid-flight with staged sends and scheduled state.
    let blasters = (0..8).map(|_| Blaster).collect();
    let mut net = Network::new_with_scratch(&g, config(1), blasters, &mut scratch).unwrap();
    let err = net.run().unwrap_err();
    assert!(matches!(err, SimError::BandwidthExceeded { .. }), "unexpected error: {err:?}");
    let _ = net.finish_with_scratch(&mut scratch);
    assert!(scratch.is_warm());

    // The taker must scrub every recycled buffer.
    for g in graphs() {
        let fresh = run_fresh(&g, config(1), 2);
        let lean = run_recycled(&g, config(1), 2, &mut scratch);
        assert_eq!(fresh, lean, "post-error recycle diverged");
    }
}

#[test]
fn pool_is_recycled_across_thread_count_changes() {
    // 4 → 1 → 4: the pool is dropped when the count stops matching and
    // rebuilt when parallelism returns; results never change.
    let mut scratch = EngineScratch::new();
    let g = graphs().remove(2);
    for threads in [4, 1, 4, 4] {
        let fresh = run_fresh(&g, config(threads), 4);
        let lean = run_recycled(&g, config(threads), 4, &mut scratch);
        assert_eq!(fresh, lean, "thread-count switch diverged at {threads}");
    }
}

#[test]
fn streaming_aggregates_survive_disabling_the_round_log() {
    // The lean configuration drops the O(rounds) per-round traffic
    // vector; the incrementally-maintained peak and the sampled engine
    // footprint must still come out — and the peak must equal what the
    // full log would say.
    let g = graphs().remove(1);
    let fat = run_fresh(&g, config(1), 3).0;
    let lean = run_fresh(&g, config(1).with_record_round_traffic(false), 3).0;
    assert!(!fat.round_traffic.is_empty());
    assert!(lean.round_traffic.is_empty(), "lean run must not keep the round log");
    assert_eq!(
        lean.max_round_traffic,
        fat.round_traffic.iter().copied().max().unwrap_or(0),
        "streaming peak must match the full log's maximum"
    );
    assert_eq!(fat.max_round_traffic, lean.max_round_traffic);
    assert!(lean.peak_memory_words() > 0, "finish must sample the engine footprint");
    assert_eq!(
        (fat.rounds, fat.messages, fat.words),
        (lean.rounds, lean.messages, lean.words),
        "disabling the log must not perturb the run"
    );
}

#[test]
fn ids_are_local_per_network() {
    // Reuse across graphs must not leak activations: a quiescent 2-node
    // network after a busy 40-node one would surface as phantom inboxes
    // (inflated message metrics) or a missed Stalled error.
    let mut scratch = EngineScratch::new();
    let big = graphs().remove(2);
    let _ = run_recycled(&big, config(1), 5, &mut scratch);
    let tiny = Graph::from_edges(2, [(0, 1)]).unwrap();
    let fresh = run_fresh(&tiny, config(1), 1);
    let lean = run_recycled(&tiny, config(1), 1, &mut scratch);
    assert_eq!(fresh, lean);
}
