//! Property tests pinning the **sharded parallel commit fold** against
//! the sequential fold bit-for-bit: outcomes (including typed
//! failures), [`Metrics`], trace order, k-machine link loads, and
//! adversarial fault schedules must be identical for every forced
//! `commit_shards` count, on a single-threaded engine (shards run
//! inline) and across the worker pool alike.

use dhc_congest::{
    Adversary, Config, Context, Inbox, MachineMap, MachineRoundLog, Metrics, Network, NodeId,
    Payload, Protocol, TraceEvent,
};
use proptest::prelude::*;
use std::collections::VecDeque;

#[derive(Clone, Debug)]
struct Ping;
impl Payload for Ping {}

/// One scripted action: `(wake delta, send to left ring neighbor, send
/// to right ring neighbor, broadcast to both)`. A node consumes one
/// action per activation and halts once its script is exhausted.
type Step = (usize, bool, bool, bool);

#[derive(Debug)]
struct Scripted {
    id: NodeId,
    script: VecDeque<Step>,
    /// `(round, inbox len)` per activation.
    activations: Vec<(usize, usize)>,
    halt_round: Option<usize>,
}

impl Protocol for Scripted {
    type Msg = Ping;

    fn init(&mut self, ctx: &mut Context<'_, Ping>) {
        if self.script.is_empty() {
            self.halt_round = Some(0);
            ctx.halt();
        } else {
            ctx.wake_in((1 + self.id % 3) as usize);
        }
    }

    fn round(&mut self, ctx: &mut Context<'_, Ping>, inbox: Inbox<'_, Ping>) {
        let r = ctx.round_number();
        self.activations.push((r, inbox.len()));
        match self.script.pop_front() {
            Some((delta, left, right, bcast)) => {
                let n = ctx.n();
                if left {
                    ctx.send((self.id + (n) as u32 - 1) % (n) as u32, Ping);
                }
                if right {
                    ctx.send((self.id + 1) % (n) as u32, Ping);
                }
                if bcast {
                    ctx.send_all(Ping);
                }
                ctx.wake_in(delta);
            }
            None => {
                self.halt_round = Some(r);
                ctx.halt();
            }
        }
    }
}

/// Everything observable about one run, for bit-for-bit comparison.
type Observed = (
    Result<(), String>,
    Metrics,
    Vec<TraceEvent>,
    Vec<(Vec<(usize, usize)>, Option<usize>)>,
    Option<MachineRoundLog>,
);

/// Runs the scripts on a ring with the given engine settings; `None`
/// shards means "leave auto mode" (the sequential baseline at 1
/// thread). `machines` attaches the k-machine layer, `adversary` the
/// fault layer.
fn run_scripts(
    scripts: &[Vec<Step>],
    threads: usize,
    shards: Option<usize>,
    machines: bool,
    adversary: Option<Adversary>,
) -> Observed {
    let n = scripts.len();
    let g = dhc_graph::generator::cycle_graph(n);
    let nodes: Vec<Scripted> = scripts
        .iter()
        .enumerate()
        .map(|(v, s)| Scripted {
            id: (v) as u32,
            script: s.clone().into(),
            activations: Vec::new(),
            halt_round: None,
        })
        .collect();
    let mut cfg = Config::default()
        .with_bandwidth_words(4)
        .with_trace_capacity(1_000_000)
        .with_engine_threads(threads);
    if let Some(s) = shards {
        cfg = cfg.with_commit_shards(s);
    }
    if let Some(adv) = adversary {
        cfg = cfg.with_adversary(adv);
    }
    // The scripted init never sends, so construction cannot fault.
    let mut net = if machines {
        let k = 3.min(n);
        let map = MachineMap::new((0..n).map(|v| v % k).collect(), k);
        Network::new_with_machines(&g, cfg, nodes, map).expect("init cannot fault")
    } else {
        Network::new(&g, cfg, nodes).expect("init cannot fault")
    };
    let outcome = net.run().map_err(|e| format!("{e:?}"));
    let trace = net.trace().events();
    let (report, nodes) = net.finish();
    let logs = nodes.into_iter().map(|nd| (nd.activations, nd.halt_round)).collect();
    (outcome, report.metrics, trace, logs, report.machine_log)
}

/// The shard counts every case is pinned at: degenerate single shard,
/// even splits, and a count usually exceeding the active set.
const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Clean engine + k-machine layer: forced sharding at every count,
    /// inline and pooled, equals the sequential fold.
    #[test]
    fn sharded_commit_equals_sequential(
        scripts in prop::collection::vec(
            prop::collection::vec(
                (1usize..5, any::<bool>(), any::<bool>(), any::<bool>()),
                0..6,
            ),
            3..9,
        ),
    ) {
        let baseline = run_scripts(&scripts, 1, None, true, None);
        for shards in SHARD_COUNTS {
            for threads in [1, 2] {
                let got = run_scripts(&scripts, threads, Some(shards), true, None);
                prop_assert_eq!(
                    &baseline, &got,
                    "diverged at commit_shards = {}, engine_threads = {}", shards, threads
                );
            }
        }
    }

    /// Faulty engine: the sharded plan draws the same fate schedule the
    /// sequential commit does, so outcomes, traces, and realized
    /// drops/duplicates/delays/crashes stay identical.
    #[test]
    fn sharded_commit_equals_sequential_under_adversary(
        scripts in prop::collection::vec(
            prop::collection::vec(
                (1usize..5, any::<bool>(), any::<bool>(), any::<bool>()),
                0..6,
            ),
            3..9,
        ),
        fault_seed in 0u64..1_000,
    ) {
        let adv = Adversary::seeded(fault_seed)
            .with_drop_ppm(150_000)
            .with_duplicate_ppm(100_000)
            .with_delay(150_000, 2)
            .with_crash(1, 2, Some(5));
        let baseline = run_scripts(&scripts, 1, None, false, Some(adv.clone()));
        for shards in SHARD_COUNTS {
            for threads in [1, 2] {
                let got = run_scripts(&scripts, threads, Some(shards), false, Some(adv.clone()));
                prop_assert_eq!(
                    &baseline, &got,
                    "diverged at commit_shards = {}, engine_threads = {}", shards, threads
                );
            }
        }
    }
}
