//! Property tests for the seeded adversary layer: the **realized fault
//! schedule** (every drop, duplicate, delay, crash, and restart, as
//! exposed by the engine trace) and the final outcomes must be a pure
//! function of the fault seed — bit-identical at engine threads
//! {1, 2, 4, all} — and faulted messages must still respect the
//! per-edge bandwidth check (violations surface as the existing
//! simulation error, never a silent queue).

use dhc_congest::{
    Adversary, Config, Context, Inbox, Network, NodeId, Payload, Protocol, SimError, TraceEvent,
};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Tok(u64);
impl Payload for Tok {}

/// A chatty gossip node on a ring: every activation it pings both ring
/// neighbors with a fresh value and re-arms a wake-up, for `life`
/// activations. Deliberately message-dense so every fault knob gets
/// exercised, and resilient to loss (wake-ups drive it, not mail).
#[derive(Debug)]
struct Gossip {
    id: NodeId,
    life: usize,
    /// `(round, sender, value)` per delivery — the per-node view of the
    /// realized fault schedule.
    got: Vec<(usize, NodeId, u64)>,
}

impl Protocol for Gossip {
    type Msg = Tok;

    fn init(&mut self, ctx: &mut Context<'_, Tok>) {
        if self.life == 0 {
            ctx.halt();
        } else {
            ctx.wake_in((1 + self.id % 2) as usize);
        }
    }

    fn round(&mut self, ctx: &mut Context<'_, Tok>, inbox: Inbox<'_, Tok>) {
        let r = ctx.round_number();
        for (from, &Tok(k)) in inbox.iter() {
            self.got.push((r, from, k));
        }
        if self.life == 0 {
            ctx.halt();
            return;
        }
        self.life -= 1;
        let n = ctx.n();
        ctx.send((self.id + (n) as u32 - 1) % (n) as u32, Tok((self.id as u64) << 8 | r as u64));
        ctx.send((self.id + 1) % (n) as u32, Tok((self.id as u64) << 9 | r as u64));
        ctx.wake_in((1 + (self.id + (r) as u32) % 3) as usize);
    }
}

/// Everything observable about a faulty run, for cross-thread-count
/// comparison: the typed outcome, metrics, the full trace (which
/// includes every Dropped/Duplicated/Delayed/Crashed/Restarted event —
/// the realized fault schedule), and each node's delivery log.
type RunResult =
    (Result<(), String>, dhc_congest::Metrics, Vec<TraceEvent>, Vec<Vec<(usize, NodeId, u64)>>);

fn run_gossip(n: usize, lives: &[usize], adv: &Adversary, threads: usize) -> RunResult {
    let g = dhc_graph::generator::cycle_graph(n);
    let nodes: Vec<Gossip> = (0..n)
        .map(|id| Gossip { id: id as u32, life: lives[id % lives.len()], got: Vec::new() })
        .collect();
    let cfg = Config::default()
        .with_bandwidth_words(4)
        .with_max_rounds(500)
        .with_trace_capacity(1_000_000)
        .with_engine_threads(threads)
        .with_adversary(adv.clone());
    let mut net = Network::new(&g, cfg, nodes).unwrap();
    let outcome = net.run().map_err(|e| format!("{e:?}"));
    let trace = net.trace().events();
    let logs: Vec<_> = net.nodes().iter().map(|nd| nd.got.clone()).collect();
    let (report, _) = net.finish();
    (outcome, report.metrics, trace, logs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn fault_schedule_and_outcomes_identical_at_all_thread_counts(
        n in 4usize..9,
        lives in prop::collection::vec(0usize..6, 1..4),
        fault_seed in any::<u64>(),
        drop_ppm in 0u32..400_000,
        duplicate_ppm in 0u32..300_000,
        delay_ppm in 0u32..300_000,
        max_delay in 1usize..4,
        // Crash schedule, encoded without an Option strategy (the
        // vendored proptest has none): at == 0 means no crash, and a
        // restart round below the crash round means no restart.
        crash_node in 0usize..9,
        crash_at in 0usize..6,
        restart in 0usize..12,
    ) {
        let mut adv = Adversary::seeded(fault_seed)
            .with_drop_ppm(drop_ppm)
            .with_duplicate_ppm(duplicate_ppm)
            .with_delay(delay_ppm, max_delay);
        if crash_at > 0 {
            let restart = (restart > crash_at).then_some(restart);
            adv = adv.with_crash((crash_node % n) as u32, crash_at, restart);
        }
        let baseline = run_gossip(n, &lives, &adv, 1);
        for threads in [2, 4, 0] {
            let other = run_gossip(n, &lives, &adv, threads);
            prop_assert_eq!(&baseline, &other,
                "faulty run diverged at engine_threads = {}", threads);
        }
        // The same fault seed realizes the same schedule on a re-run.
        prop_assert_eq!(&baseline, &run_gossip(n, &lives, &adv, 1));
    }

    #[test]
    fn distinct_fault_seeds_are_independent_streams(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        prop_assume!(seed_a != seed_b);
        // With aggressive knobs on a message-dense run, two seeds
        // virtually surely realize different schedules; what matters is
        // that each is internally deterministic (checked above) and that
        // the knob draws key off the seed at all.
        let adv = |s| Adversary::seeded(s).with_drop_ppm(500_000);
        let a = run_gossip(6, &[4], &adv(seed_a), 1);
        let b = run_gossip(6, &[4], &adv(seed_b), 1);
        let drops = |r: &RunResult| {
            r.2.iter().filter(|e| matches!(e, TraceEvent::Dropped { .. })).count()
        };
        // Both runs drew from their own stream; at 50% drop over dozens
        // of sends, at least one drop each is near-certain. (Equality of
        // the two schedules is possible but astronomically unlikely; we
        // only assert the cheap direction.)
        prop_assert!(drops(&a) > 0 || drops(&b) > 0);
    }
}

/// Always-duplicate at a budget the duplicate cannot fit: the violation
/// must surface as the ordinary [`SimError::BandwidthExceeded`] — never
/// a silently queued extra copy.
#[test]
fn duplicated_messages_respect_the_bandwidth_check() {
    struct OnePing;
    impl Protocol for OnePing {
        type Msg = Tok;
        fn init(&mut self, ctx: &mut Context<'_, Tok>) {
            if ctx.node() == 0 {
                ctx.send(1, Tok(1));
            }
            ctx.halt();
        }
        fn round(&mut self, _: &mut Context<'_, Tok>, _: Inbox<'_, Tok>) {}
    }
    let g = dhc_graph::generator::path_graph(2);
    let adv = Adversary::seeded(0).with_duplicate_ppm(1_000_000);
    let cfg = Config::default().with_bandwidth_words(1).with_adversary(adv);
    let err = Network::new(&g, cfg, vec![OnePing, OnePing]).unwrap_err();
    assert!(
        matches!(
            err,
            SimError::BandwidthExceeded { from: 0, to: 1, attempted_words: 2, budget_words: 1, .. }
        ),
        "{err:?}"
    );
}

/// A delayed message landing in a round whose fresh traffic already
/// fills the edge: the arrival-round check must reject it as the
/// ordinary [`SimError::BandwidthExceeded`].
#[test]
fn delayed_messages_respect_the_arrival_round_bandwidth_check() {
    /// Node 0 sends to node 1 in init and in every round; with the
    /// init send delayed by exactly one round it arrives together with
    /// the round-1 send, overflowing a 1-word budget in round 2.
    struct Pusher;
    impl Protocol for Pusher {
        type Msg = Tok;
        fn init(&mut self, ctx: &mut Context<'_, Tok>) {
            if ctx.node() == 0 {
                ctx.send(1, Tok(0));
                ctx.wake_in(1);
            }
        }
        fn round(&mut self, ctx: &mut Context<'_, Tok>, _: Inbox<'_, Tok>) {
            if ctx.node() == 0 && ctx.round_number() <= 2 {
                ctx.send(1, Tok(ctx.round_number() as u64));
                ctx.wake_in(1);
            } else {
                ctx.halt();
            }
        }
    }
    // With a 50% per-delivery delay, a seed whose round-k send is
    // delayed by 1 while the round-(k+1) send goes through lands both
    // on edge 0→1 in the same round — overflowing the 1-word budget.
    // Fate draws key off `(seed, round, ...)`, so scanning seeds finds
    // such an interleaving quickly (probability ≥ 1/4 per seed).
    let g = dhc_graph::generator::path_graph(2);
    let err = (0..10_000u64)
        .find_map(|s| {
            let adv = Adversary::seeded(s).with_delay(500_000, 1);
            let cfg = Config::default().with_adversary(adv);
            let mut net = Network::new(&g, cfg, vec![Pusher, Pusher]).unwrap();
            match net.run() {
                Err(e @ SimError::BandwidthExceeded { .. }) => Some(e),
                _ => None,
            }
        })
        .expect("some seed collides a delayed and a fresh message on edge 0→1");
    assert!(matches!(err, SimError::BandwidthExceeded { from: 0, to: 1, .. }), "{err:?}");
}
