//! Double-buffered per-node mailboxes, the per-round broadcast arena,
//! and the sender-sorted [`Inbox`] view protocols read from.
//!
//! **Direct messages** committed in round `r` are routed straight into
//! the destination's **back** mailbox; because the commit fold visits
//! senders in ascending id order (each sender's sends in call order),
//! every mailbox is born sorted by sender and needs no per-inbox sort.
//!
//! **Broadcasts** are the flood fabric: one `Context::send_all` /
//! `send_all_except` call commits a **single** [`BcastRec`] into the
//! round's broadcast arena — one payload copy per broadcasting op, no
//! matter the sender's degree — and *activates* each addressed neighbor
//! with a counter bump. The payload is never copied again: receivers
//! read it by reference through the [`Inbox`] view, which lazily merges
//! the node's direct buffer with the arena records addressed to it
//! (arena records from sender `s` address exactly `s`'s neighbors minus
//! the record's `skip`). Flood routing therefore costs `O(#broadcasts)`
//! payload moves per round instead of `O(Σ deg)`.
//!
//! At the end of the round [`Mailboxes::seal`] flips the buffers: the
//! consumed front mailboxes, arena, ranges, and counters are cleared
//! (keeping capacity), front and back swap, and the touched-destination
//! list becomes the next round's message-driven active set — ascending,
//! duplicate-free, and built without any scan over all `n` inboxes.
//!
//! Every direct message is moved exactly once (sender effects →
//! destination mailbox), every broadcast payload exactly once (sender
//! effects → arena), and all buffers are arena-style: allocated once,
//! reused every round, capacity-stable after warm-up.

use crate::{NodeId, Payload, SimError};

/// One adversary-delayed message parked in virtual time until its due
/// round (see [`Mailboxes::stage_delayed`]).
#[derive(Debug)]
struct DelayedMsg<M> {
    /// Round at whose start the message is re-injected.
    due: usize,
    /// Sender.
    from: NodeId,
    /// The sender's op sequence number at send time.
    seq: u32,
    /// Recipient.
    to: NodeId,
    /// The payload.
    msg: M,
}

/// One staged broadcast: a single payload copy addressed to every
/// neighbor of the sender except `skip`.
#[derive(Debug)]
pub(crate) struct BcastRec<M> {
    /// The sender's op sequence number (interleaves with direct sends).
    pub(crate) seq: u32,
    /// Excluded neighbor, if any (`Context::send_all_except`).
    pub(crate) skip: Option<NodeId>,
    /// The payload — stored once, read by reference by every receiver.
    pub(crate) msg: M,
}

/// The engine's mailboxes; see the module docs.
#[derive(Debug)]
pub(crate) struct Mailboxes<M> {
    /// Front buffers: the current round's direct inboxes,
    /// `(sender, op seq, message)` sorted by `(sender, seq)`. Only
    /// indices listed in `ready` are non-empty.
    front: Vec<Vec<(NodeId, u32, M)>>,
    /// Back buffers: next round's direct inboxes, filled by
    /// [`stage`](Self::stage).
    back: Vec<Vec<(NodeId, u32, M)>>,
    /// Current round's broadcast arena, sender-contiguous in ascending
    /// sender order (the commit fold's order).
    recs_front: Vec<BcastRec<M>>,
    /// Next round's broadcast arena.
    recs_back: Vec<BcastRec<M>>,
    /// Per-sender `(start, len)` into `recs_front`.
    ranges_front: Vec<(u32, u32)>,
    /// Per-sender `(start, len)` into `recs_back`.
    ranges_back: Vec<(u32, u32)>,
    /// Senders with a non-empty front range (for O(#senders) clearing).
    senders_front: Vec<NodeId>,
    /// Senders with a non-empty back range.
    senders_back: Vec<NodeId>,
    /// Per-receiver count of front-arena records addressed to it.
    bcount_front: Vec<u32>,
    /// Per-receiver count of back-arena records addressed to it.
    bcount_back: Vec<u32>,
    /// Destinations staged this round (unsorted, duplicate-free).
    touched: Vec<NodeId>,
    /// Sealed `(node, delivered count)` list, ascending by node id — the
    /// message-driven active set of the current round. The count covers
    /// direct messages **and** addressed broadcast records.
    ready: Vec<(NodeId, usize)>,
    /// Adversary-delayed messages waiting for their due round
    /// (insertion order = the commit order of the rounds that delayed
    /// them, which keeps re-injection deterministic).
    delayed: Vec<DelayedMsg<M>>,
    /// Recycled per-destination-shard touch lists for the parallel
    /// commit fold (see [`dest_parts`](Self::dest_parts)).
    touched_pool: Vec<Vec<NodeId>>,
}

impl<M: Payload> Mailboxes<M> {
    /// Empty mailboxes for an `n`-node network.
    pub(crate) fn new(n: usize) -> Self {
        Mailboxes {
            front: (0..n).map(|_| Vec::new()).collect(),
            back: (0..n).map(|_| Vec::new()).collect(),
            recs_front: Vec::new(),
            recs_back: Vec::new(),
            ranges_front: vec![(0, 0); n],
            ranges_back: vec![(0, 0); n],
            senders_front: Vec::new(),
            senders_back: Vec::new(),
            bcount_front: vec![0; n],
            bcount_back: vec![0; n],
            touched: Vec::new(),
            ready: Vec::new(),
            delayed: Vec::new(),
            touched_pool: Vec::new(),
        }
    }

    /// Readies recycled mailboxes for a fresh `n`-node network.
    ///
    /// Every buffer is cleared — the previous run may have errored
    /// mid-round with staged state — and the per-node arrays are resized
    /// to `n`, keeping all surviving allocation capacity. This is the
    /// engine-level half of [`crate::EngineScratch`]: a phase that runs
    /// many same-message-type networks back to back (the `√n` Phase 1
    /// classes, DHC2's merge levels) pays the mailbox allocations once
    /// instead of once per network.
    pub(crate) fn recycle(&mut self, n: usize) {
        for b in &mut self.front {
            b.clear();
        }
        for b in &mut self.back {
            b.clear();
        }
        self.front.resize_with(n, Vec::new);
        self.back.resize_with(n, Vec::new);
        self.recs_front.clear();
        self.recs_back.clear();
        self.ranges_front.clear();
        self.ranges_front.resize(n, (0, 0));
        self.ranges_back.clear();
        self.ranges_back.resize(n, (0, 0));
        self.senders_front.clear();
        self.senders_back.clear();
        self.bcount_front.clear();
        self.bcount_front.resize(n, 0);
        self.bcount_back.clear();
        self.bcount_back.resize(n, 0);
        self.touched.clear();
        self.ready.clear();
        self.delayed.clear();
        for t in &mut self.touched_pool {
            t.clear();
        }
    }

    /// Allocated footprint of every buffer, in bytes: both inbox banks
    /// (outer spine + per-node capacity), both broadcast arenas, the
    /// range/counter arrays, and the scheduling lists. Capacities only
    /// grow during a run, so a finish-time sample *is* the run's peak.
    pub(crate) fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let slot = size_of::<Vec<(NodeId, u32, M)>>();
        let entry = size_of::<(NodeId, u32, M)>();
        let inboxes = (self.front.capacity() + self.back.capacity()) * slot
            + self.front.iter().chain(&self.back).map(|b| b.capacity() * entry).sum::<usize>();
        let arena =
            (self.recs_front.capacity() + self.recs_back.capacity()) * size_of::<BcastRec<M>>();
        let per_node = (self.ranges_front.capacity() + self.ranges_back.capacity())
            * size_of::<(u32, u32)>()
            + (self.bcount_front.capacity() + self.bcount_back.capacity()) * size_of::<u32>();
        let sched = (self.senders_front.capacity()
            + self.senders_back.capacity()
            + self.touched.capacity())
            * size_of::<NodeId>()
            + self.ready.capacity() * size_of::<(NodeId, usize)>()
            + self.delayed.capacity() * size_of::<DelayedMsg<M>>()
            + self.touched_pool.capacity() * size_of::<Vec<NodeId>>()
            + self.touched_pool.iter().map(|t| t.capacity() * size_of::<NodeId>()).sum::<usize>();
        inboxes + arena + per_node + sched
    }

    /// Records `to` as activated next round, if it was not already.
    fn note_touch(&mut self, to: NodeId) {
        if self.back[(to) as usize].is_empty() && self.bcount_back[(to) as usize] == 0 {
            self.touched.push(to);
        }
    }

    /// Stages one direct message for delivery next round. Called by the
    /// commit fold in deterministic order (senders ascending, each
    /// sender's ops by ascending `seq`), so each mailbox ends up sorted
    /// by `(sender, seq)`.
    pub(crate) fn stage(&mut self, from: NodeId, seq: u32, to: NodeId, msg: M) {
        self.note_touch(to);
        self.back[(to) as usize].push((from, seq, msg));
    }

    /// Stages one broadcast record (a single payload copy). The caller —
    /// the commit fold — must pair this with one
    /// [`deliver`](Self::deliver) per addressed neighbor; the fold
    /// commits each sender's broadcasts contiguously, so the per-sender
    /// arena range stays contiguous.
    pub(crate) fn stage_broadcast(&mut self, from: NodeId, seq: u32, skip: Option<NodeId>, msg: M) {
        let idx = self.recs_back.len() as u32;
        let (start, len) = &mut self.ranges_back[(from) as usize];
        if *len == 0 {
            *start = idx;
            self.senders_back.push(from);
        }
        *len += 1;
        self.recs_back.push(BcastRec { seq, skip, msg });
    }

    /// Activates `to` as the receiver of one staged broadcast record —
    /// a counter bump, no payload copy.
    pub(crate) fn deliver(&mut self, to: NodeId) {
        self.note_touch(to);
        self.bcount_back[(to) as usize] += 1;
    }

    /// Flips the buffers: clears the consumed front inboxes and arena
    /// (keeping capacity), promotes the staged back buffers to front,
    /// and rebuilds the ready list for the next round.
    pub(crate) fn seal(&mut self) {
        for &(v, _) in &self.ready {
            self.front[(v) as usize].clear();
            self.bcount_front[(v) as usize] = 0;
        }
        self.recs_front.clear();
        for &s in &self.senders_front {
            self.ranges_front[(s) as usize] = (0, 0);
        }
        self.senders_front.clear();
        std::mem::swap(&mut self.front, &mut self.back);
        std::mem::swap(&mut self.recs_front, &mut self.recs_back);
        std::mem::swap(&mut self.ranges_front, &mut self.ranges_back);
        std::mem::swap(&mut self.senders_front, &mut self.senders_back);
        std::mem::swap(&mut self.bcount_front, &mut self.bcount_back);
        self.touched.sort_unstable();
        self.ready.clear();
        self.ready.extend(self.touched.iter().map(|&d| {
            (d, self.front[(d) as usize].len() + self.bcount_front[(d) as usize] as usize)
        }));
        self.touched.clear();
    }

    /// The sealed `(node, delivered count)` list: every node with mail
    /// or addressed broadcasts this round, ascending.
    pub(crate) fn ready(&self) -> &[(NodeId, usize)] {
        &self.ready
    }

    /// Parks one adversary-delayed message until the start of round
    /// `due`. Called by the commit fold in deterministic order.
    pub(crate) fn stage_delayed(&mut self, due: usize, from: NodeId, seq: u32, to: NodeId, msg: M) {
        self.delayed.push(DelayedMsg { due, from, seq, to, msg });
    }

    /// Earliest due round among parked messages, if any — a wake source
    /// for the engine's quiescent fast-forward.
    pub(crate) fn next_due(&self) -> Option<usize> {
        self.delayed.iter().map(|d| d.due).min()
    }

    /// Re-injects every parked message due at or before `round` into the
    /// **front** (current-round) inboxes, charging each against the
    /// arrival round's per-edge budget.
    ///
    /// Everything arriving on a directed edge in one round — freshly
    /// delivered messages plus re-injected delayed ones — must fit the
    /// edge budget; a violation surfaces as the ordinary
    /// [`SimError::BandwidthExceeded`], never a silent queue. (Under an
    /// active adversary broadcasts are committed as per-destination
    /// direct messages, so the front buffers are the complete arrival
    /// set and this check is exhaustive.)
    pub(crate) fn inject_due(&mut self, round: usize, budget: usize) -> Result<(), SimError> {
        if self.delayed.iter().all(|d| d.due > round) {
            return Ok(());
        }
        let mut rest = Vec::with_capacity(self.delayed.len());
        let mut due = Vec::new();
        for d in self.delayed.drain(..) {
            if d.due <= round {
                due.push(d);
            } else {
                rest.push(d);
            }
        }
        self.delayed = rest;

        // Per-edge arrival charge: base = fresh same-sender words already
        // in the destination's front buffer, then each injected copy adds
        // its own words. Checked in injection order, which is itself
        // commit order — deterministic first violation.
        let mut charged: Vec<(NodeId, NodeId, usize)> = Vec::new();
        for d in &due {
            let w = d.msg.words().max(1);
            let acc = match charged.iter_mut().find(|e| (e.0, e.1) == (d.from, d.to)) {
                Some(e) => {
                    e.2 += w;
                    e.2
                }
                None => {
                    let base: usize = self.front[(d.to) as usize]
                        .iter()
                        .filter(|&&(f, _, _)| f == d.from)
                        .map(|(_, _, m)| m.words().max(1))
                        .sum();
                    charged.push((d.from, d.to, base + w));
                    base + w
                }
            };
            if acc > budget {
                return Err(SimError::BandwidthExceeded {
                    from: d.from,
                    to: d.to,
                    round,
                    attempted_words: acc,
                    budget_words: budget,
                });
            }
        }

        let mut hit: Vec<NodeId> = Vec::new();
        for d in due {
            if !hit.contains(&d.to) {
                hit.push(d.to);
            }
            self.front[(d.to) as usize].push((d.from, d.seq, d.msg));
        }
        for to in hit {
            // Stable sort: on `(sender, seq)` ties the fresh message
            // (staged first) keeps priority over the late one.
            self.front[(to) as usize].sort_by_key(|&(f, s, _)| (f, s));
            let count = self.front[(to) as usize].len() + self.bcount_front[(to) as usize] as usize;
            // Keep `ready` consistent so the engine activates `to` and
            // the next `seal` clears the injected buffer.
            match self.ready.binary_search_by_key(&to, |&(v, _)| v) {
                Ok(i) => self.ready[i].1 = count,
                Err(i) => self.ready.insert(i, (to, count)),
            }
        }
        Ok(())
    }

    /// One node's merged inbox view for the current round. `nbrs` must
    /// be the node's sorted neighbor slice — it is how the view resolves
    /// which arena records address the node.
    pub(crate) fn inbox<'a>(&'a self, v: NodeId, nbrs: &'a [NodeId]) -> Inbox<'a, M> {
        let bcount = self.bcount_front[(v) as usize] as usize;
        Inbox {
            direct: &self.front[(v) as usize],
            recs: &self.recs_front,
            ranges: &self.ranges_front,
            // With no addressed broadcasts the merge degenerates to the
            // direct buffer; dropping the neighbor slice makes iteration
            // skip the arena probe entirely.
            nbrs: if bcount == 0 { &[] } else { nbrs },
            me: v,
            len: self.front[(v) as usize].len() + bcount,
        }
    }

    /// Splits the **back** (next-round) buffers into `shards` disjoint
    /// destination ranges of `chunk` node ids each, for the parallel
    /// commit fold's destination pass: each [`DestPart`] owns the back
    /// inboxes and broadcast counters of ids `[d*chunk, (d+1)*chunk)`
    /// and can be driven from its own worker. Touch tracking is
    /// per-part (a node's every touch lands in exactly one part, so the
    /// first-touch-only invariant holds shard-locally); reclaim the
    /// lists with [`absorb_touched`](Self::absorb_touched) — [`seal`]
    /// sorts, so the global list's build order is immaterial.
    ///
    /// [`seal`]: Self::seal
    pub(crate) fn dest_parts(&mut self, chunk: usize, shards: usize) -> Vec<DestPart<'_, M>> {
        let n = self.back.len();
        debug_assert!(chunk * shards >= n, "destination shards must cover the id space");
        let mut parts = Vec::with_capacity(shards);
        let mut back_rest = &mut self.back[..];
        let mut count_rest = &mut self.bcount_back[..];
        let mut base = 0usize;
        for d in 0..shards {
            let end = ((d + 1) * chunk).min(n);
            let width = end.saturating_sub(base);
            let (back, br) = back_rest.split_at_mut(width);
            back_rest = br;
            let (bcount, cr) = count_rest.split_at_mut(width);
            count_rest = cr;
            let touched = self.touched_pool.pop().unwrap_or_default();
            parts.push(DestPart { base, back, bcount, touched });
            base = end.max(base);
        }
        parts
    }

    /// Returns the destination parts' touch lists: appends each to the
    /// global touched list (deduplication is structural — every node
    /// was listed by at most one part, at most once) and recycles the
    /// allocations.
    pub(crate) fn absorb_touched(&mut self, lists: impl IntoIterator<Item = Vec<NodeId>>) {
        for mut list in lists {
            self.touched.append(&mut list);
            self.touched_pool.push(list);
        }
    }
}

/// One destination shard of the back buffers — the write half of the
/// parallel commit fold's destination pass (see
/// [`Mailboxes::dest_parts`]).
#[derive(Debug)]
pub(crate) struct DestPart<'a, M> {
    /// First node id this part covers.
    base: usize,
    back: &'a mut [Vec<(NodeId, u32, M)>],
    bcount: &'a mut [u32],
    touched: Vec<NodeId>,
}

impl<M: Payload> DestPart<'_, M> {
    /// The half-open node-id range `[lo, hi)` this part covers.
    pub(crate) fn range(&self) -> (NodeId, NodeId) {
        ((self.base) as u32, (self.base + self.back.len()) as u32)
    }

    /// Shard-local twin of [`Mailboxes::stage`]; `to` must lie in
    /// [`range`](Self::range).
    pub(crate) fn stage(&mut self, from: NodeId, seq: u32, to: NodeId, msg: M) {
        let i = to - (self.base) as u32;
        if self.back[(i) as usize].is_empty() && self.bcount[(i) as usize] == 0 {
            self.touched.push(to);
        }
        self.back[(i) as usize].push((from, seq, msg));
    }

    /// Shard-local twin of [`Mailboxes::deliver`]; `to` must lie in
    /// [`range`](Self::range).
    pub(crate) fn deliver(&mut self, to: NodeId) {
        let i = to - (self.base) as u32;
        if self.back[(i) as usize].is_empty() && self.bcount[(i) as usize] == 0 {
            self.touched.push(to);
        }
        self.bcount[(i) as usize] += 1;
    }

    /// Consumes the part, returning the destinations it touched.
    pub(crate) fn into_touched(self) -> Vec<NodeId> {
        self.touched
    }
}

/// One round's delivered messages for one node: a lightweight
/// sender-sorted view merging the node's direct-message buffer with the
/// broadcast-arena records addressed to it.
///
/// Handed to [`Protocol::round`](crate::Protocol::round). Messages are
/// ordered by `(sender id, sender's call order)` — exactly the order a
/// per-neighbor unicast expansion of every broadcast would have produced
/// — and broadcast payloads are read **by reference** from the arena,
/// never re-copied per receiver.
///
/// The view is `Copy`; iterate it any number of times with
/// [`iter`](Inbox::iter) (or `for (from, msg) in &inbox`).
#[derive(Debug, Clone, Copy)]
pub struct Inbox<'a, M: Payload> {
    /// Direct messages `(sender, op seq, message)`, `(sender, seq)`-sorted.
    direct: &'a [(NodeId, u32, M)],
    /// The round's broadcast arena (all senders).
    recs: &'a [BcastRec<M>],
    /// Per-sender `(start, len)` into `recs`.
    ranges: &'a [(u32, u32)],
    /// This node's sorted neighbor slice (empty when no broadcast
    /// addresses the node).
    nbrs: &'a [NodeId],
    /// This node's id (to honor per-record `skip`).
    me: NodeId,
    /// Total delivered messages (direct + addressed broadcasts).
    len: usize,
}

impl<'a, M: Payload> Inbox<'a, M> {
    /// Number of messages delivered this round.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no message was delivered (wake-up-only activation).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates the messages as `(sender, &message)`, sorted by sender
    /// id (ties between one sender's messages keep that sender's call
    /// order).
    pub fn iter(&self) -> InboxIter<'a, M> {
        InboxIter {
            direct: self.direct,
            di: 0,
            recs: self.recs,
            ranges: self.ranges,
            nbrs: self.nbrs,
            ni: 0,
            cur_sender: 0,
            cur: 0,
            cur_end: 0,
            me: self.me,
        }
    }
}

impl<'a, M: Payload> IntoIterator for &Inbox<'a, M> {
    type Item = (NodeId, &'a M);
    type IntoIter = InboxIter<'a, M>;
    fn into_iter(self) -> InboxIter<'a, M> {
        self.iter()
    }
}

impl<'a, M: Payload> IntoIterator for Inbox<'a, M> {
    type Item = (NodeId, &'a M);
    type IntoIter = InboxIter<'a, M>;
    fn into_iter(self) -> InboxIter<'a, M> {
        self.iter()
    }
}

/// Iterator over an [`Inbox`]: a two-pointer merge of the direct buffer
/// and the addressed broadcast records, both `(sender, seq)`-ascending.
#[derive(Debug)]
pub struct InboxIter<'a, M: Payload> {
    direct: &'a [(NodeId, u32, M)],
    di: usize,
    recs: &'a [BcastRec<M>],
    ranges: &'a [(u32, u32)],
    nbrs: &'a [NodeId],
    ni: usize,
    cur_sender: NodeId,
    cur: u32,
    cur_end: u32,
    me: NodeId,
}

impl<M: Payload> InboxIter<'_, M> {
    /// Positions the broadcast cursor on the next record addressed to
    /// this node, returning its `(sender, seq)` without consuming it.
    fn peek_bcast(&mut self) -> Option<(NodeId, u32)> {
        loop {
            while self.cur < self.cur_end {
                let rec = &self.recs[self.cur as usize];
                if rec.skip == Some(self.me) {
                    self.cur += 1;
                } else {
                    return Some((self.cur_sender, rec.seq));
                }
            }
            loop {
                let &s = self.nbrs.get(self.ni)?;
                self.ni += 1;
                let (start, len) = self.ranges[(s) as usize];
                if len > 0 {
                    self.cur_sender = s;
                    self.cur = start;
                    self.cur_end = start + len;
                    break;
                }
            }
        }
    }
}

impl<'a, M: Payload> Iterator for InboxIter<'a, M> {
    type Item = (NodeId, &'a M);

    fn next(&mut self) -> Option<(NodeId, &'a M)> {
        let bcast = self.peek_bcast();
        match (self.direct.get(self.di), bcast) {
            (Some(&(from, seq, ref msg)), Some((bfrom, bseq))) => {
                if (from, seq) <= (bfrom, bseq) {
                    self.di += 1;
                    Some((from, msg))
                } else {
                    let rec = &self.recs[self.cur as usize];
                    self.cur += 1;
                    Some((bfrom, &rec.msg))
                }
            }
            (Some(&(from, _, ref msg)), None) => {
                self.di += 1;
                Some((from, msg))
            }
            (None, Some((bfrom, _))) => {
                let rec = &self.recs[self.cur as usize];
                self.cur += 1;
                Some((bfrom, &rec.msg))
            }
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(inbox: Inbox<'_, u64>) -> Vec<(NodeId, u64)> {
        inbox.iter().map(|(from, &m)| (from, m)).collect()
    }

    #[test]
    fn seal_groups_by_destination_with_senders_in_commit_order() {
        let mut mb: Mailboxes<u64> = Mailboxes::new(5);
        // Commit order: sender 0 then sender 2 then sender 4.
        mb.stage(0, 0, 3, 10);
        mb.stage(0, 1, 1, 11);
        mb.stage(2, 0, 3, 12);
        mb.stage(4, 0, 1, 13);
        mb.stage(4, 1, 1, 14);
        mb.seal();
        assert_eq!(mb.ready(), &[(1, 3), (3, 2)]);
        assert_eq!(collect(mb.inbox(1, &[0, 4])), vec![(0, 11), (4, 13), (4, 14)]);
        assert_eq!(collect(mb.inbox(3, &[0, 2])), vec![(0, 10), (2, 12)]);
    }

    #[test]
    fn seal_twice_clears_previous_round() {
        let mut mb: Mailboxes<u64> = Mailboxes::new(3);
        mb.stage(0, 0, 1, 1);
        mb.seal();
        assert_eq!(mb.ready().len(), 1);
        mb.seal();
        assert!(mb.ready().is_empty());
        assert!(mb.inbox(1, &[0, 2]).is_empty());
        mb.stage(1, 0, 2, 9);
        mb.seal();
        assert_eq!(mb.ready(), &[(2, 1)]);
        assert_eq!(collect(mb.inbox(2, &[1])), vec![(1, 9)]);
    }

    #[test]
    fn buffers_are_reused_across_rounds() {
        let mut mb: Mailboxes<u64> = Mailboxes::new(2);
        for round in 0..4 {
            mb.stage(0, 0, 1, round);
            mb.seal();
            assert_eq!(collect(mb.inbox(1, &[0])), vec![(0, round)]);
        }
        // After the first two rounds both buffers are warm; capacity is
        // retained through clear + swap.
        assert!(mb.front[1].capacity() >= 1 && mb.back[1].capacity() >= 1);
    }

    /// Broadcast staging: one record, counter-bump activations, payload
    /// visible to every addressed neighbor through the inbox view.
    #[test]
    fn broadcast_is_stored_once_and_merged_per_receiver() {
        // Path 0-1-2-3; node 1 broadcasts, node 3 unicasts to 2.
        let mut mb: Mailboxes<u64> = Mailboxes::new(4);
        mb.stage_broadcast(1, 0, None, 77);
        mb.deliver(0);
        mb.deliver(2);
        mb.stage(3, 0, 2, 88);
        mb.seal();
        assert_eq!(mb.recs_front.len(), 1, "one payload copy for the broadcast");
        assert_eq!(mb.ready(), &[(0, 1), (2, 2)]);
        assert_eq!(collect(mb.inbox(0, &[1])), vec![(1, 77)]);
        assert_eq!(collect(mb.inbox(2, &[1, 3])), vec![(1, 77), (3, 88)]);
    }

    /// A record's `skip` hides it from exactly that receiver, and the
    /// per-sender op sequence interleaves broadcasts with direct sends.
    #[test]
    fn skip_and_seq_interleaving() {
        // Triangle 0-1-2. Node 0's ops: send(1, a); send_all_except(2, b);
        // send(1, c)  => node 1 sees a, b, c; node 2 sees nothing from
        // the broadcast.
        let mut mb: Mailboxes<u64> = Mailboxes::new(3);
        mb.stage(0, 0, 1, 100);
        mb.stage_broadcast(0, 1, Some(2), 200);
        mb.deliver(1);
        mb.stage(0, 2, 1, 300);
        mb.seal();
        assert_eq!(collect(mb.inbox(1, &[0, 2])), vec![(0, 100), (0, 200), (0, 300)]);
        assert_eq!(mb.ready(), &[(1, 3)]);
    }

    #[test]
    fn delayed_messages_wait_for_their_round_and_merge_in_order() {
        let mut mb: Mailboxes<u64> = Mailboxes::new(3);
        mb.stage_delayed(3, 0, 0, 2, 50);
        assert_eq!(mb.next_due(), Some(3));
        // Round 2: nothing due yet.
        mb.stage(1, 0, 2, 40);
        mb.seal();
        mb.inject_due(2, 4).unwrap();
        assert_eq!(collect(mb.inbox(2, &[0, 1])), vec![(1, 40)]);
        assert_eq!(mb.next_due(), Some(3));
        // Round 3: the delayed message lands and sorts before the fresh
        // one (sender 0 < sender 1), and `ready` picks up node 2.
        mb.stage(1, 0, 2, 41);
        mb.seal();
        mb.inject_due(3, 4).unwrap();
        assert_eq!(mb.next_due(), None);
        assert_eq!(mb.ready(), &[(2, 2)]);
        assert_eq!(collect(mb.inbox(2, &[0, 1])), vec![(0, 50), (1, 41)]);
        // Round 4: the injected buffer was cleared by the next seal.
        mb.seal();
        assert!(mb.ready().is_empty());
        assert!(mb.inbox(2, &[0, 1]).is_empty());
    }

    #[test]
    fn injection_activates_an_otherwise_idle_destination() {
        let mut mb: Mailboxes<u64> = Mailboxes::new(2);
        mb.stage_delayed(1, 0, 0, 1, 7);
        mb.seal();
        assert!(mb.ready().is_empty());
        mb.inject_due(1, 1).unwrap();
        assert_eq!(mb.ready(), &[(1, 1)]);
        assert_eq!(collect(mb.inbox(1, &[0])), vec![(0, 7)]);
    }

    #[test]
    fn injection_respects_the_arrival_round_budget() {
        let mut mb: Mailboxes<u64> = Mailboxes::new(2);
        // A fresh word on edge 0→1 plus a delayed one: fits budget 2,
        // not budget 1.
        mb.stage_delayed(1, 0, 0, 1, 7);
        mb.stage(0, 1, 1, 8);
        mb.seal();
        let err = {
            let mut tight = Mailboxes::<u64>::new(2);
            tight.stage_delayed(1, 0, 0, 1, 7);
            tight.stage(0, 1, 1, 8);
            tight.seal();
            tight.inject_due(1, 1).unwrap_err()
        };
        assert!(
            matches!(
                err,
                SimError::BandwidthExceeded {
                    from: 0,
                    to: 1,
                    round: 1,
                    attempted_words: 2,
                    budget_words: 1
                }
            ),
            "{err:?}"
        );
        mb.inject_due(1, 2).unwrap();
        assert_eq!(collect(mb.inbox(1, &[0])), vec![(0, 7), (0, 8)]);
    }

    #[test]
    fn dest_parts_match_sequential_staging() {
        // Sequential staging (commit order: sender 0, 2, 4).
        let mut seq: Mailboxes<u64> = Mailboxes::new(5);
        seq.stage(0, 0, 3, 10);
        seq.stage(0, 1, 1, 11);
        seq.stage_broadcast(2, 0, None, 12);
        seq.deliver(1);
        seq.deliver(3);
        seq.stage(4, 0, 1, 13);
        seq.seal();
        // Sharded: same ops, direct stages and deliver bumps routed to
        // the owning destination part (chunk 3: ids 0..3 and 3..5).
        let mut par: Mailboxes<u64> = Mailboxes::new(5);
        par.stage_broadcast(2, 0, None, 12);
        {
            let mut parts = par.dest_parts(3, 2);
            let (lo, hi) = parts.split_at_mut(1);
            lo[0].stage(0, 1, 1, 11);
            lo[0].deliver(1);
            lo[0].stage(4, 0, 1, 13);
            hi[0].stage(0, 0, 3, 10);
            hi[0].deliver(3);
            assert_eq!(lo[0].range(), (0, 3));
            assert_eq!(hi[0].range(), (3, 5));
            let touched: Vec<Vec<NodeId>> = parts.into_iter().map(DestPart::into_touched).collect();
            par.absorb_touched(touched);
        }
        par.seal();
        assert_eq!(seq.ready(), par.ready());
        for v in 0..5 {
            // Receivers 1 and 3 resolve sender 2's broadcast through
            // their neighbor slice; the others have no arena records.
            assert_eq!(
                collect(seq.inbox(v, &[0, 2, 4])),
                collect(par.inbox(v, &[0, 2, 4])),
                "inbox {v} diverged"
            );
        }
        // The touch lists were recycled into the pool.
        assert_eq!(par.touched_pool.len(), 2);
    }

    #[test]
    fn broadcast_arena_cleared_on_seal() {
        let mut mb: Mailboxes<u64> = Mailboxes::new(2);
        mb.stage_broadcast(0, 0, None, 5);
        mb.deliver(1);
        mb.seal();
        assert_eq!(mb.ready(), &[(1, 1)]);
        mb.seal();
        assert!(mb.ready().is_empty());
        assert!(mb.recs_front.is_empty() && mb.recs_back.is_empty());
        assert_eq!(mb.ranges_front[0], (0, 0));
        assert_eq!(mb.bcount_front, vec![0, 0]);
    }
}
