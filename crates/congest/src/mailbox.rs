//! Double-buffered per-node mailboxes for the round engine.
//!
//! Messages committed in round `r` are routed straight into the
//! destination's **back** mailbox; because the commit fold visits senders
//! in ascending id order (each sender's sends in call order), every
//! mailbox is born sorted by sender and the per-inbox `sort_by_key` of
//! the old engine disappears. At the end of the round
//! [`Mailboxes::seal`] flips the buffers: the consumed front mailboxes
//! are cleared (keeping their capacity), front and back swap, and the
//! touched-destination list becomes the next round's message-driven
//! active set — ascending, duplicate-free, and built without the old
//! engine's scan over all `n` pending inboxes.
//!
//! Every message is moved exactly once (sender effects → destination
//! mailbox) and all buffers — both mailbox arrays and the
//! touched/ready lists — are arena-style: allocated once, reused every
//! round, capacity-stable after warm-up.

use crate::NodeId;

/// The engine's mailboxes; see the module docs.
#[derive(Debug)]
pub(crate) struct Mailboxes<M> {
    /// Front buffers: the current round's inboxes, `(sender, message)`
    /// sorted by sender. Only indices listed in `ready` are non-empty.
    front: Vec<Vec<(NodeId, M)>>,
    /// Back buffers: next round's inboxes, filled by [`stage`](Self::stage).
    back: Vec<Vec<(NodeId, M)>>,
    /// Destinations staged this round (unsorted, duplicate-free).
    touched: Vec<NodeId>,
    /// Sealed `(node, inbox len)` list, ascending by node id — the
    /// message-driven active set of the current round.
    ready: Vec<(NodeId, usize)>,
}

impl<M> Mailboxes<M> {
    /// Empty mailboxes for an `n`-node network.
    pub(crate) fn new(n: usize) -> Self {
        Mailboxes {
            front: (0..n).map(|_| Vec::new()).collect(),
            back: (0..n).map(|_| Vec::new()).collect(),
            touched: Vec::new(),
            ready: Vec::new(),
        }
    }

    /// Stages one message for delivery next round. Called by the commit
    /// fold in deterministic order (senders ascending), so each mailbox
    /// ends up sorted by sender with per-sender send order preserved.
    pub(crate) fn stage(&mut self, from: NodeId, to: NodeId, msg: M) {
        let inbox = &mut self.back[to];
        if inbox.is_empty() {
            self.touched.push(to);
        }
        inbox.push((from, msg));
    }

    /// Flips the buffers: clears the consumed front inboxes (keeping
    /// capacity), promotes the staged back buffers to front, and rebuilds
    /// the ready list for the next round.
    pub(crate) fn seal(&mut self) {
        for &(v, _) in &self.ready {
            self.front[v].clear();
        }
        std::mem::swap(&mut self.front, &mut self.back);
        self.touched.sort_unstable();
        self.ready.clear();
        self.ready.extend(self.touched.iter().map(|&d| (d, self.front[d].len())));
        self.touched.clear();
    }

    /// The sealed `(node, inbox len)` list: every node with mail this
    /// round, ascending.
    pub(crate) fn ready(&self) -> &[(NodeId, usize)] {
        &self.ready
    }

    /// One node's inbox for the current round.
    pub(crate) fn inbox(&self, v: NodeId) -> &[(NodeId, M)] {
        &self.front[v]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_groups_by_destination_with_senders_in_commit_order() {
        let mut mb: Mailboxes<u64> = Mailboxes::new(5);
        // Commit order: sender 0 then sender 2 then sender 4.
        mb.stage(0, 3, 10);
        mb.stage(0, 1, 11);
        mb.stage(2, 3, 12);
        mb.stage(4, 1, 13);
        mb.stage(4, 1, 14);
        mb.seal();
        assert_eq!(mb.ready(), &[(1, 3), (3, 2)]);
        assert_eq!(mb.inbox(1), &[(0, 11), (4, 13), (4, 14)]);
        assert_eq!(mb.inbox(3), &[(0, 10), (2, 12)]);
    }

    #[test]
    fn seal_twice_clears_previous_round() {
        let mut mb: Mailboxes<u64> = Mailboxes::new(3);
        mb.stage(0, 1, 1);
        mb.seal();
        assert_eq!(mb.ready().len(), 1);
        mb.seal();
        assert!(mb.ready().is_empty());
        assert!(mb.inbox(1).is_empty());
        mb.stage(1, 2, 9);
        mb.seal();
        assert_eq!(mb.ready(), &[(2, 1)]);
        assert_eq!(mb.inbox(2), &[(1, 9)]);
    }

    #[test]
    fn buffers_are_reused_across_rounds() {
        let mut mb: Mailboxes<u64> = Mailboxes::new(2);
        for round in 0..4 {
            mb.stage(0, 1, round);
            mb.seal();
            assert_eq!(mb.inbox(1), &[(0, round)]);
        }
        // After the first two rounds both buffers are warm; capacity is
        // retained through clear + swap.
        assert!(mb.front[1].capacity() >= 1 && mb.back[1].capacity() >= 1);
    }
}
