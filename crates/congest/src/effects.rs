//! Per-node effect scratch for the two-phase round engine.
//!
//! During a round's **compute phase** every active node runs against an
//! immutable view of the network and records everything it wants to do —
//! sends, a halt, a wake-up request, compute charges, faults — into its
//! own [`Effects`] value. No shared state is mutated, which is what makes
//! the compute phase safe to run on any number of worker threads. The
//! engine's sequential **commit fold** then applies the effects in
//! ascending node-id order, so the observable outcome (metrics, trace,
//! message delivery order) is bit-identical at every thread count.
//!
//! `Effects` values live in a pool owned by the
//! [`Network`](crate::Network) and are reused across rounds: the vectors
//! keep their capacity, so a warmed-up engine allocates nothing per round.

use crate::{NodeId, Payload, SimError};

/// Everything one node's callback did in one round, staged for the
/// commit fold.
#[derive(Debug)]
pub(crate) struct Effects<M: Payload> {
    /// Queued sends as `(destination, message)`, in call order.
    pub(crate) sends: Vec<(NodeId, M)>,
    /// `sends[i].1.words().max(1)`, precomputed on the worker thread so
    /// the fold never calls into payload code.
    pub(crate) send_words: Vec<usize>,
    /// `(destination, words)` sorted by destination — the fold's input
    /// for the per-directed-edge bandwidth check.
    pub(crate) edge_words: Vec<(NodeId, usize)>,
    /// The node called [`Context::halt`](crate::Context::halt).
    pub(crate) halted: bool,
    /// Requested wake-up round (already minimized across `wake_in` calls).
    pub(crate) wake: Option<usize>,
    /// Compute units charged via
    /// [`Context::charge_compute`](crate::Context::charge_compute).
    pub(crate) compute: u64,
    /// First fault raised by the callback (e.g. a non-neighbor send).
    pub(crate) fault: Option<SimError>,
    /// `Protocol::memory_words` sampled after the callback, when memory
    /// sampling is enabled.
    pub(crate) memory: Option<usize>,
}

impl<M: Payload> Default for Effects<M> {
    fn default() -> Self {
        Effects {
            sends: Vec::new(),
            send_words: Vec::new(),
            edge_words: Vec::new(),
            halted: false,
            wake: None,
            compute: 0,
            fault: None,
            memory: None,
        }
    }
}

impl<M: Payload> Effects<M> {
    /// Clears the scratch for reuse, keeping vector capacity.
    pub(crate) fn reset(&mut self) {
        self.sends.clear();
        self.send_words.clear();
        self.edge_words.clear();
        self.halted = false;
        self.wake = None;
        self.compute = 0;
        self.fault = None;
        self.memory = None;
    }

    /// Finishes the compute phase for this node: records the sampled
    /// memory and precomputes the word counts the fold consumes. Runs on
    /// the worker thread, in parallel across nodes.
    pub(crate) fn seal(&mut self, memory: Option<usize>) {
        self.memory = memory;
        self.send_words.clear();
        self.send_words.extend(self.sends.iter().map(|(_, m)| m.words().max(1)));
        self.edge_words.clear();
        self.edge_words
            .extend(self.sends.iter().zip(&self.send_words).map(|(&(to, _), &w)| (to, w)));
        // Only the per-destination sums matter, so an unstable sort is
        // fine — and it is deterministic for a fixed input either way.
        self.edge_words.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_precomputes_sorted_edge_words() {
        let mut fx: Effects<u64> = Effects::default();
        fx.sends.push((3, 7));
        fx.sends.push((1, 8));
        fx.sends.push((3, 9));
        fx.seal(Some(5));
        assert_eq!(fx.send_words, vec![1, 1, 1]);
        assert_eq!(fx.edge_words, vec![(1, 1), (3, 1), (3, 1)]);
        assert_eq!(fx.memory, Some(5));
    }

    #[test]
    fn reset_clears_everything() {
        let mut fx: Effects<u64> = Effects::default();
        fx.sends.push((0, 1));
        fx.halted = true;
        fx.wake = Some(9);
        fx.compute = 4;
        fx.seal(None);
        fx.reset();
        assert!(fx.sends.is_empty() && fx.send_words.is_empty() && fx.edge_words.is_empty());
        assert!(!fx.halted && fx.wake.is_none() && fx.compute == 0 && fx.fault.is_none());
    }
}
