//! Per-node effect scratch for the two-phase round engine.
//!
//! During a round's **compute phase** every active node runs against an
//! immutable view of the network and records everything it wants to do —
//! unicast sends, broadcasts, a halt, a wake-up request, compute charges,
//! faults — into its own [`Effects`] value. No shared state is mutated,
//! which is what makes the compute phase safe to run on any number of
//! worker threads. The engine's sequential **commit fold** then applies
//! the effects in ascending node-id order, so the observable outcome
//! (metrics, trace, message delivery order) is bit-identical at every
//! thread count.
//!
//! Unicast sends and broadcasts share one per-node **op sequence**: every
//! `Context::send` / `send_all` / `send_all_except` call consumes the next
//! sequence number. The number travels with the staged message (or
//! broadcast record) so the receiver-side [`Inbox`](crate::Inbox) merge
//! can reproduce the exact call-order interleaving a per-neighbor unicast
//! expansion would have produced.
//!
//! `Effects` values live in a pool owned by the
//! [`Network`](crate::Network) and are reused across rounds: the vectors
//! keep their capacity, so a warmed-up engine allocates nothing per round.

use crate::{NodeId, Payload, SimError};

/// Everything one node's callback did in one round, staged for the
/// commit fold.
#[derive(Debug)]
pub(crate) struct Effects<M: Payload> {
    /// Queued unicast sends as `(op seq, destination, message)`, in call
    /// order.
    pub(crate) sends: Vec<(u32, NodeId, M)>,
    /// Queued broadcasts as `(op seq, excluded neighbor, message)`, in
    /// call order. One entry per `send_all`/`send_all_except` call —
    /// **one** payload copy regardless of the sender's degree.
    pub(crate) bcasts: Vec<(u32, Option<NodeId>, M)>,
    /// Next op sequence number (shared by sends and broadcasts).
    pub(crate) seq: u32,
    /// `sends[i].2.words().max(1)`, precomputed on the worker thread so
    /// the fold never calls into payload code.
    pub(crate) send_words: Vec<usize>,
    /// `bcasts[i].2.words().max(1)`, likewise.
    pub(crate) bcast_words: Vec<usize>,
    /// Sum of `bcast_words`: the broadcast word load every non-excluded
    /// neighbor receives this round.
    pub(crate) bcast_total_words: usize,
    /// `(destination, words)` of the **unicast** sends, sorted by
    /// destination — one input of the fold's per-directed-edge bandwidth
    /// check.
    pub(crate) edge_words: Vec<(NodeId, usize)>,
    /// `(excluded neighbor, words)` per broadcast that excludes one,
    /// sorted — the fold subtracts these from the broadcast base load.
    pub(crate) skip_words: Vec<(NodeId, usize)>,
    /// The node called [`Context::halt`](crate::Context::halt).
    pub(crate) halted: bool,
    /// Requested wake-up round (already minimized across `wake_in` calls).
    pub(crate) wake: Option<usize>,
    /// Compute units charged via
    /// [`Context::charge_compute`](crate::Context::charge_compute).
    pub(crate) compute: u64,
    /// First fault raised by the callback (e.g. a non-neighbor send).
    pub(crate) fault: Option<SimError>,
    /// `Protocol::memory_words` sampled after the callback, when memory
    /// sampling is enabled.
    pub(crate) memory: Option<usize>,
}

impl<M: Payload> Default for Effects<M> {
    fn default() -> Self {
        Effects {
            sends: Vec::new(),
            bcasts: Vec::new(),
            seq: 0,
            send_words: Vec::new(),
            bcast_words: Vec::new(),
            bcast_total_words: 0,
            edge_words: Vec::new(),
            skip_words: Vec::new(),
            halted: false,
            wake: None,
            compute: 0,
            fault: None,
            memory: None,
        }
    }
}

impl<M: Payload> Effects<M> {
    /// Clears the scratch for reuse, keeping vector capacity.
    pub(crate) fn reset(&mut self) {
        self.sends.clear();
        self.bcasts.clear();
        self.seq = 0;
        self.send_words.clear();
        self.bcast_words.clear();
        self.bcast_total_words = 0;
        self.edge_words.clear();
        self.skip_words.clear();
        self.halted = false;
        self.wake = None;
        self.compute = 0;
        self.fault = None;
        self.memory = None;
    }

    /// Allocated footprint of the staging vectors, in bytes.
    pub(crate) fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.sends.capacity() * size_of::<(u32, NodeId, M)>()
            + self.bcasts.capacity() * size_of::<(u32, Option<NodeId>, M)>()
            + (self.send_words.capacity() + self.bcast_words.capacity()) * size_of::<usize>()
            + (self.edge_words.capacity() + self.skip_words.capacity())
                * size_of::<(NodeId, usize)>()
    }

    /// Consumes the next op sequence number.
    pub(crate) fn next_seq(&mut self) -> u32 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Finishes the compute phase for this node: records the sampled
    /// memory and precomputes the word counts the fold consumes. Runs on
    /// the worker thread, in parallel across nodes.
    pub(crate) fn seal(&mut self, memory: Option<usize>) {
        self.memory = memory;
        self.send_words.clear();
        self.send_words.extend(self.sends.iter().map(|(_, _, m)| m.words().max(1)));
        self.edge_words.clear();
        self.edge_words
            .extend(self.sends.iter().zip(&self.send_words).map(|(&(_, to, _), &w)| (to, w)));
        // Only the per-destination sums matter, so an unstable sort is
        // fine — and it is deterministic for a fixed input either way.
        self.edge_words.sort_unstable();
        self.bcast_words.clear();
        self.bcast_words.extend(self.bcasts.iter().map(|(_, _, m)| m.words().max(1)));
        self.bcast_total_words = self.bcast_words.iter().sum();
        self.skip_words.clear();
        self.skip_words.extend(
            self.bcasts
                .iter()
                .zip(&self.bcast_words)
                .filter_map(|(&(_, skip, _), &w)| skip.map(|s| (s, w))),
        );
        self.skip_words.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_precomputes_sorted_edge_words() {
        let mut fx: Effects<u64> = Effects::default();
        fx.sends.push((0, 3, 7));
        fx.sends.push((1, 1, 8));
        fx.sends.push((2, 3, 9));
        fx.seal(Some(5));
        assert_eq!(fx.send_words, vec![1, 1, 1]);
        assert_eq!(fx.edge_words, vec![(1, 1), (3, 1), (3, 1)]);
        assert_eq!(fx.memory, Some(5));
        assert_eq!(fx.bcast_total_words, 0);
    }

    #[test]
    fn seal_precomputes_broadcast_words_and_skips() {
        let mut fx: Effects<u64> = Effects::default();
        fx.bcasts.push((0, None, 7));
        fx.bcasts.push((1, Some(4), 8));
        fx.bcasts.push((2, Some(2), 9));
        fx.seal(None);
        assert_eq!(fx.bcast_words, vec![1, 1, 1]);
        assert_eq!(fx.bcast_total_words, 3);
        assert_eq!(fx.skip_words, vec![(2, 1), (4, 1)]);
    }

    #[test]
    fn reset_clears_everything() {
        let mut fx: Effects<u64> = Effects::default();
        let seq = fx.next_seq();
        fx.sends.push((seq, 0, 1));
        let seq = fx.next_seq();
        fx.bcasts.push((seq, None, 2));
        fx.halted = true;
        fx.wake = Some(9);
        fx.compute = 4;
        fx.seal(None);
        fx.reset();
        assert!(fx.sends.is_empty() && fx.send_words.is_empty() && fx.edge_words.is_empty());
        assert!(fx.bcasts.is_empty() && fx.bcast_words.is_empty() && fx.skip_words.is_empty());
        assert_eq!((fx.seq, fx.bcast_total_words), (0, 0));
        assert!(!fx.halted && fx.wake.is_none() && fx.compute == 0 && fx.fault.is_none());
    }
}
