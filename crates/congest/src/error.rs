//! Simulation errors.

use crate::NodeId;
use std::error::Error;
use std::fmt;

/// Errors raised by the [`Network`](crate::Network) engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The number of protocol instances did not match the node count.
    NodeCountMismatch {
        /// Nodes in the topology.
        graph_nodes: usize,
        /// Protocol instances supplied.
        protocols: usize,
    },
    /// A node tried to send to a non-neighbor (or to itself).
    NotANeighbor {
        /// Sender.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
        /// Round in which the send was attempted.
        round: usize,
    },
    /// A directed edge carried more words in one round than the CONGEST
    /// budget allows.
    BandwidthExceeded {
        /// Sender.
        from: NodeId,
        /// Recipient.
        to: NodeId,
        /// Round of the violation.
        round: usize,
        /// Words the sender tried to push across the edge this round.
        attempted_words: usize,
        /// The per-edge budget.
        budget_words: usize,
    },
    /// The round cap was reached before every node halted.
    RoundLimitExceeded {
        /// The configured cap.
        max_rounds: usize,
        /// Nodes still not halted.
        unhalted: usize,
    },
    /// No node is active (no messages in flight, no wake-ups scheduled)
    /// yet not every node has halted: the protocol is deadlocked.
    Stalled {
        /// Round at which the stall was detected.
        round: usize,
        /// Nodes still not halted.
        unhalted: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SimError::NodeCountMismatch { graph_nodes, protocols } => write!(
                f,
                "graph has {graph_nodes} nodes but {protocols} protocol instances were supplied"
            ),
            SimError::NotANeighbor { from, to, round } => {
                write!(f, "node {from} sent to non-neighbor {to} in round {round}")
            }
            SimError::BandwidthExceeded { from, to, round, attempted_words, budget_words } => {
                write!(
                    f,
                    "edge {from}->{to} carried {attempted_words} words in round {round}, budget is {budget_words}"
                )
            }
            SimError::RoundLimitExceeded { max_rounds, unhalted } => {
                write!(f, "round limit {max_rounds} reached with {unhalted} nodes still running")
            }
            SimError::Stalled { round, unhalted } => {
                write!(f, "protocol stalled in round {round} with {unhalted} nodes still running")
            }
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            SimError::NodeCountMismatch { graph_nodes: 3, protocols: 2 },
            SimError::NotANeighbor { from: 0, to: 5, round: 7 },
            SimError::BandwidthExceeded {
                from: 1,
                to: 2,
                round: 3,
                attempted_words: 4,
                budget_words: 1,
            },
            SimError::RoundLimitExceeded { max_rounds: 10, unhalted: 4 },
            SimError::Stalled { round: 2, unhalted: 1 },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SimError>();
    }
}
