//! Per-shard sub-folds of the **parallel commit fold**.
//!
//! The engine's commit fold is semantically a strict left fold over the
//! round's effects in ascending node-id order. This module splits it
//! into data-parallel passes whose deterministic ascending-shard merge
//! reproduces the sequential fold bit-for-bit:
//!
//! 1. **Plan** (parallel, read-only): each sender shard validates its
//!    nodes — protocol faults and per-edge bandwidth — and accumulates
//!    the fold's max-type metrics. If any node fails, the engine falls
//!    back to the sequential fold over *untouched* state, reproducing
//!    the exact partial-commit error semantics (all earlier nodes fully
//!    committed, the faulty node's compute/memory charged, the typed
//!    error returned at the first bad node in ascending order).
//! 2. **Commit** (parallel, clean plans only): each sender shard drains
//!    its effects into shard-local buffers — count metrics, trace
//!    events, broadcast records, machine-layer link loads, wake-ups,
//!    and per-destination-shard unicast buckets — plus disjoint slices
//!    of the per-node metric arrays. The merge adds counts, maxes
//!    maxes, and replays the buffers in ascending shard order, which
//!    *is* ascending node order.
//! 3. **Destination pass** (parallel): each destination shard drains
//!    its bucket column in ascending sender-shard order (= ascending
//!    sender id) into its slice of the back mailboxes and bumps the
//!    broadcast counters of its resident neighbors, so every inbox is
//!    byte-identical to the sequential staging.
//!
//! Under an **active adversary** only the plan pass runs sharded: fate
//! draws are pure functions of `(fault_seed, round, sender, op,
//! receiver)` — placement-independent by construction — so per-shard
//! draws equal the sequential draws verbatim, while the routing (delay
//! queue, per-copy staging) stays sequential.

use crate::adversary::{Adversary, Fate};
use crate::effects::Effects;
use crate::machine::{MachineMap, MachineShard};
use crate::mailbox::DestPart;
use crate::trace::TraceEvent;
use crate::{NodeId, Payload};

/// Round-constant inputs shared by every sender shard's commit pass.
pub(crate) struct ShardCtx<'a> {
    pub(crate) round: usize,
    pub(crate) trace_on: bool,
    /// Destination-shard width in node ids (`⌈n / shards⌉`).
    pub(crate) dest_chunk: usize,
    pub(crate) machines: Option<&'a MachineMap>,
}

/// One sender shard's reusable output buffers. Everything here is
/// either merged by addition/max or replayed in ascending shard order,
/// so the merged totals equal the sequential fold's.
pub(crate) struct ShardOut<M: Payload> {
    /// Work index (global) of the first failing node in this shard, if
    /// the plan pass found one.
    pub(crate) first_bad: Option<usize>,
    pub(crate) max_edge: usize,
    pub(crate) max_sends: usize,
    pub(crate) words: u64,
    pub(crate) messages: u64,
    pub(crate) halts: usize,
    /// `(target round, node)` wake-ups, in commit order.
    pub(crate) wakes: Vec<(usize, NodeId)>,
    pub(crate) trace: Vec<TraceEvent>,
    /// Broadcast records `(from, seq, skip, payload)` in commit order —
    /// replayed into the arena (and neighbor activation) by the merge.
    pub(crate) bcasts: Vec<(NodeId, u32, Option<NodeId>, M)>,
    pub(crate) machine: Option<MachineShard>,
    /// Adversarial plan only: the fate of every delivery of this
    /// shard's nodes, in merged op order.
    pub(crate) fates: Vec<Fate>,
    /// Per-node scratch for the adversarial charge aggregation.
    charged: Vec<(NodeId, usize)>,
}

impl<M: Payload> ShardOut<M> {
    fn new() -> Self {
        ShardOut {
            first_bad: None,
            max_edge: 0,
            max_sends: 0,
            words: 0,
            messages: 0,
            halts: 0,
            wakes: Vec::new(),
            trace: Vec::new(),
            bcasts: Vec::new(),
            machine: None,
            fates: Vec::new(),
            charged: Vec::new(),
        }
    }

    /// Readies the buffers for a round. The machine shard itself is
    /// left alone when the layer is attached — `absorb_shard` drains it
    /// back to clean, and a fallback round never writes it.
    fn reset(&mut self, machine_k: Option<usize>) {
        self.first_bad = None;
        self.max_edge = 0;
        self.max_sends = 0;
        self.words = 0;
        self.messages = 0;
        self.halts = 0;
        self.wakes.clear();
        self.trace.clear();
        self.bcasts.clear();
        self.fates.clear();
        match machine_k {
            Some(k) if self.machine.as_ref().is_none_or(|ms| ms.machine_count() != k) => {
                self.machine = Some(MachineShard::new(k));
            }
            Some(_) => {}
            None => self.machine = None,
        }
    }
}

/// The network's reusable parallel-commit scratch: one [`ShardOut`] per
/// sender shard and the `shards × shards` unicast bucket matrix
/// (`buckets[s * shards + d]` = sender shard `s` → destination shard
/// `d`), allocated once and recycled every round.
pub(crate) struct CommitScratch<M: Payload> {
    pub(crate) outs: Vec<ShardOut<M>>,
    pub(crate) buckets: Vec<Vec<(NodeId, u32, NodeId, M)>>,
}

impl<M: Payload> CommitScratch<M> {
    pub(crate) fn new() -> Self {
        CommitScratch { outs: Vec::new(), buckets: Vec::new() }
    }

    pub(crate) fn prepare(&mut self, shards: usize, machine_k: Option<usize>) {
        if self.outs.len() < shards {
            self.outs.resize_with(shards, ShardOut::new);
        }
        for out in &mut self.outs[..shards] {
            out.reset(machine_k);
        }
        if self.buckets.len() < shards * shards {
            self.buckets.resize_with(shards * shards, Vec::new);
        }
        debug_assert!(self.buckets.iter().all(Vec::is_empty), "bucket matrix not drained");
    }

    /// Readies a recycled scratch for a new network: the bucket matrix
    /// is drained (a donor run may have errored between the commit and
    /// destination passes), keeping every allocation. The shard outs
    /// need nothing — [`prepare`](Self::prepare) resets them per round.
    pub(crate) fn recycle(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
    }

    /// Allocated footprint of the shard outs and the bucket matrix, in
    /// bytes.
    pub(crate) fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let outs: usize = self
            .outs
            .iter()
            .map(|o| {
                o.wakes.capacity() * size_of::<(usize, NodeId)>()
                    + o.trace.capacity() * size_of::<TraceEvent>()
                    + o.bcasts.capacity() * size_of::<(NodeId, u32, Option<NodeId>, M)>()
                    + o.fates.capacity() * size_of::<Fate>()
                    + o.charged.capacity() * size_of::<(NodeId, usize)>()
            })
            .sum();
        self.outs.capacity() * size_of::<ShardOut<M>>()
            + outs
            + self.buckets.capacity() * size_of::<Vec<(NodeId, u32, NodeId, M)>>()
            + self
                .buckets
                .iter()
                .map(|b| b.capacity() * size_of::<(NodeId, u32, NodeId, M)>())
                .sum::<usize>()
    }
}

/// One sender shard's unit of work: a contiguous run of the round's
/// active nodes, the matching effect and neighbor slices, disjoint
/// `&mut` windows of the per-node metric arrays (split at the shard's
/// node-id bounds), its [`ShardOut`], and its row of the bucket matrix.
pub(crate) struct SenderRun<'run, 'g, M: Payload> {
    /// Global work index of `work[0]` (for `first_bad` reporting).
    pub(crate) base_idx: usize,
    pub(crate) work: &'run [NodeId],
    pub(crate) effects: &'run mut [Effects<M>],
    pub(crate) nbrs: &'run [&'g [NodeId]],
    /// First node id of this shard's metric windows.
    pub(crate) node_base: usize,
    pub(crate) sent: &'run mut [u64],
    pub(crate) compute: &'run mut [u64],
    pub(crate) peak_mem: &'run mut [usize],
    pub(crate) halted: &'run mut [bool],
    pub(crate) out: &'run mut ShardOut<M>,
    pub(crate) buckets: &'run mut [Vec<(NodeId, u32, NodeId, M)>],
}

impl<M: Payload> SenderRun<'_, '_, M> {
    /// Clean plan pass: fault + bandwidth validation and max-metric
    /// accumulation. Reads only; sets `first_bad` and stops at the
    /// shard's first failing node.
    pub(crate) fn plan(&mut self, budget: usize) {
        let out = &mut *self.out;
        for (j, fx) in self.effects.iter().enumerate() {
            if fx.fault.is_some() {
                out.first_bad = Some(self.base_idx + j);
                return;
            }
            let nbrs = self.nbrs[j];
            let total = total_sends(fx, nbrs.len());
            if total > out.max_sends {
                out.max_sends = total;
            }
            if check_bandwidth(fx, nbrs, budget, &mut out.max_edge).is_err() {
                out.first_bad = Some(self.base_idx + j);
                return;
            }
        }
    }

    /// Adversarial plan pass: draws every delivery's fate into
    /// `out.fates` (pure hash — identical to the sequential draws) and
    /// validates the duplicate-inclusive per-edge charges.
    pub(crate) fn plan_adversarial(&mut self, adv: &Adversary, round: usize, budget: usize) {
        let out = &mut *self.out;
        for (j, (&v, fx)) in self.work.iter().zip(self.effects.iter()).enumerate() {
            if fx.fault.is_some() {
                out.first_bad = Some(self.base_idx + j);
                return;
            }
            let planned = plan_adversarial_node(
                adv,
                round,
                budget,
                v,
                fx,
                self.nbrs[j],
                &mut out.fates,
                &mut out.charged,
                &mut out.max_edge,
                &mut out.max_sends,
            );
            if planned.is_err() {
                out.first_bad = Some(self.base_idx + j);
                return;
            }
        }
    }

    /// Clean commit pass: drains the shard's effects into its local
    /// buffers and metric windows. Only run after every shard's plan
    /// came back clean.
    pub(crate) fn commit(&mut self, ctx: &ShardCtx<'_>) {
        let SenderRun {
            work,
            effects,
            nbrs: nbrs_all,
            node_base,
            sent,
            compute,
            peak_mem,
            halted,
            out,
            buckets,
            ..
        } = self;
        let out = &mut **out;
        let node_base = *node_base;
        for (j, (&v, fx)) in work.iter().zip(effects.iter_mut()).enumerate() {
            debug_assert!(fx.fault.is_none(), "commit pass reached a faulted node");
            let nbrs = nbrs_all[j];
            let vi = v - (node_base) as u32;
            compute[(vi) as usize] += fx.compute;
            if let Some(mem) = fx.memory {
                if mem > peak_mem[(vi) as usize] {
                    peak_mem[(vi) as usize] = mem;
                }
            }
            // Route, merged back into call order by op sequence —
            // exactly the sequential fold's walk, writing shard-local.
            let mut uni = fx.sends.drain(..).zip(fx.send_words.drain(..)).peekable();
            let mut bc = fx.bcasts.drain(..).zip(fx.bcast_words.drain(..)).peekable();
            loop {
                let take_uni = match (uni.peek(), bc.peek()) {
                    (Some(&((useq, _, _), _)), Some(&((bseq, _, _), _))) => useq < bseq,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                if take_uni {
                    let ((seq, to, msg), words) = uni.next().expect("peeked");
                    out.words += words as u64;
                    out.messages += 1;
                    sent[(vi) as usize] += 1;
                    if ctx.trace_on {
                        out.trace.push(TraceEvent::Sent { round: ctx.round, from: v, to, words });
                    }
                    if let (Some(ms), Some(map)) = (out.machine.as_mut(), ctx.machines) {
                        ms.unicast(map, v, to, words);
                    }
                    buckets[(to / (ctx.dest_chunk) as u32) as usize].push((v, seq, to, msg));
                } else {
                    let ((seq, skip, msg), words) = bc.next().expect("peeked");
                    let count = nbrs.len() - usize::from(skip.is_some());
                    if count == 0 {
                        continue;
                    }
                    out.words += words as u64 * count as u64;
                    out.messages += count as u64;
                    sent[(vi) as usize] += count as u64;
                    if ctx.trace_on {
                        for &to in nbrs {
                            if Some(to) != skip {
                                out.trace.push(TraceEvent::Sent {
                                    round: ctx.round,
                                    from: v,
                                    to,
                                    words,
                                });
                            }
                        }
                    }
                    if let (Some(ms), Some(map)) = (out.machine.as_mut(), ctx.machines) {
                        ms.begin_broadcast(map, v, words);
                        for &to in nbrs {
                            if Some(to) != skip {
                                ms.broadcast_dest(map, to);
                            }
                        }
                    }
                    out.bcasts.push((v, seq, skip, msg));
                }
            }
            if let Some(target) = fx.wake {
                if !fx.halted {
                    out.wakes.push((target, v));
                    if ctx.trace_on {
                        out.trace.push(TraceEvent::WakeScheduled {
                            round: ctx.round,
                            node: v,
                            target,
                        });
                    }
                }
            }
            if fx.halted && !halted[(vi) as usize] {
                halted[(vi) as usize] = true;
                out.halts += 1;
                if ctx.trace_on {
                    out.trace.push(TraceEvent::Halted { round: ctx.round, node: v });
                }
            }
        }
    }
}

/// One destination shard's unit of work: its [`DestPart`] of the back
/// mailboxes, its column of the unicast bucket matrix (ascending sender
/// shard), and the round's committed broadcast directories.
pub(crate) struct DestRun<'run, 'g, M: Payload> {
    pub(crate) part: DestPart<'run, M>,
    pub(crate) cols: Vec<Vec<(NodeId, u32, NodeId, M)>>,
    /// `(sender's neighbors, skip)` of every broadcast committed this
    /// round, in commit order.
    pub(crate) dirs: &'run [(&'g [NodeId], Option<NodeId>)],
}

impl<M: Payload> DestRun<'_, '_, M> {
    pub(crate) fn route(&mut self) {
        // Direct messages: draining the columns in ascending sender
        // shard, each in commit order, appends to every resident inbox
        // in ascending (sender, seq) — the sequential staging order.
        for col in &mut self.cols {
            for (from, seq, to, msg) in col.drain(..) {
                self.part.stage(from, seq, to, msg);
            }
        }
        // Broadcast activation: bump the counter of every addressed
        // neighbor that lives in this shard's id range. The bump order
        // relative to the stages above differs from the sequential
        // interleaving, but counters and first-touch tracking are
        // order-independent (and `seal` sorts the touch list).
        let (lo, hi) = self.part.range();
        for &(nbrs, skip) in self.dirs {
            let start = nbrs.partition_point(|&x| x < lo);
            for &to in &nbrs[start..] {
                if to >= hi {
                    break;
                }
                if Some(to) != skip {
                    self.part.deliver(to);
                }
            }
        }
    }
}

/// Total directed sends of one node's effects (broadcasts expanded per
/// addressed neighbor) — the `max_node_sends_per_round` contribution.
pub(crate) fn total_sends<M: Payload>(fx: &Effects<M>, nbrs_len: usize) -> usize {
    fx.sends.len()
        + fx.bcasts.iter().map(|(_, skip, _)| nbrs_len - usize::from(skip.is_some())).sum::<usize>()
}

/// Per-destination bandwidth check for one clean sender, updating
/// `max_edge` exactly as the sequential fold's walk does (including the
/// partial updates before a violation). Returns the first violating
/// `(destination, attempted words)` in ascending destination order.
///
/// Shared by the sequential fold and the plan pass, so the two cannot
/// drift.
pub(crate) fn check_bandwidth<M: Payload>(
    fx: &Effects<M>,
    nbrs: &[NodeId],
    budget: usize,
    max_edge: &mut usize,
) -> Result<(), (NodeId, usize)> {
    if fx.bcast_total_words == 0 {
        // Unicast-only: walk the sorted (destination, words) list.
        let ew = &fx.edge_words;
        let mut a = 0;
        while a < ew.len() {
            let to = ew[a].0;
            let mut words = 0usize;
            let mut b = a;
            while b < ew.len() && ew[b].0 == to {
                words += ew[b].1;
                b += 1;
            }
            if words > budget {
                return Err((to, words));
            }
            if words > *max_edge {
                *max_edge = words;
            }
            a = b;
        }
    } else if fx.edge_words.is_empty() && fx.skip_words.is_empty() {
        // Uniform broadcast load: every neighbor carries exactly the
        // broadcast base — one check instead of a per-neighbor walk
        // (the common flood shape; a violation's first destination is
        // the first neighbor, like the full walk's).
        if !nbrs.is_empty() {
            let words = fx.bcast_total_words;
            if words > budget {
                return Err((nbrs[0], words));
            }
            if words > *max_edge {
                *max_edge = words;
            }
        }
    } else {
        // Broadcasting sender with non-uniform load: every neighbor
        // carries the broadcast base minus per-record skips, plus any
        // unicast words — walked in ascending destination order,
        // exactly the per-edge totals (and first-violation
        // destination) of the expanded unicast equivalent.
        let base = fx.bcast_total_words;
        let (uni, skips) = (&fx.edge_words, &fx.skip_words);
        let (mut a, mut b) = (0, 0);
        for &to in nbrs {
            let mut words = base;
            while a < uni.len() && uni[a].0 < to {
                a += 1;
            }
            while a < uni.len() && uni[a].0 == to {
                words += uni[a].1;
                a += 1;
            }
            while b < skips.len() && skips[b].0 < to {
                b += 1;
            }
            while b < skips.len() && skips[b].0 == to {
                words -= skips[b].1;
                b += 1;
            }
            if words > budget {
                return Err((to, words));
            }
            if words > *max_edge {
                *max_edge = words;
            }
        }
    }
    Ok(())
}

/// Adversarial pass 1 for one node: draws the [`Fate`] of every
/// delivery (merged op order, broadcasts expanded over ascending
/// addressed neighbors) into `fates`, and checks the per-edge budgets
/// with duplicates charged twice. Updates `max_sends` before and
/// `max_edge` during the charge aggregation, mirroring the sequential
/// commit's update points exactly. Pure with respect to the engine:
/// reads effects, writes only the caller's accumulators.
///
/// Shared by the sequential adversarial commit and the sharded plan
/// pass — the draws are placement-independent by construction.
#[allow(clippy::too_many_arguments)]
pub(crate) fn plan_adversarial_node<M: Payload>(
    adv: &Adversary,
    round: usize,
    budget: usize,
    v: NodeId,
    fx: &Effects<M>,
    nbrs: &[NodeId],
    fates: &mut Vec<Fate>,
    charged: &mut Vec<(NodeId, usize)>,
    max_edge: &mut usize,
    max_sends: &mut usize,
) -> Result<(), (NodeId, usize)> {
    charged.clear();
    let mut attempts = 0usize;
    let (mut ui, mut bi) = (0, 0);
    loop {
        let take_uni = match (fx.sends.get(ui), fx.bcasts.get(bi)) {
            (Some(&(useq, _, _)), Some(&(bseq, _, _))) => useq < bseq,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_uni {
            let (seq, to, _) = fx.sends[ui];
            let words = fx.send_words[ui];
            ui += 1;
            let fate = adv.fate(round, v, seq, to);
            let w = if fate == Fate::Duplicate { words * 2 } else { words };
            fates.push(fate);
            charged.push((to, w));
            attempts += usize::from(fate == Fate::Duplicate) + 1;
        } else {
            let (seq, skip, _) = fx.bcasts[bi];
            let words = fx.bcast_words[bi];
            bi += 1;
            for &to in nbrs {
                if Some(to) == skip {
                    continue;
                }
                let fate = adv.fate(round, v, seq, to);
                let w = if fate == Fate::Duplicate { words * 2 } else { words };
                fates.push(fate);
                charged.push((to, w));
                attempts += usize::from(fate == Fate::Duplicate) + 1;
            }
        }
    }
    if attempts > *max_sends {
        *max_sends = attempts;
    }
    // Stable sort, then aggregate per destination ascending: same
    // first-violation destination as the clean fold's walk.
    charged.sort_by_key(|&(to, _)| to);
    let mut a = 0;
    while a < charged.len() {
        let to = charged[a].0;
        let mut words = 0usize;
        let mut b = a;
        while b < charged.len() && charged[b].0 == to {
            words += charged[b].1;
            b += 1;
        }
        if words > budget {
            return Err((to, words));
        }
        if words > *max_edge {
            *max_edge = words;
        }
        a = b;
    }
    Ok(())
}
