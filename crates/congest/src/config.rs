//! Simulation configuration.

use crate::adversary::Adversary;
use dhc_obs::CollectorHandle;

/// Engine configuration: round budget, bandwidth, and metric sampling.
///
/// # Example
///
/// ```
/// let cfg = dhc_congest::Config::default()
///     .with_max_rounds(10_000)
///     .with_bandwidth_words(2);
/// assert_eq!(cfg.max_rounds, 10_000);
/// assert_eq!(cfg.bandwidth_words, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Hard cap on simulated rounds; exceeding it is
    /// [`SimError::RoundLimitExceeded`](crate::SimError::RoundLimitExceeded).
    pub max_rounds: usize,
    /// Per-directed-edge, per-round budget in message words (the CONGEST
    /// `B`, in units of `Θ(log n)`-bit words). Default 1.
    pub bandwidth_words: usize,
    /// Enables `Protocol::memory_words` sampling when non-zero: the
    /// engine samples every node at **every activation** (the peak is
    /// what the metrics keep, so denser sampling only tightens it).
    /// 0 disables sampling entirely. The magnitude is currently
    /// reserved — a future engine may skip rounds at large values —
    /// and defaults to 16.
    pub memory_sample_interval: usize,
    /// Record the per-round message counts (cheap; enables congestion
    /// plots). Default true.
    pub record_round_traffic: bool,
    /// Capacity of the engine event trace (sends, halts, wake-ups);
    /// 0 (the default) disables tracing.
    pub trace_capacity: usize,
    /// Worker threads for the per-round engine: `1` (the default) runs
    /// everything sequentially inline, `0` uses all available cores.
    /// Results are **identical for every value** — callbacks write only
    /// per-node effect scratch, and the parallel commit fold merges its
    /// shards in ascending node-id order — so this trades wall-clock
    /// time only.
    ///
    /// Threads above 1 are served by a persistent worker pool
    /// (`dhc-pool`): workers are spawned once at network construction
    /// and parked on a condvar between rounds, so a round dispatch
    /// costs one lock + notify, not a thread spawn. An effective count
    /// of 1 (including `0` on a single-core host) never builds the
    /// pool at all and runs the fully inline engine.
    pub engine_threads: usize,
    /// Shard count for the parallel commit fold: `0` (the default)
    /// auto-shards — the fold splits across the worker pool whenever
    /// one exists and the round is busy enough to amortize the merge —
    /// while any other value **forces** that many shards through the
    /// sharded code path even on a single-threaded engine (the shards
    /// then run inline). Results are identical for every value; the
    /// knob exists for benchmarking and for the shard-merge equivalence
    /// suites, which pin `commit_shards ∈ {1,2,3,7}` against the
    /// sequential fold bit-for-bit.
    pub commit_shards: usize,
    /// Optional seeded fault model (message drop/duplicate/delay, node
    /// crash/restart). `None` (the default) — or a null adversary —
    /// runs the clean synchronous CONGEST engine unchanged; see
    /// [`Adversary`].
    pub adversary: Option<Adversary>,
    /// Optional telemetry collector (see [`dhc_obs`]). Like the
    /// k-machine layer, a collector is **pure observation**: it is
    /// driven once per committed round from the engine's sequential
    /// bookkeeping, after the commit fold, so attaching one cannot
    /// change outcomes, [`Metrics`](crate::Metrics), traces, or realized
    /// fault schedules at any thread/shard count. `None` (the default)
    /// skips every telemetry code path.
    pub collector: Option<CollectorHandle>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_rounds: 1_000_000,
            bandwidth_words: 1,
            memory_sample_interval: 16,
            record_round_traffic: true,
            trace_capacity: 0,
            engine_threads: 1,
            commit_shards: 0,
            adversary: None,
            collector: None,
        }
    }
}

impl Config {
    /// Returns the configuration with the round cap replaced.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Returns the configuration with the per-edge bandwidth replaced.
    ///
    /// # Panics
    ///
    /// Panics if `words == 0`.
    pub fn with_bandwidth_words(mut self, words: usize) -> Self {
        assert!(words > 0, "bandwidth must be at least one word");
        self.bandwidth_words = words;
        self
    }

    /// Returns the configuration with the memory sampling interval replaced.
    pub fn with_memory_sample_interval(mut self, interval: usize) -> Self {
        self.memory_sample_interval = interval;
        self
    }

    /// Returns the configuration with event tracing enabled at the given
    /// capacity.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }

    /// Enables or disables the per-round message-count log. `false`
    /// drops the only O(rounds) metrics vector; the running
    /// [`Metrics::max_round_traffic`](crate::Metrics::max_round_traffic)
    /// is maintained either way, so long lean runs keep their headline
    /// congestion figure at O(1) extra memory.
    pub fn with_record_round_traffic(mut self, record: bool) -> Self {
        self.record_round_traffic = record;
        self
    }

    /// Returns the configuration with the engine worker-thread count
    /// replaced (`0` = all available cores). Never changes results;
    /// see [`engine_threads`](Self::engine_threads).
    pub fn with_engine_threads(mut self, threads: usize) -> Self {
        self.engine_threads = threads;
        self
    }

    /// Returns the configuration with the commit-fold shard count
    /// forced (`0` = auto). Never changes results; see
    /// [`commit_shards`](Self::commit_shards).
    pub fn with_commit_shards(mut self, shards: usize) -> Self {
        self.commit_shards = shards;
        self
    }

    /// The worker count [`engine_threads`](Self::engine_threads)
    /// resolves to on this host: the setting itself, or detected
    /// hardware concurrency when it is `0`.
    pub fn effective_engine_threads(&self) -> usize {
        match self.engine_threads {
            0 => std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
            t => t,
        }
    }

    /// Returns the configuration with the given seeded fault model
    /// attached. A null adversary ([`Adversary::is_null`]) is detected
    /// at network construction and leaves the clean engine code paths
    /// bit-for-bit untouched.
    pub fn with_adversary(mut self, adversary: Adversary) -> Self {
        self.adversary = Some(adversary);
        self
    }

    /// Returns the configuration with the given telemetry collector
    /// attached. Pure observation — see [`collector`](Self::collector).
    pub fn with_collector(mut self, collector: CollectorHandle) -> Self {
        self.collector = Some(collector);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_congest() {
        let c = Config::default();
        assert_eq!(c.bandwidth_words, 1);
        assert!(c.max_rounds >= 1000);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_bandwidth_rejected() {
        Config::default().with_bandwidth_words(0);
    }

    #[test]
    fn builder_chains() {
        let c = Config::default()
            .with_max_rounds(5)
            .with_bandwidth_words(3)
            .with_memory_sample_interval(0)
            .with_engine_threads(4);
        assert_eq!((c.max_rounds, c.bandwidth_words, c.memory_sample_interval), (5, 3, 0));
        assert_eq!(c.engine_threads, 4);
    }

    #[test]
    fn engine_is_single_threaded_by_default() {
        assert_eq!(Config::default().engine_threads, 1);
    }

    #[test]
    fn commit_shards_default_auto_and_forced() {
        assert_eq!(Config::default().commit_shards, 0);
        assert_eq!(Config::default().with_commit_shards(3).commit_shards, 3);
    }

    #[test]
    fn effective_engine_threads_resolves_zero() {
        assert_eq!(Config::default().with_engine_threads(4).effective_engine_threads(), 4);
        assert!(Config::default().with_engine_threads(0).effective_engine_threads() >= 1);
    }

    #[test]
    fn collector_attaches_and_compares_by_identity() {
        struct Noop;
        impl dhc_obs::Collector for Noop {}
        assert_eq!(Config::default().collector, None);
        let handle = CollectorHandle::new(Noop);
        let a = Config::default().with_collector(handle.clone());
        let b = Config::default().with_collector(handle);
        let c = Config::default().with_collector(CollectorHandle::new(Noop));
        // Same collector → equal configs; different collector → not.
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn adversary_attaches() {
        assert_eq!(Config::default().adversary, None);
        let c = Config::default().with_adversary(Adversary::seeded(3).with_drop_ppm(100));
        assert_eq!(c.adversary.as_ref().map(|a| a.drop_ppm), Some(100));
    }
}
