//! Simulation configuration.

/// Engine configuration: round budget, bandwidth, and metric sampling.
///
/// # Example
///
/// ```
/// let cfg = dhc_congest::Config::default()
///     .with_max_rounds(10_000)
///     .with_bandwidth_words(2);
/// assert_eq!(cfg.max_rounds, 10_000);
/// assert_eq!(cfg.bandwidth_words, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Hard cap on simulated rounds; exceeding it is
    /// [`SimError::RoundLimitExceeded`](crate::SimError::RoundLimitExceeded).
    pub max_rounds: usize,
    /// Per-directed-edge, per-round budget in message words (the CONGEST
    /// `B`, in units of `Θ(log n)`-bit words). Default 1.
    pub bandwidth_words: usize,
    /// Sample `Protocol::memory_words` every this many rounds (and at
    /// halt). 0 disables sampling. Default 16.
    pub memory_sample_interval: usize,
    /// Record the per-round message counts (cheap; enables congestion
    /// plots). Default true.
    pub record_round_traffic: bool,
    /// Capacity of the engine event trace (sends, halts, wake-ups);
    /// 0 (the default) disables tracing.
    pub trace_capacity: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_rounds: 1_000_000,
            bandwidth_words: 1,
            memory_sample_interval: 16,
            record_round_traffic: true,
            trace_capacity: 0,
        }
    }
}

impl Config {
    /// Returns the configuration with the round cap replaced.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Returns the configuration with the per-edge bandwidth replaced.
    ///
    /// # Panics
    ///
    /// Panics if `words == 0`.
    pub fn with_bandwidth_words(mut self, words: usize) -> Self {
        assert!(words > 0, "bandwidth must be at least one word");
        self.bandwidth_words = words;
        self
    }

    /// Returns the configuration with the memory sampling interval replaced.
    pub fn with_memory_sample_interval(mut self, interval: usize) -> Self {
        self.memory_sample_interval = interval;
        self
    }

    /// Returns the configuration with event tracing enabled at the given
    /// capacity.
    pub fn with_trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = capacity;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_congest() {
        let c = Config::default();
        assert_eq!(c.bandwidth_words, 1);
        assert!(c.max_rounds >= 1000);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_bandwidth_rejected() {
        Config::default().with_bandwidth_words(0);
    }

    #[test]
    fn builder_chains() {
        let c = Config::default()
            .with_max_rounds(5)
            .with_bandwidth_words(3)
            .with_memory_sample_interval(0);
        assert_eq!((c.max_rounds, c.bandwidth_words, c.memory_sample_interval), (5, 3, 0));
    }
}
