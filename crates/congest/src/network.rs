//! The synchronous round engine.

use crate::trace::{Trace, TraceEvent};
use crate::{Config, Context, Metrics, NodeId, Payload, Protocol, Report, SimError};
use dhc_graph::Graph;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One node's messages for a round, as `(sender, message)` pairs.
type Inbox<M> = Vec<(NodeId, M)>;

/// A synchronous CONGEST network: a topology, one [`Protocol`] instance per
/// node, and the round scheduler.
///
/// Execution is deterministic: nodes are invoked in ascending id order and
/// inboxes are sorted by sender. Only nodes with pending messages or
/// scheduled wake-ups run in a given round.
pub struct Network<'g, P: Protocol> {
    graph: &'g Graph,
    config: Config,
    nodes: Vec<P>,
    halted: Vec<bool>,
    halted_count: usize,
    /// Inboxes for the *next* round.
    pending: Vec<Inbox<P::Msg>>,
    /// Scheduled wake-ups as (round, node).
    wakes: BinaryHeap<Reverse<(usize, NodeId)>>,
    round: usize,
    metrics: Metrics,
    trace: Trace,
    finished: bool,
}

impl<'g, P: Protocol> Network<'g, P> {
    /// Creates the network and runs every node's `init` (round 0).
    ///
    /// # Errors
    ///
    /// [`SimError::NodeCountMismatch`] if `protocols.len() != n`, or any
    /// fault raised by an `init` callback (e.g. sending to a non-neighbor).
    pub fn new(graph: &'g Graph, config: Config, protocols: Vec<P>) -> Result<Self, SimError> {
        if protocols.len() != graph.node_count() {
            return Err(SimError::NodeCountMismatch {
                graph_nodes: graph.node_count(),
                protocols: protocols.len(),
            });
        }
        let n = graph.node_count();
        let trace_capacity = config.trace_capacity;
        let mut net = Network {
            graph,
            config,
            nodes: protocols,
            halted: vec![false; n],
            halted_count: 0,
            pending: (0..n).map(|_| Vec::new()).collect(),
            wakes: BinaryHeap::new(),
            round: 0,
            metrics: Metrics::new(n),
            trace: Trace::with_capacity(trace_capacity),
            finished: false,
        };
        net.init_all()?;
        Ok(net)
    }

    fn init_all(&mut self) -> Result<(), SimError> {
        let ids: Vec<NodeId> = (0..self.nodes.len()).collect();
        self.invoke(&ids, CallKind::Init, Vec::new())
    }

    /// Runs rounds until every node halts.
    ///
    /// # Errors
    ///
    /// Any [`SimError`]; in particular [`SimError::Stalled`] when no node
    /// can ever run again and [`SimError::RoundLimitExceeded`] at the cap.
    pub fn run(&mut self) -> Result<Report, SimError> {
        while !self.finished {
            self.step()?;
        }
        Ok(Report { metrics: self.metrics.clone(), halted: self.halted_count })
    }

    /// Executes one round. Does nothing once the run has finished.
    ///
    /// # Errors
    ///
    /// See [`run`](Network::run).
    pub fn step(&mut self) -> Result<(), SimError> {
        if self.finished {
            return Ok(());
        }
        if self.halted_count == self.nodes.len() {
            self.finished = true;
            return Ok(());
        }
        if self.round >= self.config.max_rounds {
            return Err(SimError::RoundLimitExceeded {
                max_rounds: self.config.max_rounds,
                unhalted: self.nodes.len() - self.halted_count,
            });
        }
        self.round += 1;

        // Active set: nodes with pending messages or due wake-ups.
        let mut active: Vec<NodeId> = Vec::new();
        for (v, inbox) in self.pending.iter().enumerate() {
            if !inbox.is_empty() {
                active.push(v);
            }
        }
        if active.is_empty() {
            // Quiescent: fast-forward to the next scheduled wake-up, if any
            // (the skipped empty rounds still count toward simulated time).
            match self.wakes.peek() {
                Some(&Reverse((r, _))) => {
                    if r > self.round {
                        self.round = r;
                    }
                    if self.round > self.config.max_rounds {
                        return Err(SimError::RoundLimitExceeded {
                            max_rounds: self.config.max_rounds,
                            unhalted: self.nodes.len() - self.halted_count,
                        });
                    }
                }
                None => {
                    if self.halted_count == self.nodes.len() {
                        self.finished = true;
                        return Ok(());
                    }
                    return Err(SimError::Stalled {
                        round: self.round,
                        unhalted: self.nodes.len() - self.halted_count,
                    });
                }
            }
        }
        while let Some(&Reverse((r, v))) = self.wakes.peek() {
            if r > self.round {
                break;
            }
            self.wakes.pop();
            if self.pending[v].is_empty() {
                active.push(v);
            }
        }
        active.sort_unstable();
        active.dedup();

        if active.is_empty() {
            // Every due wake-up belonged to a node that has since halted.
            if self.halted_count == self.nodes.len() {
                self.finished = true;
            }
            return Ok(());
        }

        let mut round_messages = 0u64;
        let mut inboxes: Vec<(NodeId, Inbox<P::Msg>)> = Vec::with_capacity(active.len());
        for &v in &active {
            let mut inbox = std::mem::take(&mut self.pending[v]);
            inbox.sort_by_key(|&(from, _)| from);
            round_messages += inbox.len() as u64;
            self.metrics.received_per_node[v] += inbox.len() as u64;
            self.metrics.compute_per_node[v] += inbox.len() as u64;
            inboxes.push((v, inbox));
        }
        if self.config.record_round_traffic {
            self.metrics.round_traffic.push(round_messages);
        }

        // Halted nodes consume (drop) their messages without running.
        let mut runnable: Vec<NodeId> = Vec::with_capacity(inboxes.len());
        let mut inbox_of: Vec<Inbox<P::Msg>> = Vec::with_capacity(inboxes.len());
        for (v, inbox) in inboxes {
            if !self.halted[v] {
                runnable.push(v);
                inbox_of.push(inbox);
            }
        }
        self.invoke(&runnable, CallKind::Round, inbox_of)
    }

    /// Invokes `init` or `round` on each listed node, collecting sends,
    /// wake-ups, halts, and faults. For `CallKind::Round`, `inboxes` is
    /// aligned with `ids`.
    fn invoke(
        &mut self,
        ids: &[NodeId],
        kind: CallKind,
        mut inboxes: Vec<Inbox<P::Msg>>,
    ) -> Result<(), SimError> {
        for (idx, &v) in ids.iter().enumerate() {
            let mut outbox: Vec<(NodeId, P::Msg)> = Vec::new();
            let mut halted = false;
            let mut wake: Option<usize> = None;
            let mut compute = 0u64;
            let mut fault: Option<SimError> = None;
            {
                let mut ctx = Context {
                    node: v,
                    round: self.round,
                    graph: self.graph,
                    outbox: &mut outbox,
                    halted: &mut halted,
                    wake_request: &mut wake,
                    compute: &mut compute,
                    fault: &mut fault,
                };
                match kind {
                    CallKind::Init => self.nodes[v].init(&mut ctx),
                    CallKind::Round => {
                        let inbox = std::mem::take(&mut inboxes[idx]);
                        self.nodes[v].round(&mut ctx, &inbox);
                    }
                }
            }
            if let Some(err) = fault {
                return Err(err);
            }
            self.metrics.compute_per_node[v] += compute;
            if self.config.memory_sample_interval > 0 {
                let mem = self.nodes[v].memory_words();
                if mem > self.metrics.peak_memory_per_node[v] {
                    self.metrics.peak_memory_per_node[v] = mem;
                }
            }
            if outbox.len() > self.metrics.max_node_sends_per_round {
                self.metrics.max_node_sends_per_round = outbox.len();
            }
            // Bandwidth check: words per destination from this sender.
            outbox.sort_by_key(|&(to, _)| to);
            let mut i = 0;
            while i < outbox.len() {
                let to = outbox[i].0;
                let mut words = 0usize;
                let mut j = i;
                while j < outbox.len() && outbox[j].0 == to {
                    words += outbox[j].1.words().max(1);
                    j += 1;
                }
                if words > self.config.bandwidth_words {
                    return Err(SimError::BandwidthExceeded {
                        from: v,
                        to,
                        round: self.round,
                        attempted_words: words,
                        budget_words: self.config.bandwidth_words,
                    });
                }
                if words > self.metrics.max_edge_words {
                    self.metrics.max_edge_words = words;
                }
                i = j;
            }
            for (to, msg) in outbox {
                let words = msg.words().max(1);
                self.metrics.words += words as u64;
                self.metrics.messages += 1;
                self.metrics.sent_per_node[v] += 1;
                if self.trace.is_enabled() {
                    self.trace.push(TraceEvent::Sent { round: self.round, from: v, to, words });
                }
                self.pending[to].push((v, msg));
            }
            if let Some(target) = wake {
                if !halted {
                    self.wakes.push(Reverse((target, v)));
                    if self.trace.is_enabled() {
                        self.trace.push(TraceEvent::WakeScheduled {
                            round: self.round,
                            node: v,
                            target,
                        });
                    }
                }
            }
            if halted && !self.halted[v] {
                self.halted[v] = true;
                self.halted_count += 1;
                if self.trace.is_enabled() {
                    self.trace.push(TraceEvent::Halted { round: self.round, node: v });
                }
            }
        }
        self.metrics.rounds = self.round;
        Ok(())
    }

    /// Number of rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.round
    }

    /// Whether every node has halted.
    pub fn is_finished(&self) -> bool {
        self.finished || self.halted_count == self.nodes.len()
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The event trace (empty unless `Config::trace_capacity > 0`).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Immutable access to the per-node protocol states (for extracting
    /// outputs after a run).
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Consumes the network, returning the protocol states.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }
}

impl<P: Protocol> std::fmt::Debug for Network<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("n", &self.nodes.len())
            .field("round", &self.round)
            .field("halted", &self.halted_count)
            .field("finished", &self.finished)
            .finish()
    }
}

/// Which protocol callback [`Network::invoke`] should run.
#[derive(Clone, Copy, Debug)]
enum CallKind {
    Init,
    Round,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Payload;

    #[derive(Clone, Debug)]
    struct Token(#[allow(dead_code)] u64);
    impl Payload for Token {}

    /// Floods a token once from node 0; every node halts after forwarding.
    struct Flood {
        seen: bool,
    }
    impl Protocol for Flood {
        type Msg = Token;
        fn init(&mut self, ctx: &mut Context<'_, Token>) {
            if ctx.node() == 0 {
                self.seen = true;
                ctx.send_all(Token(1));
                ctx.halt();
            }
        }
        fn round(&mut self, ctx: &mut Context<'_, Token>, inbox: &[(NodeId, Token)]) {
            if !inbox.is_empty() && !self.seen {
                self.seen = true;
                ctx.send_all(Token(1));
            }
            ctx.halt();
        }
        fn memory_words(&self) -> usize {
            2
        }
    }

    fn flood_nodes(n: usize) -> Vec<Flood> {
        (0..n).map(|_| Flood { seen: false }).collect()
    }

    #[test]
    fn flood_reaches_everyone_on_path() {
        let g = dhc_graph::generator::path_graph(5);
        let mut net = Network::new(&g, Config::default(), flood_nodes(5)).unwrap();
        let report = net.run().unwrap();
        assert!(net.nodes().iter().all(|f| f.seen));
        assert_eq!(report.halted, 5);
        // Token crosses 4 hops; the last forward happens in round 4.
        assert_eq!(report.metrics.rounds, 4);
        // Sends: node 0 one, nodes 1-3 two each (send_all), node 4 one.
        assert_eq!(report.metrics.messages, 8);
    }

    #[test]
    fn metrics_count_messages_and_words() {
        let g = dhc_graph::generator::star(4);
        let mut net = Network::new(&g, Config::default(), flood_nodes(4)).unwrap();
        let report = net.run().unwrap();
        // Node 0 sends 3; each leaf replies to the (halted) hub: 3 more sent.
        assert_eq!(report.metrics.messages, 6);
        assert_eq!(report.metrics.words, 6);
        assert_eq!(report.metrics.sent_per_node, vec![3, 1, 1, 1]);
        assert_eq!(report.metrics.max_edge_words, 1);
    }

    #[test]
    fn memory_peaks_sampled() {
        let g = dhc_graph::generator::path_graph(3);
        let mut net = Network::new(&g, Config::default(), flood_nodes(3)).unwrap();
        let _ = net.run().unwrap();
        assert!(net.metrics().peak_memory_per_node.iter().all(|&m| m == 2));
    }

    #[test]
    fn node_count_mismatch_rejected() {
        let g = dhc_graph::generator::path_graph(3);
        assert!(matches!(
            Network::new(&g, Config::default(), flood_nodes(2)),
            Err(SimError::NodeCountMismatch { graph_nodes: 3, protocols: 2 })
        ));
    }

    /// Sends to a fixed non-neighbor in init.
    struct BadSender;
    impl Protocol for BadSender {
        type Msg = Token;
        fn init(&mut self, ctx: &mut Context<'_, Token>) {
            if ctx.node() == 0 {
                ctx.send(2, Token(0));
            }
            ctx.halt();
        }
        fn round(&mut self, _: &mut Context<'_, Token>, _: &[(NodeId, Token)]) {}
    }

    #[test]
    fn non_neighbor_send_is_error() {
        let g = dhc_graph::generator::path_graph(3); // 0-1-2: 0 and 2 not adjacent
        let err =
            Network::new(&g, Config::default(), vec![BadSender, BadSender, BadSender]).unwrap_err();
        assert!(matches!(err, SimError::NotANeighbor { from: 0, to: 2, .. }));
    }

    /// Sends two messages over one edge in one round.
    struct Chatty;
    impl Protocol for Chatty {
        type Msg = Token;
        fn init(&mut self, ctx: &mut Context<'_, Token>) {
            if ctx.node() == 0 {
                ctx.send(1, Token(1));
                ctx.send(1, Token(2));
            }
            ctx.halt();
        }
        fn round(&mut self, _: &mut Context<'_, Token>, _: &[(NodeId, Token)]) {}
    }

    #[test]
    fn bandwidth_violation_is_error() {
        let g = dhc_graph::generator::path_graph(2);
        let err = Network::new(&g, Config::default(), vec![Chatty, Chatty]).unwrap_err();
        assert!(matches!(
            err,
            SimError::BandwidthExceeded { from: 0, to: 1, attempted_words: 2, budget_words: 1, .. }
        ));
    }

    #[test]
    fn wider_bandwidth_allows_it() {
        let g = dhc_graph::generator::path_graph(2);
        let net = Network::new(&g, Config::default().with_bandwidth_words(2), vec![Chatty, Chatty]);
        assert!(net.is_ok());
    }

    /// Node 0 never halts and never acts: stall.
    struct Sleeper;
    impl Protocol for Sleeper {
        type Msg = Token;
        fn init(&mut self, ctx: &mut Context<'_, Token>) {
            if ctx.node() != 0 {
                ctx.halt();
            }
        }
        fn round(&mut self, _: &mut Context<'_, Token>, _: &[(NodeId, Token)]) {}
    }

    #[test]
    fn stall_detected() {
        let g = dhc_graph::generator::path_graph(2);
        let mut net = Network::new(&g, Config::default(), vec![Sleeper, Sleeper]).unwrap();
        let err = net.run().unwrap_err();
        assert!(matches!(err, SimError::Stalled { unhalted: 1, .. }));
    }

    /// Wakes itself `k` times, then halts.
    struct Timer {
        remaining: usize,
        fired_rounds: Vec<usize>,
    }
    impl Protocol for Timer {
        type Msg = Token;
        fn init(&mut self, ctx: &mut Context<'_, Token>) {
            ctx.wake_in(3);
        }
        fn round(&mut self, ctx: &mut Context<'_, Token>, _: &[(NodeId, Token)]) {
            self.fired_rounds.push(ctx.round_number());
            if self.remaining == 0 {
                ctx.halt();
            } else {
                self.remaining -= 1;
                ctx.wake_in(2);
            }
        }
    }

    #[test]
    fn wake_in_schedules_exact_rounds() {
        let g = dhc_graph::Graph::from_edges(1, []).unwrap();
        let mut net =
            Network::new(&g, Config::default(), vec![Timer { remaining: 2, fired_rounds: vec![] }])
                .unwrap();
        let _ = net.run().unwrap();
        assert_eq!(net.nodes()[0].fired_rounds, vec![3, 5, 7]);
    }

    #[test]
    fn round_limit_enforced() {
        let g = dhc_graph::Graph::from_edges(1, []).unwrap();
        let mut net = Network::new(
            &g,
            Config::default().with_max_rounds(4),
            vec![Timer { remaining: 100, fired_rounds: vec![] }],
        )
        .unwrap();
        let err = net.run().unwrap_err();
        assert!(matches!(err, SimError::RoundLimitExceeded { max_rounds: 4, unhalted: 1 }));
    }

    #[test]
    fn trace_records_sends_and_halts() {
        let g = dhc_graph::generator::path_graph(3);
        let cfg = Config::default().with_trace_capacity(100);
        let mut net = Network::new(&g, cfg, flood_nodes(3)).unwrap();
        let _ = net.run().unwrap();
        let trace = net.trace();
        let sends =
            trace.events().iter().filter(|e| matches!(e, crate::TraceEvent::Sent { .. })).count();
        let halts =
            trace.events().iter().filter(|e| matches!(e, crate::TraceEvent::Halted { .. })).count();
        assert_eq!(sends as u64, net.metrics().messages);
        assert_eq!(halts, 3);
        assert_eq!(trace.dropped(), 0);
    }

    #[test]
    fn trace_disabled_by_default() {
        let g = dhc_graph::generator::path_graph(2);
        let mut net = Network::new(&g, Config::default(), flood_nodes(2)).unwrap();
        let _ = net.run().unwrap();
        assert!(net.trace().events().is_empty());
    }

    #[test]
    fn determinism_same_run_twice() {
        let g = dhc_graph::generator::grid(3, 3);
        let run = || {
            let mut net = Network::new(&g, Config::default(), flood_nodes(9)).unwrap();
            net.run().unwrap().metrics
        };
        assert_eq!(run(), run());
    }
}
