//! The synchronous round engine.
//!
//! Each round runs in two phases:
//!
//! 1. **Compute** — every active node executes its callback against an
//!    immutable view of the network, writing its sends / halt / wake-up /
//!    compute charges into a private [`Effects`] scratch. Nothing shared
//!    is mutated, so the nodes of one round run on any number of worker
//!    threads ([`Config::engine_threads`]).
//! 2. **Commit fold** — the effects are applied in ascending node-id
//!    order: bandwidth checks, metrics, trace events, wake-up
//!    scheduling, halting, and routing of sends into the next round's
//!    [`Mailboxes`] all happen here, so the result is bit-identical at
//!    every thread count. Broadcast effects (`send_all` /
//!    `send_all_except`) commit **one** payload copy into the round's
//!    broadcast arena and activate each addressed neighbor with a
//!    counter bump, while bandwidth, metrics, and trace are still
//!    charged per directed edge — observationally identical to the
//!    per-neighbor unicast expansion, at a fraction of the cost.
//!
//! Both phases share one persistent [`dhc_pool::WorkerPool`], built at
//! network construction and parked between dispatches, so a round costs
//! a lock-and-notify rather than thread spawns. On busy rounds the
//! commit fold itself runs **sharded** (see [`crate::parcommit`]): the
//! fold is validated by a read-only parallel plan pass, committed into
//! per-shard buffers, and merged in ascending shard order — which *is*
//! ascending node order — so its every observable output (metrics,
//! trace order, typed failures, machine-layer link loads, realized
//! fault schedules) equals the sequential fold's bit for bit. Any
//! planned fault or bandwidth violation falls back to the sequential
//! fold over untouched state, preserving the exact partial-commit error
//! semantics.

use crate::adversary::{AdversaryState, Fate};
use crate::effects::Effects;
use crate::machine::{MachineLayer, MachineMap};
use crate::mailbox::{Inbox, Mailboxes};
use crate::parcommit::{self, CommitScratch, DestRun, SenderRun, ShardCtx};
use crate::scratch::{EngineScratch, Parts};
use crate::trace::{Trace, TraceEvent};
use crate::{Config, Context, Metrics, NodeId, Protocol, Report, SimError};
use dhc_graph::{Graph, Topology};
use dhc_pool::WorkerPool;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Minimum active nodes in a round before the auto-sharded commit fold
/// pays for its plan pass and merge; below this the sequential fold is
/// faster. Forcing [`Config::commit_shards`] bypasses the threshold.
const PAR_COMMIT_MIN_ACTIVE: usize = 256;

/// A synchronous CONGEST network: a topology, one [`Protocol`] instance per
/// node, and the round scheduler.
///
/// The network is generic over its [`Topology`] (defaulting to a plain
/// [`Graph`]), so the same engine simulates a whole graph, a zero-copy
/// [`dhc_graph::ClassView`] of one partition class, or any future overlay
/// topology — the engine only ever reads node counts and sorted neighbor
/// slices.
///
/// Execution is deterministic — and independent of
/// [`Config::engine_threads`]: the parallel compute phase writes only
/// per-node scratch, and all shared state is updated by the commit fold
/// in ascending node-id order. Inboxes are sorted by sender. Only nodes
/// with pending messages or scheduled wake-ups run in a given round.
pub struct Network<'g, P: Protocol, T: Topology = Graph> {
    graph: &'g T,
    config: Config,
    nodes: Vec<P>,
    halted: Vec<bool>,
    halted_count: usize,
    /// Double-buffered mailboxes; the sealed ready list is the
    /// message-driven active set of the upcoming round.
    mail: Mailboxes<P::Msg>,
    /// Reusable per-active-node effect scratch (compute-phase output).
    effects: Vec<Effects<P::Msg>>,
    /// Reusable per-round scheduling scratch (due wake-ups, merged
    /// active set, runnable list) — taken and restored each round so a
    /// warmed-up step allocates nothing for scheduling either.
    scratch_woken: Vec<NodeId>,
    scratch_active: Vec<(NodeId, usize)>,
    scratch_work: Vec<NodeId>,
    /// Scheduled wake-ups as (round, node).
    wakes: BinaryHeap<Reverse<(usize, NodeId)>>,
    round: usize,
    metrics: Metrics,
    trace: Trace,
    finished: bool,
    /// Persistent worker pool serving the compute phase and the sharded
    /// commit fold (`None` when the effective thread count is 1 —
    /// everything then runs inline on the caller's thread).
    pool: Option<WorkerPool>,
    /// Optional k-machine accounting layer (see [`crate::machine`]):
    /// driven only by the sequential commit fold, so it observes the run
    /// without influencing it and is deterministic at every thread count.
    machines: Option<MachineLayer>,
    /// Optional seeded fault layer (see [`crate::adversary`]): attached
    /// like the machine layer but *influencing* delivery. `None` when no
    /// adversary — or a null one — is configured, so the clean engine
    /// paths run bit-for-bit unchanged. All fault draws happen in the
    /// sequential commit fold (or the equally sequential delay-queue
    /// injection), keeping every-thread-count determinism.
    adversary: Option<AdversaryState>,
    /// Reusable per-node scratch for the adversarial commit: the drawn
    /// fate of each delivery, in merged op order.
    scratch_fates: Vec<Fate>,
    /// Reusable per-node scratch for the adversarial bandwidth check:
    /// `(destination, charged words)` per delivery.
    scratch_charged: Vec<(NodeId, usize)>,
    /// Reusable per-active-node neighbor slices for the sharded commit
    /// fold (carved on the main thread so shards need no `T: Sync`).
    scratch_nbrs: Vec<&'g [NodeId]>,
    /// Reusable `(sender's neighbors, skip)` directory of the round's
    /// committed broadcasts, in commit order, for the destination pass.
    scratch_dirs: Vec<(&'g [NodeId], Option<NodeId>)>,
    /// Reusable per-shard buffers of the parallel commit fold.
    commit: CommitScratch<P::Msg>,
    /// Optional telemetry collector (see [`dhc_obs`]), cloned out of the
    /// config once so emission needs no config borrow. Driven only from
    /// the sequential post-fold bookkeeping, after the round is fully
    /// committed — pure observation, like the machine layer.
    obs: Option<dhc_obs::CollectorHandle>,
    /// Reusable telemetry scratch: this round's per-executed-node
    /// compute charges. The sequential fold fills it as it commits
    /// (reading fields it touches anyway); only when the sharded fold
    /// is about to drain the effects in parallel does a dedicated
    /// pre-walk gather them first. Only filled when a collector is
    /// attached.
    obs_compute: Vec<u64>,
    /// This round's per-op telemetry tallies, accumulated alongside
    /// [`Network::obs_compute`] (see [`ObsPre`]).
    obs_scratch: ObsPre,
    /// Whether the pre-walk already filled the scratch this round, so
    /// the sequential fold (running after a sharded back-off) doesn't
    /// double-count.
    obs_prefilled: bool,
    /// This round's realized delivery fates `[dropped, duplicated,
    /// delayed]`, tallied by the adversarial routing.
    obs_fates: [u64; 3],
    /// This round's crash-schedule events `[crashes, restarts]`.
    obs_crash: [u64; 2],
}

/// Per-round telemetry tallies: per-op counts read off the effect
/// buffers before the fold drains them (inline in the sequential fold,
/// via a pre-walk when the sharded fold will drain them in parallel),
/// plus the pre-fold message/word totals so the emitted
/// [`dhc_obs::RoundObs`] carries this round's deltas.
#[derive(Clone, Copy, Default)]
struct ObsPre {
    unicast_ops: u64,
    broadcast_ops: u64,
    pre_messages: u64,
    pre_words: u64,
    wakes_scheduled: u64,
    halts: u64,
}

/// One active node's unit of work for the compute phase.
///
/// Carries the node's sorted neighbor slice so neither the job nor the
/// worker closure needs the topology itself — which is why the parallel
/// compute phase imposes no `Sync` bound on `T`.
struct Job<'a, P: Protocol> {
    v: NodeId,
    node: &'a mut P,
    fx: &'a mut Effects<P::Msg>,
    inbox: Inbox<'a, P::Msg>,
    nbrs: &'a [NodeId],
}

impl<'g, P: Protocol, T: Topology> Network<'g, P, T> {
    /// Creates the network and runs every node's `init` (round 0).
    ///
    /// # Errors
    ///
    /// [`SimError::NodeCountMismatch`] if `protocols.len() != n`, or any
    /// fault raised by an `init` callback (e.g. sending to a non-neighbor).
    pub fn new(graph: &'g T, config: Config, protocols: Vec<P>) -> Result<Self, SimError> {
        Self::new_inner(graph, config, protocols, None, None)
    }

    /// Like [`new`](Network::new), but seeded from an [`EngineScratch`]:
    /// the network starts with the recycled mailbox buffers, broadcast
    /// arena, effect and commit-shard scratch, and (when the thread
    /// counts match) the parked worker pool of a previously finished
    /// network, instead of allocating its own. Pair with
    /// [`finish_with_scratch`](Network::finish_with_scratch) to keep the
    /// buffers flowing across a phase's many networks.
    ///
    /// Recycling is invisible to execution: every buffer is cleared and
    /// resized for this network before use, so outcomes, [`Metrics`],
    /// traces, and errors are bit-identical to [`new`](Network::new).
    ///
    /// # Errors
    ///
    /// As [`new`](Network::new).
    pub fn new_with_scratch(
        graph: &'g T,
        config: Config,
        protocols: Vec<P>,
        scratch: &mut EngineScratch<P::Msg>,
    ) -> Result<Self, SimError> {
        Self::new_inner(graph, config, protocols, None, Some(scratch))
    }

    /// Like [`new`](Network::new), but with the **k-machine accounting
    /// layer** attached: every committed message is additionally charged
    /// to the directed machine-pair link between its endpoints' machines
    /// (intra-machine traffic is free; a broadcast crosses each link
    /// once), and the per-round link loads are returned as
    /// [`Report::machine_log`] from [`finish`](Network::finish). The
    /// layer is pure observation — execution, outcomes, [`Metrics`], and
    /// traces are bit-identical to [`new`](Network::new).
    ///
    /// # Errors
    ///
    /// As [`new`](Network::new).
    ///
    /// # Panics
    ///
    /// Panics if `machines` does not map exactly the graph's nodes.
    pub fn new_with_machines(
        graph: &'g T,
        config: Config,
        protocols: Vec<P>,
        machines: MachineMap,
    ) -> Result<Self, SimError> {
        assert_eq!(
            machines.len(),
            graph.node_count(),
            "machine map must cover exactly the graph's nodes"
        );
        Self::new_inner(graph, config, protocols, Some(MachineLayer::new(machines)), None)
    }

    fn new_inner(
        graph: &'g T,
        config: Config,
        protocols: Vec<P>,
        machines: Option<MachineLayer>,
        scratch: Option<&mut EngineScratch<P::Msg>>,
    ) -> Result<Self, SimError> {
        if protocols.len() != graph.node_count() {
            return Err(SimError::NodeCountMismatch {
                graph_nodes: graph.node_count(),
                protocols: protocols.len(),
            });
        }
        let n = graph.node_count();
        let threads = config.effective_engine_threads();
        let parts = match scratch {
            Some(s) => s.take_parts(n, threads),
            None => Parts::fresh(n, threads),
        };
        let trace_capacity = config.trace_capacity;
        // A null adversary (all knobs zero) is dropped here outright, so
        // attaching `Adversary::none()` provably cannot perturb the run:
        // the engine takes its unmodified clean code paths.
        let adversary = match &config.adversary {
            Some(adv) if !adv.is_null() => Some(AdversaryState::new(adv.clone(), n)),
            _ => None,
        };
        let obs = config.collector.clone();
        let mut net = Network {
            graph,
            config,
            nodes: protocols,
            halted: vec![false; n],
            halted_count: 0,
            mail: parts.mail,
            effects: parts.effects,
            scratch_woken: parts.woken,
            scratch_active: parts.active,
            scratch_work: parts.work,
            wakes: BinaryHeap::new(),
            round: 0,
            metrics: Metrics::new(n),
            trace: Trace::with_capacity(trace_capacity),
            finished: false,
            pool: parts.pool,
            machines,
            adversary,
            scratch_fates: parts.fates,
            scratch_charged: parts.charged,
            scratch_nbrs: Vec::new(),
            scratch_dirs: Vec::new(),
            commit: parts.commit,
            obs,
            obs_compute: Vec::new(),
            obs_scratch: ObsPre::default(),
            obs_prefilled: false,
            obs_fates: [0; 3],
            obs_crash: [0; 2],
        };
        // Pre-schedule a wake at every restart round, so a restarted
        // node activates (with an empty inbox) even in an otherwise
        // quiescent network.
        {
            let Network { adversary, wakes, .. } = &mut net;
            if let Some(st) = adversary.as_ref() {
                for (r, v) in st.restart_wakes() {
                    wakes.push(Reverse((r, v)));
                }
            }
        }
        let all: Vec<NodeId> = (0..n as NodeId).collect();
        net.run_phase(&all, CallKind::Init, &[], 0)?;
        net.mail.seal();
        Ok(net)
    }

    /// Runs rounds until every node halts.
    ///
    /// # Errors
    ///
    /// Any [`SimError`]; in particular [`SimError::Stalled`] when no node
    /// can ever run again and [`SimError::RoundLimitExceeded`] at the cap.
    pub fn run(&mut self) -> Result<(), SimError> {
        while !self.finished {
            self.step()?;
        }
        Ok(())
    }

    /// Samples the engine's buffer footprint in 8-byte machine words:
    /// the double-buffered mailboxes and broadcast arena, the per-worker
    /// effect scratch, the parallel-commit shard buffers, and the
    /// scheduling lists. Buffer capacities only grow during a run, so a
    /// sample after [`run`](Network::run) is the run's peak; both finish
    /// paths record it as
    /// [`Metrics::engine_memory_words`](crate::Metrics::engine_memory_words).
    pub fn engine_memory_words(&self) -> usize {
        use std::mem::size_of;
        let effects = self.effects.capacity() * size_of::<Effects<P::Msg>>()
            + self.effects.iter().map(Effects::memory_bytes).sum::<usize>();
        let sched = self.scratch_woken.capacity() * size_of::<NodeId>()
            + self.scratch_active.capacity() * size_of::<(NodeId, usize)>()
            + self.scratch_work.capacity() * size_of::<NodeId>()
            + self.wakes.len() * size_of::<Reverse<(usize, NodeId)>>()
            + self.scratch_fates.capacity() * size_of::<Fate>()
            + self.scratch_charged.capacity() * size_of::<(NodeId, usize)>()
            + self.scratch_nbrs.capacity() * size_of::<&[NodeId]>()
            + self.scratch_dirs.capacity() * size_of::<(&[NodeId], Option<NodeId>)>();
        let bytes = self.mail.memory_bytes() + effects + sched + self.commit.memory_bytes();
        bytes.div_ceil(size_of::<u64>())
    }

    /// Consumes the network, returning the final [`Report`] (by value, no
    /// metrics clone) and the per-node protocol states.
    pub fn finish(mut self) -> (Report, Vec<P>) {
        self.metrics.engine_memory_words = self.engine_memory_words() as u64;
        (
            Report {
                metrics: self.metrics,
                halted: self.halted_count,
                machine_log: self.machines.map(MachineLayer::into_log),
            },
            self.nodes,
        )
    }

    /// Like [`finish`](Network::finish), but donates the network's
    /// warmed-up buffers (mailboxes, broadcast arena, effect and
    /// commit-shard scratch, worker pool) to `scratch`, replacing
    /// whatever it held, so the next
    /// [`new_with_scratch`](Network::new_with_scratch) recycles them.
    /// Works regardless of how this network was constructed, and also
    /// after an errored [`run`](Network::run) — the taker re-clears
    /// everything.
    pub fn finish_with_scratch(mut self, scratch: &mut EngineScratch<P::Msg>) -> (Report, Vec<P>) {
        self.metrics.engine_memory_words = self.engine_memory_words() as u64;
        let Network {
            nodes,
            halted_count,
            mail,
            effects,
            scratch_woken,
            scratch_active,
            scratch_work,
            metrics,
            pool,
            machines,
            scratch_fates,
            scratch_charged,
            commit,
            ..
        } = self;
        scratch.store(Parts {
            mail,
            effects,
            commit,
            woken: scratch_woken,
            active: scratch_active,
            work: scratch_work,
            fates: scratch_fates,
            charged: scratch_charged,
            pool,
        });
        (
            Report {
                metrics,
                halted: halted_count,
                machine_log: machines.map(MachineLayer::into_log),
            },
            nodes,
        )
    }

    /// Executes one round. Does nothing once the run has finished.
    ///
    /// # Errors
    ///
    /// See [`run`](Network::run).
    pub fn step(&mut self) -> Result<(), SimError> {
        if self.finished {
            return Ok(());
        }
        if self.halted_count == self.nodes.len() {
            self.finished = true;
            return Ok(());
        }
        if self.round >= self.config.max_rounds {
            return Err(SimError::RoundLimitExceeded {
                max_rounds: self.config.max_rounds,
                unhalted: self.nodes.len() - self.halted_count,
            });
        }
        self.round += 1;

        if self.mail.ready().is_empty() {
            // Quiescent: fast-forward to the next scheduled wake-up or
            // delayed-message due round, if any (the skipped empty rounds
            // still count toward simulated time).
            let next_wake = self.wakes.peek().map(|&Reverse((r, _))| r);
            let next_due = self.mail.next_due();
            let next = match (next_wake, next_due) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            match next {
                Some(r) => {
                    if r > self.round {
                        self.round = r;
                    }
                    if self.round > self.config.max_rounds {
                        return Err(SimError::RoundLimitExceeded {
                            max_rounds: self.config.max_rounds,
                            unhalted: self.nodes.len() - self.halted_count,
                        });
                    }
                }
                None => {
                    if self.halted_count == self.nodes.len() {
                        self.finished = true;
                        return Ok(());
                    }
                    // Under an active adversary, a starved network (no
                    // mail, wakes, delayed messages, or pending restarts)
                    // is an *environmental* outcome — message loss, not a
                    // protocol deadlock — and no future round can make
                    // progress, so it terminates as the round-cap error
                    // instead of `Stalled`.
                    if self.adversary.is_some() {
                        return Err(SimError::RoundLimitExceeded {
                            max_rounds: self.config.max_rounds,
                            unhalted: self.nodes.len() - self.halted_count,
                        });
                    }
                    return Err(SimError::Stalled {
                        round: self.round,
                        unhalted: self.nodes.len() - self.halted_count,
                    });
                }
            }
        }

        if self.adversary.is_some() {
            // Re-inject delayed messages due this round (checking them
            // against the arrival round's edge budgets), then apply the
            // crash schedule so the suppression filter below sees this
            // round's up/down states.
            if let Err(e) = self.mail.inject_due(self.round, self.config.bandwidth_words) {
                // Seal so a post-error `step` cannot re-deliver this
                // round's inboxes, mirroring the fold's error path.
                self.mail.seal();
                return Err(e);
            }
            let round = self.round;
            let Network { adversary, trace, obs_crash, .. } = &mut *self;
            *obs_crash = [0; 2];
            if let Some(st) = adversary.as_mut() {
                st.advance(round, |node, went_down| {
                    obs_crash[usize::from(!went_down)] += 1;
                    trace.push(if went_down {
                        TraceEvent::Crashed { round, node }
                    } else {
                        TraceEvent::Restarted { round, node }
                    });
                });
            }
        }

        // Pop the due wake-ups (a wake for a node that also has mail is
        // simply consumed: the node activates either way).
        let mut woken = std::mem::take(&mut self.scratch_woken);
        woken.clear();
        while let Some(&Reverse((r, v))) = self.wakes.peek() {
            if r > self.round {
                break;
            }
            self.wakes.pop();
            woken.push(v);
        }
        woken.sort_unstable();
        woken.dedup();

        // Merge the message-driven active set (the sealed mailbox list,
        // ascending) with the woken nodes; wake-only activations get an
        // empty inbox.
        let mut active = std::mem::take(&mut self.scratch_active);
        active.clear();
        {
            let ready = self.mail.ready();
            let (mut i, mut j) = (0, 0);
            while i < ready.len() || j < woken.len() {
                let take_ready = match (ready.get(i), woken.get(j)) {
                    (Some(&(v, _)), Some(&w)) => {
                        if v == w {
                            j += 1; // wake consumed by the message activation
                        }
                        v <= w
                    }
                    (Some(_), None) => true,
                    (None, _) => false,
                };
                if take_ready {
                    active.push(ready[i]);
                    i += 1;
                } else {
                    let w = woken[j];
                    j += 1;
                    let down = self.adversary.as_ref().is_some_and(|st| st.is_down(w));
                    if !self.halted[(w) as usize] && !down && self.trace.is_enabled() {
                        self.trace.push(TraceEvent::Woke { round: self.round, node: w });
                    }
                    active.push((w, 0));
                }
            }
        }

        // Unreachable in the current schedule — an empty ready list
        // either stalls/finishes above or fast-forwards onto a due wake,
        // and due wakes are merged even for since-halted nodes — but kept
        // as a defensive guard so an empty merge can never mis-run.
        debug_assert!(!active.is_empty(), "merged active set cannot be empty here");
        if active.is_empty() {
            self.scratch_woken = woken;
            self.scratch_active = active;
            if self.halted_count == self.nodes.len() {
                self.finished = true;
            }
            return Ok(());
        }

        // Delivery accounting; halted nodes consume (drop) their messages
        // without running, and so do crashed nodes — a down node's
        // receives are suppressed exactly like a halted node's (delivery
        // metrics included), but unlike halting it may run again after a
        // restart.
        let mut round_messages = 0u64;
        let mut work = std::mem::take(&mut self.scratch_work);
        work.clear();
        for &(v, len) in &active {
            round_messages += len as u64;
            self.metrics.received_per_node[(v) as usize] += len as u64;
            self.metrics.compute_per_node[(v) as usize] += len as u64;
            let down = self.adversary.as_ref().is_some_and(|st| st.is_down(v));
            if !self.halted[(v) as usize] && !down {
                work.push(v);
            }
        }
        // The O(rounds) log is optional; the running maximum is not — it
        // is the streaming congestion figure long lean runs keep.
        if self.config.record_round_traffic {
            self.metrics.round_traffic.push(round_messages);
        }
        self.metrics.max_round_traffic = self.metrics.max_round_traffic.max(round_messages);

        let result = self.run_phase(&work, CallKind::Round, &active, round_messages);
        self.scratch_woken = woken;
        self.scratch_active = active;
        self.scratch_work = work;
        // Seal even when the fold faulted: the failed round's inboxes are
        // consumed and the sends committed by pre-fault nodes are
        // delivered, exactly like the old engine (which took inboxes
        // before invoking) — a post-error `step` can never re-run the
        // same round.
        self.mail.seal();
        result
    }

    /// Runs one phase over the listed nodes (strictly ascending by node
    /// id): the parallel compute phase followed by the commit fold —
    /// sharded across the worker pool on busy rounds, sequential
    /// otherwise, with bit-identical results either way.
    ///
    /// `active` and `delivered` describe this round's delivery (the full
    /// activated set with inbox lengths, and the delivered message
    /// count); they are consumed only by the telemetry emission, which
    /// runs once per *successfully* committed round, after the fold.
    fn run_phase(
        &mut self,
        work: &[NodeId],
        kind: CallKind,
        active: &[(NodeId, usize)],
        delivered: u64,
    ) -> Result<(), SimError> {
        if self.effects.len() < work.len() {
            self.effects.resize_with(work.len(), Effects::default);
        }

        // --- Compute phase: per-node, no shared mutation. ---
        {
            let Network { graph, nodes, effects, mail, config, round, pool, .. } = self;
            let graph: &T = graph;
            let n = graph.node_count();
            let round = *round;
            let sample_memory = config.memory_sample_interval > 0;

            let run_job = |job: &mut Job<'_, P>| {
                job.fx.reset();
                {
                    let mut ctx =
                        Context { node: job.v, round, n, nbrs: job.nbrs, fx: &mut *job.fx };
                    match kind {
                        CallKind::Init => job.node.init(&mut ctx),
                        CallKind::Round => job.node.round(&mut ctx, job.inbox.clone()),
                    }
                }
                let memory = sample_memory.then(|| job.node.memory_words());
                job.fx.seal(memory);
            };
            let fx_pool = &mut effects[..work.len()];
            match pool {
                Some(pool) if work.len() > 1 => {
                    let mut jobs: Vec<Job<'_, P>> = Vec::with_capacity(work.len());
                    carve_jobs(graph, nodes, fx_pool, mail, work, |job| jobs.push(job));
                    pool.run_mut(&mut jobs, &|_, job| run_job(job));
                }
                // Default sequential path: run each node as it is carved,
                // with no intermediate job list.
                _ => carve_jobs(graph, nodes, fx_pool, mail, work, |mut job| run_job(&mut job)),
            }
        }

        // --- Telemetry bookkeeping: the fold drains the effect buffers,
        // so per-op counts and compute charges must be read off before
        // they drain. The sequential fold accumulates them inline (it
        // touches every field anyway); only when the sharded fold is
        // about to drain the effects in parallel does a dedicated
        // pre-walk run. Reads only; skipped entirely without a
        // collector. ---
        let obs_attached = self.obs.is_some();
        if obs_attached {
            self.obs_compute.clear();
            self.obs_fates = [0; 3];
            self.obs_prefilled = false;
            self.obs_scratch = ObsPre {
                pre_messages: self.metrics.messages,
                pre_words: self.metrics.words,
                ..ObsPre::default()
            };
        }

        // --- Commit fold: ascending node id. ---
        let shards = self.commit_shard_count(work.len());
        if obs_attached && shards > 0 {
            self.obs_prewalk(work.len());
        }
        let committed_sharded = shards > 0 && self.try_commit_sharded(work, shards);
        if !committed_sharded {
            self.commit_sequential(work)?;
        }
        // Close the machine layer's round: every executed phase (init is
        // round 0) becomes one log entry, so the dilation accounting sees
        // exactly the executed schedule (fast-forwarded quiescent rounds
        // cost nothing).
        if let Some(ml) = self.machines.as_mut() {
            ml.end_round(self.round);
        }
        self.metrics.rounds = self.round;
        if obs_attached {
            self.emit_round_obs(work.len(), active, delivered);
        }
        Ok(())
    }

    /// Gathers the per-op telemetry tallies with a dedicated walk over
    /// this round's effect buffers — needed only when the sharded fold
    /// is about to drain them in parallel (the sequential fold
    /// accumulates the same tallies inline as it commits).
    fn obs_prewalk(&mut self, executed: usize) {
        let o = &mut self.obs_scratch;
        for fx in &self.effects[..executed] {
            o.unicast_ops += fx.sends.len() as u64;
            o.broadcast_ops += fx.bcasts.len() as u64;
            self.obs_compute.push(fx.compute);
            if fx.halted {
                o.halts += 1;
            } else if fx.wake.is_some() {
                o.wakes_scheduled += 1;
            }
        }
        self.obs_prefilled = true;
    }

    /// Emits this committed round's [`dhc_obs::RoundObs`] to the
    /// attached collector. Runs strictly after the fold (and after the
    /// machine layer closed its round), on the caller's thread, reading
    /// engine state without mutating any of it — the collector observes
    /// the exact committed round and provably cannot perturb it.
    fn emit_round_obs(&mut self, executed: usize, active: &[(NodeId, usize)], delivered: u64) {
        let Some(obs) = self.obs.clone() else { return };
        let pre = self.obs_scratch;
        let ev = dhc_obs::RoundObs {
            round: self.round,
            executed,
            delivered,
            inbox: active,
            compute: &self.obs_compute,
            unicast_ops: pre.unicast_ops,
            broadcast_ops: pre.broadcast_ops,
            messages: self.metrics.messages - pre.pre_messages,
            words: self.metrics.words - pre.pre_words,
            wakes_scheduled: pre.wakes_scheduled,
            halts: pre.halts,
            faults: dhc_obs::FaultObs {
                dropped: self.obs_fates[0],
                duplicated: self.obs_fates[1],
                delayed: self.obs_fates[2],
                crashes: self.obs_crash[0],
                restarts: self.obs_crash[1],
            },
            machine_links: self.machines.as_ref().map_or(&[], MachineLayer::last_round_links),
        };
        obs.with(|c| c.on_round(&ev));
    }

    /// The reference commit fold: one pass over the effects in ascending
    /// node-id order, applying everything directly to shared state. The
    /// sharded fold is pinned bit-for-bit against this path, and every
    /// faulting round runs here so partial-commit error semantics come
    /// from exactly one place.
    fn commit_sequential(&mut self, work: &[NodeId]) -> Result<(), SimError> {
        let graph = self.graph;
        let adversarial = self.adversary.is_some();
        // Telemetry tallies ride the fold's own walk (the effect fields
        // are in cache right here), unless a sharded attempt's pre-walk
        // already gathered them before backing off to this path.
        let fuse_obs = self.obs.is_some() && !self.obs_prefilled;
        for (i, &v) in work.iter().enumerate() {
            if fuse_obs {
                let fx = &self.effects[i];
                let o = &mut self.obs_scratch;
                o.unicast_ops += fx.sends.len() as u64;
                o.broadcast_ops += fx.bcasts.len() as u64;
                if fx.halted {
                    o.halts += 1;
                } else if fx.wake.is_some() {
                    o.wakes_scheduled += 1;
                }
                self.obs_compute.push(fx.compute);
            }
            if adversarial {
                // The fault-influenced commit lives in its own fold so the
                // clean path below stays exactly the pre-adversary engine.
                self.commit_adversarial(i, v)?;
                continue;
            }
            let fx = &mut self.effects[i];
            if let Some(err) = fx.fault.take() {
                return Err(err);
            }
            let nbrs = graph.neighbors(v);
            self.metrics.compute_per_node[(v) as usize] += fx.compute;
            if let Some(mem) = fx.memory {
                if mem > self.metrics.peak_memory_per_node[(v) as usize] {
                    self.metrics.peak_memory_per_node[(v) as usize] = mem;
                }
            }
            // Per-directed-edge accounting: every broadcast still counts
            // one message per addressed neighbor — only the payload
            // materialization is shared.
            let total_sends = parcommit::total_sends(fx, nbrs.len());
            if total_sends > self.metrics.max_node_sends_per_round {
                self.metrics.max_node_sends_per_round = total_sends;
            }
            // Bandwidth check: words per destination from this sender —
            // the same walk the sharded fold's plan pass runs, so the two
            // paths cannot drift.
            if let Err((to, words)) = parcommit::check_bandwidth(
                fx,
                nbrs,
                self.config.bandwidth_words,
                &mut self.metrics.max_edge_words,
            ) {
                return Err(SimError::BandwidthExceeded {
                    from: v,
                    to,
                    round: self.round,
                    attempted_words: words,
                    budget_words: self.config.bandwidth_words,
                });
            }
            // Route sends and broadcasts into the next round's mailboxes,
            // merged back into call order by op sequence so trace events
            // and per-receiver delivery order match the unicast expansion.
            let mut uni = fx.sends.drain(..).zip(fx.send_words.drain(..)).peekable();
            let mut bc = fx.bcasts.drain(..).zip(fx.bcast_words.drain(..)).peekable();
            loop {
                let take_uni = match (uni.peek(), bc.peek()) {
                    (Some(&((useq, _, _), _)), Some(&((bseq, _, _), _))) => useq < bseq,
                    (Some(_), None) => true,
                    (None, Some(_)) => false,
                    (None, None) => break,
                };
                if take_uni {
                    let ((seq, to, msg), words) = uni.next().expect("peeked");
                    self.metrics.words += words as u64;
                    self.metrics.messages += 1;
                    self.metrics.sent_per_node[(v) as usize] += 1;
                    if self.trace.is_enabled() {
                        self.trace.push(TraceEvent::Sent { round: self.round, from: v, to, words });
                    }
                    if let Some(ml) = self.machines.as_mut() {
                        ml.unicast(v, to, words);
                    }
                    self.mail.stage(v, seq, to, msg);
                } else {
                    let ((seq, skip, msg), words) = bc.next().expect("peeked");
                    let count = nbrs.len() - usize::from(skip.is_some());
                    if count == 0 {
                        // A skip-one broadcast from a degree-1 node
                        // addresses nobody: nothing to stage or charge.
                        continue;
                    }
                    self.metrics.words += words as u64 * count as u64;
                    self.metrics.messages += count as u64;
                    self.metrics.sent_per_node[(v) as usize] += count as u64;
                    if self.trace.is_enabled() {
                        for &to in nbrs {
                            if Some(to) != skip {
                                self.trace.push(TraceEvent::Sent {
                                    round: self.round,
                                    from: v,
                                    to,
                                    words,
                                });
                            }
                        }
                    }
                    // One payload copy into the arena; every addressed
                    // neighbor is activated with a counter bump. The
                    // machine layer likewise charges the payload once per
                    // receiving *machine*, not per receiving node.
                    self.mail.stage_broadcast(v, seq, skip, msg);
                    if let Some(ml) = self.machines.as_mut() {
                        ml.begin_broadcast(v, words);
                    }
                    for &to in nbrs {
                        if Some(to) != skip {
                            self.mail.deliver(to);
                            if let Some(ml) = self.machines.as_mut() {
                                ml.broadcast_dest(to);
                            }
                        }
                    }
                }
            }
            if let Some(target) = fx.wake {
                if !fx.halted {
                    self.wakes.push(Reverse((target, v)));
                    if self.trace.is_enabled() {
                        self.trace.push(TraceEvent::WakeScheduled {
                            round: self.round,
                            node: v,
                            target,
                        });
                    }
                }
            }
            if fx.halted && !self.halted[(v) as usize] {
                self.halted[(v) as usize] = true;
                self.halted_count += 1;
                if self.trace.is_enabled() {
                    self.trace.push(TraceEvent::Halted { round: self.round, node: v });
                }
            }
        }
        Ok(())
    }

    /// Shard count for this round's commit fold: `0` means "run the
    /// sequential fold". A forced [`Config::commit_shards`] always
    /// shards (clamped to the active count); auto mode shards only when
    /// a pool exists and the round is busy enough to amortize the merge.
    fn commit_shard_count(&self, work_len: usize) -> usize {
        if work_len == 0 {
            return 0;
        }
        if self.config.commit_shards != 0 {
            return self.config.commit_shards.min(work_len);
        }
        match &self.pool {
            Some(pool) if work_len >= PAR_COMMIT_MIN_ACTIVE => pool.workers().min(work_len),
            _ => 0,
        }
    }

    /// Attempts the sharded commit fold (see [`crate::parcommit`]).
    /// Returns `false` — with **no** engine state mutated — when the
    /// plan pass finds a protocol fault or bandwidth violation; the
    /// caller then runs [`commit_sequential`](Self::commit_sequential),
    /// which reproduces the exact partial-commit error semantics.
    fn try_commit_sharded(&mut self, work: &[NodeId], shards: usize) -> bool {
        let n = self.nodes.len();
        let graph = self.graph;
        let round = self.round;
        let budget = self.config.bandwidth_words;
        let dest_chunk = n.div_ceil(shards);
        let machine_k = self.machines.as_ref().map(|ml| ml.map().machine_count());
        self.scratch_nbrs.clear();
        self.scratch_nbrs.extend(work.iter().map(|&v| graph.neighbors(v)));
        self.commit.prepare(shards, machine_k);

        let Network {
            halted,
            halted_count,
            mail,
            effects,
            wakes,
            metrics,
            trace,
            machines,
            adversary,
            pool,
            commit,
            scratch_nbrs,
            scratch_dirs,
            obs_fates,
            ..
        } = &mut *self;

        // Carve one SenderRun per shard: contiguous runs of the active
        // list plus disjoint windows of the per-node arrays, split at
        // the shard's node-id bounds.
        let chunk = work.len().div_ceil(shards);
        let mut runs: Vec<SenderRun<'_, 'g, P::Msg>> = Vec::with_capacity(shards);
        {
            let mut work_rest = work;
            let mut fx_rest = &mut effects[..work.len()];
            let mut nbrs_rest = &scratch_nbrs[..];
            let mut sent_rest = &mut metrics.sent_per_node[..];
            let mut comp_rest = &mut metrics.compute_per_node[..];
            let mut mem_rest = &mut metrics.peak_memory_per_node[..];
            let mut halt_rest = &mut halted[..];
            let mut outs_rest = &mut commit.outs[..shards];
            let mut buckets_rest = &mut commit.buckets[..shards * shards];
            // First node id not yet covered by a carved window.
            let mut consumed = 0;
            let mut base_idx = 0;
            for _ in 0..shards {
                let take = chunk.min(work_rest.len());
                let (w, rest) = work_rest.split_at(take);
                work_rest = rest;
                let (fx, rest) = fx_rest.split_at_mut(take);
                fx_rest = rest;
                let (nb, rest) = nbrs_rest.split_at(take);
                nbrs_rest = rest;
                let next = work_rest.first().map_or(n, |&v| (v) as usize);
                let width = next - consumed;
                let (sent, rest) = sent_rest.split_at_mut(width);
                sent_rest = rest;
                let (comp, rest) = comp_rest.split_at_mut(width);
                comp_rest = rest;
                let (mem, rest) = mem_rest.split_at_mut(width);
                mem_rest = rest;
                let (halt, rest) = halt_rest.split_at_mut(width);
                halt_rest = rest;
                let (out, rest) = outs_rest.split_first_mut().expect("outs sized to shards");
                outs_rest = rest;
                let (bk, rest) = buckets_rest.split_at_mut(shards);
                buckets_rest = rest;
                runs.push(SenderRun {
                    base_idx,
                    work: w,
                    effects: fx,
                    nbrs: nb,
                    node_base: consumed,
                    sent,
                    compute: comp,
                    peak_mem: mem,
                    halted: halt,
                    out,
                    buckets: bk,
                });
                base_idx += take;
                consumed = next;
            }
        }

        // --- Plan pass: read-only validation + max-metric accumulation. ---
        let adversarial = adversary.is_some();
        if adversarial {
            let adv = &adversary.as_ref().expect("checked above").adv;
            dispatch(pool.as_ref(), &mut runs, |r| r.plan_adversarial(adv, round, budget));
        } else {
            dispatch(pool.as_ref(), &mut runs, |r| r.plan(budget));
        }
        if runs.iter().any(|r| r.out.first_bad.is_some()) {
            return false;
        }

        if adversarial {
            // Fates are drawn and budgets cleared; the routing itself
            // (delay queue, per-copy staging) stays sequential. Merge the
            // planned maxes first — max is order-independent, and no
            // error can interrupt the round from here on.
            drop(runs);
            for out in commit.outs[..shards].iter() {
                if out.max_edge > metrics.max_edge_words {
                    metrics.max_edge_words = out.max_edge;
                }
                if out.max_sends > metrics.max_node_sends_per_round {
                    metrics.max_node_sends_per_round = out.max_sends;
                }
            }
            let mut idx = 0;
            for s in 0..shards {
                let take = chunk.min(work.len() - idx);
                let fates = std::mem::take(&mut commit.outs[s].fates);
                let mut cursor = 0;
                for j in 0..take {
                    let v = work[idx + j];
                    let fx = &mut effects[idx + j];
                    debug_assert!(fx.fault.is_none(), "planned shard cannot hold a fault");
                    metrics.compute_per_node[(v) as usize] += fx.compute;
                    if let Some(mem) = fx.memory {
                        if mem > metrics.peak_memory_per_node[(v) as usize] {
                            metrics.peak_memory_per_node[(v) as usize] = mem;
                        }
                    }
                    cursor += route_node_adversarial(
                        v,
                        round,
                        scratch_nbrs[idx + j],
                        fx,
                        &fates[cursor..],
                        metrics,
                        trace,
                        machines,
                        mail,
                        wakes,
                        halted,
                        halted_count,
                        obs_fates,
                    );
                }
                debug_assert_eq!(cursor, fates.len(), "shard fate plan out of sync");
                commit.outs[s].fates = fates;
                idx += take;
            }
            return true;
        }

        // --- Commit pass: shard-local buffers, disjoint metric windows. ---
        {
            let ctx = ShardCtx {
                round,
                trace_on: trace.is_enabled(),
                dest_chunk,
                machines: machines.as_ref().map(|ml| ml.map()),
            };
            dispatch(pool.as_ref(), &mut runs, |r| r.commit(&ctx));
            drop(runs);
        }

        // --- Merge: ascending shard order is ascending node order. ---
        scratch_dirs.clear();
        let trace_on = trace.is_enabled();
        for out in commit.outs[..shards].iter_mut() {
            metrics.words += out.words;
            metrics.messages += out.messages;
            if out.max_edge > metrics.max_edge_words {
                metrics.max_edge_words = out.max_edge;
            }
            if out.max_sends > metrics.max_node_sends_per_round {
                metrics.max_node_sends_per_round = out.max_sends;
            }
            *halted_count += out.halts;
            for &(target, v) in &out.wakes {
                wakes.push(Reverse((target, v)));
            }
            if trace_on {
                // Replayed through `push` so capacity accounting (and the
                // dropped counter) behave exactly as in the sequential fold.
                for ev in out.trace.drain(..) {
                    trace.push(ev);
                }
            }
            if let (Some(ms), Some(ml)) = (out.machine.as_mut(), machines.as_mut()) {
                ml.absorb_shard(ms);
            }
            for (from, seq, skip, msg) in out.bcasts.drain(..) {
                scratch_dirs.push((graph.neighbors(from), skip));
                mail.stage_broadcast(from, seq, skip, msg);
            }
        }

        // --- Destination pass: shard the mailboxes by receiver id. ---
        let mut dest_runs: Vec<DestRun<'_, 'g, P::Msg>> = Vec::with_capacity(shards);
        for (d, part) in mail.dest_parts(dest_chunk, shards).into_iter().enumerate() {
            let cols =
                (0..shards).map(|s| std::mem::take(&mut commit.buckets[s * shards + d])).collect();
            dest_runs.push(DestRun { part, cols, dirs: &scratch_dirs[..] });
        }
        dispatch(pool.as_ref(), &mut dest_runs, |r| r.route());
        let mut touched = Vec::with_capacity(shards);
        for (d, run) in dest_runs.into_iter().enumerate() {
            for (s, col) in run.cols.into_iter().enumerate() {
                debug_assert!(col.is_empty(), "destination pass left a bucket undrained");
                commit.buckets[s * shards + d] = col;
            }
            touched.push(run.part.into_touched());
        }
        mail.absorb_touched(touched);
        true
    }

    /// Commits one node's effects under an **active adversary**: the
    /// fault-influenced twin of the clean fold in
    /// [`run_phase`](Self::run_phase).
    ///
    /// Two passes, both sequential. Pass 1 draws the [`Fate`] of every
    /// delivery — broadcasts expanded over their addressed neighbors in
    /// ascending order, unicasts and broadcasts merged by op sequence —
    /// and checks the per-edge budgets with duplicates charged twice
    /// (a duplicated copy is extra traffic on the edge, so it can push a
    /// protocol that saturates its budget over the limit; the violation
    /// surfaces as the ordinary [`SimError::BandwidthExceeded`], never a
    /// silent queue). Pass 2 routes: delivered copies are staged as
    /// usual, dropped ones are charged to the sender but never staged,
    /// duplicated ones are staged twice, and delayed ones are parked in
    /// the mailbox delay queue until their due round.
    ///
    /// Broadcasts are committed as **per-destination direct messages**
    /// (each copy can meet a different fate), so the broadcast arena is
    /// never used under an active adversary; the k-machine layer
    /// likewise sees the per-edge unicast expansion.
    fn commit_adversarial(&mut self, i: usize, v: NodeId) -> Result<(), SimError> {
        let round = self.round;
        let budget = self.config.bandwidth_words;
        let Network {
            graph,
            effects,
            mail,
            metrics,
            trace,
            machines,
            adversary,
            wakes,
            halted,
            halted_count,
            scratch_fates,
            scratch_charged,
            obs_fates,
            ..
        } = self;
        let st = adversary.as_mut().expect("adversarial commit without an adversary");
        let fx = &mut effects[i];
        if let Some(err) = fx.fault.take() {
            return Err(err);
        }
        let nbrs = graph.neighbors(v);
        metrics.compute_per_node[(v) as usize] += fx.compute;
        if let Some(mem) = fx.memory {
            if mem > metrics.peak_memory_per_node[(v) as usize] {
                metrics.peak_memory_per_node[(v) as usize] = mem;
            }
        }

        // --- Pass 1: draw fates (merged op order, broadcasts expanded
        // over ascending addressed neighbors) and charge the edges —
        // the same pure plan the sharded fold runs, so the realized
        // fault schedule is identical on both paths. ---
        scratch_fates.clear();
        if let Err((to, words)) = parcommit::plan_adversarial_node(
            &st.adv,
            round,
            budget,
            v,
            fx,
            nbrs,
            scratch_fates,
            scratch_charged,
            &mut metrics.max_edge_words,
            &mut metrics.max_node_sends_per_round,
        ) {
            return Err(SimError::BandwidthExceeded {
                from: v,
                to,
                round,
                attempted_words: words,
                budget_words: budget,
            });
        }

        // --- Pass 2: route each delivery by its fate. ---
        let used = route_node_adversarial(
            v,
            round,
            nbrs,
            fx,
            scratch_fates,
            metrics,
            trace,
            machines,
            mail,
            wakes,
            halted,
            halted_count,
            obs_fates,
        );
        debug_assert_eq!(used, scratch_fates.len(), "fate scratch out of sync");
        Ok(())
    }

    /// Number of rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.round
    }

    /// Whether every node has halted.
    pub fn is_finished(&self) -> bool {
        self.finished || self.halted_count == self.nodes.len()
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The event trace (empty unless `Config::trace_capacity > 0`).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Immutable access to the per-node protocol states (for extracting
    /// outputs after a run).
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Consumes the network, returning the protocol states. Prefer
    /// [`finish`](Network::finish) when the final metrics are also needed.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }
}

impl<P: Protocol, T: Topology> std::fmt::Debug for Network<'_, P, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("n", &self.nodes.len())
            .field("round", &self.round)
            .field("halted", &self.halted_count)
            .field("finished", &self.finished)
            .finish()
    }
}

/// Carves one disjoint `&mut` node/effects pair per listed node (ids
/// strictly ascending) and hands each [`Job`] to `with` — the shared
/// walk behind both compute-phase paths (inline execution when
/// sequential, job-list collection when parallel). The topology is read
/// only here, to attach each node's neighbor slice to its job.
fn carve_jobs<'a, P: Protocol, T: Topology>(
    graph: &'a T,
    nodes: &'a mut [P],
    effects: &'a mut [Effects<P::Msg>],
    mail: &'a Mailboxes<P::Msg>,
    work: &[NodeId],
    mut with: impl FnMut(Job<'a, P>),
) {
    let mut node_rest = nodes;
    let mut fx_rest = effects;
    let mut base = 0;
    for &v in work {
        let (_, tail) = node_rest.split_at_mut((v - base) as usize);
        let (node, tail) = tail.split_first_mut().expect("active node id in range");
        node_rest = tail;
        base = v + 1;
        let (fx, fx_tail) = fx_rest.split_first_mut().expect("effects pool sized to work");
        fx_rest = fx_tail;
        let nbrs = graph.neighbors(v);
        with(Job { v, node, fx, inbox: mail.inbox(v, nbrs), nbrs });
    }
}

/// Runs `f` over every item — on the worker pool when one exists,
/// inline otherwise. Both commit-fold passes and the compute phase go
/// through here, so "no pool" provably means "no extra threads".
fn dispatch<I: Send, F: Fn(&mut I) + Sync>(pool: Option<&WorkerPool>, items: &mut [I], f: F) {
    match pool {
        Some(pool) => pool.run_mut(items, &|_, item| f(item)),
        None => {
            for item in items.iter_mut() {
                f(item);
            }
        }
    }
}

/// Routes one node's deliveries by their pre-drawn fates (see
/// [`parcommit::plan_adversarial_node`]): sender-side metrics and trace
/// per delivery, then per-fate staging — delivered copies as usual,
/// dropped ones charged but never staged, duplicated ones staged twice,
/// delayed ones parked in the mailbox delay queue until their due
/// round. Finishes the node's wake/halt bookkeeping and returns how
/// many fates it consumed. `fate_tally` accumulates the realized
/// non-deliver fates `[dropped, duplicated, delayed]` for the round's
/// telemetry event (pure counting — it influences nothing).
#[allow(clippy::too_many_arguments)]
fn route_node_adversarial<M: crate::Payload>(
    v: NodeId,
    round: usize,
    nbrs: &[NodeId],
    fx: &mut Effects<M>,
    fates: &[Fate],
    metrics: &mut Metrics,
    trace: &mut Trace,
    machines: &mut Option<MachineLayer>,
    mail: &mut Mailboxes<M>,
    wakes: &mut BinaryHeap<Reverse<(usize, NodeId)>>,
    halted: &mut [bool],
    halted_count: &mut usize,
    fate_tally: &mut [u64; 3],
) -> usize {
    let trace_on = trace.is_enabled();
    let mut fi = 0;
    let mut uni = fx.sends.drain(..).zip(fx.send_words.drain(..)).peekable();
    let mut bc = fx.bcasts.drain(..).zip(fx.bcast_words.drain(..)).peekable();
    // One delivery: sender-side metrics and trace, then fate routing.
    let mut commit_one = |to: NodeId, seq: u32, words: usize, msg: M| {
        let fate = fates[fi];
        fi += 1;
        match fate {
            Fate::Deliver => {}
            Fate::Drop => fate_tally[0] += 1,
            Fate::Duplicate => fate_tally[1] += 1,
            Fate::Delay(_) => fate_tally[2] += 1,
        }
        let copies: u64 = if fate == Fate::Duplicate { 2 } else { 1 };
        metrics.words += words as u64 * copies;
        metrics.messages += copies;
        metrics.sent_per_node[(v) as usize] += copies;
        if trace_on {
            trace.push(TraceEvent::Sent { round, from: v, to, words });
            match fate {
                Fate::Deliver => {}
                Fate::Drop => trace.push(TraceEvent::Dropped { round, from: v, to }),
                Fate::Duplicate => trace.push(TraceEvent::Duplicated { round, from: v, to }),
                Fate::Delay(d) => {
                    trace.push(TraceEvent::Delayed { round, from: v, to, until: round + 1 + d });
                }
            }
        }
        if let Some(ml) = machines.as_mut() {
            for _ in 0..copies {
                ml.unicast(v, to, words);
            }
        }
        match fate {
            Fate::Deliver => mail.stage(v, seq, to, msg),
            // Charged to the sender, lost in transit.
            Fate::Drop => {}
            Fate::Duplicate => {
                mail.stage(v, seq, to, msg.clone());
                mail.stage(v, seq, to, msg);
            }
            Fate::Delay(d) => mail.stage_delayed(round + 1 + d, v, seq, to, msg),
        }
    };
    loop {
        let take_uni = match (uni.peek(), bc.peek()) {
            (Some(&((useq, _, _), _)), Some(&((bseq, _, _), _))) => useq < bseq,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_uni {
            let ((seq, to, msg), words) = uni.next().expect("peeked");
            commit_one(to, seq, words, msg);
        } else {
            let ((seq, skip, msg), words) = bc.next().expect("peeked");
            for &to in nbrs {
                if Some(to) == skip {
                    continue;
                }
                commit_one(to, seq, words, msg.clone());
            }
        }
    }
    drop(uni);
    drop(bc);

    if let Some(target) = fx.wake {
        if !fx.halted {
            wakes.push(Reverse((target, v)));
            if trace_on {
                trace.push(TraceEvent::WakeScheduled { round, node: v, target });
            }
        }
    }
    if fx.halted && !halted[(v) as usize] {
        halted[(v) as usize] = true;
        *halted_count += 1;
        if trace_on {
            trace.push(TraceEvent::Halted { round, node: v });
        }
    }
    fi
}

/// Which protocol callback [`Network::run_phase`] should run.
#[derive(Clone, Copy, Debug)]
enum CallKind {
    Init,
    Round,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Payload;

    #[derive(Clone, Debug)]
    struct Token(#[allow(dead_code)] u64);
    impl Payload for Token {}

    /// Floods a token once from node 0; every node halts after forwarding.
    struct Flood {
        seen: bool,
    }
    impl Protocol for Flood {
        type Msg = Token;
        fn init(&mut self, ctx: &mut Context<'_, Token>) {
            if ctx.node() == 0 {
                self.seen = true;
                ctx.send_all(Token(1));
                ctx.halt();
            }
        }
        fn round(&mut self, ctx: &mut Context<'_, Token>, inbox: Inbox<'_, Token>) {
            if !inbox.is_empty() && !self.seen {
                self.seen = true;
                ctx.send_all(Token(1));
            }
            ctx.halt();
        }
        fn memory_words(&self) -> usize {
            2
        }
    }

    fn flood_nodes(n: usize) -> Vec<Flood> {
        (0..n).map(|_| Flood { seen: false }).collect()
    }

    #[test]
    fn flood_reaches_everyone_on_path() {
        let g = dhc_graph::generator::path_graph(5);
        let mut net = Network::new(&g, Config::default(), flood_nodes(5)).unwrap();
        net.run().unwrap();
        assert!(net.nodes().iter().all(|f| f.seen));
        let (report, _) = net.finish();
        assert_eq!(report.halted, 5);
        // Token crosses 4 hops; the last forward happens in round 4.
        assert_eq!(report.metrics.rounds, 4);
        // Sends: node 0 one, nodes 1-3 two each (send_all), node 4 one.
        assert_eq!(report.metrics.messages, 8);
    }

    #[test]
    fn metrics_count_messages_and_words() {
        let g = dhc_graph::generator::star(4);
        let mut net = Network::new(&g, Config::default(), flood_nodes(4)).unwrap();
        net.run().unwrap();
        let (report, _) = net.finish();
        // Node 0 sends 3; each leaf replies to the (halted) hub: 3 more sent.
        assert_eq!(report.metrics.messages, 6);
        assert_eq!(report.metrics.words, 6);
        assert_eq!(report.metrics.sent_per_node, vec![3, 1, 1, 1]);
        assert_eq!(report.metrics.max_edge_words, 1);
    }

    #[test]
    fn memory_peaks_sampled() {
        let g = dhc_graph::generator::path_graph(3);
        let mut net = Network::new(&g, Config::default(), flood_nodes(3)).unwrap();
        net.run().unwrap();
        assert!(net.metrics().peak_memory_per_node.iter().all(|&m| m == 2));
    }

    #[test]
    fn node_count_mismatch_rejected() {
        let g = dhc_graph::generator::path_graph(3);
        assert!(matches!(
            Network::new(&g, Config::default(), flood_nodes(2)),
            Err(SimError::NodeCountMismatch { graph_nodes: 3, protocols: 2 })
        ));
    }

    /// Sends to a fixed non-neighbor in init.
    struct BadSender;
    impl Protocol for BadSender {
        type Msg = Token;
        fn init(&mut self, ctx: &mut Context<'_, Token>) {
            if ctx.node() == 0 {
                ctx.send(2, Token(0));
            }
            ctx.halt();
        }
        fn round(&mut self, _: &mut Context<'_, Token>, _: Inbox<'_, Token>) {}
    }

    #[test]
    fn non_neighbor_send_is_error() {
        let g = dhc_graph::generator::path_graph(3); // 0-1-2: 0 and 2 not adjacent
        let err =
            Network::new(&g, Config::default(), vec![BadSender, BadSender, BadSender]).unwrap_err();
        assert!(matches!(err, SimError::NotANeighbor { from: 0, to: 2, .. }));
    }

    /// Sends two messages over one edge in one round.
    struct Chatty;
    impl Protocol for Chatty {
        type Msg = Token;
        fn init(&mut self, ctx: &mut Context<'_, Token>) {
            if ctx.node() == 0 {
                ctx.send(1, Token(1));
                ctx.send(1, Token(2));
            }
            ctx.halt();
        }
        fn round(&mut self, _: &mut Context<'_, Token>, _: Inbox<'_, Token>) {}
    }

    #[test]
    fn bandwidth_violation_is_error() {
        let g = dhc_graph::generator::path_graph(2);
        let err = Network::new(&g, Config::default(), vec![Chatty, Chatty]).unwrap_err();
        assert!(matches!(
            err,
            SimError::BandwidthExceeded { from: 0, to: 1, attempted_words: 2, budget_words: 1, .. }
        ));
    }

    #[test]
    fn wider_bandwidth_allows_it() {
        let g = dhc_graph::generator::path_graph(2);
        let net = Network::new(&g, Config::default().with_bandwidth_words(2), vec![Chatty, Chatty]);
        assert!(net.is_ok());
    }

    /// Node 0 never halts and never acts: stall.
    struct Sleeper;
    impl Protocol for Sleeper {
        type Msg = Token;
        fn init(&mut self, ctx: &mut Context<'_, Token>) {
            if ctx.node() != 0 {
                ctx.halt();
            }
        }
        fn round(&mut self, _: &mut Context<'_, Token>, _: Inbox<'_, Token>) {}
    }

    #[test]
    fn stall_detected() {
        let g = dhc_graph::generator::path_graph(2);
        let mut net = Network::new(&g, Config::default(), vec![Sleeper, Sleeper]).unwrap();
        let err = net.run().unwrap_err();
        assert!(matches!(err, SimError::Stalled { unhalted: 1, .. }));
    }

    /// Wakes itself `k` times, then halts.
    struct Timer {
        remaining: usize,
        fired_rounds: Vec<usize>,
    }
    impl Protocol for Timer {
        type Msg = Token;
        fn init(&mut self, ctx: &mut Context<'_, Token>) {
            ctx.wake_in(3);
        }
        fn round(&mut self, ctx: &mut Context<'_, Token>, _: Inbox<'_, Token>) {
            self.fired_rounds.push(ctx.round_number());
            if self.remaining == 0 {
                ctx.halt();
            } else {
                self.remaining -= 1;
                ctx.wake_in(2);
            }
        }
    }

    #[test]
    fn wake_in_schedules_exact_rounds() {
        let g = dhc_graph::Graph::from_edges(1, []).unwrap();
        let mut net =
            Network::new(&g, Config::default(), vec![Timer { remaining: 2, fired_rounds: vec![] }])
                .unwrap();
        net.run().unwrap();
        assert_eq!(net.nodes()[0].fired_rounds, vec![3, 5, 7]);
    }

    #[test]
    fn round_limit_enforced() {
        let g = dhc_graph::Graph::from_edges(1, []).unwrap();
        let mut net = Network::new(
            &g,
            Config::default().with_max_rounds(4),
            vec![Timer { remaining: 100, fired_rounds: vec![] }],
        )
        .unwrap();
        let err = net.run().unwrap_err();
        assert!(matches!(err, SimError::RoundLimitExceeded { max_rounds: 4, unhalted: 1 }));
    }

    #[test]
    fn trace_records_sends_halts_and_wakes() {
        let g = dhc_graph::generator::path_graph(3);
        let cfg = Config::default().with_trace_capacity(100);
        let mut net = Network::new(&g, cfg, flood_nodes(3)).unwrap();
        net.run().unwrap();
        let trace = net.trace();
        let sends = trace.iter().filter(|e| matches!(e, crate::TraceEvent::Sent { .. })).count();
        let halts = trace.iter().filter(|e| matches!(e, crate::TraceEvent::Halted { .. })).count();
        assert_eq!(sends as u64, net.metrics().messages);
        assert_eq!(halts, 3);
        assert_eq!(trace.dropped(), 0);
    }

    #[test]
    fn trace_records_wake_only_activations() {
        let g = dhc_graph::Graph::from_edges(1, []).unwrap();
        let cfg = Config::default().with_trace_capacity(100);
        let mut net =
            Network::new(&g, cfg, vec![Timer { remaining: 1, fired_rounds: vec![] }]).unwrap();
        net.run().unwrap();
        let woke: Vec<usize> = net
            .trace()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Woke { round, node: 0 } => Some(*round),
                _ => None,
            })
            .collect();
        // Scheduled in init for round 3, then again for round 5.
        assert_eq!(woke, vec![3, 5]);
    }

    #[test]
    fn trace_disabled_by_default() {
        let g = dhc_graph::generator::path_graph(2);
        let mut net = Network::new(&g, Config::default(), flood_nodes(2)).unwrap();
        net.run().unwrap();
        assert!(net.trace().is_empty());
    }

    /// Node 1 answers its first delivery with two messages to node 0 in
    /// one round: a bandwidth violation in the round-2 commit fold.
    struct Replier {
        invocations: usize,
    }
    impl Protocol for Replier {
        type Msg = Token;
        fn init(&mut self, ctx: &mut Context<'_, Token>) {
            if ctx.node() == 0 {
                ctx.send(1, Token(0));
            }
        }
        fn round(&mut self, ctx: &mut Context<'_, Token>, inbox: Inbox<'_, Token>) {
            self.invocations += 1;
            if ctx.node() == 1 && !inbox.is_empty() {
                ctx.send(0, Token(1));
                ctx.send(0, Token(2));
            }
        }
    }

    #[test]
    fn step_after_error_does_not_rerun_the_round() {
        let g = dhc_graph::generator::path_graph(2);
        let mut net = Network::new(
            &g,
            Config::default(),
            vec![Replier { invocations: 0 }, Replier { invocations: 0 }],
        )
        .unwrap();
        let err = net.run().unwrap_err();
        assert!(matches!(err, SimError::BandwidthExceeded { from: 1, to: 0, .. }));
        assert_eq!(net.nodes()[1].invocations, 1);
        // The failed round's inboxes were consumed: another step cannot
        // re-deliver them and re-run the callbacks (it stalls instead,
        // exactly like the pre-refactor engine).
        let again = net.step().unwrap_err();
        assert!(matches!(again, SimError::Stalled { .. }), "{again:?}");
        assert_eq!(net.nodes()[1].invocations, 1);
    }

    /// Node 0 floods everyone but node 1 via `send_all_except`; node 2
    /// echoes with interleaved unicast + broadcast ops.
    struct Skipper {
        got: Vec<(NodeId, u64)>,
    }
    impl Protocol for Skipper {
        type Msg = Token;
        fn init(&mut self, ctx: &mut Context<'_, Token>) {
            if ctx.node() == 0 {
                ctx.send_all_except(1, Token(7));
            }
            // Everyone activates in round 1 (and halts there), even the
            // skipped neighbor.
            ctx.wake_in(1);
        }
        fn round(&mut self, ctx: &mut Context<'_, Token>, inbox: Inbox<'_, Token>) {
            for (from, &Token(k)) in inbox.iter() {
                self.got.push((from, k));
            }
            if ctx.node() == 2 && ctx.round_number() == 1 {
                // Interleave: unicast, broadcast, unicast — receivers must
                // see this exact call order from sender 2.
                ctx.send(0, Token(10));
                ctx.send_all(Token(11));
                ctx.send(0, Token(12));
            }
            if ctx.node() == 0 && ctx.round_number() < 2 {
                // The hub stays up one extra round to observe node 2's
                // interleaved ops.
                ctx.stay_awake();
            } else {
                ctx.halt();
            }
        }
    }

    #[test]
    fn send_all_except_skips_exactly_one_neighbor() {
        let g = dhc_graph::generator::star(4); // hub 0, leaves 1..3
        let nodes = (0..4).map(|_| Skipper { got: Vec::new() }).collect();
        let cfg = Config::default().with_bandwidth_words(4).with_trace_capacity(100);
        let mut net = Network::new(&g, cfg, nodes).unwrap();
        net.run().unwrap();
        assert_eq!(net.nodes()[1].got, vec![], "skipped neighbor got the flood");
        assert_eq!(net.nodes()[2].got, vec![(0, 7)]);
        assert_eq!(net.nodes()[3].got, vec![(0, 7)]);
        // Init flood: 2 messages (leaves 2, 3). Round 1: node 2 sends
        // 2 unicasts + 1 broadcast to its single neighbor (the hub).
        assert_eq!(net.metrics().messages, 5);
        let sends =
            net.trace().iter().filter(|e| matches!(e, TraceEvent::Sent { .. })).count() as u64;
        assert_eq!(sends, net.metrics().messages);
    }

    #[test]
    fn interleaved_unicast_and_broadcast_arrive_in_call_order() {
        let g = dhc_graph::generator::star(4);
        let nodes = (0..4).map(|_| Skipper { got: Vec::new() }).collect();
        let cfg = Config::default().with_bandwidth_words(4);
        let mut net = Network::new(&g, cfg, nodes).unwrap();
        net.run().unwrap();
        // Node 2's round-1 ops arrive at the hub in call order, the
        // broadcast merged between the two unicasts by op sequence.
        assert_eq!(net.nodes()[0].got, vec![(2, 10), (2, 11), (2, 12)]);
        assert_eq!(net.metrics().received_per_node[0], 3);
        assert_eq!(net.metrics().sent_per_node, vec![2, 0, 3, 0]);
    }

    /// Two broadcasts in one round exceed the 1-word default budget.
    struct DoubleFlood;
    impl Protocol for DoubleFlood {
        type Msg = Token;
        fn init(&mut self, ctx: &mut Context<'_, Token>) {
            if ctx.node() == 0 {
                ctx.send_all(Token(1));
                ctx.send_all(Token(2));
            }
            ctx.halt();
        }
        fn round(&mut self, _: &mut Context<'_, Token>, _: Inbox<'_, Token>) {}
    }

    #[test]
    fn broadcast_bandwidth_enforced_per_directed_edge() {
        let g = dhc_graph::generator::path_graph(3);
        let err = Network::new(&g, Config::default(), vec![DoubleFlood, DoubleFlood, DoubleFlood])
            .unwrap_err();
        // First violating destination in ascending order is neighbor 1.
        assert!(matches!(
            err,
            SimError::BandwidthExceeded { from: 0, to: 1, attempted_words: 2, budget_words: 1, .. }
        ));
        let g = dhc_graph::generator::path_graph(3);
        let net = Network::new(
            &g,
            Config::default().with_bandwidth_words(2),
            vec![DoubleFlood, DoubleFlood, DoubleFlood],
        )
        .unwrap();
        assert_eq!(net.metrics().max_edge_words, 2);
    }

    /// The broadcast arena holds one payload per flooding op, not per
    /// edge: the flood test above plus this pin the count.
    #[test]
    fn inbox_views_share_one_broadcast_payload() {
        let g = dhc_graph::generator::complete(6);
        let nodes = (0..6).map(|_| Skipper { got: Vec::new() }).collect();
        let cfg = Config::default().with_bandwidth_words(4);
        let mut net = Network::new(&g, cfg, nodes).unwrap();
        net.step().unwrap();
        // Every neighbor of 0 except 1 saw the one arena record.
        let seen: Vec<_> = net.nodes().iter().map(|nd| nd.got.len()).collect();
        assert_eq!(seen, vec![0, 0, 1, 1, 1, 1]);
    }

    /// Records the round of every delivery; node 0 pings node 1 once.
    struct Recorder {
        got: Vec<(usize, NodeId, u64)>,
    }
    impl Protocol for Recorder {
        type Msg = Token;
        fn init(&mut self, ctx: &mut Context<'_, Token>) {
            if ctx.node() == 0 {
                ctx.send(1, Token(9));
            }
            ctx.wake_in(8); // stay reachable long enough to observe late arrivals
        }
        fn round(&mut self, ctx: &mut Context<'_, Token>, inbox: Inbox<'_, Token>) {
            for (from, &Token(k)) in inbox.iter() {
                self.got.push((ctx.round_number(), from, k));
            }
            if ctx.round_number() >= 8 {
                ctx.halt();
            }
        }
    }

    fn recorders(n: usize) -> Vec<Recorder> {
        (0..n).map(|_| Recorder { got: Vec::new() }).collect()
    }

    fn adversary_cfg(adv: crate::Adversary) -> Config {
        Config::default().with_bandwidth_words(4).with_trace_capacity(1000).with_adversary(adv)
    }

    #[test]
    fn certain_drop_loses_the_message_but_charges_the_sender() {
        let g = dhc_graph::generator::path_graph(2);
        let adv = crate::Adversary::seeded(1).with_drop_ppm(crate::adversary::PPM);
        let mut net = Network::new(&g, adversary_cfg(adv), recorders(2)).unwrap();
        net.run().unwrap();
        assert_eq!(net.nodes()[1].got, vec![], "dropped message was delivered");
        // Sender-side accounting is unchanged: the word crossed the edge.
        assert_eq!(net.metrics().messages, 1);
        assert_eq!(net.metrics().sent_per_node[0], 1);
        let drops = net
            .trace()
            .iter()
            .filter(|e| matches!(e, TraceEvent::Dropped { from: 0, to: 1, .. }))
            .count();
        assert_eq!(drops, 1);
    }

    #[test]
    fn certain_duplicate_delivers_two_copies() {
        let g = dhc_graph::generator::path_graph(2);
        let adv = crate::Adversary::seeded(1).with_duplicate_ppm(crate::adversary::PPM);
        let mut net = Network::new(&g, adversary_cfg(adv), recorders(2)).unwrap();
        net.run().unwrap();
        assert_eq!(net.nodes()[1].got, vec![(1, 0, 9), (1, 0, 9)]);
        assert_eq!(net.metrics().messages, 2, "both copies count");
    }

    #[test]
    fn duplicates_respect_the_edge_budget() {
        // Budget 1: the duplicated copy is one word too many.
        let g = dhc_graph::generator::path_graph(2);
        let adv = crate::Adversary::seeded(1).with_duplicate_ppm(crate::adversary::PPM);
        let cfg = Config::default().with_adversary(adv);
        let err = Network::new(&g, cfg, recorders(2)).unwrap_err();
        assert!(
            matches!(
                err,
                SimError::BandwidthExceeded {
                    from: 0,
                    to: 1,
                    attempted_words: 2,
                    budget_words: 1,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn certain_delay_arrives_late() {
        let g = dhc_graph::generator::path_graph(2);
        let adv = crate::Adversary::seeded(1).with_delay(crate::adversary::PPM, 1);
        let mut net = Network::new(&g, adversary_cfg(adv), recorders(2)).unwrap();
        net.run().unwrap();
        // Sent in init (round 0), delayed by exactly 1: arrives round 2
        // instead of round 1.
        assert_eq!(net.nodes()[1].got, vec![(2, 0, 9)]);
        assert!(net
            .trace()
            .iter()
            .any(|e| matches!(e, TraceEvent::Delayed { from: 0, to: 1, until: 2, .. })));
    }

    #[test]
    fn crashed_node_is_suppressed_and_restart_resumes_with_state() {
        // Node 1 down for rounds 1..=3: the init ping vanishes into the
        // crash, the round-8 wake (scheduled in init, surviving the
        // crash) still fires after restart.
        let g = dhc_graph::generator::path_graph(2);
        let adv = crate::Adversary::seeded(0).with_crash(1, 1, Some(4));
        let mut net = Network::new(&g, adversary_cfg(adv), recorders(2)).unwrap();
        net.run().unwrap();
        assert_eq!(net.nodes()[1].got, vec![], "delivery while down must be suppressed");
        let ev = net.trace();
        assert!(ev.iter().any(|e| matches!(e, TraceEvent::Crashed { node: 1, .. })));
        assert!(ev.iter().any(|e| matches!(e, TraceEvent::Restarted { node: 1, round: 4 })));
        // The node ran again after restart: it halted at its round-8 wake.
        assert!(net.is_finished());
    }

    #[test]
    fn crash_forever_turns_quiescence_into_round_limit() {
        // Flood on a path: node 1 crashes before forwarding, the token
        // dies with it, and the run terminates with the typed round-cap
        // outcome instead of hanging or stalling.
        let g = dhc_graph::generator::path_graph(3);
        let adv = crate::Adversary::seeded(0).with_crash(1, 1, None);
        let cfg = Config::default().with_adversary(adv);
        let mut net = Network::new(&g, cfg, flood_nodes(3)).unwrap();
        let err = net.run().unwrap_err();
        assert!(matches!(err, SimError::RoundLimitExceeded { .. }), "{err:?}");
        assert!(!net.nodes()[2].seen);
    }

    #[test]
    fn total_drop_terminates_with_round_limit() {
        let g = dhc_graph::generator::grid(3, 3);
        let adv = crate::Adversary::seeded(2).with_drop_ppm(crate::adversary::PPM);
        let cfg = Config::default().with_adversary(adv);
        let mut net = Network::new(&g, cfg, flood_nodes(9)).unwrap();
        let err = net.run().unwrap_err();
        assert!(matches!(err, SimError::RoundLimitExceeded { .. }), "{err:?}");
    }

    #[test]
    fn null_adversary_is_bit_identical_to_no_adversary() {
        let g = dhc_graph::generator::grid(4, 4);
        let run = |adv: Option<crate::Adversary>| {
            let mut cfg = Config::default().with_trace_capacity(10_000);
            if let Some(adv) = adv {
                cfg = cfg.with_adversary(adv);
            }
            let mut net = Network::new(&g, cfg, flood_nodes(16)).unwrap();
            net.run().unwrap();
            let trace = net.trace().events();
            let (report, _) = net.finish();
            (report.metrics, trace)
        };
        assert_eq!(run(None), run(Some(crate::Adversary::none())));
        assert_eq!(run(None), run(Some(crate::Adversary::seeded(77))));
    }

    #[test]
    fn faulty_runs_identical_at_all_thread_counts() {
        let g = dhc_graph::generator::grid(4, 4);
        let adv = crate::Adversary::seeded(5)
            .with_drop_ppm(200_000)
            .with_duplicate_ppm(150_000)
            .with_delay(200_000, 3)
            .with_crash(3, 2, Some(5));
        let run = |threads: usize| {
            let cfg = Config::default()
                .with_bandwidth_words(4)
                .with_trace_capacity(10_000)
                .with_engine_threads(threads)
                .with_adversary(adv.clone());
            let mut net = Network::new(&g, cfg, recorders(16)).unwrap();
            let outcome = net.run().map_err(|e| format!("{e:?}"));
            let got: Vec<_> = net.nodes().iter().map(|r| r.got.clone()).collect();
            let trace = net.trace().events();
            let (report, _) = net.finish();
            (outcome, got, report.metrics, trace)
        };
        let baseline = run(1);
        for threads in [2, 4, 0] {
            assert_eq!(baseline, run(threads), "diverged at engine_threads = {threads}");
        }
    }

    #[test]
    fn determinism_same_run_twice() {
        let g = dhc_graph::generator::grid(3, 3);
        let run = || {
            let mut net = Network::new(&g, Config::default(), flood_nodes(9)).unwrap();
            net.run().unwrap();
            net.finish().0.metrics
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn engine_threads_do_not_change_results() {
        let g = dhc_graph::generator::grid(4, 4);
        let run = |threads: usize| {
            let cfg = Config::default().with_trace_capacity(10_000).with_engine_threads(threads);
            let mut net = Network::new(&g, cfg, flood_nodes(16)).unwrap();
            net.run().unwrap();
            let trace = net.trace().events();
            let (report, _) = net.finish();
            (report.metrics, trace)
        };
        let baseline = run(1);
        for threads in [2, 4, 0] {
            assert_eq!(baseline, run(threads), "diverged at engine_threads = {threads}");
        }
    }

    /// Builds a shared [`dhc_obs::RunObserver`] and a config carrying it.
    fn observed_cfg(
        cfg: Config,
    ) -> (Config, std::sync::Arc<std::sync::Mutex<dhc_obs::RunObserver>>) {
        let shared = std::sync::Arc::new(std::sync::Mutex::new(dhc_obs::RunObserver::new()));
        let cfg = cfg.with_collector(dhc_obs::CollectorHandle::new(shared.clone()));
        (cfg, shared)
    }

    #[test]
    fn collector_counts_match_metrics() {
        let g = dhc_graph::generator::grid(4, 4);
        let (cfg, shared) = observed_cfg(Config::default());
        let mut net = Network::new(&g, cfg, flood_nodes(16)).unwrap();
        net.run().unwrap();
        let (report, _) = net.finish();
        let obs = shared.lock().unwrap();
        let c = *obs.counters();
        assert_eq!(c.messages, report.metrics.messages);
        assert_eq!(c.max_round, report.metrics.rounds as u64);
        assert_eq!(c.halts, 16);
        // Flood uses send_all: broadcasts, no unicasts.
        assert!(c.broadcast_ops > 0);
        assert_eq!(c.unicast_ops, 0);
        // Deliveries lag sends by a round, so messages still in flight
        // when every node halts are committed but never delivered.
        assert!(c.delivered > 0 && c.delivered <= report.metrics.messages);
        // Round 1's traffic equals node 0's init broadcast degree.
        assert!(obs.round_traffic_hist().count() > 0);
        assert!(obs.inbox_hist().count() > 0);
        assert_eq!(obs.machine_link_hist().count(), 0, "no machine layer attached");
    }

    #[test]
    fn collector_attachment_is_pure_observation() {
        // Attached-vs-detached runs are bit-identical, and the
        // collector's deterministic aggregates are themselves identical
        // at every thread/shard count — clean and adversarial.
        let g = dhc_graph::generator::grid(4, 4);
        let adv = crate::Adversary::seeded(5)
            .with_drop_ppm(200_000)
            .with_duplicate_ppm(150_000)
            .with_delay(200_000, 3)
            .with_crash(3, 2, Some(5));
        for adversary in [None, Some(adv)] {
            let base_cfg = || {
                let mut cfg = Config::default().with_bandwidth_words(4).with_trace_capacity(10_000);
                if let Some(adv) = &adversary {
                    cfg = cfg.with_adversary(adv.clone());
                }
                cfg
            };
            let run = |cfg: Config| {
                let mut net = Network::new(&g, cfg, recorders(16)).unwrap();
                let outcome = net.run().map_err(|e| format!("{e:?}"));
                let got: Vec<_> = net.nodes().iter().map(|r| r.got.clone()).collect();
                let trace = net.trace().events();
                let (report, _) = net.finish();
                (outcome, got, report.metrics, trace)
            };
            let detached = run(base_cfg());
            let mut summaries = Vec::new();
            for (threads, shards) in [(1, 0), (1, 3), (4, 0), (4, 3)] {
                let (cfg, shared) = observed_cfg(
                    base_cfg().with_engine_threads(threads).with_commit_shards(shards),
                );
                assert_eq!(
                    detached,
                    run(cfg),
                    "attached run diverged at threads={threads} shards={shards}"
                );
                summaries.push(shared.lock().unwrap().summary_json().render());
            }
            summaries.dedup();
            assert_eq!(summaries.len(), 1, "collector aggregates diverged across configs");
        }
    }

    /// Broadcasts every round until round 6, then halts — enough
    /// traffic that every configured fate is realized.
    struct Gossip;
    impl Protocol for Gossip {
        type Msg = Token;
        fn init(&mut self, ctx: &mut Context<'_, Token>) {
            ctx.send_all(Token(0));
        }
        fn round(&mut self, ctx: &mut Context<'_, Token>, _inbox: Inbox<'_, Token>) {
            if ctx.round_number() < 6 {
                ctx.send_all(Token(1));
            } else {
                ctx.halt();
            }
        }
    }

    #[test]
    fn collector_sees_fates_crashes_and_machine_links() {
        let g = dhc_graph::generator::grid(4, 4);
        let adv = crate::Adversary::seeded(5)
            .with_drop_ppm(200_000)
            .with_duplicate_ppm(150_000)
            .with_delay(200_000, 3)
            .with_crash(3, 2, Some(5));
        let (cfg, shared) =
            observed_cfg(Config::default().with_bandwidth_words(4).with_adversary(adv));
        let machines = MachineMap::new((0..16).map(|v| v % 4).collect(), 4);
        let nodes: Vec<Gossip> = (0..16).map(|_| Gossip).collect();
        let mut net = Network::new_with_machines(&g, cfg, nodes, machines).unwrap();
        let _ = net.run();
        let obs = shared.lock().unwrap();
        let c = obs.counters();
        assert!(c.dropped > 0, "drop adversary produced no observed drops");
        assert!(c.duplicated > 0);
        assert!(c.delayed > 0);
        assert_eq!(c.crashes, 1);
        assert_eq!(c.restarts, 1);
        assert!(obs.machine_link_hist().count() > 0, "machine layer produced no link loads");
    }
}
