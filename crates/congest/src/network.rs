//! The synchronous round engine.
//!
//! Each round runs in two phases:
//!
//! 1. **Compute** — every active node executes its callback against an
//!    immutable view of the network, writing its sends / halt / wake-up /
//!    compute charges into a private [`Effects`] scratch. Nothing shared
//!    is mutated, so the nodes of one round run on any number of worker
//!    threads ([`Config::engine_threads`]).
//! 2. **Commit fold** — the effects are applied sequentially in ascending
//!    node-id order: bandwidth checks, metrics, trace events, wake-up
//!    scheduling, halting, and routing of sends into the next round's
//!    [`Mailboxes`] all happen here, so the result is bit-identical at
//!    every thread count.

use crate::effects::Effects;
use crate::mailbox::Mailboxes;
use crate::trace::{Trace, TraceEvent};
use crate::{Config, Context, Metrics, NodeId, Protocol, Report, SimError};
use dhc_graph::{Graph, Topology};
use rayon::prelude::*;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A synchronous CONGEST network: a topology, one [`Protocol`] instance per
/// node, and the round scheduler.
///
/// The network is generic over its [`Topology`] (defaulting to a plain
/// [`Graph`]), so the same engine simulates a whole graph, a zero-copy
/// [`dhc_graph::ClassView`] of one partition class, or any future overlay
/// topology — the engine only ever reads node counts and sorted neighbor
/// slices.
///
/// Execution is deterministic — and independent of
/// [`Config::engine_threads`]: the parallel compute phase writes only
/// per-node scratch, and all shared state is updated by the commit fold
/// in ascending node-id order. Inboxes are sorted by sender. Only nodes
/// with pending messages or scheduled wake-ups run in a given round.
pub struct Network<'g, P: Protocol, T: Topology = Graph> {
    graph: &'g T,
    config: Config,
    nodes: Vec<P>,
    halted: Vec<bool>,
    halted_count: usize,
    /// Double-buffered mailboxes; the sealed ready list is the
    /// message-driven active set of the upcoming round.
    mail: Mailboxes<P::Msg>,
    /// Reusable per-active-node effect scratch (compute-phase output).
    effects: Vec<Effects<P::Msg>>,
    /// Reusable per-round scheduling scratch (due wake-ups, merged
    /// active set, runnable list) — taken and restored each round so a
    /// warmed-up step allocates nothing for scheduling either.
    scratch_woken: Vec<NodeId>,
    scratch_active: Vec<(NodeId, usize)>,
    scratch_work: Vec<NodeId>,
    /// Scheduled wake-ups as (round, node).
    wakes: BinaryHeap<Reverse<(usize, NodeId)>>,
    round: usize,
    metrics: Metrics,
    trace: Trace,
    finished: bool,
    /// Worker pool for the compute phase (`None` when single-threaded).
    pool: Option<rayon::ThreadPool>,
}

/// One active node's unit of work for the compute phase.
///
/// Carries the node's sorted neighbor slice so neither the job nor the
/// worker closure needs the topology itself — which is why the parallel
/// compute phase imposes no `Sync` bound on `T`.
struct Job<'a, P: Protocol> {
    v: NodeId,
    node: &'a mut P,
    fx: &'a mut Effects<P::Msg>,
    inbox: &'a [(NodeId, P::Msg)],
    nbrs: &'a [NodeId],
}

impl<'g, P: Protocol, T: Topology> Network<'g, P, T> {
    /// Creates the network and runs every node's `init` (round 0).
    ///
    /// # Errors
    ///
    /// [`SimError::NodeCountMismatch`] if `protocols.len() != n`, or any
    /// fault raised by an `init` callback (e.g. sending to a non-neighbor).
    pub fn new(graph: &'g T, config: Config, protocols: Vec<P>) -> Result<Self, SimError> {
        if protocols.len() != graph.node_count() {
            return Err(SimError::NodeCountMismatch {
                graph_nodes: graph.node_count(),
                protocols: protocols.len(),
            });
        }
        let n = graph.node_count();
        let threads = match config.engine_threads {
            0 => std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1),
            t => t,
        };
        let pool = (threads > 1).then(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("engine worker pool")
        });
        let trace_capacity = config.trace_capacity;
        let mut net = Network {
            graph,
            config,
            nodes: protocols,
            halted: vec![false; n],
            halted_count: 0,
            mail: Mailboxes::new(n),
            effects: Vec::new(),
            scratch_woken: Vec::new(),
            scratch_active: Vec::new(),
            scratch_work: Vec::new(),
            wakes: BinaryHeap::new(),
            round: 0,
            metrics: Metrics::new(n),
            trace: Trace::with_capacity(trace_capacity),
            finished: false,
            pool,
        };
        let all: Vec<NodeId> = (0..n).collect();
        net.run_phase(&all, CallKind::Init)?;
        net.mail.seal();
        Ok(net)
    }

    /// Runs rounds until every node halts.
    ///
    /// # Errors
    ///
    /// Any [`SimError`]; in particular [`SimError::Stalled`] when no node
    /// can ever run again and [`SimError::RoundLimitExceeded`] at the cap.
    pub fn run(&mut self) -> Result<(), SimError> {
        while !self.finished {
            self.step()?;
        }
        Ok(())
    }

    /// Consumes the network, returning the final [`Report`] (by value, no
    /// metrics clone) and the per-node protocol states.
    pub fn finish(self) -> (Report, Vec<P>) {
        (Report { metrics: self.metrics, halted: self.halted_count }, self.nodes)
    }

    /// Executes one round. Does nothing once the run has finished.
    ///
    /// # Errors
    ///
    /// See [`run`](Network::run).
    pub fn step(&mut self) -> Result<(), SimError> {
        if self.finished {
            return Ok(());
        }
        if self.halted_count == self.nodes.len() {
            self.finished = true;
            return Ok(());
        }
        if self.round >= self.config.max_rounds {
            return Err(SimError::RoundLimitExceeded {
                max_rounds: self.config.max_rounds,
                unhalted: self.nodes.len() - self.halted_count,
            });
        }
        self.round += 1;

        if self.mail.ready().is_empty() {
            // Quiescent: fast-forward to the next scheduled wake-up, if any
            // (the skipped empty rounds still count toward simulated time).
            match self.wakes.peek() {
                Some(&Reverse((r, _))) => {
                    if r > self.round {
                        self.round = r;
                    }
                    if self.round > self.config.max_rounds {
                        return Err(SimError::RoundLimitExceeded {
                            max_rounds: self.config.max_rounds,
                            unhalted: self.nodes.len() - self.halted_count,
                        });
                    }
                }
                None => {
                    if self.halted_count == self.nodes.len() {
                        self.finished = true;
                        return Ok(());
                    }
                    return Err(SimError::Stalled {
                        round: self.round,
                        unhalted: self.nodes.len() - self.halted_count,
                    });
                }
            }
        }

        // Pop the due wake-ups (a wake for a node that also has mail is
        // simply consumed: the node activates either way).
        let mut woken = std::mem::take(&mut self.scratch_woken);
        woken.clear();
        while let Some(&Reverse((r, v))) = self.wakes.peek() {
            if r > self.round {
                break;
            }
            self.wakes.pop();
            woken.push(v);
        }
        woken.sort_unstable();
        woken.dedup();

        // Merge the message-driven active set (the sealed mailbox list,
        // ascending) with the woken nodes; wake-only activations get an
        // empty inbox.
        let mut active = std::mem::take(&mut self.scratch_active);
        active.clear();
        {
            let ready = self.mail.ready();
            let (mut i, mut j) = (0, 0);
            while i < ready.len() || j < woken.len() {
                let take_ready = match (ready.get(i), woken.get(j)) {
                    (Some(&(v, _)), Some(&w)) => {
                        if v == w {
                            j += 1; // wake consumed by the message activation
                        }
                        v <= w
                    }
                    (Some(_), None) => true,
                    (None, _) => false,
                };
                if take_ready {
                    active.push(ready[i]);
                    i += 1;
                } else {
                    let w = woken[j];
                    j += 1;
                    if !self.halted[w] && self.trace.is_enabled() {
                        self.trace.push(TraceEvent::Woke { round: self.round, node: w });
                    }
                    active.push((w, 0));
                }
            }
        }

        // Unreachable in the current schedule — an empty ready list
        // either stalls/finishes above or fast-forwards onto a due wake,
        // and due wakes are merged even for since-halted nodes — but kept
        // as a defensive guard so an empty merge can never mis-run.
        debug_assert!(!active.is_empty(), "merged active set cannot be empty here");
        if active.is_empty() {
            self.scratch_woken = woken;
            self.scratch_active = active;
            if self.halted_count == self.nodes.len() {
                self.finished = true;
            }
            return Ok(());
        }

        // Delivery accounting; halted nodes consume (drop) their messages
        // without running.
        let mut round_messages = 0u64;
        let mut work = std::mem::take(&mut self.scratch_work);
        work.clear();
        for &(v, len) in &active {
            round_messages += len as u64;
            self.metrics.received_per_node[v] += len as u64;
            self.metrics.compute_per_node[v] += len as u64;
            if !self.halted[v] {
                work.push(v);
            }
        }
        if self.config.record_round_traffic {
            self.metrics.round_traffic.push(round_messages);
        }

        let result = self.run_phase(&work, CallKind::Round);
        self.scratch_woken = woken;
        self.scratch_active = active;
        self.scratch_work = work;
        // Seal even when the fold faulted: the failed round's inboxes are
        // consumed and the sends committed by pre-fault nodes are
        // delivered, exactly like the old engine (which took inboxes
        // before invoking) — a post-error `step` can never re-run the
        // same round.
        self.mail.seal();
        result
    }

    /// Runs one phase over the listed nodes (strictly ascending by node
    /// id): the parallel compute phase followed by the sequential commit
    /// fold.
    fn run_phase(&mut self, work: &[NodeId], kind: CallKind) -> Result<(), SimError> {
        if self.effects.len() < work.len() {
            self.effects.resize_with(work.len(), Effects::default);
        }

        // --- Compute phase: per-node, no shared mutation. ---
        {
            let Network { graph, nodes, effects, mail, config, round, pool, .. } = self;
            let graph: &T = graph;
            let n = graph.node_count();
            let round = *round;
            let sample_memory = config.memory_sample_interval > 0;

            let run_job = |job: Job<'_, P>| {
                let Job { v, node, fx, inbox, nbrs } = job;
                fx.reset();
                {
                    let mut ctx = Context { node: v, round, n, nbrs, fx: &mut *fx };
                    match kind {
                        CallKind::Init => node.init(&mut ctx),
                        CallKind::Round => node.round(&mut ctx, inbox),
                    }
                }
                let memory = sample_memory.then(|| node.memory_words());
                fx.seal(memory);
            };
            let fx_pool = &mut effects[..work.len()];
            match pool {
                Some(pool) if work.len() > 1 => {
                    let mut jobs: Vec<Job<'_, P>> = Vec::with_capacity(work.len());
                    carve_jobs(graph, nodes, fx_pool, mail, work, |job| jobs.push(job));
                    pool.install(|| {
                        let _: Vec<()> = jobs.into_par_iter().map(&run_job).collect();
                    });
                }
                // Default sequential path: run each node as it is carved,
                // with no intermediate job list.
                _ => carve_jobs(graph, nodes, fx_pool, mail, work, run_job),
            }
        }

        // --- Commit fold: ascending node id, fully sequential. ---
        for (i, &v) in work.iter().enumerate() {
            let fx = &mut self.effects[i];
            if let Some(err) = fx.fault.take() {
                return Err(err);
            }
            self.metrics.compute_per_node[v] += fx.compute;
            if let Some(mem) = fx.memory {
                if mem > self.metrics.peak_memory_per_node[v] {
                    self.metrics.peak_memory_per_node[v] = mem;
                }
            }
            if fx.sends.len() > self.metrics.max_node_sends_per_round {
                self.metrics.max_node_sends_per_round = fx.sends.len();
            }
            // Bandwidth check: words per destination from this sender.
            let ew = &fx.edge_words;
            let mut a = 0;
            while a < ew.len() {
                let to = ew[a].0;
                let mut words = 0usize;
                let mut b = a;
                while b < ew.len() && ew[b].0 == to {
                    words += ew[b].1;
                    b += 1;
                }
                if words > self.config.bandwidth_words {
                    return Err(SimError::BandwidthExceeded {
                        from: v,
                        to,
                        round: self.round,
                        attempted_words: words,
                        budget_words: self.config.bandwidth_words,
                    });
                }
                if words > self.metrics.max_edge_words {
                    self.metrics.max_edge_words = words;
                }
                a = b;
            }
            // Route sends into the next round's mailboxes.
            for ((to, msg), words) in fx.sends.drain(..).zip(fx.send_words.drain(..)) {
                self.metrics.words += words as u64;
                self.metrics.messages += 1;
                self.metrics.sent_per_node[v] += 1;
                if self.trace.is_enabled() {
                    self.trace.push(TraceEvent::Sent { round: self.round, from: v, to, words });
                }
                self.mail.stage(v, to, msg);
            }
            if let Some(target) = fx.wake {
                if !fx.halted {
                    self.wakes.push(Reverse((target, v)));
                    if self.trace.is_enabled() {
                        self.trace.push(TraceEvent::WakeScheduled {
                            round: self.round,
                            node: v,
                            target,
                        });
                    }
                }
            }
            if fx.halted && !self.halted[v] {
                self.halted[v] = true;
                self.halted_count += 1;
                if self.trace.is_enabled() {
                    self.trace.push(TraceEvent::Halted { round: self.round, node: v });
                }
            }
        }
        self.metrics.rounds = self.round;
        Ok(())
    }

    /// Number of rounds executed so far.
    pub fn rounds(&self) -> usize {
        self.round
    }

    /// Whether every node has halted.
    pub fn is_finished(&self) -> bool {
        self.finished || self.halted_count == self.nodes.len()
    }

    /// Metrics collected so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The event trace (empty unless `Config::trace_capacity > 0`).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Immutable access to the per-node protocol states (for extracting
    /// outputs after a run).
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// Consumes the network, returning the protocol states. Prefer
    /// [`finish`](Network::finish) when the final metrics are also needed.
    pub fn into_nodes(self) -> Vec<P> {
        self.nodes
    }
}

impl<P: Protocol, T: Topology> std::fmt::Debug for Network<'_, P, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Network")
            .field("n", &self.nodes.len())
            .field("round", &self.round)
            .field("halted", &self.halted_count)
            .field("finished", &self.finished)
            .finish()
    }
}

/// Carves one disjoint `&mut` node/effects pair per listed node (ids
/// strictly ascending) and hands each [`Job`] to `with` — the shared
/// walk behind both compute-phase paths (inline execution when
/// sequential, job-list collection when parallel). The topology is read
/// only here, to attach each node's neighbor slice to its job.
fn carve_jobs<'a, P: Protocol, T: Topology>(
    graph: &'a T,
    nodes: &'a mut [P],
    effects: &'a mut [Effects<P::Msg>],
    mail: &'a Mailboxes<P::Msg>,
    work: &[NodeId],
    mut with: impl FnMut(Job<'a, P>),
) {
    let mut node_rest = nodes;
    let mut fx_rest = effects;
    let mut base = 0;
    for &v in work {
        let (_, tail) = node_rest.split_at_mut(v - base);
        let (node, tail) = tail.split_first_mut().expect("active node id in range");
        node_rest = tail;
        base = v + 1;
        let (fx, fx_tail) = fx_rest.split_first_mut().expect("effects pool sized to work");
        fx_rest = fx_tail;
        with(Job { v, node, fx, inbox: mail.inbox(v), nbrs: graph.neighbors(v) });
    }
}

/// Which protocol callback [`Network::run_phase`] should run.
#[derive(Clone, Copy, Debug)]
enum CallKind {
    Init,
    Round,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Payload;

    #[derive(Clone, Debug)]
    struct Token(#[allow(dead_code)] u64);
    impl Payload for Token {}

    /// Floods a token once from node 0; every node halts after forwarding.
    struct Flood {
        seen: bool,
    }
    impl Protocol for Flood {
        type Msg = Token;
        fn init(&mut self, ctx: &mut Context<'_, Token>) {
            if ctx.node() == 0 {
                self.seen = true;
                ctx.send_all(Token(1));
                ctx.halt();
            }
        }
        fn round(&mut self, ctx: &mut Context<'_, Token>, inbox: &[(NodeId, Token)]) {
            if !inbox.is_empty() && !self.seen {
                self.seen = true;
                ctx.send_all(Token(1));
            }
            ctx.halt();
        }
        fn memory_words(&self) -> usize {
            2
        }
    }

    fn flood_nodes(n: usize) -> Vec<Flood> {
        (0..n).map(|_| Flood { seen: false }).collect()
    }

    #[test]
    fn flood_reaches_everyone_on_path() {
        let g = dhc_graph::generator::path_graph(5);
        let mut net = Network::new(&g, Config::default(), flood_nodes(5)).unwrap();
        net.run().unwrap();
        assert!(net.nodes().iter().all(|f| f.seen));
        let (report, _) = net.finish();
        assert_eq!(report.halted, 5);
        // Token crosses 4 hops; the last forward happens in round 4.
        assert_eq!(report.metrics.rounds, 4);
        // Sends: node 0 one, nodes 1-3 two each (send_all), node 4 one.
        assert_eq!(report.metrics.messages, 8);
    }

    #[test]
    fn metrics_count_messages_and_words() {
        let g = dhc_graph::generator::star(4);
        let mut net = Network::new(&g, Config::default(), flood_nodes(4)).unwrap();
        net.run().unwrap();
        let (report, _) = net.finish();
        // Node 0 sends 3; each leaf replies to the (halted) hub: 3 more sent.
        assert_eq!(report.metrics.messages, 6);
        assert_eq!(report.metrics.words, 6);
        assert_eq!(report.metrics.sent_per_node, vec![3, 1, 1, 1]);
        assert_eq!(report.metrics.max_edge_words, 1);
    }

    #[test]
    fn memory_peaks_sampled() {
        let g = dhc_graph::generator::path_graph(3);
        let mut net = Network::new(&g, Config::default(), flood_nodes(3)).unwrap();
        net.run().unwrap();
        assert!(net.metrics().peak_memory_per_node.iter().all(|&m| m == 2));
    }

    #[test]
    fn node_count_mismatch_rejected() {
        let g = dhc_graph::generator::path_graph(3);
        assert!(matches!(
            Network::new(&g, Config::default(), flood_nodes(2)),
            Err(SimError::NodeCountMismatch { graph_nodes: 3, protocols: 2 })
        ));
    }

    /// Sends to a fixed non-neighbor in init.
    struct BadSender;
    impl Protocol for BadSender {
        type Msg = Token;
        fn init(&mut self, ctx: &mut Context<'_, Token>) {
            if ctx.node() == 0 {
                ctx.send(2, Token(0));
            }
            ctx.halt();
        }
        fn round(&mut self, _: &mut Context<'_, Token>, _: &[(NodeId, Token)]) {}
    }

    #[test]
    fn non_neighbor_send_is_error() {
        let g = dhc_graph::generator::path_graph(3); // 0-1-2: 0 and 2 not adjacent
        let err =
            Network::new(&g, Config::default(), vec![BadSender, BadSender, BadSender]).unwrap_err();
        assert!(matches!(err, SimError::NotANeighbor { from: 0, to: 2, .. }));
    }

    /// Sends two messages over one edge in one round.
    struct Chatty;
    impl Protocol for Chatty {
        type Msg = Token;
        fn init(&mut self, ctx: &mut Context<'_, Token>) {
            if ctx.node() == 0 {
                ctx.send(1, Token(1));
                ctx.send(1, Token(2));
            }
            ctx.halt();
        }
        fn round(&mut self, _: &mut Context<'_, Token>, _: &[(NodeId, Token)]) {}
    }

    #[test]
    fn bandwidth_violation_is_error() {
        let g = dhc_graph::generator::path_graph(2);
        let err = Network::new(&g, Config::default(), vec![Chatty, Chatty]).unwrap_err();
        assert!(matches!(
            err,
            SimError::BandwidthExceeded { from: 0, to: 1, attempted_words: 2, budget_words: 1, .. }
        ));
    }

    #[test]
    fn wider_bandwidth_allows_it() {
        let g = dhc_graph::generator::path_graph(2);
        let net = Network::new(&g, Config::default().with_bandwidth_words(2), vec![Chatty, Chatty]);
        assert!(net.is_ok());
    }

    /// Node 0 never halts and never acts: stall.
    struct Sleeper;
    impl Protocol for Sleeper {
        type Msg = Token;
        fn init(&mut self, ctx: &mut Context<'_, Token>) {
            if ctx.node() != 0 {
                ctx.halt();
            }
        }
        fn round(&mut self, _: &mut Context<'_, Token>, _: &[(NodeId, Token)]) {}
    }

    #[test]
    fn stall_detected() {
        let g = dhc_graph::generator::path_graph(2);
        let mut net = Network::new(&g, Config::default(), vec![Sleeper, Sleeper]).unwrap();
        let err = net.run().unwrap_err();
        assert!(matches!(err, SimError::Stalled { unhalted: 1, .. }));
    }

    /// Wakes itself `k` times, then halts.
    struct Timer {
        remaining: usize,
        fired_rounds: Vec<usize>,
    }
    impl Protocol for Timer {
        type Msg = Token;
        fn init(&mut self, ctx: &mut Context<'_, Token>) {
            ctx.wake_in(3);
        }
        fn round(&mut self, ctx: &mut Context<'_, Token>, _: &[(NodeId, Token)]) {
            self.fired_rounds.push(ctx.round_number());
            if self.remaining == 0 {
                ctx.halt();
            } else {
                self.remaining -= 1;
                ctx.wake_in(2);
            }
        }
    }

    #[test]
    fn wake_in_schedules_exact_rounds() {
        let g = dhc_graph::Graph::from_edges(1, []).unwrap();
        let mut net =
            Network::new(&g, Config::default(), vec![Timer { remaining: 2, fired_rounds: vec![] }])
                .unwrap();
        net.run().unwrap();
        assert_eq!(net.nodes()[0].fired_rounds, vec![3, 5, 7]);
    }

    #[test]
    fn round_limit_enforced() {
        let g = dhc_graph::Graph::from_edges(1, []).unwrap();
        let mut net = Network::new(
            &g,
            Config::default().with_max_rounds(4),
            vec![Timer { remaining: 100, fired_rounds: vec![] }],
        )
        .unwrap();
        let err = net.run().unwrap_err();
        assert!(matches!(err, SimError::RoundLimitExceeded { max_rounds: 4, unhalted: 1 }));
    }

    #[test]
    fn trace_records_sends_halts_and_wakes() {
        let g = dhc_graph::generator::path_graph(3);
        let cfg = Config::default().with_trace_capacity(100);
        let mut net = Network::new(&g, cfg, flood_nodes(3)).unwrap();
        net.run().unwrap();
        let trace = net.trace();
        let sends =
            trace.events().iter().filter(|e| matches!(e, crate::TraceEvent::Sent { .. })).count();
        let halts =
            trace.events().iter().filter(|e| matches!(e, crate::TraceEvent::Halted { .. })).count();
        assert_eq!(sends as u64, net.metrics().messages);
        assert_eq!(halts, 3);
        assert_eq!(trace.dropped(), 0);
    }

    #[test]
    fn trace_records_wake_only_activations() {
        let g = dhc_graph::Graph::from_edges(1, []).unwrap();
        let cfg = Config::default().with_trace_capacity(100);
        let mut net =
            Network::new(&g, cfg, vec![Timer { remaining: 1, fired_rounds: vec![] }]).unwrap();
        net.run().unwrap();
        let woke: Vec<usize> = net
            .trace()
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Woke { round, node: 0 } => Some(*round),
                _ => None,
            })
            .collect();
        // Scheduled in init for round 3, then again for round 5.
        assert_eq!(woke, vec![3, 5]);
    }

    #[test]
    fn trace_disabled_by_default() {
        let g = dhc_graph::generator::path_graph(2);
        let mut net = Network::new(&g, Config::default(), flood_nodes(2)).unwrap();
        net.run().unwrap();
        assert!(net.trace().events().is_empty());
    }

    /// Node 1 answers its first delivery with two messages to node 0 in
    /// one round: a bandwidth violation in the round-2 commit fold.
    struct Replier {
        invocations: usize,
    }
    impl Protocol for Replier {
        type Msg = Token;
        fn init(&mut self, ctx: &mut Context<'_, Token>) {
            if ctx.node() == 0 {
                ctx.send(1, Token(0));
            }
        }
        fn round(&mut self, ctx: &mut Context<'_, Token>, inbox: &[(NodeId, Token)]) {
            self.invocations += 1;
            if ctx.node() == 1 && !inbox.is_empty() {
                ctx.send(0, Token(1));
                ctx.send(0, Token(2));
            }
        }
    }

    #[test]
    fn step_after_error_does_not_rerun_the_round() {
        let g = dhc_graph::generator::path_graph(2);
        let mut net = Network::new(
            &g,
            Config::default(),
            vec![Replier { invocations: 0 }, Replier { invocations: 0 }],
        )
        .unwrap();
        let err = net.run().unwrap_err();
        assert!(matches!(err, SimError::BandwidthExceeded { from: 1, to: 0, .. }));
        assert_eq!(net.nodes()[1].invocations, 1);
        // The failed round's inboxes were consumed: another step cannot
        // re-deliver them and re-run the callbacks (it stalls instead,
        // exactly like the pre-refactor engine).
        let again = net.step().unwrap_err();
        assert!(matches!(again, SimError::Stalled { .. }), "{again:?}");
        assert_eq!(net.nodes()[1].invocations, 1);
    }

    #[test]
    fn determinism_same_run_twice() {
        let g = dhc_graph::generator::grid(3, 3);
        let run = || {
            let mut net = Network::new(&g, Config::default(), flood_nodes(9)).unwrap();
            net.run().unwrap();
            net.finish().0.metrics
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn engine_threads_do_not_change_results() {
        let g = dhc_graph::generator::grid(4, 4);
        let run = |threads: usize| {
            let cfg = Config::default().with_trace_capacity(10_000).with_engine_threads(threads);
            let mut net = Network::new(&g, cfg, flood_nodes(16)).unwrap();
            net.run().unwrap();
            let trace = net.trace().events().to_vec();
            let (report, _) = net.finish();
            (report.metrics, trace)
        };
        let baseline = run(1);
        for threads in [2, 4, 0] {
            assert_eq!(baseline, run(threads), "diverged at engine_threads = {threads}");
        }
    }
}
