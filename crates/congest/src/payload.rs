//! Message payloads and their CONGEST size accounting.

/// A message payload with an explicit size in *words*.
///
/// In the CONGEST model a message is `O(log n)` bits; we count sizes in
/// units of one `Θ(log n)`-bit **word** (enough for a node id, an index, or
/// a small tag). A payload carrying `k` node ids should report `k` words;
/// the engine enforces the per-edge-per-round budget in these units and
/// reports totals in [`crate::Metrics`].
///
/// Payloads must be `Send + Sync`: the round engine's compute phase may
/// hand inbox slices to worker threads and move freshly produced messages
/// back to the committing thread (see
/// [`Config::engine_threads`](crate::Config::engine_threads)). Message
/// types are plain data in practice, so these bounds are satisfied
/// automatically.
pub trait Payload: Clone + std::fmt::Debug + Send + Sync {
    /// Size of this message in `Θ(log n)`-bit words. Must be ≥ 1.
    fn words(&self) -> usize {
        1
    }
}

/// Unit payload for protocols that only need signal messages.
impl Payload for () {
    fn words(&self) -> usize {
        1
    }
}

impl Payload for u64 {}
impl Payload for usize {}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Wide(Vec<usize>);
    impl Payload for Wide {
        fn words(&self) -> usize {
            self.0.len().max(1)
        }
    }

    #[test]
    fn default_word_count_is_one() {
        assert_eq!(().words(), 1);
        assert_eq!(7u64.words(), 1);
    }

    #[test]
    fn custom_word_count() {
        assert_eq!(Wide(vec![1, 2, 3]).words(), 3);
        assert_eq!(Wide(vec![]).words(), 1);
    }
}
