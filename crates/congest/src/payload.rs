//! Message payloads and their CONGEST size accounting.

/// A message payload with an explicit size in *words*.
///
/// In the CONGEST model a message is `O(log n)` bits; we count sizes in
/// units of one `Θ(log n)`-bit **word** (enough for a node id, an index, or
/// a small tag). A payload carrying `k` node ids should report `k` words;
/// the engine enforces the per-edge-per-round budget in these units and
/// reports totals in [`crate::Metrics`].
///
/// Payloads must be `Send + Sync`: the round engine's compute phase may
/// hand inbox slices to worker threads and move freshly produced messages
/// back to the committing thread (see
/// [`Config::engine_threads`](crate::Config::engine_threads)). Message
/// types are plain data in practice, so these bounds are satisfied
/// automatically.
pub trait Payload: Clone + std::fmt::Debug + Send + Sync {
    /// Size of this message in `Θ(log n)`-bit words. Must be ≥ 1.
    fn words(&self) -> usize {
        1
    }
}

/// Unit payload for protocols that only need signal messages.
impl Payload for () {
    fn words(&self) -> usize {
        1
    }
}

impl Payload for u64 {}
impl Payload for usize {}

/// Default inline width (in logical words) of a [`PackedMsg`].
///
/// Six covers the sequential hot-path protocols (the widest are the DHC
/// rotation broadcasts at 6 words); wider protocols pick their own width —
/// `PackedMsg<W>` is generic over it — so each wire type stays exactly as
/// small as its widest message requires (DHC2's merge level uses
/// `PackedMsg<9>` for its bridge decisions).
pub const PACKED_MAX_WORDS: usize = 6;

/// A word-packed wire representation of a protocol message.
///
/// A `k`-word CONGEST message is `k` ids/indices plus a small tag; this
/// stores exactly that — a variant tag and up to `W` half-words (`u32`,
/// one per logical word, valid for `n < 2³²`) — in a flat `2 + 4W`-byte
/// value (28 bytes at the default width), versus 40+ bytes for a padded
/// `usize`-field enum. [`words`](Payload::words) reports the stored
/// *logical* width, so [`Metrics`](crate::Metrics) and bandwidth
/// accounting are bit-identical to the unpacked representation.
///
/// Protocols opt in through [`PackedPayload`] (the lossless bridge) and run
/// either representation through a [`MsgCodec`]; the enum path stays
/// available as the equivalence oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedMsg<const W: usize = PACKED_MAX_WORDS> {
    /// Variant tag (protocol-defined).
    pub tag: u8,
    /// Logical CONGEST size in words; `words()` reports this.
    pub nw: u8,
    /// The message's logical words, one `u32` each; `buf[self.nw..]` is 0.
    pub buf: [u32; W],
}

impl<const W: usize> PackedMsg<W> {
    /// Builds a packed message from a tag and its logical words.
    ///
    /// # Panics
    ///
    /// Panics if more than `W` words are supplied or if `words` is empty
    /// (a CONGEST message is at least one word).
    #[inline]
    pub fn new(tag: u8, words: &[u32]) -> Self {
        assert!(
            !words.is_empty() && words.len() <= W,
            "packed message must carry 1..={W} words, got {}",
            words.len()
        );
        let mut buf = [0u32; W];
        buf[..words.len()].copy_from_slice(words);
        PackedMsg { tag, nw: words.len() as u8, buf }
    }

    /// The logical words carried by this message.
    #[inline]
    pub fn payload(&self) -> &[u32] {
        &self.buf[..self.nw as usize]
    }
}

impl<const W: usize> Payload for PackedMsg<W> {
    fn words(&self) -> usize {
        self.nw as usize
    }
}

/// A payload with a lossless packed wire form.
///
/// `unpack(pack(m)) == m` must hold for every message `m`, and both forms
/// must report the same [`words`](Payload::words) — packing changes the
/// in-memory footprint, never the CONGEST accounting.
pub trait PackedPayload: Payload {
    /// The compact wire type — `PackedMsg<W>` at the narrowest `W` that
    /// fits this protocol's widest message.
    type Wire: Payload;
    /// Encodes into the compact wire form.
    fn pack(&self) -> Self::Wire;
    /// Decodes from the compact wire form.
    ///
    /// # Panics
    ///
    /// May panic on a wire value not produced by [`pack`](Self::pack) of
    /// the same type.
    fn unpack(msg: &Self::Wire) -> Self;
}

/// Chooses the wire representation a protocol's logical messages travel
/// in: the logical enum itself ([`EnumCodec`], the oracle) or the packed
/// inline form ([`PackedCodec`], the memory-lean path).
///
/// Protocol node types take the codec as a type parameter (defaulting to
/// [`EnumCodec`]) so one protocol implementation serves both
/// representations and equivalence tests can pin them against each other.
pub trait MsgCodec<L: Payload>: Send + Sync + 'static {
    /// The on-wire message type.
    type Wire: Payload;
    /// Logical → wire.
    fn encode(msg: L) -> Self::Wire;
    /// Wire → logical.
    fn decode(wire: &Self::Wire) -> L;
}

/// Identity codec: the wire form *is* the logical enum (the fat oracle).
#[derive(Debug, Clone, Copy, Default)]
pub struct EnumCodec;

impl<L: Payload> MsgCodec<L> for EnumCodec {
    type Wire = L;
    #[inline(always)]
    fn encode(msg: L) -> L {
        msg
    }
    #[inline(always)]
    fn decode(wire: &L) -> L {
        wire.clone()
    }
}

/// Packing codec: messages travel as [`PackedMsg`] (the lean path).
#[derive(Debug, Clone, Copy, Default)]
pub struct PackedCodec;

impl<L: PackedPayload> MsgCodec<L> for PackedCodec {
    type Wire = L::Wire;
    #[inline(always)]
    fn encode(msg: L) -> L::Wire {
        msg.pack()
    }
    #[inline(always)]
    fn decode(wire: &L::Wire) -> L {
        L::unpack(wire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug)]
    struct Wide(Vec<usize>);
    impl Payload for Wide {
        fn words(&self) -> usize {
            self.0.len().max(1)
        }
    }

    #[test]
    fn default_word_count_is_one() {
        assert_eq!(().words(), 1);
        assert_eq!(7u64.words(), 1);
    }

    #[test]
    fn custom_word_count() {
        assert_eq!(Wide(vec![1, 2, 3]).words(), 3);
        assert_eq!(Wide(vec![]).words(), 1);
    }

    #[test]
    fn packed_msg_reports_logical_width() {
        let m: PackedMsg = PackedMsg::new(3, &[7, 9]);
        assert_eq!(m.words(), 2);
        assert_eq!(m.payload(), &[7, 9]);
        assert_eq!(m.buf[2..], [0u32; 4]);
    }

    #[test]
    #[should_panic(expected = "packed message must carry")]
    fn packed_msg_rejects_oversized() {
        let _: PackedMsg = PackedMsg::new(0, &[0; 7]);
    }

    #[test]
    fn wide_packed_msg_takes_what_the_default_rejects() {
        let m: PackedMsg<9> = PackedMsg::new(1, &[0; 9]);
        assert_eq!(m.words(), 9);
    }

    #[test]
    fn enum_codec_is_identity() {
        let w = <EnumCodec as MsgCodec<u64>>::encode(9);
        assert_eq!(<EnumCodec as MsgCodec<u64>>::decode(&w), 9);
    }
}
