//! The **seeded adversary layer**: faulty and asynchronous executions.
//!
//! A clean CONGEST execution is synchronous and lossless: every message
//! committed in round `r` arrives at the start of round `r + 1`, and
//! every node runs in every round it is addressed. An [`Adversary`]
//! relaxes exactly those assumptions, one knob at a time:
//!
//! * **drop / duplicate** — each delivered copy of a message is lost in
//!   transit (or doubled) with a fixed-point probability, per directed
//!   edge per message;
//! * **delay** — a message is parked in a virtual-time delay queue and
//!   re-injected `d` rounds later (`d` drawn uniformly from
//!   `1..=max_delay`), turning the synchronous round structure into an
//!   asynchrony knob;
//! * **crash / restart** — a scheduled node goes down at a given round
//!   (its sends and receives are suppressed while down) and optionally
//!   comes back later with its protocol state intact.
//!
//! Every fault decision is a **pure function of the fault seed**: the
//! fate of a delivery is drawn by hashing
//! `(fault_seed, round, sender, op index, destination)` through the
//! workspace-standard SplitMix64 chain ([`dhc_graph::rng::derive_seed`]),
//! and all draws happen inside the engine's sequential commit fold (or
//! the equally sequential delay-queue injection). The realized fault
//! schedule — and therefore the entire execution — is bit-identical at
//! every [`Config::engine_threads`](crate::Config::engine_threads)
//! setting, exactly like the clean engine
//! (pinned by `crates/congest/tests/adversary_proptest.rs`).
//!
//! A **null adversary** ([`Adversary::none`], or any adversary whose
//! knobs are all zero) is detected at network construction and the
//! engine runs its unmodified clean code paths: outcomes,
//! [`Metrics`](crate::Metrics), and traces are bit-identical to a run with no
//! adversary attached at all
//! (pinned by `crates/core/tests/adversary_equivalence.rs`).
//!
//! With an **active** adversary the engine additionally treats
//! quiescence (no mail, no wake-ups, no delayed messages, no pending
//! restarts) as the round-cap outcome
//! [`SimError::RoundLimitExceeded`](crate::SimError::RoundLimitExceeded)
//! rather than [`SimError::Stalled`](crate::SimError::Stalled): under
//! message loss a starved protocol is an *environmental* outcome, not a
//! protocol deadlock, and no future round can make progress — so lossy
//! runs always terminate with a typed error instead of hanging.

use crate::NodeId;
use dhc_graph::rng::derive_seed;

/// Fixed-point probability denominator: knobs are expressed in
/// **parts per million**, so probabilities stay integer-valued and the
/// adversary (and [`Config`](crate::Config)) keep `Eq`.
pub const PPM: u32 = 1_000_000;

/// One scheduled crash (and optional restart) of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashEvent {
    /// The node to take down.
    pub node: NodeId,
    /// First round the node is down (it does not execute in this round;
    /// must be ≥ 1 — `init` always runs).
    pub at_round: usize,
    /// Round at which the node comes back with its state intact
    /// (`None` = crashed forever). Must be `> at_round`.
    pub restart_round: Option<usize>,
}

/// A seeded fault model attached to a [`Network`](crate::Network) via
/// [`Config::with_adversary`](crate::Config::with_adversary) (or
/// `DhcConfig::with_adversary` one level up).
///
/// All knobs default to zero; [`Adversary::none`] (or any all-zero
/// adversary) is a **null** adversary and leaves the engine's clean
/// code paths — and its bit-exact behavior — untouched.
///
/// # Example
///
/// ```
/// use dhc_congest::Adversary;
///
/// let adv = Adversary::seeded(7)
///     .with_drop_ppm(50_000)        // 5% of deliveries lost
///     .with_duplicate_ppm(10_000)   // 1% doubled
///     .with_delay(100_000, 3)       // 10% delayed by 1..=3 rounds
///     .with_crash(4, 10, Some(20)); // node 4 down for rounds 10..20
/// assert!(!adv.is_null());
/// assert!(Adversary::none().is_null());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adversary {
    /// Seed of the fault stream. Independent of the protocol seed: the
    /// same protocol run can be subjected to many fault schedules and
    /// vice versa.
    pub fault_seed: u64,
    /// Per-delivery drop probability in parts per million ([`PPM`]).
    pub drop_ppm: u32,
    /// Per-delivery duplication probability in parts per million.
    pub duplicate_ppm: u32,
    /// Per-delivery delay probability in parts per million.
    pub delay_ppm: u32,
    /// Maximum delay in rounds; a delayed message is re-injected
    /// `1..=max_delay` rounds after its normal delivery round.
    pub max_delay: usize,
    /// Scheduled crashes/restarts.
    pub crashes: Vec<CrashEvent>,
}

/// The fate of one delivered message copy, drawn from the fault stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Fate {
    /// Delivered normally next round.
    Deliver,
    /// Lost in transit (bandwidth and metrics still charge the send).
    Drop,
    /// Delivered twice (both copies charged against the edge budget).
    Duplicate,
    /// Delivered `d` rounds late through the delay queue.
    Delay(usize),
}

impl Adversary {
    /// The null adversary: attached but influencing nothing. Runs are
    /// bit-identical to runs with no adversary at all.
    pub fn none() -> Self {
        Self::seeded(0)
    }

    /// An adversary with the given fault seed and all knobs zero.
    pub fn seeded(fault_seed: u64) -> Self {
        Adversary {
            fault_seed,
            drop_ppm: 0,
            duplicate_ppm: 0,
            delay_ppm: 0,
            max_delay: 0,
            crashes: Vec::new(),
        }
    }

    /// Sets the per-delivery drop probability (parts per million).
    ///
    /// # Panics
    ///
    /// Panics if `ppm > 1_000_000`.
    pub fn with_drop_ppm(mut self, ppm: u32) -> Self {
        assert!(ppm <= PPM, "drop probability above 1.0");
        self.drop_ppm = ppm;
        self
    }

    /// Sets the per-delivery duplication probability (parts per million).
    ///
    /// # Panics
    ///
    /// Panics if `ppm > 1_000_000`.
    pub fn with_duplicate_ppm(mut self, ppm: u32) -> Self {
        assert!(ppm <= PPM, "duplicate probability above 1.0");
        self.duplicate_ppm = ppm;
        self
    }

    /// Sets the per-delivery delay probability (parts per million) and
    /// the delay bound in rounds.
    ///
    /// # Panics
    ///
    /// Panics if `ppm > 1_000_000`, or if `ppm > 0` with `max_delay == 0`.
    pub fn with_delay(mut self, ppm: u32, max_delay: usize) -> Self {
        assert!(ppm <= PPM, "delay probability above 1.0");
        assert!(ppm == 0 || max_delay >= 1, "delaying requires max_delay >= 1");
        self.delay_ppm = ppm;
        self.max_delay = max_delay;
        self
    }

    /// Schedules a crash of `node` at `at_round`, optionally restarting
    /// at `restart_round` with state intact.
    ///
    /// # Panics
    ///
    /// Panics if `at_round == 0` (`init` always runs) or if the restart
    /// does not come after the crash.
    pub fn with_crash(
        mut self,
        node: NodeId,
        at_round: usize,
        restart_round: Option<usize>,
    ) -> Self {
        assert!(at_round >= 1, "crashes take effect from round 1 on (init always runs)");
        if let Some(r) = restart_round {
            assert!(r > at_round, "restart must come after the crash");
        }
        self.crashes.push(CrashEvent { node, at_round, restart_round });
        self
    }

    /// Whether this adversary influences nothing (all knobs zero, no
    /// crash schedule). Null adversaries leave the clean engine paths
    /// untouched.
    pub fn is_null(&self) -> bool {
        self.drop_ppm == 0
            && self.duplicate_ppm == 0
            && self.delay_ppm == 0
            && self.crashes.is_empty()
    }

    /// Translates this adversary for one Phase-1 color class simulated
    /// over local ids: the fault seed gets a per-class stream (class
    /// runs are independent simulations, so reusing one stream across
    /// them would correlate their fault schedules), crash schedules map
    /// global node ids to class-local ones (`members` is the ascending
    /// `local → global` member list), and crashes of out-of-class nodes
    /// are dropped.
    pub fn for_class(&self, members: &[NodeId], color: u32) -> Adversary {
        let crashes = self
            .crashes
            .iter()
            .filter_map(|c| {
                members.binary_search(&c.node).ok().map(|local| CrashEvent {
                    node: (local) as u32,
                    at_round: c.at_round,
                    restart_round: c.restart_round,
                })
            })
            .collect();
        Adversary {
            fault_seed: derive_seed(self.fault_seed, 0xC1A5_5000 + color as u64),
            crashes,
            ..*self
        }
    }

    /// Draws the fate of one delivered message copy: a pure function of
    /// `(fault_seed, round, sender, op index, destination)`, independent
    /// of thread count and wall-clock interleaving. Knobs are checked in
    /// drop → duplicate → delay order with independent sub-draws, so a
    /// copy suffers at most one fault.
    pub(crate) fn fate(&self, round: usize, from: NodeId, op: u32, to: NodeId) -> Fate {
        if self.drop_ppm == 0 && self.duplicate_ppm == 0 && self.delay_ppm == 0 {
            return Fate::Deliver;
        }
        let h = derive_seed(
            derive_seed(derive_seed(self.fault_seed, round as u64), from as u64),
            ((op as u64) << 32) | to as u64,
        );
        if self.drop_ppm > 0 && ppm_draw(h, 1) < self.drop_ppm {
            return Fate::Drop;
        }
        if self.duplicate_ppm > 0 && ppm_draw(h, 2) < self.duplicate_ppm {
            return Fate::Duplicate;
        }
        if self.delay_ppm > 0 && ppm_draw(h, 3) < self.delay_ppm {
            let d = 1 + (derive_seed(h, 4) % self.max_delay as u64) as usize;
            return Fate::Delay(d);
        }
        Fate::Deliver
    }
}

/// One uniform draw in `0..PPM` from sub-stream `salt` of hash `h`.
fn ppm_draw(h: u64, salt: u64) -> u32 {
    (derive_seed(h, salt) % PPM as u64) as u32
}

/// Runtime crash-schedule state owned by the network: the adversary
/// plus which nodes are currently down and the not-yet-applied
/// crash/restart events, sorted by round.
#[derive(Debug)]
pub(crate) struct AdversaryState {
    pub(crate) adv: Adversary,
    /// Currently-crashed nodes.
    down: Vec<bool>,
    /// `(round, node, goes_down)` events, ascending by round.
    events: Vec<(usize, NodeId, bool)>,
    /// First unapplied event.
    next_event: usize,
}

impl AdversaryState {
    /// Builds the runtime state for an `n`-node network.
    ///
    /// # Panics
    ///
    /// Panics if a crash schedule names a node outside `0..n`.
    pub(crate) fn new(adv: Adversary, n: usize) -> Self {
        let mut events = Vec::with_capacity(adv.crashes.len() * 2);
        for c in &adv.crashes {
            assert!(c.node < (n) as u32, "crash schedule names node {} outside 0..{n}", c.node);
            events.push((c.at_round, c.node, true));
            if let Some(r) = c.restart_round {
                events.push((r, c.node, false));
            }
        }
        events.sort_unstable();
        AdversaryState { adv, down: vec![false; n], events, next_event: 0 }
    }

    /// Rounds at which a restart is scheduled, as `(round, node)` — the
    /// network pre-pushes these into its wake heap so a restarted node
    /// activates (with an empty inbox) even in an otherwise quiescent
    /// network.
    pub(crate) fn restart_wakes(&self) -> impl Iterator<Item = (usize, NodeId)> + '_ {
        self.events.iter().filter(|&&(_, _, d)| !d).map(|&(r, v, _)| (r, v))
    }

    /// Applies every crash/restart event due at or before `round`,
    /// reporting each applied `(node, went_down)` transition.
    pub(crate) fn advance(&mut self, round: usize, mut on_event: impl FnMut(NodeId, bool)) {
        while let Some(&(r, v, goes_down)) = self.events.get(self.next_event) {
            if r > round {
                break;
            }
            self.next_event += 1;
            if self.down[(v) as usize] != goes_down {
                self.down[(v) as usize] = goes_down;
                on_event(v, goes_down);
            }
        }
    }

    /// Whether node `v` is currently crashed.
    pub(crate) fn is_down(&self, v: NodeId) -> bool {
        self.down[(v) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_detection() {
        assert!(Adversary::none().is_null());
        assert!(Adversary::seeded(99).is_null(), "a bare seed influences nothing");
        assert!(!Adversary::seeded(0).with_drop_ppm(1).is_null());
        assert!(!Adversary::seeded(0).with_duplicate_ppm(1).is_null());
        assert!(!Adversary::seeded(0).with_delay(1, 4).is_null());
        assert!(!Adversary::seeded(0).with_crash(0, 1, None).is_null());
    }

    #[test]
    fn fate_is_a_pure_function_of_the_key() {
        let adv = Adversary::seeded(5).with_drop_ppm(300_000).with_delay(300_000, 4);
        for round in 0..20 {
            for op in 0..5 {
                assert_eq!(adv.fate(round, 3, op, 7), adv.fate(round, 3, op, 7));
            }
        }
    }

    #[test]
    fn fate_rates_track_the_knobs() {
        let adv = Adversary::seeded(11).with_drop_ppm(250_000);
        let trials = 40_000;
        let drops = (0..trials)
            .filter(|&i| {
                adv.fate(i % 97, (i % 13) as NodeId, (i / 13) as u32, (i % 7) as NodeId)
                    == Fate::Drop
            })
            .count();
        let rate = drops as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.02, "drop rate {rate} far from 0.25");
    }

    #[test]
    fn extreme_knobs() {
        let all = Adversary::seeded(0).with_drop_ppm(PPM);
        assert_eq!(all.fate(1, 0, 0, 1), Fate::Drop);
        let none = Adversary::seeded(0).with_drop_ppm(0);
        assert_eq!(none.fate(1, 0, 0, 1), Fate::Deliver);
        // Drop shadows duplicate shadows delay when all are certain.
        let stacked =
            Adversary::seeded(0).with_drop_ppm(PPM).with_duplicate_ppm(PPM).with_delay(PPM, 2);
        assert_eq!(stacked.fate(1, 0, 0, 1), Fate::Drop);
    }

    #[test]
    fn delay_amounts_respect_the_bound() {
        let adv = Adversary::seeded(3).with_delay(PPM, 3);
        for i in 0..500 {
            match adv.fate(i, 0, 0, 1) {
                Fate::Delay(d) => assert!((1..=3).contains(&d), "delay {d} out of bounds"),
                f => panic!("certain delay drew {f:?}"),
            }
        }
    }

    #[test]
    fn class_translation_maps_and_filters_crashes() {
        let adv = Adversary::seeded(9)
            .with_drop_ppm(7)
            .with_crash(10, 2, Some(5))
            .with_crash(99, 3, None);
        let members = [4, 10, 17]; // global ids of one class, ascending
        let local = adv.for_class(&members, 1);
        assert_eq!(local.drop_ppm, 7);
        assert_ne!(local.fault_seed, adv.fault_seed);
        assert_ne!(local.fault_seed, adv.for_class(&members, 2).fault_seed);
        assert_eq!(
            local.crashes,
            vec![CrashEvent { node: 1, at_round: 2, restart_round: Some(5) }],
            "node 10 is local id 1; node 99 is out of class"
        );
    }

    #[test]
    fn crash_state_applies_events_in_round_order() {
        let adv = Adversary::seeded(0).with_crash(2, 3, Some(6)).with_crash(0, 4, None);
        let mut st = AdversaryState::new(adv, 5);
        assert_eq!(st.restart_wakes().collect::<Vec<_>>(), vec![(6, 2)]);
        let mut log = Vec::new();
        st.advance(2, |v, d| log.push((v, d)));
        assert!(log.is_empty() && !st.is_down(2));
        st.advance(4, |v, d| log.push((v, d)));
        assert_eq!(log, vec![(2, true), (0, true)]);
        assert!(st.is_down(0) && st.is_down(2));
        st.advance(10, |v, d| log.push((v, d)));
        assert_eq!(log.last(), Some(&(2, false)));
        assert!(st.is_down(0) && !st.is_down(2));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_crash_rejected() {
        AdversaryState::new(Adversary::seeded(0).with_crash(9, 1, None), 3);
    }
}
