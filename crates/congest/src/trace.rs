//! Optional execution tracing: a bounded log of engine-level events
//! (sends, halts, wake-ups) for debugging protocols and producing
//! round-by-round narratives in examples.

use crate::NodeId;

/// One engine-level event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message was sent (recorded at send time; delivery is next round).
    Sent {
        /// Round of the send (0 = during `init`).
        round: usize,
        /// Sender.
        from: NodeId,
        /// Recipient.
        to: NodeId,
        /// Message size in words.
        words: usize,
    },
    /// A node halted.
    Halted {
        /// Round of the halt.
        round: usize,
        /// The node.
        node: NodeId,
    },
    /// A node scheduled a wake-up.
    WakeScheduled {
        /// Round in which the request was made.
        round: usize,
        /// The node.
        node: NodeId,
        /// Target round of the wake-up.
        target: usize,
    },
    /// A scheduled wake-up fired and activated a node that had no
    /// messages this round (message-driven activations consume any due
    /// wake-up silently; halted nodes never wake).
    Woke {
        /// Round in which the wake-up fired.
        round: usize,
        /// The node.
        node: NodeId,
    },
    /// The adversary dropped a message in transit (the `Sent` event is
    /// still recorded and the sender is still charged).
    Dropped {
        /// Round of the send.
        round: usize,
        /// Sender.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
    },
    /// The adversary duplicated a message (two copies arrive next round;
    /// both count against the edge budget).
    Duplicated {
        /// Round of the send.
        round: usize,
        /// Sender.
        from: NodeId,
        /// Recipient.
        to: NodeId,
    },
    /// The adversary delayed a message; it arrives at the start of round
    /// `until` instead of `round + 1`.
    Delayed {
        /// Round of the send.
        round: usize,
        /// Sender.
        from: NodeId,
        /// Recipient.
        to: NodeId,
        /// Round the message is re-injected at.
        until: usize,
    },
    /// A scheduled crash took a node down: its sends and receives are
    /// suppressed until (and unless) it restarts.
    Crashed {
        /// First round the node is down.
        round: usize,
        /// The node.
        node: NodeId,
    },
    /// A crashed node came back with its protocol state intact.
    Restarted {
        /// First round the node is back up.
        round: usize,
        /// The node.
        node: NodeId,
    },
}

impl TraceEvent {
    /// The round the event belongs to.
    pub fn round(&self) -> usize {
        match *self {
            TraceEvent::Sent { round, .. }
            | TraceEvent::Halted { round, .. }
            | TraceEvent::WakeScheduled { round, .. }
            | TraceEvent::Woke { round, .. }
            | TraceEvent::Dropped { round, .. }
            | TraceEvent::Duplicated { round, .. }
            | TraceEvent::Delayed { round, .. }
            | TraceEvent::Crashed { round, .. }
            | TraceEvent::Restarted { round, .. } => round,
        }
    }
}

/// A bounded event log. Once `capacity` events are stored, further events
/// are counted but dropped (protocol runs can produce millions of sends;
/// the cap keeps tracing safe to leave on).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: usize,
}

impl Trace {
    /// Creates a trace that keeps at most `capacity` events
    /// (0 disables recording entirely).
    pub fn with_capacity(capacity: usize) -> Self {
        Trace { events: Vec::new(), capacity, dropped: 0 }
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    pub(crate) fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else if self.capacity > 0 {
            self.dropped += 1;
        }
    }

    /// The recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events that did not fit the capacity.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Events belonging to `round`.
    pub fn in_round(&self, round: usize) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.round() == round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_enforced() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.push(TraceEvent::Halted { round: i, node: i });
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn zero_capacity_disables() {
        let mut t = Trace::with_capacity(0);
        t.push(TraceEvent::Halted { round: 0, node: 0 });
        assert!(!t.is_enabled());
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn round_filter() {
        let mut t = Trace::with_capacity(10);
        t.push(TraceEvent::Sent { round: 1, from: 0, to: 1, words: 1 });
        t.push(TraceEvent::Halted { round: 2, node: 0 });
        t.push(TraceEvent::Sent { round: 2, from: 1, to: 0, words: 3 });
        assert_eq!(t.in_round(2).count(), 2);
        assert_eq!(t.in_round(1).count(), 1);
        assert_eq!(t.events()[0].round(), 1);
    }
}
