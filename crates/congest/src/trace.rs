//! Optional execution tracing: a bounded log of engine-level events
//! (sends, halts, wake-ups) for debugging protocols and producing
//! round-by-round narratives in examples.

use crate::NodeId;

/// One engine-level event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A message was sent (recorded at send time; delivery is next round).
    Sent {
        /// Round of the send (0 = during `init`).
        round: usize,
        /// Sender.
        from: NodeId,
        /// Recipient.
        to: NodeId,
        /// Message size in words.
        words: usize,
    },
    /// A node halted.
    Halted {
        /// Round of the halt.
        round: usize,
        /// The node.
        node: NodeId,
    },
    /// A node scheduled a wake-up.
    WakeScheduled {
        /// Round in which the request was made.
        round: usize,
        /// The node.
        node: NodeId,
        /// Target round of the wake-up.
        target: usize,
    },
    /// A scheduled wake-up fired and activated a node that had no
    /// messages this round (message-driven activations consume any due
    /// wake-up silently; halted nodes never wake).
    Woke {
        /// Round in which the wake-up fired.
        round: usize,
        /// The node.
        node: NodeId,
    },
    /// The adversary dropped a message in transit (the `Sent` event is
    /// still recorded and the sender is still charged).
    Dropped {
        /// Round of the send.
        round: usize,
        /// Sender.
        from: NodeId,
        /// Intended recipient.
        to: NodeId,
    },
    /// The adversary duplicated a message (two copies arrive next round;
    /// both count against the edge budget).
    Duplicated {
        /// Round of the send.
        round: usize,
        /// Sender.
        from: NodeId,
        /// Recipient.
        to: NodeId,
    },
    /// The adversary delayed a message; it arrives at the start of round
    /// `until` instead of `round + 1`.
    Delayed {
        /// Round of the send.
        round: usize,
        /// Sender.
        from: NodeId,
        /// Recipient.
        to: NodeId,
        /// Round the message is re-injected at.
        until: usize,
    },
    /// A scheduled crash took a node down: its sends and receives are
    /// suppressed until (and unless) it restarts.
    Crashed {
        /// First round the node is down.
        round: usize,
        /// The node.
        node: NodeId,
    },
    /// A crashed node came back with its protocol state intact.
    Restarted {
        /// First round the node is back up.
        round: usize,
        /// The node.
        node: NodeId,
    },
}

impl TraceEvent {
    /// The round the event belongs to.
    pub fn round(&self) -> usize {
        match *self {
            TraceEvent::Sent { round, .. }
            | TraceEvent::Halted { round, .. }
            | TraceEvent::WakeScheduled { round, .. }
            | TraceEvent::Woke { round, .. }
            | TraceEvent::Dropped { round, .. }
            | TraceEvent::Duplicated { round, .. }
            | TraceEvent::Delayed { round, .. }
            | TraceEvent::Crashed { round, .. }
            | TraceEvent::Restarted { round, .. } => round,
        }
    }
}

/// A bounded event log: a **ring buffer** over the last `capacity`
/// events, with drop accounting. Protocol runs can produce millions of
/// sends; the ring holds memory at O(capacity) no matter how long the
/// run, and keeps the *most recent* window — the part that explains a
/// stall, a late fault, or the closing rounds of a phase. Events that
/// fell off the front are counted in [`dropped`](Trace::dropped), so a
/// truncated log is always detectable.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Stored events; once full, `head` marks the oldest entry.
    ring: Vec<TraceEvent>,
    /// Index of the oldest stored event (0 until the ring first wraps).
    head: usize,
    capacity: usize,
    /// Events overwritten after the ring filled.
    dropped: usize,
}

impl Trace {
    /// Creates a trace that keeps the last `capacity` events
    /// (0 disables recording entirely).
    pub fn with_capacity(capacity: usize) -> Self {
        Trace { ring: Vec::new(), head: 0, capacity, dropped: 0 }
    }

    /// Whether recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    pub(crate) fn push(&mut self, ev: TraceEvent) {
        if self.ring.len() < self.capacity {
            self.ring.push(ev);
        } else if self.capacity > 0 {
            self.ring[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// The recorded events, oldest to newest, as an owned snapshot
    /// (**clones the ring** — prefer the borrowing [`iter`](Trace::iter)
    /// unless the events must outlive the trace). The window covers the
    /// whole run until the ring first fills, then slides forward; check
    /// [`dropped`](Trace::dropped) for how much fell off the front.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.iter().copied().collect()
    }

    /// Iterates the recorded events, oldest to newest, without copying.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring[self.head..].iter().chain(self.ring[..self.head].iter())
    }

    /// Number of recorded events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Number of events that slid out of the window.
    pub fn dropped(&self) -> usize {
        self.dropped
    }

    /// Events belonging to `round` (within the retained window).
    pub fn in_round(&self, round: usize) -> impl Iterator<Item = &TraceEvent> {
        self.iter().filter(move |e| e.round() == round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_enforced() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.push(TraceEvent::Halted { round: i, node: (i) as u32 });
        }
        assert_eq!(t.iter().count(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn ring_keeps_the_most_recent_window() {
        let mut t = Trace::with_capacity(3);
        for i in 0..7 {
            t.push(TraceEvent::Halted { round: i, node: i as u32 });
        }
        // Oldest-to-newest, sliding window over the tail of the run.
        let rounds: Vec<usize> = t.iter().map(|e| e.round()).collect();
        assert_eq!(rounds, vec![4, 5, 6]);
        assert_eq!(t.dropped(), 4);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.in_round(5).count(), 1);
        assert_eq!(t.in_round(0).count(), 0, "slid out of the window");
    }

    #[test]
    fn zero_capacity_disables() {
        let mut t = Trace::with_capacity(0);
        t.push(TraceEvent::Halted { round: 0, node: 0 });
        assert!(!t.is_enabled());
        assert!(t.iter().next().is_none());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn round_filter() {
        let mut t = Trace::with_capacity(10);
        t.push(TraceEvent::Sent { round: 1, from: 0, to: 1, words: 1 });
        t.push(TraceEvent::Halted { round: 2, node: 0 });
        t.push(TraceEvent::Sent { round: 2, from: 1, to: 0, words: 3 });
        assert_eq!(t.in_round(2).count(), 2);
        assert_eq!(t.in_round(1).count(), 1);
        // The owned-snapshot compat wrapper mirrors iter() exactly.
        assert_eq!(t.events()[0].round(), 1);
        assert!(t.events().iter().eq(t.iter()));
    }
}
