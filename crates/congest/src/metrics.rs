//! Execution metrics: the quantities the paper's complexity claims are
//! stated in (rounds, congestion) plus the "fully distributed" resource
//! accounting (per-node memory and computation balance).

use dhc_graph::NodeId;

/// Aggregated measurements from one [`Network`](crate::Network) run.
///
/// Equality (`==`) compares every *observable* field — everything a
/// protocol run determines bit-for-bit regardless of thread count — and
/// deliberately **excludes** [`engine_memory_words`](Metrics::engine_memory_words):
/// buffer capacities legitimately vary with worker count and allocator
/// growth policy while the computation stays identical.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Rounds executed (the paper's primary cost measure).
    pub rounds: usize,
    /// Total messages sent (a message to an already-halted node still
    /// counts: it was transmitted).
    pub messages: u64,
    /// Total message volume in `Θ(log n)`-bit words.
    pub words: u64,
    /// Messages sent per node.
    pub sent_per_node: Vec<u64>,
    /// Messages received per node.
    pub received_per_node: Vec<u64>,
    /// Local computation units charged per node (via
    /// [`Context::charge_compute`](crate::Context::charge_compute), plus one
    /// unit per delivered message).
    pub compute_per_node: Vec<u64>,
    /// Sampled peak of `Protocol::memory_words` per node (0 if the protocol
    /// opts out or sampling is disabled).
    pub peak_memory_per_node: Vec<usize>,
    /// Messages delivered in each round (empty if recording disabled).
    pub round_traffic: Vec<u64>,
    /// Largest number of messages delivered in any single round of one
    /// constituent network — maintained **incrementally** every round,
    /// so disabling the O(rounds) [`round_traffic`](Metrics::round_traffic)
    /// log (see [`Config::record_round_traffic`](crate::Config::record_round_traffic))
    /// keeps the headline congestion figure on long lean runs. Under
    /// [`absorb_parallel`](Metrics::absorb_parallel) this is the peak of
    /// any single partition, not the cross-partition per-round sum.
    pub max_round_traffic: u64,
    /// Largest number of words any directed edge carried in any round.
    pub max_edge_words: usize,
    /// Largest number of messages any single node sent in one round
    /// (the `Δ'` of the Klauck et al. k-machine conversion theorem).
    pub max_node_sends_per_round: usize,
    /// Sampled peak engine-buffer footprint in 8-byte machine words —
    /// mailbox banks, broadcast arena, per-worker effect scratch,
    /// parallel-commit shards, and scheduling lists (see
    /// [`Network::engine_memory_words`](crate::Network::engine_memory_words)).
    /// Composes as a max: the peak footprint of any single constituent
    /// network's buffer set, which for scratch-chained sequential phases
    /// *is* the real footprint of the one shared set. **Excluded from
    /// `==`**.
    pub engine_memory_words: u64,
}

impl PartialEq for Metrics {
    fn eq(&self, other: &Self) -> bool {
        // `engine_memory_words` is intentionally absent: it reports
        // allocation capacity, which may differ across thread counts
        // while the run itself is bit-identical.
        self.rounds == other.rounds
            && self.messages == other.messages
            && self.words == other.words
            && self.sent_per_node == other.sent_per_node
            && self.received_per_node == other.received_per_node
            && self.compute_per_node == other.compute_per_node
            && self.peak_memory_per_node == other.peak_memory_per_node
            && self.round_traffic == other.round_traffic
            && self.max_round_traffic == other.max_round_traffic
            && self.max_edge_words == other.max_edge_words
            && self.max_node_sends_per_round == other.max_node_sends_per_round
    }
}

impl Metrics {
    /// An all-zero metrics value for an `n`-node network.
    ///
    /// Useful as the accumulator when composing several runs (see
    /// [`merge`](Metrics::merge) and
    /// [`absorb_parallel`](Metrics::absorb_parallel)).
    pub fn empty(n: usize) -> Self {
        Metrics::new(n)
    }

    pub(crate) fn new(n: usize) -> Self {
        Metrics {
            rounds: 0,
            messages: 0,
            words: 0,
            sent_per_node: vec![0; n],
            received_per_node: vec![0; n],
            compute_per_node: vec![0; n],
            peak_memory_per_node: vec![0; n],
            round_traffic: Vec::new(),
            max_round_traffic: 0,
            max_edge_words: 0,
            max_node_sends_per_round: 0,
            engine_memory_words: 0,
        }
    }

    /// Accumulates another run's metrics into this one (used when an
    /// algorithm executes as several sequential protocol phases): rounds
    /// and volumes add, per-node peaks take the max.
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ.
    pub fn merge(&mut self, other: &Metrics) {
        assert_eq!(
            self.sent_per_node.len(),
            other.sent_per_node.len(),
            "cannot merge metrics for different node counts"
        );
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.words += other.words;
        for i in 0..self.sent_per_node.len() {
            self.sent_per_node[i] += other.sent_per_node[i];
            self.received_per_node[i] += other.received_per_node[i];
            self.compute_per_node[i] += other.compute_per_node[i];
            self.peak_memory_per_node[i] =
                self.peak_memory_per_node[i].max(other.peak_memory_per_node[i]);
        }
        self.round_traffic.extend_from_slice(&other.round_traffic);
        self.max_round_traffic = self.max_round_traffic.max(other.max_round_traffic);
        self.max_edge_words = self.max_edge_words.max(other.max_edge_words);
        self.max_node_sends_per_round =
            self.max_node_sends_per_round.max(other.max_node_sends_per_round);
        self.engine_memory_words = self.engine_memory_words.max(other.engine_memory_words);
    }

    /// Accumulates a run that executed **concurrently** with the runs
    /// already absorbed, over the disjoint node subset `node_map`
    /// (`node_map[local] = global`): rounds take the max (parallel
    /// phases overlap in simulated time), volumes add, and `other`'s
    /// per-node counters are scattered through `node_map`.
    ///
    /// This is how a partitioned phase — e.g. the per-partition DRA
    /// instances of DHC1/DHC2 Phase 1, each simulated as its own
    /// isolated [`Network`](crate::Network) — is accounted as one
    /// phase of the enclosing algorithm.
    ///
    /// # Panics
    ///
    /// Panics if `node_map`'s length differs from `other`'s node count
    /// or maps outside `self`'s node range.
    pub fn absorb_parallel(&mut self, other: &Metrics, node_map: &[NodeId]) {
        assert_eq!(
            node_map.len(),
            other.sent_per_node.len(),
            "node_map must cover the absorbed run's nodes"
        );
        self.rounds = self.rounds.max(other.rounds);
        self.messages += other.messages;
        self.words += other.words;
        for (local, &global) in node_map.iter().enumerate() {
            self.sent_per_node[global as usize] += other.sent_per_node[local];
            self.received_per_node[global as usize] += other.received_per_node[local];
            self.compute_per_node[(global) as usize] += other.compute_per_node[local];
            self.peak_memory_per_node[(global) as usize] =
                self.peak_memory_per_node[(global) as usize].max(other.peak_memory_per_node[local]);
        }
        if self.round_traffic.len() < other.round_traffic.len() {
            self.round_traffic.resize(other.round_traffic.len(), 0);
        }
        for (slot, &traffic) in self.round_traffic.iter_mut().zip(&other.round_traffic) {
            *slot += traffic;
        }
        self.max_round_traffic = self.max_round_traffic.max(other.max_round_traffic);
        self.max_edge_words = self.max_edge_words.max(other.max_edge_words);
        self.max_node_sends_per_round =
            self.max_node_sends_per_round.max(other.max_node_sends_per_round);
        self.engine_memory_words = self.engine_memory_words.max(other.engine_memory_words);
    }

    /// Maximum per-node compute units (load-balance numerator).
    pub fn max_compute(&self) -> u64 {
        self.compute_per_node.iter().copied().max().unwrap_or(0)
    }

    /// Mean per-node compute units (load-balance denominator).
    pub fn mean_compute(&self) -> f64 {
        if self.compute_per_node.is_empty() {
            return 0.0;
        }
        self.compute_per_node.iter().sum::<u64>() as f64 / self.compute_per_node.len() as f64
    }

    /// `max / mean` computation ratio; 1.0 means perfectly balanced.
    /// Returns 0.0 when nothing was computed.
    pub fn compute_balance(&self) -> f64 {
        let mean = self.mean_compute();
        if mean == 0.0 {
            0.0
        } else {
            self.max_compute() as f64 / mean
        }
    }

    /// Maximum sampled per-node memory in words.
    pub fn max_memory(&self) -> usize {
        self.peak_memory_per_node.iter().copied().max().unwrap_or(0)
    }

    /// Peak engine footprint in 8-byte machine words: the scratch +
    /// arena + mailbox buffers behind the simulation (see
    /// [`engine_memory_words`](Metrics::engine_memory_words)), sampled
    /// at finish time — capacities only grow during a run, so the
    /// finish-time sample is the run's peak.
    pub fn peak_memory_words(&self) -> u64 {
        self.engine_memory_words
    }
}

/// Final result of a [`Network`](crate::Network) run, returned **by
/// value** from the consuming [`finish`](crate::Network::finish) — the
/// engine's metrics move into the report instead of being cloned.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Aggregated measurements.
    pub metrics: Metrics,
    /// Number of nodes that called [`Context::halt`](crate::Context::halt).
    pub halted: usize,
    /// Per-round cross-machine traffic when the network was built with
    /// [`Network::new_with_machines`](crate::Network::new_with_machines);
    /// `None` for plain runs. Unspecified (partial) if the run faulted.
    pub machine_log: Option<crate::machine::MachineRoundLog>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_and_maxes() {
        let mut a = Metrics::new(2);
        a.rounds = 3;
        a.messages = 10;
        a.words = 12;
        a.sent_per_node = vec![4, 6];
        a.peak_memory_per_node = vec![5, 1];
        a.max_edge_words = 2;
        let mut b = Metrics::new(2);
        b.rounds = 2;
        b.messages = 1;
        b.words = 1;
        b.sent_per_node = vec![1, 0];
        b.peak_memory_per_node = vec![2, 9];
        b.max_edge_words = 1;
        a.merge(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.messages, 11);
        assert_eq!(a.sent_per_node, vec![5, 6]);
        assert_eq!(a.peak_memory_per_node, vec![5, 9]);
        assert_eq!(a.max_edge_words, 2);
    }

    #[test]
    #[should_panic(expected = "different node counts")]
    fn merge_rejects_mismatched() {
        let mut a = Metrics::new(2);
        a.merge(&Metrics::new(3));
    }

    #[test]
    fn absorb_parallel_maxes_rounds_and_scatters_nodes() {
        let mut total = Metrics::empty(4);
        let mut a = Metrics::new(2);
        a.rounds = 7;
        a.messages = 5;
        a.words = 6;
        a.sent_per_node = vec![2, 3];
        a.peak_memory_per_node = vec![10, 20];
        a.round_traffic = vec![1, 1, 1];
        let mut b = Metrics::new(2);
        b.rounds = 4;
        b.messages = 2;
        b.words = 2;
        b.sent_per_node = vec![1, 1];
        b.peak_memory_per_node = vec![30, 5];
        b.round_traffic = vec![2, 2];
        total.absorb_parallel(&a, &[0, 2]);
        total.absorb_parallel(&b, &[1, 3]);
        assert_eq!(total.rounds, 7); // parallel: max, not sum
        assert_eq!(total.messages, 7);
        assert_eq!(total.words, 8);
        assert_eq!(total.sent_per_node, vec![2, 1, 3, 1]);
        assert_eq!(total.peak_memory_per_node, vec![10, 30, 20, 5]);
        assert_eq!(total.round_traffic, vec![3, 3, 1]);
    }

    #[test]
    #[should_panic(expected = "node_map must cover")]
    fn absorb_parallel_rejects_wrong_map_len() {
        let mut total = Metrics::empty(4);
        total.absorb_parallel(&Metrics::new(2), &[0]);
    }

    #[test]
    fn balance_ratios() {
        let mut m = Metrics::new(4);
        m.compute_per_node = vec![1, 1, 1, 5];
        assert_eq!(m.max_compute(), 5);
        assert!((m.mean_compute() - 2.0).abs() < 1e-12);
        assert!((m.compute_balance() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn balance_of_empty_is_zero() {
        let m = Metrics::new(0);
        assert_eq!(m.compute_balance(), 0.0);
        assert_eq!(m.max_memory(), 0);
    }

    #[test]
    fn engine_footprint_is_outside_equality_and_composes_as_max() {
        let mut a = Metrics::new(2);
        let mut b = Metrics::new(2);
        a.engine_memory_words = 1000;
        b.engine_memory_words = 64;
        assert_eq!(a, b, "capacity sampling must not break bit-identity checks");
        a.merge(&b);
        assert_eq!(a.peak_memory_words(), 1000);
        let mut total = Metrics::empty(4);
        total.absorb_parallel(&a, &[0, 2]);
        total.absorb_parallel(&b, &[1, 3]);
        assert_eq!(total.engine_memory_words, 1000);
    }

    #[test]
    fn max_round_traffic_is_compared_and_maxed() {
        let mut a = Metrics::new(2);
        let mut b = Metrics::new(2);
        a.max_round_traffic = 7;
        b.max_round_traffic = 9;
        assert_ne!(a, b, "the streaming congestion figure is observable");
        a.merge(&b);
        assert_eq!(a.max_round_traffic, 9);
        let mut total = Metrics::empty(4);
        total.absorb_parallel(&a, &[0, 2]);
        assert_eq!(total.max_round_traffic, 9);
    }
}
