//! Cross-network engine buffer recycling.
//!
//! A [`Network`](crate::Network) owns a family of arena-style buffers —
//! per-node mailboxes, the broadcast arena, the per-active-node effect
//! scratch, the parallel-commit shard buffers, the scheduling scratch,
//! and (when `engine_threads > 1`) the persistent worker pool. Within
//! one network they are allocated once and reused every round, but a
//! *phase* that runs many networks back to back — the `√n` Phase 1
//! color classes, DHC2's `⌈log k⌉` merge levels — used to pay the full
//! allocation (and thread-spawn) cost once per network.
//!
//! [`EngineScratch`] breaks that: construct with
//! [`Network::new_with_scratch`](crate::Network::new_with_scratch) and
//! tear down with
//! [`Network::finish_with_scratch`](crate::Network::finish_with_scratch),
//! and the buffers flow from one network to the next. Recycling is
//! purely an allocation-level affair — every buffer is cleared and
//! resized for the new node count before use, so execution, metrics,
//! traces, and errors are bit-identical to fresh construction (pinned
//! by the `scratch_reuse` test suite).
//!
//! The scratch is typed by the **wire message type** `M`, not by the
//! protocol: any two protocols whose messages travel in the same wire
//! form can share one scratch. That is what makes the word-packed wire
//! representation ([`crate::PackedMsg`]) compose with reuse — under
//! [`crate::PackedCodec`] every protocol's wire type *is* `PackedMsg`,
//! so one scratch can span, say, the Phase 1 class runs and the
//! hypernode stitch that follows them.

use crate::adversary::Fate;
use crate::effects::Effects;
use crate::mailbox::Mailboxes;
use crate::parcommit::CommitScratch;
use crate::{NodeId, Payload};
use dhc_pool::WorkerPool;

/// Recycled allocations of finished [`Network`](crate::Network)s,
/// ready to seed the next network carrying the same wire message type.
///
/// Starts cold (no buffers, no threads); warms up on the first
/// [`finish_with_scratch`](crate::Network::finish_with_scratch). A
/// network constructed from a warm scratch reuses the donor's mailbox
/// buffers, broadcast arena, effect and commit-shard scratch, and —
/// when the thread counts match — its worker pool.
pub struct EngineScratch<M: Payload> {
    /// Recycled double-buffered mailboxes (per-node inbox vectors, the
    /// broadcast arenas, ranges, counters, touch lists).
    pub(crate) mail: Option<Mailboxes<M>>,
    /// Recycled per-active-node effect scratch.
    pub(crate) effects: Vec<Effects<M>>,
    /// Recycled per-shard parallel-commit buffers.
    pub(crate) commit: CommitScratch<M>,
    /// Recycled per-round scheduling scratch (due wake-ups).
    pub(crate) woken: Vec<NodeId>,
    /// Recycled per-round scheduling scratch (merged active set).
    pub(crate) active: Vec<(NodeId, usize)>,
    /// Recycled per-round scheduling scratch (runnable list).
    pub(crate) work: Vec<NodeId>,
    /// Recycled adversarial-commit fate scratch.
    pub(crate) fates: Vec<Fate>,
    /// Recycled adversarial bandwidth-check scratch.
    pub(crate) charged: Vec<(NodeId, usize)>,
    /// Recycled persistent worker pool, with its parked threads.
    pub(crate) pool: Option<WorkerPool>,
}

/// The buffer set a [`Network`](crate::Network) is born with — taken
/// from a warm [`EngineScratch`] or freshly allocated.
pub(crate) struct Parts<M: Payload> {
    pub(crate) mail: Mailboxes<M>,
    pub(crate) effects: Vec<Effects<M>>,
    pub(crate) commit: CommitScratch<M>,
    pub(crate) woken: Vec<NodeId>,
    pub(crate) active: Vec<(NodeId, usize)>,
    pub(crate) work: Vec<NodeId>,
    pub(crate) fates: Vec<Fate>,
    pub(crate) charged: Vec<(NodeId, usize)>,
    pub(crate) pool: Option<WorkerPool>,
}

impl<M: Payload> Parts<M> {
    /// Cold start: what [`Network::new`](crate::Network::new) allocates.
    pub(crate) fn fresh(n: usize, threads: usize) -> Self {
        Parts {
            mail: Mailboxes::new(n),
            effects: Vec::new(),
            commit: CommitScratch::new(),
            woken: Vec::new(),
            active: Vec::new(),
            work: Vec::new(),
            fates: Vec::new(),
            charged: Vec::new(),
            pool: (threads > 1).then(|| WorkerPool::new(threads)),
        }
    }
}

impl<M: Payload> EngineScratch<M> {
    /// An empty (cold) scratch. The first network built from it
    /// allocates normally; every later one recycles.
    pub fn new() -> Self {
        EngineScratch {
            mail: None,
            effects: Vec::new(),
            commit: CommitScratch::new(),
            woken: Vec::new(),
            active: Vec::new(),
            work: Vec::new(),
            fates: Vec::new(),
            charged: Vec::new(),
            pool: None,
        }
    }

    /// Whether the scratch holds recycled buffers (i.e. at least one
    /// network has been finished into it).
    pub fn is_warm(&self) -> bool {
        self.mail.is_some()
    }

    /// Takes the buffer set for a new `n`-node network running on
    /// `threads` effective engine threads, readying every recycled
    /// buffer (a donor run may have errored mid-round). The pool is
    /// reused only when its thread count matches; the effect scratch
    /// needs no clearing here — the engine resets each entry before
    /// use.
    pub(crate) fn take_parts(&mut self, n: usize, threads: usize) -> Parts<M> {
        let mut mail = match self.mail.take() {
            Some(m) => m,
            None => return Parts::fresh(n, threads),
        };
        mail.recycle(n);
        let mut commit = std::mem::replace(&mut self.commit, CommitScratch::new());
        commit.recycle();
        let pool = match self.pool.take() {
            Some(p) if threads > 1 && p.workers() == threads => Some(p),
            _ => (threads > 1).then(|| WorkerPool::new(threads)),
        };
        self.woken.clear();
        self.active.clear();
        self.work.clear();
        self.fates.clear();
        self.charged.clear();
        Parts {
            mail,
            effects: std::mem::take(&mut self.effects),
            commit,
            woken: std::mem::take(&mut self.woken),
            active: std::mem::take(&mut self.active),
            work: std::mem::take(&mut self.work),
            fates: std::mem::take(&mut self.fates),
            charged: std::mem::take(&mut self.charged),
            pool,
        }
    }

    /// Stores a finished network's buffers for the next taker,
    /// replacing whatever was held before.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn store(&mut self, parts: Parts<M>) {
        self.mail = Some(parts.mail);
        self.effects = parts.effects;
        self.commit = parts.commit;
        self.woken = parts.woken;
        self.active = parts.active;
        self.work = parts.work;
        self.fates = parts.fates;
        self.charged = parts.charged;
        self.pool = parts.pool;
    }
}

impl<M: Payload> Default for EngineScratch<M> {
    fn default() -> Self {
        EngineScratch::new()
    }
}
