//! Per-callback node context: the API a protocol uses to interact with
//! the network.

use crate::effects::Effects;
use crate::{NodeId, Payload, SimError};

/// Handle given to [`Protocol`](crate::Protocol) callbacks.
///
/// Deliberately exposes only what a CONGEST node may know: its own id, `n`,
/// its neighbor list, and the current round number — not the global
/// topology. That locality is also what keeps the engine
/// topology-agnostic: the context carries the node's neighbor **slice**
/// (plus `n`) rather than a graph reference, so one non-generic `Context`
/// serves every [`Topology`](dhc_graph::Topology) implementation — full
/// graphs and zero-copy partition class views alike — without infecting
/// the [`Protocol`](crate::Protocol) trait with a topology parameter.
///
/// Internally the context is a thin wrapper over the node's private
/// effects scratch: every mutation a callback performs (sends, halts,
/// wake-ups, compute charges, faults) is recorded there, never applied to
/// shared engine state. This is what lets the engine run all of a round's
/// callbacks in parallel and commit the effects deterministically
/// afterwards (see [`Config::engine_threads`](crate::Config::engine_threads)).
#[derive(Debug)]
pub struct Context<'a, M: Payload> {
    pub(crate) node: NodeId,
    pub(crate) round: usize,
    pub(crate) n: usize,
    /// This node's sorted neighbor slice (the `Topology` contract
    /// guarantees ascending order, which `is_neighbor` relies on).
    pub(crate) nbrs: &'a [NodeId],
    pub(crate) fx: &'a mut Effects<M>,
}

impl<M: Payload> Context<'_, M> {
    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Total number of nodes `n` (a global the paper's model provides).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current round number (0 during `init`).
    pub fn round_number(&self) -> usize {
        self.round
    }

    /// This node's sorted neighbor list.
    pub fn neighbors(&self) -> &[NodeId] {
        self.nbrs
    }

    /// This node's degree.
    pub fn degree(&self) -> usize {
        self.nbrs.len()
    }

    /// Whether `v` is a neighbor of this node. `O(log deg)`.
    pub fn is_neighbor(&self, v: NodeId) -> bool {
        self.nbrs.binary_search(&v).is_ok()
    }

    /// Queues `msg` for delivery to neighbor `to` at the start of the next
    /// round.
    ///
    /// Sending to a non-neighbor records a fault that aborts the
    /// simulation during this round's commit fold, at this node's entry:
    /// every active node's callback still runs this round (they compute
    /// in parallel), effects of lower-id nodes are already committed,
    /// and this node's effects — including this message — plus those of
    /// higher-id nodes are dropped. Bandwidth is likewise enforced per
    /// directed edge at commit time.
    pub fn send(&mut self, to: NodeId, msg: M) {
        if to == self.node || !self.is_neighbor(to) {
            if self.fx.fault.is_none() {
                self.fx.fault =
                    Some(SimError::NotANeighbor { from: self.node, to, round: self.round });
            }
            return;
        }
        let seq = self.fx.next_seq();
        self.fx.sends.push((seq, to, msg));
    }

    /// Sends `msg` to every neighbor (one copy per incident edge, as the
    /// CONGEST model allows).
    ///
    /// Lowered onto the engine's **broadcast fabric**: the payload is
    /// stored once in the round's broadcast arena — `O(1)` work here,
    /// independent of the degree — and every neighbor reads it by
    /// reference next round. Simulated quantities (delivery order,
    /// bandwidth, `Metrics`, `Trace`) are bit-identical to calling
    /// [`send`](Context::send) once per neighbor in ascending order.
    pub fn send_all(&mut self, msg: M) {
        if self.nbrs.is_empty() {
            return;
        }
        let seq = self.fx.next_seq();
        self.fx.bcasts.push((seq, None, msg));
    }

    /// Sends `msg` to every neighbor **except** `skip` — the skip-one
    /// flood relay every broadcast-with-echo protocol uses ("forward to
    /// everyone but the neighbor it came from"). Same broadcast-fabric
    /// lowering and same equivalence guarantee as
    /// [`send_all`](Context::send_all); if `skip` is not a neighbor
    /// (or is this node), the call degenerates to `send_all`.
    pub fn send_all_except(&mut self, skip: NodeId, msg: M) {
        if self.nbrs.is_empty() {
            return;
        }
        let skip = if skip != self.node && self.is_neighbor(skip) { Some(skip) } else { None };
        let seq = self.fx.next_seq();
        self.fx.bcasts.push((seq, skip, msg));
    }

    /// [`send_all`](Context::send_all) /
    /// [`send_all_except`](Context::send_all_except) with an *optional*
    /// exclusion — the flood shape protocols actually carry around
    /// ("relay to everyone except where this came from, if anywhere").
    pub fn flood_except(&mut self, skip: Option<NodeId>, msg: M) {
        match skip {
            Some(s) => self.send_all_except(s, msg),
            None => self.send_all(msg),
        }
    }

    /// Marks this node as terminated. It will not be invoked again and
    /// messages addressed to it are dropped.
    pub fn halt(&mut self) {
        self.fx.halted = true;
    }

    /// Requests a wake-up `delta ≥ 1` rounds from now even if no message
    /// arrives (used for spontaneous actions and timers).
    ///
    /// # Panics
    ///
    /// Panics if `delta == 0`.
    pub fn wake_in(&mut self, delta: usize) {
        assert!(delta >= 1, "wake_in requires delta >= 1");
        let target = self.round + delta;
        self.fx.wake = Some(match self.fx.wake {
            Some(existing) => existing.min(target),
            None => target,
        });
    }

    /// Shorthand for `wake_in(1)`.
    pub fn stay_awake(&mut self) {
        self.wake_in(1);
    }

    /// Charges `units` of local computation to this node (for the
    /// load-balance metrics; delivered messages already cost one unit each).
    pub fn charge_compute(&mut self, units: u64) {
        self.fx.compute += units;
    }
}
