//! The **k-machine accounting layer** (Klauck–Nanongkai–Pandurangan–
//! Robinson, SODA 2015): measures what a CONGEST execution costs when its
//! `n` nodes are hosted by `k` machines connected pairwise by
//! bandwidth-limited links.
//!
//! In the k-machine model every pair of machines shares one link that
//! carries at most `B = O(polylog n)` words per k-machine round, nodes are
//! assigned to machines by a random vertex partition, and a machine
//! simulates all of its hosted nodes locally. Simulating one CONGEST round
//! therefore costs:
//!
//! * **nothing per intra-machine message** — both endpoints live on the
//!   same machine, the payload never crosses a link;
//! * **one link transfer per (sender, receiving machine) payload** — a
//!   broadcast addressed to many nodes hosted by the same machine crosses
//!   the link **once** (the engine's broadcast arena makes this literal:
//!   one payload copy serves every receiver);
//! * **`max(1, ⌈max directed-link load / B⌉)` k-machine rounds** — the
//!   round's messages are scheduled onto each link in deterministic order
//!   (ascending sender id, then the sender's op order — exactly the
//!   engine's commit-fold order), `B` words per link per k-machine round,
//!   so the most loaded link dictates the dilation; the floor of one
//!   round is the synchronization barrier every executed CONGEST round
//!   needs. See [`link_schedule`] for the packing rule.
//!
//! The layer is **pure accounting**: it observes the commit fold and never
//! influences scheduling, delivery, bandwidth checks, or protocol state,
//! so a machine-instrumented run produces bit-identical outcomes, CONGEST
//! [`Metrics`](crate::Metrics), and traces to the plain run. Because it
//! runs inside the sequential commit fold, its numbers are also identical
//! at every [`Config::engine_threads`](crate::Config::engine_threads)
//! setting.
//!
//! Per-round link loads are retained in a [`MachineRoundLog`] (sparse:
//! only touched links) rather than folded immediately, because phases of
//! one algorithm may execute **concurrently in simulated time** — e.g. the
//! per-partition Phase-1 DRA instances of DHC1/DHC2 — and their round-`r`
//! messages share the physical links. [`MachineRoundLog::absorb_parallel`]
//! merges such logs round-by-round before
//! [`finalize`](MachineRoundLog::finalize) turns the union into a
//! [`MachineMetrics`]; sequential phases compose with
//! [`MachineMetrics::merge_sequential`].

use crate::NodeId;

/// Assignment of a network's nodes to `k` machines (`node id → machine`).
///
/// The node-id space is the network's own — for a whole-graph simulation
/// that is the global id space, for a partition class view it is the
/// class-local one (build the map through the class member list).
///
/// # Example
///
/// ```
/// use dhc_congest::MachineMap;
///
/// let map = MachineMap::new(vec![0, 1, 0, 2], 3);
/// assert_eq!(map.machine_of(2), 0);
/// assert_eq!(map.machine_count(), 3);
/// assert_eq!(map.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineMap {
    machine_of: Vec<usize>,
    k: usize,
}

impl MachineMap {
    /// Builds the map from an explicit assignment vector.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or any entry is `>= k`.
    pub fn new(machine_of: Vec<usize>, k: usize) -> Self {
        assert!(k > 0, "need at least one machine");
        assert!(
            machine_of.iter().all(|&m| m < k),
            "machine assignment out of range (must be < {k})"
        );
        MachineMap { machine_of, k }
    }

    /// The machine hosting node `v`.
    pub fn machine_of(&self, v: NodeId) -> usize {
        self.machine_of[(v) as usize]
    }

    /// Number of machines `k`.
    pub fn machine_count(&self) -> usize {
        self.k
    }

    /// Number of mapped nodes.
    pub fn len(&self) -> usize {
        self.machine_of.len()
    }

    /// Whether the map covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.machine_of.is_empty()
    }
}

/// One executed CONGEST round's cross-machine traffic: the words each
/// touched directed machine-pair link carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineRound {
    /// The simulated CONGEST round number (0 is the `init` phase).
    pub round: usize,
    /// `(link index, words)` for every touched link, ascending by link
    /// index; link index = `from_machine * k + to_machine`.
    pub links: Vec<(u32, u64)>,
}

impl MachineRound {
    /// The heaviest directed-link load of this round (0 when no message
    /// crossed a machine boundary).
    pub fn max_link_words(&self) -> u64 {
        self.links.iter().map(|&(_, w)| w).max().unwrap_or(0)
    }
}

/// Per-round cross-machine traffic of one network execution, plus phase
/// totals — the raw material [`finalize`](MachineRoundLog::finalize)
/// turns into a [`MachineMetrics`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineRoundLog {
    k: usize,
    /// Executed rounds, ascending by round number.
    rounds: Vec<MachineRound>,
    machine_sent_words: Vec<u64>,
    machine_recv_words: Vec<u64>,
    intra_words: u64,
    cross_messages: u64,
}

impl MachineRoundLog {
    /// An empty log for `k` machines.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn empty(k: usize) -> Self {
        assert!(k > 0, "need at least one machine");
        MachineRoundLog {
            k,
            rounds: Vec::new(),
            machine_sent_words: vec![0; k],
            machine_recv_words: vec![0; k],
            intra_words: 0,
            cross_messages: 0,
        }
    }

    /// Number of machines `k`.
    pub fn machine_count(&self) -> usize {
        self.k
    }

    /// The executed rounds, ascending by round number.
    pub fn rounds(&self) -> &[MachineRound] {
        &self.rounds
    }

    /// Words that never crossed a machine boundary (free in the model).
    pub fn intra_words(&self) -> u64 {
        self.intra_words
    }

    /// Cross-machine payload transfers (a broadcast counts once per
    /// receiving machine).
    pub fn cross_messages(&self) -> u64 {
        self.cross_messages
    }

    /// Records one `words`-word payload from machine `from` to machine
    /// `to` in `round` — the hook for traffic that is *accounted* rather
    /// than simulated (e.g. the Phase-1 cross-partition color exchange,
    /// which the partitioned runner resolves up front). `from == to` is
    /// an intra-machine (free) transfer.
    ///
    /// # Panics
    ///
    /// Panics if a machine index is out of range.
    pub fn charge(&mut self, round: usize, from: usize, to: usize, words: u64) {
        assert!(from < self.k && to < self.k, "machine index out of range");
        if from == to {
            self.record_intra(words);
            return;
        }
        self.record_cross_volume(from, to, words);
        let link = (from * self.k + to) as u32;
        let idx = match self.rounds.binary_search_by_key(&round, |r| r.round) {
            Ok(i) => i,
            Err(i) => {
                self.rounds.insert(i, MachineRound { round, links: Vec::new() });
                i
            }
        };
        let links = &mut self.rounds[idx].links;
        match links.binary_search_by_key(&link, |&(l, _)| l) {
            Ok(i) => links[i].1 += words,
            Err(i) => links.insert(i, (link, words)),
        }
    }

    /// One intra-machine (free) payload: the volume bookkeeping shared
    /// by [`charge`](Self::charge) and the live [`MachineLayer`].
    fn record_intra(&mut self, words: u64) {
        self.intra_words += words;
    }

    /// One cross-machine payload's volume counters (sender/receiver
    /// machine words, transfer count) — shared by [`charge`](Self::charge)
    /// and the live [`MachineLayer`], so the two construction paths
    /// cannot drift.
    fn record_cross_volume(&mut self, from: usize, to: usize, words: u64) {
        self.machine_sent_words[from] += words;
        self.machine_recv_words[to] += words;
        self.cross_messages += 1;
    }

    /// Merges a log of a network that executed **concurrently in
    /// simulated time** with this one (e.g. another Phase-1 partition
    /// class): round-`r` link loads add because the concurrent rounds
    /// share the physical links; totals add.
    ///
    /// # Panics
    ///
    /// Panics if the machine counts differ.
    pub fn absorb_parallel(&mut self, other: &MachineRoundLog) {
        assert_eq!(self.k, other.k, "cannot merge logs for different machine counts");
        let mut merged = Vec::with_capacity(self.rounds.len().max(other.rounds.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.rounds.len() || j < other.rounds.len() {
            match (self.rounds.get(i), other.rounds.get(j)) {
                (Some(a), Some(b)) if a.round == b.round => {
                    merged.push(MachineRound {
                        round: a.round,
                        links: merge_links(&a.links, &b.links),
                    });
                    i += 1;
                    j += 1;
                }
                (Some(a), Some(b)) if a.round < b.round => {
                    merged.push(a.clone());
                    i += 1;
                }
                (Some(_), Some(b)) => {
                    merged.push(b.clone());
                    j += 1;
                }
                (Some(a), None) => {
                    merged.push(a.clone());
                    i += 1;
                }
                (None, Some(b)) => {
                    merged.push(b.clone());
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        self.rounds = merged;
        for m in 0..self.k {
            self.machine_sent_words[m] += other.machine_sent_words[m];
            self.machine_recv_words[m] += other.machine_recv_words[m];
        }
        self.intra_words += other.intra_words;
        self.cross_messages += other.cross_messages;
    }

    /// Folds the log into a [`MachineMetrics`] under a per-link
    /// per-round budget of `link_bandwidth_words`: every executed round
    /// dilates into `max(1, ⌈max link load / B⌉)` k-machine rounds
    /// (equivalently, the length of its [`link_schedule`]).
    ///
    /// # Panics
    ///
    /// Panics if `link_bandwidth_words == 0`.
    pub fn finalize(&self, link_bandwidth_words: usize) -> MachineMetrics {
        assert!(link_bandwidth_words > 0, "link bandwidth must be at least one word");
        let b = link_bandwidth_words as u64;
        let kk = self.k * self.k;
        let mut m = MachineMetrics {
            k: self.k,
            link_bandwidth_words,
            kmachine_rounds: 0,
            congest_rounds: self.rounds.len(),
            max_dilation: 0,
            link_total_words: vec![0; kk],
            link_peak_round_words: vec![0; kk],
            machine_nodes: Vec::new(),
            machine_sent_words: self.machine_sent_words.clone(),
            machine_recv_words: self.machine_recv_words.clone(),
            intra_words: self.intra_words,
            cross_messages: self.cross_messages,
        };
        for round in &self.rounds {
            let mut max_load = 0u64;
            for &(link, words) in &round.links {
                let link = link as usize;
                m.link_total_words[link] += words;
                if words > m.link_peak_round_words[link] {
                    m.link_peak_round_words[link] = words;
                }
                max_load = max_load.max(words);
            }
            let dilation = (max_load.div_ceil(b) as usize).max(1);
            m.kmachine_rounds += dilation;
            m.max_dilation = m.max_dilation.max(dilation);
        }
        m
    }
}

/// Merges two ascending sparse `(link, words)` lists, adding loads of
/// shared links.
fn merge_links(a: &[(u32, u64)], b: &[(u32, u64)]) -> Vec<(u32, u64)> {
    let mut out = Vec::with_capacity(a.len().max(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&(la, wa)), Some(&(lb, wb))) if la == lb => {
                out.push((la, wa + wb));
                i += 1;
                j += 1;
            }
            (Some(&(la, wa)), Some(&(lb, _))) if la < lb => {
                out.push((la, wa));
                i += 1;
            }
            (Some(_), Some(&(lb, wb))) => {
                out.push((lb, wb));
                j += 1;
            }
            (Some(&x), None) => {
                out.push(x);
                i += 1;
            }
            (None, Some(&x)) => {
                out.push(x);
                j += 1;
            }
            (None, None) => unreachable!("loop condition"),
        }
    }
    out
}

/// The deterministic word schedule of one CONGEST round's link loads
/// under a per-link budget of `bandwidth` words per k-machine round.
///
/// Each link transmits its queued words FIFO — the queue order is the
/// commit fold's: ascending sender id, then the sender's op order — `B`
/// words per k-machine round, so link load `w` occupies `⌈w/B⌉`
/// consecutive sub-rounds: full `B`-word slots followed by the `w mod B`
/// remainder. Returns `(dilation, per-link sub-round loads)` where
/// `dilation = max(1, max ⌈w/B⌉)` is what
/// [`MachineRoundLog::finalize`] charges for the round; no sub-round
/// load ever exceeds `bandwidth` (pinned by
/// `crates/core/tests/kmachine_equivalence.rs`).
///
/// # Panics
///
/// Panics if `bandwidth == 0`.
pub fn link_schedule(links: &[(u32, u64)], bandwidth: usize) -> (usize, Vec<(u32, Vec<u64>)>) {
    assert!(bandwidth > 0, "link bandwidth must be at least one word");
    let b = bandwidth as u64;
    let mut dilation = 1usize;
    let mut schedule = Vec::with_capacity(links.len());
    for &(link, words) in links {
        let full = (words / b) as usize;
        let rem = words % b;
        let mut slots = vec![b; full];
        if rem > 0 {
            slots.push(rem);
        }
        dilation = dilation.max(slots.len());
        schedule.push((link, slots));
    }
    (dilation, schedule)
}

/// Measured cost of an execution under k-machine semantics — the
/// counterpart the KNPR conversion theorem's `Õ(M/k² + T·Δ'/k)` bound is
/// compared against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineMetrics {
    /// Number of machines `k`.
    pub k: usize,
    /// Per-directed-link, per-k-machine-round budget in words.
    pub link_bandwidth_words: usize,
    /// Measured k-machine rounds: every executed CONGEST round costs
    /// `max(1, ⌈max link load / B⌉)`.
    pub kmachine_rounds: usize,
    /// Executed CONGEST rounds accounted (quiescent fast-forwarded
    /// rounds cost nothing and are not counted here).
    pub congest_rounds: usize,
    /// Largest single-round dilation observed.
    pub max_dilation: usize,
    /// Total words per directed link (`k*k`, index `from * k + to`;
    /// the diagonal is always 0 — intra-machine traffic is free).
    pub link_total_words: Vec<u64>,
    /// Largest words any one CONGEST round put on each directed link.
    pub link_peak_round_words: Vec<u64>,
    /// Nodes hosted per machine (set by the runner from the random
    /// vertex partition; empty when unknown).
    pub machine_nodes: Vec<usize>,
    /// Cross-machine words sent per machine.
    pub machine_sent_words: Vec<u64>,
    /// Cross-machine words received per machine.
    pub machine_recv_words: Vec<u64>,
    /// Words exchanged between co-hosted nodes (free in the model).
    pub intra_words: u64,
    /// Cross-machine payload transfers (a broadcast counts once per
    /// receiving machine).
    pub cross_messages: u64,
}

impl MachineMetrics {
    /// Total words over a directed link.
    pub fn link_total(&self, from: usize, to: usize) -> u64 {
        self.link_total_words[from * self.k + to]
    }

    /// Heaviest total load of any directed link.
    pub fn max_link_total(&self) -> u64 {
        self.link_total_words.iter().copied().max().unwrap_or(0)
    }

    /// Heaviest single-round load of any directed link.
    pub fn max_link_peak(&self) -> u64 {
        self.link_peak_round_words.iter().copied().max().unwrap_or(0)
    }

    /// Total cross-machine words.
    pub fn cross_words(&self) -> u64 {
        self.machine_sent_words.iter().sum()
    }

    /// Accumulates a phase that executed **after** this one in simulated
    /// time: rounds add, link totals add, peaks take the max.
    ///
    /// # Panics
    ///
    /// Panics if `k` or the link bandwidth differ.
    pub fn merge_sequential(&mut self, other: &MachineMetrics) {
        assert_eq!(self.k, other.k, "cannot merge metrics for different machine counts");
        assert_eq!(
            self.link_bandwidth_words, other.link_bandwidth_words,
            "cannot merge metrics with different link bandwidths"
        );
        self.kmachine_rounds += other.kmachine_rounds;
        self.congest_rounds += other.congest_rounds;
        self.max_dilation = self.max_dilation.max(other.max_dilation);
        for i in 0..self.link_total_words.len() {
            self.link_total_words[i] += other.link_total_words[i];
            self.link_peak_round_words[i] =
                self.link_peak_round_words[i].max(other.link_peak_round_words[i]);
        }
        for m in 0..self.k {
            self.machine_sent_words[m] += other.machine_sent_words[m];
            self.machine_recv_words[m] += other.machine_recv_words[m];
        }
        self.intra_words += other.intra_words;
        self.cross_messages += other.cross_messages;
    }
}

/// The live accounting hook the commit fold drives; owns the
/// [`MachineMap`] and the per-round scratch, and grows a
/// [`MachineRoundLog`].
#[derive(Debug)]
pub(crate) struct MachineLayer {
    map: MachineMap,
    /// Per-link words accumulated this round (`k*k`, cleared via
    /// `touched` at round end).
    round_words: Vec<u64>,
    /// Links touched this round (unsorted, duplicate-free).
    touched: Vec<u32>,
    /// Per-machine epoch marks for O(1) broadcast dedup.
    seen_epoch: Vec<u64>,
    epoch: u64,
    /// Sender machine and payload words of the broadcast currently being
    /// committed.
    bcast_from: usize,
    bcast_words: u64,
    log: MachineRoundLog,
}

impl MachineLayer {
    pub(crate) fn new(map: MachineMap) -> Self {
        let k = map.machine_count();
        MachineLayer {
            map,
            round_words: vec![0; k * k],
            touched: Vec::new(),
            seen_epoch: vec![0; k],
            epoch: 0,
            bcast_from: 0,
            bcast_words: 0,
            log: MachineRoundLog::empty(k),
        }
    }

    fn add_link(&mut self, from_m: usize, to_m: usize, words: u64) {
        self.log.record_cross_volume(from_m, to_m, words);
        let idx = from_m * self.map.k + to_m;
        if self.round_words[idx] == 0 {
            self.touched.push(idx as u32);
        }
        self.round_words[idx] += words;
    }

    /// One committed unicast send.
    pub(crate) fn unicast(&mut self, from: NodeId, to: NodeId, words: usize) {
        let (mf, mt) = (self.map.machine_of(from), self.map.machine_of(to));
        if mf == mt {
            self.log.record_intra(words as u64);
        } else {
            self.add_link(mf, mt, words as u64);
        }
    }

    /// Starts committing one broadcast op; follow with one
    /// [`broadcast_dest`](Self::broadcast_dest) per addressed neighbor.
    /// The payload crosses each link (and stays on the sender's machine)
    /// **once**, no matter how many addressed neighbors a machine hosts.
    pub(crate) fn begin_broadcast(&mut self, from: NodeId, words: usize) {
        self.epoch += 1;
        self.bcast_from = self.map.machine_of(from);
        self.bcast_words = words as u64;
    }

    /// One addressed neighbor of the current broadcast.
    pub(crate) fn broadcast_dest(&mut self, to: NodeId) {
        let m = self.map.machine_of(to);
        if self.seen_epoch[m] == self.epoch {
            return; // this machine already carries the payload
        }
        self.seen_epoch[m] = self.epoch;
        if m == self.bcast_from {
            self.log.record_intra(self.bcast_words);
        } else {
            self.add_link(self.bcast_from, m, self.bcast_words);
        }
    }

    /// Closes the round's accounting: records the touched links (sorted)
    /// under the given round number and clears the scratch. Called once
    /// per executed phase (init = round 0), so the log's round list is
    /// exactly the executed schedule.
    pub(crate) fn end_round(&mut self, round: usize) {
        self.touched.sort_unstable();
        let links: Vec<(u32, u64)> =
            self.touched.iter().map(|&i| (i, self.round_words[i as usize])).collect();
        for &i in &self.touched {
            self.round_words[i as usize] = 0;
        }
        self.touched.clear();
        self.log.rounds.push(MachineRound { round, links });
    }

    /// The just-closed round's sorted directed link loads — valid after
    /// [`end_round`](Self::end_round), which pushes one entry per
    /// executed round (so the log's last entry *is* the current round).
    /// Read by the engine's telemetry emission; never mutated by it.
    pub(crate) fn last_round_links(&self) -> &[(u32, u64)] {
        self.log.rounds.last().map_or(&[], |r| &r.links[..])
    }

    /// Consumes the layer, returning its log.
    pub(crate) fn into_log(self) -> MachineRoundLog {
        self.log
    }

    /// The node-to-machine assignment (shared with the per-shard
    /// accumulators of the parallel commit fold).
    pub(crate) fn map(&self) -> &MachineMap {
        &self.map
    }

    /// Folds one sender shard's accumulator into this round's scratch
    /// and the volume totals, draining the shard back to its clean
    /// state. Every count is a sum and [`end_round`](Self::end_round)
    /// sorts the touched-link list, so absorbing the shards in **any**
    /// order yields the exact per-link loads and totals of the
    /// sequential fold.
    ///
    /// # Panics
    ///
    /// Panics if the shard was built for a different machine count.
    pub(crate) fn absorb_shard(&mut self, shard: &mut MachineShard) {
        assert_eq!(shard.k, self.map.k, "machine shard built for a different k");
        for &idx in &shard.touched {
            let idx = idx as usize;
            if self.round_words[idx] == 0 {
                self.touched.push(idx as u32);
            }
            self.round_words[idx] += shard.round_words[idx];
            shard.round_words[idx] = 0;
        }
        shard.touched.clear();
        for m in 0..shard.k {
            self.log.machine_sent_words[m] += shard.sent_words[m];
            self.log.machine_recv_words[m] += shard.recv_words[m];
            shard.sent_words[m] = 0;
            shard.recv_words[m] = 0;
        }
        self.log.intra_words += shard.intra_words;
        self.log.cross_messages += shard.cross_messages;
        shard.intra_words = 0;
        shard.cross_messages = 0;
    }
}

/// One sender shard's private slice of the machine-layer accounting:
/// the same per-link word accumulation and broadcast dedup as the live
/// [`MachineLayer`], but writing only shard-local counters so shards
/// run concurrently; [`MachineLayer::absorb_shard`] merges them. All
/// merged quantities are sums (and the layer's round record sorts its
/// link list), so the merge is placement- and order-independent.
#[derive(Debug)]
pub(crate) struct MachineShard {
    k: usize,
    round_words: Vec<u64>,
    touched: Vec<u32>,
    seen_epoch: Vec<u64>,
    epoch: u64,
    bcast_from: usize,
    bcast_words: u64,
    sent_words: Vec<u64>,
    recv_words: Vec<u64>,
    intra_words: u64,
    cross_messages: u64,
}

impl MachineShard {
    pub(crate) fn new(k: usize) -> Self {
        MachineShard {
            k,
            round_words: vec![0; k * k],
            touched: Vec::new(),
            seen_epoch: vec![0; k],
            epoch: 0,
            bcast_from: 0,
            bcast_words: 0,
            sent_words: vec![0; k],
            recv_words: vec![0; k],
            intra_words: 0,
            cross_messages: 0,
        }
    }

    pub(crate) fn machine_count(&self) -> usize {
        self.k
    }

    fn add_link(&mut self, from_m: usize, to_m: usize, words: u64) {
        self.sent_words[from_m] += words;
        self.recv_words[to_m] += words;
        self.cross_messages += 1;
        let idx = from_m * self.k + to_m;
        if self.round_words[idx] == 0 {
            self.touched.push(idx as u32);
        }
        self.round_words[idx] += words;
    }

    /// Shard-local twin of [`MachineLayer::unicast`].
    pub(crate) fn unicast(&mut self, map: &MachineMap, from: NodeId, to: NodeId, words: usize) {
        let (mf, mt) = (map.machine_of(from), map.machine_of(to));
        if mf == mt {
            self.intra_words += words as u64;
        } else {
            self.add_link(mf, mt, words as u64);
        }
    }

    /// Shard-local twin of [`MachineLayer::begin_broadcast`].
    pub(crate) fn begin_broadcast(&mut self, map: &MachineMap, from: NodeId, words: usize) {
        self.epoch += 1;
        self.bcast_from = map.machine_of(from);
        self.bcast_words = words as u64;
    }

    /// Shard-local twin of [`MachineLayer::broadcast_dest`].
    pub(crate) fn broadcast_dest(&mut self, map: &MachineMap, to: NodeId) {
        let m = map.machine_of(to);
        if self.seen_epoch[m] == self.epoch {
            return;
        }
        self.seen_epoch[m] = self.epoch;
        if m == self.bcast_from {
            self.intra_words += self.bcast_words;
        } else {
            self.add_link(self.bcast_from, m, self.bcast_words);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_validates() {
        let map = MachineMap::new(vec![0, 1, 1], 2);
        assert_eq!((map.machine_of(0), map.machine_of(2)), (0, 1));
        assert!(!map.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn map_rejects_bad_assignment() {
        MachineMap::new(vec![0, 3], 2);
    }

    #[test]
    fn unicast_accounting_splits_intra_and_cross() {
        let mut l = MachineLayer::new(MachineMap::new(vec![0, 0, 1], 2));
        l.unicast(0, 1, 3); // intra
        l.unicast(0, 2, 2); // cross 0 -> 1
        l.unicast(2, 1, 1); // cross 1 -> 0
        l.end_round(1);
        let log = l.into_log();
        assert_eq!(log.intra_words(), 3);
        assert_eq!(log.cross_messages(), 2);
        assert_eq!(log.rounds().len(), 1);
        // Links: 0->1 (idx 1) carries 2 words, 1->0 (idx 2) carries 1.
        assert_eq!(log.rounds()[0].links, vec![(1, 2), (2, 1)]);
        assert_eq!(log.machine_sent_words, vec![2, 1]);
        assert_eq!(log.machine_recv_words, vec![1, 2]);
    }

    #[test]
    fn broadcast_crosses_each_link_once() {
        // Machines: node 0 on m0; nodes 1, 2 on m1; node 3 on m2; node 4
        // on m0 (co-hosted with the sender).
        let mut l = MachineLayer::new(MachineMap::new(vec![0, 1, 1, 2, 0], 3));
        l.begin_broadcast(0, 5);
        for to in [1, 2, 3, 4] {
            l.broadcast_dest(to);
        }
        l.end_round(1);
        let log = l.into_log();
        // m1 hosts two receivers but the payload crossed once; m0's
        // receiver is intra (free).
        assert_eq!(log.cross_messages(), 2);
        assert_eq!(log.intra_words(), 5);
        assert_eq!(log.rounds()[0].links, vec![(1, 5), (2, 5)]);
    }

    #[test]
    fn end_round_clears_scratch_between_rounds() {
        let mut l = MachineLayer::new(MachineMap::new(vec![0, 1], 2));
        l.unicast(0, 1, 4);
        l.end_round(1);
        l.unicast(0, 1, 2);
        l.end_round(2);
        let log = l.into_log();
        assert_eq!(log.rounds()[0].links, vec![(1, 4)]);
        assert_eq!(log.rounds()[1].links, vec![(1, 2)]);
    }

    #[test]
    fn quiet_rounds_are_recorded_with_no_links() {
        let mut l = MachineLayer::new(MachineMap::new(vec![0, 0], 1));
        l.unicast(0, 1, 1);
        l.end_round(1);
        let log = l.into_log();
        assert_eq!(log.rounds().len(), 1);
        assert!(log.rounds()[0].links.is_empty());
        let m = log.finalize(4);
        // An all-intra round still costs the one-round barrier.
        assert_eq!(m.kmachine_rounds, 1);
        assert_eq!(m.max_dilation, 1);
    }

    #[test]
    fn finalize_dilates_by_max_link_load() {
        let mut log = MachineRoundLog::empty(2);
        log.charge(1, 0, 1, 9);
        log.charge(1, 1, 0, 3);
        log.charge(2, 0, 1, 4);
        let m = log.finalize(4);
        // Round 1: max load 9 -> ceil(9/4) = 3; round 2: 4 -> 1.
        assert_eq!(m.kmachine_rounds, 4);
        assert_eq!(m.congest_rounds, 2);
        assert_eq!(m.max_dilation, 3);
        assert_eq!(m.link_total(0, 1), 13);
        assert_eq!(m.link_peak_round_words[1], 9);
        assert_eq!(m.max_link_total(), 13);
        assert_eq!(m.max_link_peak(), 9);
        assert_eq!(m.cross_words(), 16);
    }

    #[test]
    fn charge_intra_is_free() {
        let mut log = MachineRoundLog::empty(2);
        log.charge(0, 1, 1, 7);
        assert_eq!(log.intra_words(), 7);
        assert!(log.rounds().is_empty());
        assert_eq!(log.finalize(1).kmachine_rounds, 0);
    }

    #[test]
    fn absorb_parallel_adds_overlapping_round_loads() {
        let mut a = MachineRoundLog::empty(2);
        a.charge(0, 0, 1, 2);
        a.charge(1, 0, 1, 3);
        let mut b = MachineRoundLog::empty(2);
        b.charge(1, 0, 1, 5);
        b.charge(1, 1, 0, 1);
        b.charge(3, 1, 0, 2);
        a.absorb_parallel(&b);
        assert_eq!(a.rounds().len(), 3);
        assert_eq!(a.rounds()[0].links, vec![(1, 2)]);
        assert_eq!(a.rounds()[1].links, vec![(1, 8), (2, 1)]);
        assert_eq!(a.rounds()[2].links, vec![(2, 2)]);
        assert_eq!(a.cross_messages(), 5);
        // Dilation at B = 4: rounds cost 1, 2, 1.
        assert_eq!(a.finalize(4).kmachine_rounds, 4);
    }

    #[test]
    fn merge_sequential_adds_rounds_and_maxes_peaks() {
        let mut a = MachineRoundLog::empty(2);
        a.charge(1, 0, 1, 6);
        let mut b = MachineRoundLog::empty(2);
        b.charge(1, 0, 1, 2);
        b.charge(2, 1, 0, 1);
        let mut ma = a.finalize(2);
        let mb = b.finalize(2);
        ma.merge_sequential(&mb);
        assert_eq!(ma.kmachine_rounds, 3 + 2);
        assert_eq!(ma.congest_rounds, 3);
        assert_eq!(ma.link_total(0, 1), 8);
        assert_eq!(ma.link_peak_round_words[1], 6);
        assert_eq!(ma.max_dilation, 3);
    }

    #[test]
    fn shard_absorb_matches_sequential_layer() {
        let map = MachineMap::new(vec![0, 1, 1, 2, 0], 3);
        let mut seq = MachineLayer::new(map.clone());
        seq.unicast(0, 2, 2);
        seq.begin_broadcast(1, 5);
        for to in [0, 2, 3] {
            seq.broadcast_dest(to);
        }
        seq.unicast(3, 4, 1);
        seq.end_round(1);
        // Same traffic split across two sender shards, absorbed before
        // the round closes.
        let mut par = MachineLayer::new(map.clone());
        let mut a = MachineShard::new(3);
        a.unicast(&map, 0, 2, 2);
        a.begin_broadcast(&map, 1, 5);
        for to in [0, 2, 3] {
            a.broadcast_dest(&map, to);
        }
        let mut b = MachineShard::new(3);
        b.unicast(&map, 3, 4, 1);
        par.absorb_shard(&mut a);
        par.absorb_shard(&mut b);
        par.end_round(1);
        assert_eq!(seq.into_log(), par.into_log());
        // Absorb drained the shards: a second round reuses them clean.
        assert!(a.touched.is_empty() && a.cross_messages == 0 && a.intra_words == 0);
    }

    #[test]
    fn schedule_never_exceeds_bandwidth() {
        let links = vec![(1u32, 9u64), (2, 4), (3, 1)];
        let (dilation, schedule) = link_schedule(&links, 4);
        assert_eq!(dilation, 3);
        for (link, slots) in &schedule {
            assert!(slots.iter().all(|&w| w <= 4), "link {link} oversubscribed");
            let total = links.iter().find(|&&(l, _)| l == *link).unwrap().1;
            assert_eq!(slots.iter().sum::<u64>(), total);
        }
        // An idle round still schedules the barrier round.
        assert_eq!(link_schedule(&[], 4).0, 1);
    }
}
