//! A synchronous **CONGEST**-model simulator.
//!
//! The CONGEST model (Peleg, *Distributed Computing: A Locality-Sensitive
//! Approach*) is the execution model of the paper this workspace reproduces:
//! computation proceeds in synchronous rounds, and in each round every node
//! may send one `O(log n)`-bit message across each incident edge. This crate
//! provides:
//!
//! * the [`Protocol`] trait — per-node state machines with an
//!   inbox-driven `round` callback (the [`Inbox`] view merges direct
//!   messages with broadcast payloads read by reference) and a
//!   [`Context`] for sending — unicast `send`, or the **broadcast
//!   fabric**'s `send_all` / `send_all_except`, which store one payload
//!   copy per flooding sender instead of one per incident edge —
//!   scheduling wake-ups, charging local computation, and halting;
//! * the [`Network`] engine — deterministic round execution over any
//!   [`dhc_graph::Topology`] (a plain [`dhc_graph::Graph`], a zero-copy
//!   partition [`dhc_graph::ClassView`], or a future overlay topology)
//!   with **per-edge bandwidth enforcement**
//!   (more than `B` message-words across one directed edge in one round is
//!   a simulation error, exactly the CONGEST constraint). Each round runs
//!   as a **parallel compute phase** (active nodes execute independently
//!   against an immutable view, recording effects into private scratch;
//!   [`Config::engine_threads`] sets the worker count, served by a
//!   persistent worker pool) followed by a **deterministic commit
//!   fold** that applies the effects in ascending node-id order — on
//!   busy rounds the fold itself runs sharded across the pool, with a
//!   merge that reproduces the sequential fold bit for bit, so results
//!   are identical at every thread count;
//! * [`Metrics`] — rounds, messages, message-words, per-node send/receive/
//!   compute counters, sampled per-node memory high-water marks, and
//!   per-round congestion, feeding the paper's "fully distributed"
//!   experiments (E8);
//! * the [`machine`] module — an optional **k-machine accounting layer**
//!   ([`Network::new_with_machines`]): nodes are mapped to `k` machines
//!   ([`MachineMap`]), intra-machine messages are free, each directed
//!   machine-pair link carries a configurable word budget per k-machine
//!   round, and every executed CONGEST round *dilates* into
//!   `max(1, ⌈max link load / B⌉)` k-machine rounds. Pure observation:
//!   outcomes, [`Metrics`], and traces are bit-identical to the plain run.
//! * the [`adversary`] module — an optional **seeded fault layer**
//!   ([`Config::with_adversary`]): per-delivery message drop / duplicate /
//!   bounded delay with fixed-point probability knobs, plus node
//!   crash/restart schedules. Every fault is a pure function of the
//!   fault seed and the delivery's identity, drawn inside the commit
//!   fold, so faulty executions keep the engine's
//!   bit-identical-at-every-thread-count guarantee; a null adversary
//!   ([`Adversary::none`]) leaves the clean code paths untouched
//!   entirely.
//!
//! The engine is *event-efficient*: only nodes with a non-empty inbox or a
//! scheduled wake-up are invoked, so simulation cost is proportional to
//! traffic rather than `n × rounds`.
//!
//! # Example
//!
//! A two-node ping-pong protocol:
//!
//! ```
//! use dhc_congest::{Config, Context, Inbox, Network, Payload, Protocol};
//! use dhc_graph::Graph;
//!
//! #[derive(Clone, Debug)]
//! struct Ping(u32);
//! impl Payload for Ping {
//!     fn words(&self) -> usize { 1 }
//! }
//!
//! struct Node { hops_left: u32 }
//! impl Protocol for Node {
//!     type Msg = Ping;
//!     fn init(&mut self, ctx: &mut Context<'_, Ping>) {
//!         if ctx.node() == 0 {
//!             ctx.send(1, Ping(self.hops_left));
//!         }
//!     }
//!     fn round(&mut self, ctx: &mut Context<'_, Ping>, inbox: Inbox<'_, Ping>) {
//!         for (from, &Ping(k)) in inbox.iter() {
//!             if k == 0 {
//!                 ctx.halt(); // received the last ping
//!             } else {
//!                 ctx.send(from, Ping(k - 1));
//!                 if k == 1 { ctx.halt(); } // sent the last ping
//!             }
//!         }
//!     }
//! }
//!
//! # fn main() -> Result<(), dhc_congest::SimError> {
//! let g = Graph::from_edges(2, [(0, 1)]).unwrap();
//! let nodes = vec![Node { hops_left: 3 }, Node { hops_left: 3 }];
//! let mut net = Network::new(&g, Config::default(), nodes)?;
//! net.run()?;
//! let (report, _nodes) = net.finish();
//! assert_eq!(report.metrics.messages, 4); // 3, 2, 1, 0
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
mod config;
mod context;
mod effects;
mod error;
pub mod machine;
mod mailbox;
mod metrics;
mod network;
mod parcommit;
mod payload;
mod scratch;
pub mod trace;

pub use adversary::{Adversary, CrashEvent};
pub use config::Config;
// Telemetry vocabulary (defined in `dhc-obs`, attached via
// [`Config::with_collector`]) — re-exported so engine users need not
// depend on the telemetry crate directly.
pub use context::Context;
pub use dhc_obs::{Collector, CollectorHandle, FaultObs, RoundObs, Span};
pub use error::SimError;
pub use machine::{MachineMap, MachineMetrics, MachineRoundLog};
pub use mailbox::{Inbox, InboxIter};
pub use metrics::{Metrics, Report};
pub use network::Network;
pub use payload::{
    EnumCodec, MsgCodec, PackedCodec, PackedMsg, PackedPayload, Payload, PACKED_MAX_WORDS,
};
pub use scratch::EngineScratch;
pub use trace::{Trace, TraceEvent};

/// Node identifier — same dense index space as [`dhc_graph::NodeId`].
pub type NodeId = dhc_graph::NodeId;

/// Per-node state machine executed by the [`Network`].
///
/// One value of the implementing type exists per node. The engine calls
/// [`init`](Protocol::init) once before round 1, then
/// [`round`](Protocol::round) in every round in which the node has incoming
/// messages or a scheduled wake-up. Messages sent in round `r` are delivered
/// at the start of round `r + 1`.
///
/// Protocols must be `Send` so a round's callbacks can execute on worker
/// threads (each node is still only ever touched by one thread at a time;
/// see [`Config::engine_threads`]). Per-node state is plain data in
/// practice, so the bound is satisfied automatically.
pub trait Protocol: Send {
    /// The message type exchanged by this protocol.
    type Msg: Payload;

    /// Called once, before the first round. Sends made here are delivered
    /// in round 1.
    fn init(&mut self, ctx: &mut Context<'_, Self::Msg>);

    /// Called in each round where this node is active, with an [`Inbox`]
    /// view over the messages delivered this round (sorted by sender id;
    /// broadcast payloads are read by reference from the round's shared
    /// broadcast arena, never copied per receiver).
    fn round(&mut self, ctx: &mut Context<'_, Self::Msg>, inbox: Inbox<'_, Self::Msg>);

    /// Approximate local memory footprint in machine words, sampled by the
    /// engine for the per-node memory metrics. The default (0) opts out.
    fn memory_words(&self) -> usize {
        0
    }
}
