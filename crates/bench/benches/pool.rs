//! Criterion micro-benchmarks for the persistent worker pool behind the
//! round engine: per-batch dispatch latency (one `run_mut` call over a
//! slice of trivial jobs — the cost every simulated round pays before
//! any per-node work happens) and batch throughput on a compute-bound
//! workload, at pool sizes 1 (inline, no threads), 2, and all cores.
//! The spawn-per-batch baseline is what the engine paid before the
//! pool: a fresh `std::thread::scope` per round.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dhc_pool::WorkerPool;
use std::time::Duration;

/// Batch sizes spanning "idle round" to "busy round" — the engine's
/// auto mode only shards commits past 256 active nodes, so both sides
/// of that threshold matter.
const BATCH_SIZES: [usize; 3] = [64, 1_024, 16_384];

/// A few hundred ns of integer mixing per item: enough that a busy
/// batch is compute-bound, small enough that dispatch overhead shows.
fn mix(seed: u64) -> u64 {
    let mut x = seed;
    for _ in 0..64 {
        x = x.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31) ^ 0xbf58_476d_1ce4_e5b9;
    }
    x
}

fn bench_pool_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_dispatch");
    group.sample_size(20);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    for &len in &BATCH_SIZES {
        let mut items: Vec<u64> = (0..len as u64).collect();
        for &(label, threads) in &[("t1", 1usize), ("t2", 2), ("all_cores", 0)] {
            let threads = if threads == 0 {
                std::thread::available_parallelism().map_or(1, |p| p.get())
            } else {
                threads
            };
            let pool = WorkerPool::new(threads);
            group.bench_with_input(
                BenchmarkId::new(format!("persistent_{label}"), len),
                &len,
                |b, _| {
                    b.iter(|| {
                        pool.run_mut(&mut items, &|_, item| *item = mix(*item));
                    })
                },
            );
            // The pre-pool cost model: spawn + join fresh threads every
            // batch, the per-round price the engine used to pay.
            if threads > 1 {
                group.bench_with_input(
                    BenchmarkId::new(format!("spawn_per_batch_{label}"), len),
                    &len,
                    |b, _| {
                        b.iter(|| {
                            let chunk = len.div_ceil(threads);
                            std::thread::scope(|s| {
                                for part in items.chunks_mut(chunk) {
                                    s.spawn(move || {
                                        for item in part {
                                            *item = mix(*item);
                                        }
                                    });
                                }
                            });
                        })
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pool_dispatch);
criterion_main!(benches);
