//! Criterion end-to-end benchmarks: one full distributed run per
//! algorithm at a fixed operating point (wall-clock cost of the simulation,
//! complementing the round/message tables from the `experiments` binary).

use criterion::{criterion_group, criterion_main, Criterion};
use dhc_bench::workload::{floored_partitions, OperatingPoint};
use dhc_core::{run_collect_all, run_dhc1, run_dhc2, run_upcast, DhcConfig};
use std::time::Duration;

fn bench_algorithms(c: &mut Criterion) {
    let n = 256;
    let pt = OperatingPoint { n, delta: 0.5, c: 6.0 };
    let g = pt.sample(11).unwrap();
    let k = floored_partitions(n, 0.5);
    let mut group = c.benchmark_group("end_to_end_n256");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(8));
    group.bench_function("dhc2", |b| {
        b.iter(|| run_dhc2(&g, &DhcConfig::new(12).with_partitions(k)).unwrap().metrics.rounds)
    });
    group.bench_function("dhc1", |b| {
        b.iter(|| run_dhc1(&g, &DhcConfig::new(12).with_partitions(k)).unwrap().metrics.rounds)
    });
    group.bench_function("upcast", |b| {
        b.iter(|| run_upcast(&g, &DhcConfig::new(12)).unwrap().metrics.rounds)
    });
    group.bench_function("collect_all", |b| {
        b.iter(|| run_collect_all(&g, &DhcConfig::new(12)).unwrap().metrics.rounds)
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
