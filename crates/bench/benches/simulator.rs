//! Criterion micro-benchmarks: CONGEST engine overhead (a full-graph flood
//! with echo — the primitive every rotation broadcast pays for).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dhc_congest::{Config, Context, Inbox, Network, Protocol};
use dhc_graph::{generator, rng::rng_from_seed};
use std::time::Duration;

/// Flood + halt: each node forwards the token once.
struct Flood {
    seen: bool,
}

impl Protocol for Flood {
    type Msg = u64;
    fn init(&mut self, ctx: &mut Context<'_, u64>) {
        if ctx.node() == 0 {
            self.seen = true;
            ctx.send_all(1);
            ctx.halt();
        }
    }
    fn round(&mut self, ctx: &mut Context<'_, u64>, inbox: Inbox<'_, u64>) {
        if !inbox.is_empty() && !self.seen {
            self.seen = true;
            ctx.send_all(1);
        }
        ctx.halt();
    }
}

fn bench_flood(c: &mut Criterion) {
    let mut group = c.benchmark_group("congest_flood");
    group.sample_size(20);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    for &n in &[1_000usize, 10_000] {
        let p = 3.0 * (n as f64).ln() / n as f64;
        let g = generator::gnp(n, p, &mut rng_from_seed(8)).unwrap();
        group.bench_with_input(BenchmarkId::new("gnp_sparse", n), &g, |b, g| {
            b.iter(|| {
                let nodes = (0..g.node_count()).map(|_| Flood { seen: false }).collect();
                let mut net = Network::new(g, Config::default(), nodes).unwrap();
                net.run().unwrap();
                net.metrics().messages
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_flood);
criterion_main!(benches);
