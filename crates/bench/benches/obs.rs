//! Criterion micro-benchmarks for the `dhc-obs` telemetry layer:
//! collector overhead on the flood-echo engine probe (attached vs
//! detached — the <2% acceptance bar experiment E13 records to
//! `BENCH_engine.json`), span open/close cost, and the float-free
//! histogram's record/percentile hot path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dhc_bench::engine_probe::{flood_echo, flood_echo_observed, probe_graph};
use dhc_congest::CollectorHandle;
use dhc_obs::{Hist, RunObserver, Span};
use std::time::Duration;

fn bench_collector_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_collector");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    for &n in &[1_000usize, 10_000] {
        let g = probe_graph(n, 8);
        group.bench_with_input(BenchmarkId::new("flood_echo_detached", n), &g, |b, g| {
            b.iter(|| flood_echo(g, 1))
        });
        group.bench_with_input(BenchmarkId::new("flood_echo_attached", n), &g, |b, g| {
            // One observer reused across iterations: the steady-state
            // per-round cost, not allocation of the observer itself.
            let handle = CollectorHandle::new(RunObserver::new());
            b.iter(|| flood_echo_observed(g, 1, Some(handle.clone())))
        });
    }
    group.finish();
}

fn bench_span_and_hist(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_primitives");
    group.bench_function("span_open_close", |b| {
        let handle = CollectorHandle::new(RunObserver::new());
        b.iter(|| {
            let mut span = Span::root(Some(&handle), "run", "bench");
            span.add(1, 2, 3);
        })
    });
    group.bench_function("span_disabled", |b| {
        b.iter(|| {
            let mut span = Span::disabled();
            span.add(1, 2, 3);
        })
    });
    group.bench_function("hist_record_1k", |b| {
        b.iter(|| {
            let mut h = Hist::new();
            for i in 0..1_000u64 {
                h.record(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
            h
        })
    });
    group.bench_function("hist_percentiles", |b| {
        let mut h = Hist::new();
        for i in 0..10_000u64 {
            h.record(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        }
        b.iter(|| (h.p50(), h.p90(), h.p99()))
    });
    group.finish();
}

criterion_group!(benches, bench_collector_overhead, bench_span_and_hist);
criterion_main!(benches);
