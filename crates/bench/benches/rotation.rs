//! Criterion micro-benchmarks: the sequential rotation solver
//! (the Upcast root's local cost and the per-step price of Theorem 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dhc_graph::{generator, rng::rng_from_seed, thresholds};
use dhc_rotation::{greedy, posa, PosaConfig};
use std::time::Duration;

fn bench_posa(c: &mut Criterion) {
    let mut group = c.benchmark_group("posa");
    group.sample_size(20);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    for &n in &[500usize, 2_000, 8_000] {
        let p = thresholds::edge_probability(n, 1.0, 12.0);
        let g = generator::gnp(n, p, &mut rng_from_seed(4)).unwrap();
        group.bench_with_input(BenchmarkId::new("threshold_density", n), &g, |b, g| {
            b.iter(|| posa(g, &PosaConfig::default(), &mut rng_from_seed(5)))
        });
    }
    group.finish();
}

fn bench_greedy_baseline(c: &mut Criterion) {
    let n = 2_000;
    let p = thresholds::edge_probability(n, 1.0, 12.0);
    let g = generator::gnp(n, p, &mut rng_from_seed(6)).unwrap();
    c.bench_function("greedy_no_rotation_2k", |b| b.iter(|| greedy(&g, 3, &mut rng_from_seed(7))));
}

criterion_group!(benches, bench_posa, bench_greedy_baseline);
criterion_main!(benches);
