//! Criterion micro-benchmarks for the k-machine execution backend: a
//! DHC2 run with the machine accounting layer attached versus the plain
//! run on the same graph and seed. The delta is the full cost of the
//! per-message link accounting, the per-round log, and the dilation fold
//! — experiment E11 records the simulated quantities themselves to
//! `BENCH_kmachine.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dhc_core::{run_dhc2, run_dhc2_kmachine, DhcConfig, KMachineConfig};
use dhc_graph::rng::rng_from_seed;
use dhc_graph::{generator, thresholds, Graph};
use std::time::Duration;

/// A DHC2 operating point that succeeds for the fixed seed below.
fn bench_graph(n: usize) -> Graph {
    let p = thresholds::edge_probability(n, 0.5, 6.0);
    generator::gnp(n, p, &mut rng_from_seed(0xB11)).expect("valid gnp")
}

/// The first of 8 seeds whose DHC2 run succeeds on `g`.
fn succeeding_cfg(g: &Graph, parts: usize) -> DhcConfig {
    (0..8u64)
        .map(|s| DhcConfig::new(0xD2 + s).with_partitions(parts))
        .find(|cfg| run_dhc2(g, cfg).is_ok())
        .expect("DHC2 should succeed for at least one of 8 seeds")
}

fn bench_kmachine_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("kmachine");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    let n = 192;
    let g = bench_graph(n);
    let cfg = succeeding_cfg(&g, 6);
    group.bench_with_input(BenchmarkId::new("dhc2-plain", n), &(&g, &cfg), |b, (g, cfg)| {
        b.iter(|| run_dhc2(g, cfg).expect("seed-scanned success"))
    });
    for k in [4usize, 16] {
        let kcfg = KMachineConfig::new(k).with_rvp_seed(7);
        group.bench_with_input(
            BenchmarkId::new(format!("dhc2-kmachine-k{k}"), n),
            &(&g, &cfg, kcfg),
            |b, (g, cfg, kcfg)| b.iter(|| run_dhc2_kmachine(g, cfg, kcfg).expect("same run")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kmachine_overhead);
criterion_main!(benches);
