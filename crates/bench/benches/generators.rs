//! Criterion micro-benchmarks: random-graph generation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dhc_graph::{generator, rng::rng_from_seed};
use std::time::Duration;

fn bench_gnp(c: &mut Criterion) {
    let mut group = c.benchmark_group("gnp");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    for &n in &[1_000usize, 10_000, 100_000] {
        let p = 4.0 * (n as f64).ln() / n as f64; // sparse regime
        group.bench_with_input(BenchmarkId::new("sparse", n), &n, |b, &n| {
            b.iter(|| generator::gnp(n, p, &mut rng_from_seed(1)).unwrap())
        });
    }
    for &n in &[1_000usize, 4_000] {
        group.bench_with_input(BenchmarkId::new("dense_p0.3", n), &n, |b, &n| {
            b.iter(|| generator::gnp(n, 0.3, &mut rng_from_seed(1)).unwrap())
        });
    }
    group.finish();
}

fn bench_gnm_and_regular(c: &mut Criterion) {
    let mut group = c.benchmark_group("other_generators");
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    group.bench_function("gnm_10k_nodes_50k_edges", |b| {
        b.iter(|| generator::gnm(10_000, 50_000, &mut rng_from_seed(2)).unwrap())
    });
    group.bench_function("random_regular_5k_d8", |b| {
        b.iter(|| generator::random_regular(5_000, 8, &mut rng_from_seed(3)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_gnp, bench_gnm_and_regular);
criterion_main!(benches);
