//! Criterion micro-benchmarks: round-engine throughput (rounds/sec) on
//! the flood-echo microprotocol and the broadcast-storm workload (every
//! node `send_all`s every round — the shared-payload flood fabric's hot
//! path), at one engine thread and at all cores. Experiment E13 records
//! the same workloads to `BENCH_engine.json` so the perf trajectory is
//! tracked across PRs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dhc_bench::engine_probe::{
    flood_echo, flood_echo_unicast, flood_storm, flood_storm_unicast, probe_graph, STORM_DEPTH,
};
use std::time::Duration;

fn bench_engine_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_rounds");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    for &n in &[1_000usize, 10_000] {
        let g = probe_graph(n, 8);
        for &(label, threads) in &[("t1", 1usize), ("all_cores", 0)] {
            group.bench_with_input(
                BenchmarkId::new(format!("flood_echo_{label}"), n),
                &g,
                |b, g| b.iter(|| flood_echo(g, threads)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("broadcast_storm_{label}"), n),
                &g,
                |b, g| b.iter(|| flood_storm(g, STORM_DEPTH, threads)),
            );
            // Pre-fabric baselines: the same floods as per-neighbor sends.
            group.bench_with_input(
                BenchmarkId::new(format!("flood_echo_unicast_{label}"), n),
                &g,
                |b, g| b.iter(|| flood_echo_unicast(g, threads)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("broadcast_storm_unicast_{label}"), n),
                &g,
                |b, g| b.iter(|| flood_storm_unicast(g, STORM_DEPTH, threads)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_engine_rounds);
criterion_main!(benches);
