//! Criterion micro-benchmarks: Phase-1 partition setup — materializing
//! every class's induced subgraph versus one zero-copy
//! `PartitionedGraph` grouping pass — at the paper's `k = √n`
//! partitioning. Experiment E14 records the same workload (plus an
//! end-to-end DHC1 comparison) to `BENCH_partition.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dhc_bench::partition_probe::{setup_copy, setup_graph, setup_partition, setup_view};
use std::time::Duration;

fn bench_phase1_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase1_setup");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(5));
    for &n in &[1_000usize, 10_000] {
        let k = (n as f64).sqrt().round() as usize;
        let g = setup_graph(n, 8);
        let p = setup_partition(n, k, 8);
        group.bench_with_input(BenchmarkId::new("copy", n), &(&g, &p), |b, (g, p)| {
            b.iter(|| setup_copy(g, p))
        });
        group.bench_with_input(BenchmarkId::new("view", n), &(&g, &p), |b, (g, p)| {
            b.iter(|| setup_view(g, p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_phase1_setup);
criterion_main!(benches);
