//! Every committed `BENCH_*.json` baseline at the workspace root must
//! be a valid `dhc-bench/v1` document ([`dhc_obs::schema`]) — the
//! contract that lets downstream tooling (and the carry-forward logic
//! in `dhc_bench::baseline`) parse any baseline without per-experiment
//! special cases. CI runs this as the schema-check step.

use std::path::PathBuf;

/// The workspace root, two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..").join("..")
}

#[test]
fn committed_baselines_validate_against_the_bench_schema() {
    let root = workspace_root();
    let mut checked = Vec::new();
    for entry in std::fs::read_dir(&root).expect("workspace root readable") {
        let path = entry.expect("dir entry").path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("baseline readable");
        if let Err(errors) = dhc_obs::schema::validate(&text) {
            panic!("{name} is not a valid dhc-bench/v1 document:\n  {}", errors.join("\n  "));
        }
        checked.push(name.to_string());
    }
    assert!(
        checked.len() >= 5,
        "expected at least the five committed baselines at {}, found {checked:?}",
        root.display()
    );
}

#[test]
fn committed_engine_baseline_keeps_collector_overhead_under_two_percent() {
    use dhc_obs::json::Json;
    let text = std::fs::read_to_string(workspace_root().join("BENCH_engine.json"))
        .expect("BENCH_engine.json readable");
    let doc = Json::parse(&text).expect("valid JSON");
    let records = doc.get("records").and_then(Json::as_array).expect("records array");
    let overhead = records
        .iter()
        .find(|r| r.get("kind").and_then(Json::as_str) == Some("collector-overhead"))
        .expect("BENCH_engine.json records a collector-overhead row");
    let pct = overhead
        .get("overhead_pct")
        .and_then(|v| match v {
            Json::Num(s) => s.parse::<f64>().ok(),
            _ => None,
        })
        .expect("overhead_pct number");
    assert!(pct < 2.0, "telemetry collector overhead on flood-echo is {pct:.3}% (bar: < 2%)");
}
