//! Round-engine throughput probe: a flood-echo microprotocol whose cost
//! is almost pure engine overhead (mailbox routing, active-set
//! bookkeeping, per-edge bandwidth checks), used by `benches/engine.rs`
//! and experiment E13 to track rounds/sec across engine-thread counts.
//!
//! The protocol is the primitive every rotation broadcast in the paper
//! pays for: node 0 floods a wave over the whole graph; each node adopts
//! the first sender as its parent, forwards the wave, and answers every
//! wave it was sent with exactly one reply — immediately if it declined,
//! or after its whole subtree completed if it adopted. Total traffic is
//! `Θ(m)` messages over `Θ(diameter)` rounds, with every node active in
//! several rounds — the same shape as the DRA/DHC inner loops.

use dhc_congest::{Config, Context, Network, NodeId, Payload, Protocol};
use dhc_graph::Graph;

/// Flood-echo messages.
#[derive(Clone, Debug)]
pub enum ProbeMsg {
    /// The flood wave.
    Wave,
    /// The per-wave response: an immediate decline or a completed echo.
    Reply,
}

impl Payload for ProbeMsg {}

/// Per-node flood-echo state.
#[derive(Debug, Default)]
pub struct FloodEcho {
    seen: bool,
    parent: Option<NodeId>,
    /// Replies still outstanding for the waves this node sent.
    pending: usize,
    done: bool,
}

impl FloodEcho {
    fn completion_check(&mut self, ctx: &mut Context<'_, ProbeMsg>) {
        if !self.seen || self.done || self.pending != 0 {
            return;
        }
        self.done = true;
        if let Some(p) = self.parent {
            ctx.send(p, ProbeMsg::Reply);
        }
        ctx.halt();
    }
}

impl Protocol for FloodEcho {
    type Msg = ProbeMsg;

    fn init(&mut self, ctx: &mut Context<'_, ProbeMsg>) {
        if ctx.node() == 0 {
            self.seen = true;
            self.pending = ctx.degree();
            ctx.send_all(ProbeMsg::Wave);
        }
    }

    fn round(&mut self, ctx: &mut Context<'_, ProbeMsg>, inbox: &[(NodeId, ProbeMsg)]) {
        for &(from, ref msg) in inbox {
            match msg {
                ProbeMsg::Wave => {
                    if self.seen {
                        // Already adopted (possibly earlier this very
                        // round): decline so the sender's echo completes.
                        ctx.send(from, ProbeMsg::Reply);
                    } else {
                        self.seen = true;
                        self.parent = Some(from);
                        self.pending = ctx.degree() - 1;
                        for i in 0..ctx.degree() {
                            let to = ctx.neighbors()[i];
                            if to != from {
                                ctx.send(to, ProbeMsg::Wave);
                            }
                        }
                    }
                }
                ProbeMsg::Reply => {
                    self.pending = self.pending.saturating_sub(1);
                }
            }
        }
        self.completion_check(ctx);
    }
}

/// One complete flood-echo run on `graph` at the given engine-thread
/// count; returns `(rounds, messages)`.
///
/// # Panics
///
/// Panics if the simulation faults — only possible on a disconnected
/// graph (the flood then stalls).
pub fn flood_echo(graph: &Graph, engine_threads: usize) -> (usize, u64) {
    let nodes: Vec<FloodEcho> = (0..graph.node_count()).map(|_| FloodEcho::default()).collect();
    // A node may forward the wave to a neighbor and decline that same
    // neighbor's wave in one round: two 1-word messages per edge.
    let cfg = Config::default().with_bandwidth_words(2).with_engine_threads(engine_threads);
    let mut net = Network::new(graph, cfg, nodes).expect("probe network");
    net.run().expect("flood-echo completes on a connected graph");
    (net.metrics().rounds, net.metrics().messages)
}

/// The probe's standard topology: a connected sparse `G(n, p)` with
/// `p = 3 ln n / n` (seeded, shared by the bench and E13).
pub fn probe_graph(n: usize, seed: u64) -> Graph {
    let p = 3.0 * (n as f64).ln() / n as f64;
    dhc_graph::generator::gnp(n, p, &mut dhc_graph::rng::rng_from_seed(seed)).expect("valid gnp")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_echo_completes_and_is_thread_count_independent() {
        let g = probe_graph(300, 8);
        let serial = flood_echo(&g, 1);
        assert!(serial.0 > 0 && serial.1 > 0);
        assert_eq!(serial, flood_echo(&g, 4));
        assert_eq!(serial, flood_echo(&g, 0));
    }

    #[test]
    fn flood_echo_traffic_is_theta_m() {
        let g = probe_graph(200, 9);
        let (_, messages) = flood_echo(&g, 1);
        let m = g.edge_count() as u64;
        // Every edge carries between one wave and two waves + two replies.
        assert!(messages >= m && messages <= 4 * m, "messages {messages}, m {m}");
    }
}
