//! Round-engine throughput probes used by `benches/engine.rs` and
//! experiment E13 to track rounds/sec across engine-thread counts:
//!
//! * **flood-echo** — a microprotocol whose cost is almost pure engine
//!   overhead (mailbox routing, active-set bookkeeping, per-edge
//!   bandwidth checks): node 0 floods a wave over the whole graph; each
//!   node adopts the first sender as its parent, forwards the wave, and
//!   answers every wave it was sent with exactly one reply — immediately
//!   if it declined, or after its whole subtree completed if it adopted.
//!   Total traffic is `Θ(m)` messages over `Θ(diameter)` rounds, the
//!   same shape as the DRA/DHC inner loops.
//! * **broadcast storm** — every node floods all neighbors every round:
//!   the pure `send_all` hot path of the paper's color waves and
//!   rotation/abort/done floods.
//!
//! Both probes run in two modes: the default rides the engine's
//! **broadcast fabric** (`send_all` / `send_all_except`, one shared
//! payload per flooding op), while the *unicast* twin expands every
//! flood into per-neighbor `send` calls — the pre-fabric cost model,
//! kept as the speedup baseline. The two modes are observationally
//! identical (same rounds, messages, metrics; pinned by
//! `crates/congest/tests/broadcast_equivalence.rs`).

use dhc_congest::{CollectorHandle, Config, Context, Inbox, Network, NodeId, Payload, Protocol};
use dhc_graph::Graph;

/// Flood-echo messages.
#[derive(Clone, Debug)]
pub enum ProbeMsg {
    /// The flood wave.
    Wave,
    /// The per-wave response: an immediate decline or a completed echo.
    Reply,
}

impl Payload for ProbeMsg {}

/// Per-node flood-echo state.
#[derive(Debug, Default)]
pub struct FloodEcho {
    seen: bool,
    parent: Option<NodeId>,
    /// Replies still outstanding for the waves this node sent.
    pending: usize,
    done: bool,
    /// Expand floods into per-neighbor unicasts (pre-fabric baseline).
    expand: bool,
}

impl FloodEcho {
    fn completion_check(&mut self, ctx: &mut Context<'_, ProbeMsg>) {
        if !self.seen || self.done || self.pending != 0 {
            return;
        }
        self.done = true;
        if let Some(p) = self.parent {
            ctx.send(p, ProbeMsg::Reply);
        }
        ctx.halt();
    }
}

impl Protocol for FloodEcho {
    type Msg = ProbeMsg;

    fn init(&mut self, ctx: &mut Context<'_, ProbeMsg>) {
        if ctx.node() == 0 {
            self.seen = true;
            self.pending = ctx.degree();
            if self.expand {
                for i in 0..ctx.degree() {
                    let to = ctx.neighbors()[i];
                    ctx.send(to, ProbeMsg::Wave);
                }
            } else {
                ctx.send_all(ProbeMsg::Wave);
            }
        }
    }

    fn round(&mut self, ctx: &mut Context<'_, ProbeMsg>, inbox: Inbox<'_, ProbeMsg>) {
        for (from, msg) in inbox.iter() {
            match msg {
                ProbeMsg::Wave => {
                    if self.seen {
                        // Already adopted (possibly earlier this very
                        // round): decline so the sender's echo completes.
                        ctx.send(from, ProbeMsg::Reply);
                    } else {
                        self.seen = true;
                        self.parent = Some(from);
                        self.pending = ctx.degree() - 1;
                        if self.expand {
                            for i in 0..ctx.degree() {
                                let to = ctx.neighbors()[i];
                                if to != from {
                                    ctx.send(to, ProbeMsg::Wave);
                                }
                            }
                        } else {
                            ctx.send_all_except(from, ProbeMsg::Wave);
                        }
                    }
                }
                ProbeMsg::Reply => {
                    self.pending = self.pending.saturating_sub(1);
                }
            }
        }
        self.completion_check(ctx);
    }
}

/// One complete flood-echo run on `graph` at the given engine-thread
/// count; returns `(rounds, messages)`.
///
/// # Panics
///
/// Panics if the simulation faults — only possible on a disconnected
/// graph (the flood then stalls).
pub fn flood_echo(graph: &Graph, engine_threads: usize) -> (usize, u64) {
    flood_echo_observed(graph, engine_threads, None)
}

/// [`flood_echo`] with an optional telemetry collector attached — the
/// probe E13 uses to measure collector overhead (attached vs detached
/// wall-clock on the same engine-bound workload; the simulated results
/// are bit-identical either way, pinned by
/// `crates/core/tests/obs_equivalence.rs`).
///
/// # Panics
///
/// Like [`flood_echo`].
pub fn flood_echo_observed(
    graph: &Graph,
    engine_threads: usize,
    collector: Option<CollectorHandle>,
) -> (usize, u64) {
    flood_echo_mode(graph, engine_threads, false, collector)
}

/// [`flood_echo`] with the floods expanded into per-neighbor unicasts —
/// the pre-broadcast-fabric cost model, kept as the speedup baseline.
///
/// # Panics
///
/// Like [`flood_echo`].
pub fn flood_echo_unicast(graph: &Graph, engine_threads: usize) -> (usize, u64) {
    flood_echo_mode(graph, engine_threads, true, None)
}

fn flood_echo_mode(
    graph: &Graph,
    engine_threads: usize,
    expand: bool,
    collector: Option<CollectorHandle>,
) -> (usize, u64) {
    let nodes: Vec<FloodEcho> =
        (0..graph.node_count()).map(|_| FloodEcho { expand, ..FloodEcho::default() }).collect();
    // A node may forward the wave to a neighbor and decline that same
    // neighbor's wave in one round: two 1-word messages per edge.
    let mut cfg = Config::default().with_bandwidth_words(2).with_engine_threads(engine_threads);
    if let Some(col) = collector {
        cfg = cfg.with_collector(col);
    }
    let mut net = Network::new(graph, cfg, nodes).expect("probe network");
    net.run().expect("flood-echo completes on a connected graph");
    (net.metrics().rounds, net.metrics().messages)
}

/// The probe's standard topology: a connected sparse `G(n, p)` with
/// `p = 3 ln n / n` (seeded, shared by the bench and E13).
pub fn probe_graph(n: usize, seed: u64) -> Graph {
    let p = 3.0 * (n as f64).ln() / n as f64;
    dhc_graph::generator::gnp(n, p, &mut dhc_graph::rng::rng_from_seed(seed)).expect("valid gnp")
}

/// Storm depth (rounds of all-node broadcasting) shared by
/// `benches/engine.rs` and experiment E13.
pub const STORM_DEPTH: usize = 50;

/// Per-node state of the broadcast-storm probe.
#[derive(Debug)]
pub struct Storm {
    remaining: usize,
    /// Expand floods into per-neighbor unicasts (pre-fabric baseline).
    expand: bool,
}

impl Storm {
    fn flood(&self, ctx: &mut Context<'_, StormMsg>, tag: u64) {
        if self.expand {
            for i in 0..ctx.degree() {
                let to = ctx.neighbors()[i];
                ctx.send(to, StormMsg([tag; 6]));
            }
        } else {
            ctx.send_all(StormMsg([tag; 6]));
        }
    }
}

/// Storm payload: six words, the size of the paper's rotation-broadcast
/// messages (`DraMsg::Rotation` / `HypMsg::HypRotation`) — the dominant
/// flood payload of the DHC runs.
#[derive(Clone, Debug)]
pub struct StormMsg(pub [u64; 6]);

impl Payload for StormMsg {
    fn words(&self) -> usize {
        self.0.len()
    }
}

impl Protocol for Storm {
    type Msg = StormMsg;

    fn init(&mut self, ctx: &mut Context<'_, StormMsg>) {
        self.flood(ctx, 0);
    }

    fn round(&mut self, ctx: &mut Context<'_, StormMsg>, _inbox: Inbox<'_, StormMsg>) {
        if self.remaining == 0 {
            ctx.halt();
        } else {
            self.remaining -= 1;
            self.flood(ctx, self.remaining as u64);
        }
    }
}

/// Broadcast-storm probe: **every** node floods a six-word
/// [`StormMsg`] (the paper's rotation-broadcast size) to all neighbors
/// in every round for `depth` rounds, then halts — `Θ(n)` broadcasts
/// and `Θ(m)` deliveries per round, the pure `send_all` hot path the
/// DRA color waves and rotation/abort/done floods exercise. Returns
/// `(rounds, messages)`.
///
/// # Panics
///
/// Panics if the simulation faults — only possible when the graph has an
/// isolated node (which never activates and stalls the run).
pub fn flood_storm(graph: &Graph, depth: usize, engine_threads: usize) -> (usize, u64) {
    flood_storm_mode(graph, depth, engine_threads, false)
}

/// [`flood_storm`] with the floods expanded into per-neighbor unicasts —
/// the pre-broadcast-fabric cost model, kept as the speedup baseline.
///
/// # Panics
///
/// Like [`flood_storm`].
pub fn flood_storm_unicast(graph: &Graph, depth: usize, engine_threads: usize) -> (usize, u64) {
    flood_storm_mode(graph, depth, engine_threads, true)
}

fn flood_storm_mode(
    graph: &Graph,
    depth: usize,
    engine_threads: usize,
    expand: bool,
) -> (usize, u64) {
    let nodes: Vec<Storm> =
        (0..graph.node_count()).map(|_| Storm { remaining: depth, expand }).collect();
    let cfg = Config::default()
        .with_bandwidth_words(StormMsg([0; 6]).words())
        .with_engine_threads(engine_threads);
    let mut net = Network::new(graph, cfg, nodes).expect("probe network");
    net.run().expect("storm completes without isolated nodes");
    (net.metrics().rounds, net.metrics().messages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flood_storm_sends_two_m_per_round_and_matches_thread_counts() {
        let g = probe_graph(200, 9);
        let depth = 10;
        let (rounds, messages) = flood_storm(&g, depth, 1);
        assert_eq!(rounds, depth + 1);
        assert_eq!(messages, 2 * g.edge_count() as u64 * (depth as u64 + 1));
        assert_eq!((rounds, messages), flood_storm(&g, depth, 4));
        assert_eq!((rounds, messages), flood_storm(&g, depth, 0));
        // The unicast twin is observationally identical.
        assert_eq!((rounds, messages), flood_storm_unicast(&g, depth, 1));
    }

    #[test]
    fn flood_echo_unicast_twin_is_observationally_identical() {
        let g = probe_graph(300, 8);
        assert_eq!(flood_echo(&g, 1), flood_echo_unicast(&g, 1));
    }

    #[test]
    fn flood_echo_completes_and_is_thread_count_independent() {
        let g = probe_graph(300, 8);
        let serial = flood_echo(&g, 1);
        assert!(serial.0 > 0 && serial.1 > 0);
        assert_eq!(serial, flood_echo(&g, 4));
        assert_eq!(serial, flood_echo(&g, 0));
    }

    #[test]
    fn flood_echo_traffic_is_theta_m() {
        let g = probe_graph(200, 9);
        let (_, messages) = flood_echo(&g, 1);
        let m = g.edge_count() as u64;
        // Every edge carries between one wave and two waves + two replies.
        assert!(messages >= m && messages <= 4 * m, "messages {messages}, m {m}");
    }
}
