//! Phase-1 partition-pipeline probes: the setup workload behind
//! `benches/partition.rs` and experiment E14.
//!
//! "Setup" is everything DHC1/DHC2 Phase 1 does before the first
//! simulated round: turning a colored graph into `k` per-class induced
//! subgraphs. The copying baseline materializes each class with
//! [`Graph::induced_subgraph`] (an `O(n)` remap vector plus a fresh CSR
//! per class — `O(n·k)` total); the zero-copy path builds one
//! [`PartitionedGraph`] in `O(n + m)` and hands out
//! [`dhc_graph::ClassView`]s.
//! Both probes fold a checksum over the produced subgraphs so the work
//! cannot be optimized away.

use dhc_graph::rng::rng_from_seed;
use dhc_graph::{Graph, Partition, PartitionedGraph, Topology};

/// The probe's standard topology: a connected sparse `G(n, p)` with
/// `p = 4 ln n / n` (seeded; setup cost does not depend on whether the
/// downstream DRA would succeed, so the graph can stay sparse even at
/// `n = 10⁵`).
pub fn setup_graph(n: usize, seed: u64) -> Graph {
    let p = 4.0 * (n as f64).ln() / n as f64;
    dhc_graph::generator::gnp(n, p, &mut rng_from_seed(seed)).expect("valid gnp")
}

/// The probe's partition: `k` uniform color classes (seeded).
pub fn setup_partition(n: usize, k: usize, seed: u64) -> Partition {
    Partition::random(n, k, &mut rng_from_seed(seed ^ 0xE14))
}

/// Copying Phase-1 setup: materialize every non-empty class's induced
/// subgraph. Returns a checksum (total CSR words + edge counts).
pub fn setup_copy(graph: &Graph, partition: &Partition) -> usize {
    let mut acc = 0usize;
    for class in partition.classes() {
        if class.is_empty() {
            continue;
        }
        let (sub, map) = graph.induced_subgraph(class).expect("valid class");
        acc += sub.words() + sub.edge_count() + map.len();
    }
    acc
}

/// Zero-copy Phase-1 setup: one grouping pass plus a view per class.
/// Returns the same checksum shape as [`setup_copy`] computed from the
/// views (equal edge counts, members — the words differ by design: the
/// views share one grouped array).
pub fn setup_view(graph: &Graph, partition: &Partition) -> usize {
    let pg = PartitionedGraph::new(graph, partition);
    let mut acc = 0usize;
    for c in 0..partition.class_count() {
        if let Ok(view) = pg.class_view(c) {
            acc += view.edge_count() + view.members().len();
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_agree_on_the_logical_subgraphs() {
        let g = setup_graph(500, 3);
        let p = setup_partition(500, 8, 3);
        // Copy checksum includes per-class CSR words; strip them by
        // recomputing the comparable part.
        let view_acc = setup_view(&g, &p);
        let mut copy_acc = 0usize;
        for class in p.classes() {
            let (sub, map) = g.induced_subgraph(class).unwrap();
            copy_acc += sub.edge_count() + map.len();
        }
        assert_eq!(view_acc, copy_acc);
    }
}
