//! Workload construction (the paper's operating points) and trial sweeps.

use dhc_graph::rng::{derive_seed, rng_from_seed};
use dhc_graph::{generator, thresholds, Graph, GraphError};

/// One `G(n, p)` operating point `p = c ln n / n^δ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Number of nodes.
    pub n: usize,
    /// Sparsity exponent δ.
    pub delta: f64,
    /// Threshold constant `c`.
    pub c: f64,
}

impl OperatingPoint {
    /// The edge probability of this point (clamped to `[0, 1]`).
    pub fn p(&self) -> f64 {
        thresholds::edge_probability(self.n, self.delta, self.c)
    }

    /// Samples a graph at this point.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from the generator (cannot occur for valid
    /// points; kept for honesty).
    pub fn sample(&self, seed: u64) -> Result<Graph, GraphError> {
        generator::gnp(self.n, self.p(), &mut rng_from_seed(seed))
    }
}

/// Runs `trials` independent trials in parallel (one thread each, capped at
/// the available parallelism) and returns the per-trial outputs in trial
/// order. Each trial gets a seed derived from `(seed, index)`.
pub fn run_trials<T, F>(trials: usize, seed: u64, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, u64) -> T + Sync,
{
    let max_par = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let mut out: Vec<Option<T>> = (0..trials).map(|_| None).collect();
    let mut next = 0usize;
    while next < trials {
        let batch = (trials - next).min(max_par);
        let chunk_results: Vec<(usize, T)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (next..next + batch)
                .map(|i| {
                    let f = &f;
                    scope.spawn(move || (i, f(i, derive_seed(seed, i as u64))))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("trial thread panicked")).collect()
        });
        for (i, r) in chunk_results {
            out[i] = Some(r);
        }
        next += batch;
    }
    out.into_iter().map(|o| o.expect("all trials filled")).collect()
}

/// Success-rate helper: fraction of `true` in a boolean sample.
pub fn success_rate(ok: &[bool]) -> f64 {
    if ok.is_empty() {
        return 0.0;
    }
    ok.iter().filter(|&&b| b).count() as f64 / ok.len() as f64
}

/// The paper's round-bound scale for DHC1/DHC2: `n^δ · ln²n / ln ln n`
/// (Theorems 1 and 10). Measured rounds divided by this should be roughly
/// constant across `n`.
pub fn theorem_scale(n: usize, delta: f64) -> f64 {
    let nf = (n.max(3)) as f64;
    nf.powf(delta) * nf.ln().powi(2) / nf.ln().ln().max(1.0)
}

/// Phase-1 worker threads for one algorithm run inside a
/// [`run_trials`] sweep: the sweep already occupies one core per
/// concurrent trial, so each run gets the remaining share (at least 1).
/// Results are unaffected — [`dhc_core::DhcConfig::with_parallelism`]
/// is deterministic by contract — this only spends idle cores when the
/// trial count is smaller than the machine.
pub fn phase1_parallelism(trials: usize) -> usize {
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    (cores / trials.clamp(1, cores)).max(1)
}

/// Phase-1 partition count used by the experiments: the paper's
/// `n^{1-δ}`, floored so classes keep at least ~32 nodes (below that the
/// per-class rotation runs are dominated by small-sample noise unrelated
/// to the asymptotic claim; the floor is reported in the output).
pub fn floored_partitions(n: usize, delta: f64) -> usize {
    let k_paper = dhc_graph::thresholds::num_partitions(n, delta);
    k_paper.min((n / 32).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operating_point_probability() {
        let pt = OperatingPoint { n: 1024, delta: 0.5, c: 4.0 };
        let expected = 4.0 * (1024f64).ln() / 32.0;
        assert!((pt.p() - expected.min(1.0)).abs() < 1e-12);
    }

    #[test]
    fn sample_is_deterministic() {
        let pt = OperatingPoint { n: 128, delta: 1.0, c: 8.0 };
        assert_eq!(pt.sample(5).unwrap(), pt.sample(5).unwrap());
    }

    #[test]
    fn trials_run_in_order_with_derived_seeds() {
        let results = run_trials(8, 42, |i, s| (i, s));
        for (i, &(idx, seed)) in results.iter().enumerate() {
            assert_eq!(i, idx);
            assert_eq!(seed, dhc_graph::rng::derive_seed(42, i as u64));
        }
    }

    #[test]
    fn trials_parallel_results_match_serial() {
        let par = run_trials(16, 7, |i, s| i as u64 * 1000 + s % 1000);
        let ser: Vec<u64> = (0..16)
            .map(|i| i as u64 * 1000 + dhc_graph::rng::derive_seed(7, i as u64) % 1000)
            .collect();
        assert_eq!(par, ser);
    }

    #[test]
    fn success_rate_counts() {
        assert_eq!(success_rate(&[true, false, true, true]), 0.75);
        assert_eq!(success_rate(&[]), 0.0);
    }
}
