//! **E14 — partition-pipeline baseline** (not a paper claim): Phase-1
//! setup cost of the zero-copy [`dhc_graph::PartitionedGraph`] versus
//! materializing every class with `Graph::induced_subgraph`, plus an
//! end-to-end DHC1 run under both Phase-1 representations
//! ([`DhcConfig::with_materialized_phase1`]), recorded to
//! `BENCH_partition.json` so the perf trajectory is tracked across PRs.
//!
//! Setup is measured at `n ∈ {10⁴, 10⁵}` with `k = √n` classes — the
//! paper's DHC1 partitioning — where the copying baseline pays an
//! `O(n·√n)` allocation bill (one `O(n)` remap vector plus a fresh CSR
//! per class) against the view path's single `O(n + m)` grouping pass.
//! The end-to-end comparison runs the largest DHC1 operating point this
//! container sustains (`n = 10⁴`, `k = 50` classes at full effort —
//! ~2·10⁹ simulated messages; ~40 s per view-mode run on the broadcast
//! fabric, ~5× the pre-fabric engine) and requires the experiments
//! binary's `--heavy` flag; the two modes must produce **bit-identical**
//! cycles and metrics, which the experiment asserts.

use crate::baseline::{baseline_path, carried_records, write_baseline};
use crate::partition_probe::{setup_copy, setup_graph, setup_partition, setup_view};
use crate::table::{f3, Table};
use dhc_core::{run_dhc1, DhcConfig};
use dhc_graph::rng::rng_from_seed;
use dhc_graph::Graph;
use dhc_obs::json::Json;
use dhc_obs::schema::{BenchDoc, Record};
use std::time::Instant;

use super::Effort;

/// End-to-end DHC1 point: `n` nodes, `k` partitions.
#[derive(Debug, Clone, Copy)]
pub struct E2ePoint {
    /// Graph size.
    pub n: usize,
    /// Phase-1 partition count.
    pub k: usize,
}

/// End-to-end points with more nodes than this take over a minute on a
/// CI-class host (the n = 10⁴ point runs both Phase-1 representations,
/// ~40 s + ~70 s post-broadcast-fabric, ~200 s *each* before it) and
/// are gated behind the experiments binary's explicit `--heavy` flag.
pub const HEAVY_E2E_NODES: usize = 4_000;

/// Sweep parameters for E14.
#[derive(Debug, Clone)]
pub struct Params {
    /// Graph sizes for the setup comparison (`k = √n` classes each).
    pub setup_sizes: Vec<usize>,
    /// Timed repetitions per setup point (the minimum is reported).
    pub setup_reps: usize,
    /// End-to-end DHC1 comparison point, if any.
    pub e2e: Option<E2ePoint>,
    /// Whether to write the `BENCH_partition.json` baseline (disabled
    /// for smoke runs so tests do not touch the filesystem).
    pub emit_json: bool,
    /// A heavy point dropped by [`gated`](Params::gated); `run` prints a
    /// one-line skip notice for it.
    pub skipped_heavy: Option<E2ePoint>,
}

impl Params {
    /// Parameters for the given effort level.
    pub fn for_effort(effort: Effort) -> Self {
        match effort {
            Effort::Full => Params {
                setup_sizes: vec![10_000, 100_000],
                setup_reps: 3,
                e2e: Some(E2ePoint { n: 10_000, k: 50 }),
                emit_json: true,
                skipped_heavy: None,
            },
            // Quick uses a smaller e2e point than Full, so it must not
            // overwrite the committed baseline: `BENCH_partition.json`
            // rows stay comparable across PRs only if they always come
            // from the Full workload.
            Effort::Quick => Params {
                setup_sizes: vec![10_000, 100_000],
                setup_reps: 2,
                e2e: Some(E2ePoint { n: 2_500, k: 25 }),
                emit_json: false,
                skipped_heavy: None,
            },
            Effort::Smoke => Params {
                setup_sizes: vec![2_000],
                setup_reps: 1,
                e2e: Some(E2ePoint { n: 240, k: 4 }),
                emit_json: false,
                skipped_heavy: None,
            },
        }
    }

    /// Applies the `--heavy` gate: without the flag, end-to-end points
    /// above [`HEAVY_E2E_NODES`] are dropped so `experiments all` stays
    /// tractable. The baseline write survives the gate: the committed
    /// `dhc1-e2e` records are carried forward verbatim (see
    /// [`crate::baseline::carried_records`]), so a non-heavy refresh
    /// updates the setup rows without losing the end-to-end ones.
    pub fn gated(mut self, heavy: bool) -> Self {
        if !heavy {
            if let Some(pt) = self.e2e {
                if pt.n > HEAVY_E2E_NODES {
                    self.e2e = None;
                    self.skipped_heavy = Some(pt);
                }
            }
        }
        self
    }
}

/// One measured setup point.
struct SetupSample {
    n: usize,
    k: usize,
    m: usize,
    copy_ms: f64,
    view_ms: f64,
}

fn measure_setup(n: usize, reps: usize, seed: u64) -> SetupSample {
    let k = (n as f64).sqrt().round() as usize;
    let g = setup_graph(n, seed);
    let p = setup_partition(n, k, seed);
    let mut copy_best = f64::INFINITY;
    let mut view_best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        std::hint::black_box(setup_copy(&g, &p));
        copy_best = copy_best.min(t0.elapsed().as_secs_f64());
        let t0 = Instant::now();
        std::hint::black_box(setup_view(&g, &p));
        view_best = view_best.min(t0.elapsed().as_secs_f64());
    }
    SetupSample { n, k, m: g.edge_count(), copy_ms: copy_best * 1e3, view_ms: view_best * 1e3 }
}

/// One end-to-end DHC1 run under one Phase-1 representation.
struct E2eSample {
    mode: &'static str,
    wall_s: f64,
    rounds: usize,
    messages: u64,
}

/// The DHC1 operating point for `E2ePoint`: class size `s = n/k` with
/// intra-class expected degree `6 ln s` (the density Phase 1 needs; the
/// paper's `p = c ln n / √n` regime scaled to the chosen `k`).
fn e2e_graph(pt: E2ePoint, seed: u64) -> Graph {
    let s = (pt.n / pt.k).max(2) as f64;
    let p = (6.0 * s.ln() / (s - 1.0)).min(1.0);
    dhc_graph::generator::gnp(pt.n, p, &mut rng_from_seed(seed ^ 0xE2E)).expect("valid gnp")
}

/// Runs DHC1 view-vs-copy at the first succeeding seed; returns the
/// samples plus whether the two outcomes were bit-identical.
fn measure_e2e(pt: E2ePoint, seed: u64) -> Result<(Vec<E2eSample>, bool), String> {
    let g = e2e_graph(pt, seed);
    for attempt in 0..8u64 {
        let cfg = DhcConfig::new(seed ^ (0xD1C1 + attempt)).with_partitions(pt.k);
        let t0 = Instant::now();
        let Ok(view) = run_dhc1(&g, &cfg) else { continue };
        let view_wall = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let copy = run_dhc1(&g, &cfg.clone().with_materialized_phase1(true))
            .expect("copying oracle must succeed whenever the view run does");
        let copy_wall = t0.elapsed().as_secs_f64();
        let identical = view.cycle.order() == copy.cycle.order() && view.metrics == copy.metrics;
        // The bit-identity contract is load-bearing (it is what makes the
        // wall-clock comparison apples-to-apples), so a divergence at
        // this scale must fail loudly, not just print `false`.
        assert!(identical, "view and copy DHC1 runs diverged at n = {}, k = {}", pt.n, pt.k);
        return Ok((
            vec![
                E2eSample {
                    mode: "view",
                    wall_s: view_wall,
                    rounds: view.metrics.rounds,
                    messages: view.metrics.messages,
                },
                E2eSample {
                    mode: "copy",
                    wall_s: copy_wall,
                    rounds: copy.metrics.rounds,
                    messages: copy.metrics.messages,
                },
            ],
            identical,
        ));
    }
    Err(format!("DHC1 did not succeed in 8 seeds at n = {}, k = {}", pt.n, pt.k))
}

/// The baseline document in the shared `dhc-bench/v1` envelope: one
/// `setup` record per size, one flat `dhc1-e2e` record per Phase-1
/// mode, carried-forward committed end-to-end records re-appended
/// verbatim when this run skipped the heavy point.
fn render_doc(
    setup: &[SetupSample],
    e2e: Option<(E2ePoint, &[E2eSample], bool)>,
    carried: Vec<Json>,
    cores: usize,
    seed: u64,
) -> BenchDoc {
    let mut doc = BenchDoc::new(
        "e14",
        "partition",
        "phase-1 setup (view vs copy, k = sqrt(n)) + end-to-end DHC1",
        cores,
        seed,
    );
    for s in setup {
        doc.push(
            Record::new("setup")
                .usize("n", s.n)
                .usize("k", s.k)
                .usize("m", s.m)
                .f3("copy_ms", s.copy_ms)
                .f3("view_ms", s.view_ms)
                .field("speedup", Json::Num(format!("{:.2}", s.copy_ms / s.view_ms))),
        );
    }
    if let Some((pt, samples, identical)) = e2e {
        for s in samples {
            doc.push(
                Record::new("dhc1-e2e")
                    .usize("n", pt.n)
                    .usize("k", pt.k)
                    .bool("bit_identical", identical)
                    .str("mode", s.mode)
                    .f3("wall_s", s.wall_s)
                    .usize("rounds", s.rounds)
                    .u64("messages", s.messages),
            );
        }
    }
    for rec in carried {
        doc.push_json(rec);
    }
    doc
}

/// Runs E14 and renders its report (optionally writing the JSON baseline).
pub fn run(params: &Params, seed: u64) -> String {
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let mut out = String::new();
    out.push_str(&format!(
        "E14 partition pipeline: zero-copy class views vs materialized subgraphs \
         (machine has {cores} core(s))\n\n"
    ));

    out.push_str("  Phase-1 setup, k = sqrt(n) classes on G(n, 4 ln n / n):\n");
    let mut t = Table::new(vec!["n", "k", "m", "copy ms", "view ms", "speedup"]);
    let mut setup = Vec::new();
    for &n in &params.setup_sizes {
        let s = measure_setup(n, params.setup_reps, seed);
        t.row(vec![
            s.n.to_string(),
            s.k.to_string(),
            s.m.to_string(),
            f3(s.copy_ms),
            f3(s.view_ms),
            format!("{:.2}x", s.copy_ms / s.view_ms),
        ]);
        setup.push(s);
    }
    out.push_str(&t.render());
    out.push_str(
        "\n    copy = one O(n) remap + fresh CSR per class (O(n*k) total);\n    view = one O(n+m) grouping pass shared by all classes.\n\n",
    );

    if let Some(pt) = params.skipped_heavy {
        out.push_str(&format!(
            "  heavy point skipped: end-to-end DHC1 at n = {}, k = {} (over a minute per mode);\n  pass --heavy to run it and refresh BENCH_partition.json\n",
            pt.n, pt.k
        ));
    }

    let mut e2e_rows: Vec<E2eSample> = Vec::new();
    let mut e2e_identical = false;
    if let Some(pt) = params.e2e {
        out.push_str(&format!(
            "  End-to-end DHC1, n = {}, k = {} (both modes, same seed):\n",
            pt.n, pt.k
        ));
        match measure_e2e(pt, seed) {
            Ok((samples, identical)) => {
                let mut t = Table::new(vec!["mode", "wall s", "rounds", "messages", "identical"]);
                for s in &samples {
                    t.row(vec![
                        s.mode.to_string(),
                        f3(s.wall_s),
                        s.rounds.to_string(),
                        s.messages.to_string(),
                        identical.to_string(),
                    ]);
                }
                out.push_str(&t.render());
                out.push_str(
                    "\n    identical = cycles and full metrics are bit-equal across modes\n    (also pinned by crates/core/tests/view_equivalence.rs).\n",
                );
                e2e_rows = samples;
                e2e_identical = identical;
            }
            Err(e) => out.push_str(&format!("    {e}\n")),
        }
    }

    if params.emit_json {
        let path = baseline_path("BENCH_PARTITION_OUT", "BENCH_partition.json");
        let e2e = params
            .e2e
            .filter(|_| !e2e_rows.is_empty())
            .map(|pt| (pt, &e2e_rows[..], e2e_identical));
        // A gated run measured no end-to-end point: keep the committed
        // records instead of dropping them.
        let carried =
            if e2e.is_none() { carried_records(&path, &["dhc1-e2e"]) } else { Vec::new() };
        let doc = render_doc(&setup, e2e, carried, cores, seed);
        out.push_str(&write_baseline(&path, &doc));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_and_reports() {
        let report = run(&Params::for_effort(Effort::Smoke), 20180424);
        assert!(report.contains("partition pipeline"), "{report}");
        assert!(!report.contains("baseline written"));
    }

    #[test]
    fn doc_validates_and_carries_e2e_records_forward() {
        let setup = vec![SetupSample { n: 100, k: 10, m: 50, copy_ms: 2.0, view_ms: 1.0 }];
        let e2e = vec![E2eSample { mode: "view", wall_s: 1.5, rounds: 9, messages: 11 }];
        let text =
            render_doc(&setup, Some((E2ePoint { n: 100, k: 10 }, &e2e, true)), Vec::new(), 1, 7)
                .render();
        dhc_obs::schema::validate(&text).expect("schema-valid document");
        assert!(text.contains("\"bench\": \"partition\""), "{text}");
        assert!(text.contains("\"speedup\":2.00"), "{text}");
        assert!(text.contains("\"bit_identical\":true"), "{text}");
        assert!(text.contains("\"mode\":\"view\""), "{text}");

        // A gated run re-appends the committed e2e records verbatim.
        let carried = vec![Json::obj()
            .set("kind", Json::str("dhc1-e2e"))
            .set("n", Json::usize(10_000))
            .set("mode", Json::str("copy"))];
        let text = render_doc(&setup, None, carried, 1, 7).render();
        dhc_obs::schema::validate(&text).expect("schema-valid document");
        assert!(text.contains("\"n\":10000"), "{text}");
        assert!(text.contains("\"mode\":\"copy\""), "{text}");
    }
}
