//! **E16 — memory-lean scale sweep** (not a paper claim): runtime and
//! memory trajectory of the hot path as `n` grows, recorded to
//! `BENCH_scale.json`. Every point runs twice — **fat** (enum payloads,
//! full round log: the pre-lean representation kept as the equivalence
//! oracle) and **lean** (`--packed-payloads` wire + streaming-only
//! metrics) — and the two runs are asserted bit-identical (cycle order,
//! rounds, messages, words, max round traffic) wherever the oracle runs.
//!
//! Two workloads:
//!
//! - **DRA on G(n, 6 ln n / (n−1))** — the whole-graph rotation walk.
//!   Its message complexity is Θ(n²), so these rows stay small
//!   (n ≤ 2·10³); they anchor the per-message cost of both wires.
//! - **Clustered DHC2** — `k` clusters of `s = 200` nodes
//!   (intra-cluster G(s, 8 ln s / (s−1)); `⌈3·√(|A|·|B|)⌉` cross edges
//!   per merge pair, matching DHC2's deterministic color-pairing merge
//!   tree), run via [`run_dhc2_with_colors`] with the cluster coloring.
//!   Phase 1 is `k` small DRAs, so total work grows near-linearly in
//!   `n` at fixed `s` — this is the lane that reaches `n = 10⁶`.
//!
//! Each row records wall-clock, rounds, messages, CONGEST words,
//! words/node, the engine's peak buffer footprint
//! ([`dhc_congest::Metrics::peak_memory_words`]), and peak RSS (`VmHWM`, reset via
//! `/proc/self/clear_refs` before each run where the kernel allows —
//! rows record `null` when it does not, rather than a stale high-water
//! mark). Points above `n = 10⁵` take several minutes per run on a
//! CI-class host and are gated behind `--heavy`; unlike E13/E14 the
//! JSON is still written without the flag (the committed baseline *is*
//! the non-heavy trajectory), with the skipped points listed in a
//! `skipped_heavy` array so the omission is explicit.

use crate::baseline::{baseline_path, carried_records, write_baseline};
use crate::table::{f3, Table};
use dhc_congest::Config as SimConfig;
use dhc_core::{run_dhc2_with_colors, run_dra, CollectorHandle, DhcConfig, RunOutcome};
use dhc_graph::generator::{clustered, gnp};
use dhc_graph::rng::rng_from_seed;
use dhc_graph::Graph;
use dhc_obs::json::Json;
use dhc_obs::schema::{BenchDoc, Record};
use dhc_obs::RunObserver;
use std::time::{Duration, Instant};

use super::Effort;

/// Cluster size for the clustered-DHC2 lane. Held fixed across `n` so
/// the sweep isolates scaling in the cluster *count*: Phase 1 cost per
/// cluster is constant, and at `s = 200` the per-cluster DRA succeeds
/// on the first seed in practice (smaller classes fail ~1% of the
/// time, which is fatal once `k` reaches the thousands).
pub const CLUSTER_SIZE: usize = 200;

/// Intra-cluster edge probability multiplier: `p = 8 ln s / (s − 1)`.
pub const INTRA_DEGREE_MULT: f64 = 8.0;

/// Cross-edge density per merge pair: `⌈3·√(|A|·|B|)⌉` uniform pairs,
/// giving ≈ 2·3² expected spliceable bridges per merge independent of
/// the merge level.
pub const BRIDGE_FACTOR: f64 = 3.0;

/// DHC2 points above this many nodes take several minutes per run and
/// are gated behind the experiments binary's explicit `--heavy` flag.
pub const HEAVY_SCALE_NODES: usize = 100_000;

/// The fat (enum-payload) oracle runs alongside the lean path up to
/// this size; beyond it only the lean path runs (the acceptance bar is
/// bit-identity at n ≤ 10⁵, and the fat run would double multi-minute
/// wall-clock without changing what the row demonstrates).
pub const FAT_ORACLE_MAX_NODES: usize = 100_000;

/// One clustered-DHC2 scale point: `n = k · CLUSTER_SIZE` nodes.
#[derive(Debug, Clone, Copy)]
pub struct ScalePoint {
    /// Total node count.
    pub n: usize,
    /// Cluster (= Phase-1 partition) count.
    pub k: usize,
}

/// Sweep parameters for E16.
#[derive(Debug, Clone)]
pub struct Params {
    /// G(n, p) sizes for the whole-graph DRA lane.
    pub dra_sizes: Vec<usize>,
    /// Clustered-DHC2 lane points.
    pub dhc2: Vec<ScalePoint>,
    /// Cluster size (overridden only by the smoke preset so tests stay
    /// sub-second).
    pub cluster_size: usize,
    /// Whether to write `BENCH_scale.json` (disabled for smoke runs).
    pub emit_json: bool,
    /// Heavy points dropped by [`gated`](Params::gated); listed in the
    /// report and in the JSON's `skipped_heavy` meta array.
    pub skipped_heavy: Vec<ScalePoint>,
    /// Attach a heartbeat collector to every run so the multi-minute
    /// points (n >= 3*10^5) print live round counts to stderr (the
    /// experiments binary's `--progress` flag, default on for
    /// `--heavy`).
    pub progress: bool,
}

impl Params {
    /// Parameters for the given effort level.
    pub fn for_effort(effort: Effort) -> Self {
        match effort {
            Effort::Full => Params {
                dra_sizes: vec![1_000, 2_000],
                dhc2: vec![
                    ScalePoint { n: 10_000, k: 50 },
                    ScalePoint { n: 100_000, k: 500 },
                    ScalePoint { n: 300_000, k: 1_500 },
                    ScalePoint { n: 1_000_000, k: 5_000 },
                ],
                cluster_size: CLUSTER_SIZE,
                emit_json: true,
                skipped_heavy: Vec::new(),
                progress: false,
            },
            Effort::Quick => Params {
                dra_sizes: vec![1_000],
                dhc2: vec![ScalePoint { n: 4_000, k: 20 }],
                cluster_size: CLUSTER_SIZE,
                emit_json: true,
                skipped_heavy: Vec::new(),
                progress: false,
            },
            Effort::Smoke => Params {
                dra_sizes: vec![200],
                dhc2: vec![ScalePoint { n: 120, k: 3 }],
                cluster_size: 40,
                emit_json: false,
                skipped_heavy: Vec::new(),
                progress: false,
            },
        }
    }

    /// Applies the `--heavy` gate: without the flag, DHC2 points above
    /// [`HEAVY_SCALE_NODES`] are dropped. The JSON baseline is still
    /// written — the committed trajectory is the non-heavy rows — with
    /// the dropped points recorded in `skipped_heavy`.
    pub fn gated(mut self, heavy: bool) -> Self {
        if !heavy {
            let (kept, skipped) = self.dhc2.into_iter().partition(|pt| pt.n <= HEAVY_SCALE_NODES);
            self.dhc2 = kept;
            self.skipped_heavy = skipped;
        }
        self
    }
}

/// One measured run (fat or lean) at a scale point.
struct ModeRow {
    mode: &'static str,
    workers: usize,
    wall_s: f64,
    rounds: usize,
    messages: u64,
    words: u64,
    words_per_node: f64,
    peak_engine_words: u64,
    peak_words_per_node: f64,
    /// `VmHWM` after the run, if the high-water mark could be reset
    /// before it (monotone stale values are recorded as `None`).
    rss_hwm_kb: Option<u64>,
}

/// One scale point with its fat/lean rows.
struct PointResult {
    algo: &'static str,
    n: usize,
    k: usize,
    m: usize,
    rows: Vec<ModeRow>,
    /// `Some(true)` when the fat oracle ran and matched; `None` when
    /// the point is past [`FAT_ORACLE_MAX_NODES`] (lean-only).
    bit_identical: Option<bool>,
}

/// Resets the process RSS high-water mark so the next `VmHWM` read is
/// per-run, not process-lifetime. Needs kernel support for
/// `/proc/self/clear_refs`; returns whether the reset took.
fn reset_rss_hwm() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Current `VmHWM` in kB from `/proc/self/status` (Linux only).
fn rss_hwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn execute(
    algo: &'static str,
    g: &Graph,
    colors: Option<&[u32]>,
    k: usize,
    cfg: &DhcConfig,
) -> Result<RunOutcome, String> {
    match algo {
        "dra" => run_dra(g, cfg).map_err(|e| e.to_string()),
        _ => run_dhc2_with_colors(g, cfg, colors.expect("clustered coloring"), k)
            .map_err(|e| e.to_string()),
    }
}

/// Runs one run in one mode, measuring wall-clock and (when the reset
/// works) per-run peak RSS.
fn timed(
    algo: &'static str,
    g: &Graph,
    colors: Option<&[u32]>,
    k: usize,
    cfg: &DhcConfig,
    mode: &'static str,
    progress: Option<&CollectorHandle>,
) -> Result<(ModeRow, RunOutcome), String> {
    let cfg = &match progress {
        // Live round counts on stderr; pure observation, so the fat/lean
        // bit-identity assertion is unaffected (obs_equivalence).
        Some(col) => cfg.clone().with_collector(col.clone()),
        None => cfg.clone(),
    };
    let rss_ok = reset_rss_hwm();
    let t0 = Instant::now();
    let out = execute(algo, g, colors, k, cfg)?;
    let wall_s = t0.elapsed().as_secs_f64();
    let n = g.node_count();
    let row = ModeRow {
        mode,
        workers: SimConfig::default().effective_engine_threads(),
        wall_s,
        rounds: out.metrics.rounds,
        messages: out.metrics.messages,
        words: out.metrics.words,
        words_per_node: out.metrics.words as f64 / n as f64,
        peak_engine_words: out.metrics.peak_memory_words(),
        peak_words_per_node: out.metrics.peak_memory_words() as f64 / n as f64,
        rss_hwm_kb: if rss_ok { rss_hwm_kb() } else { None },
    };
    Ok((row, out))
}

/// Measures one scale point: scans up to 8 config seeds with the lean
/// path (the representation that must scale), then replays the first
/// succeeding seed through the fat oracle and asserts bit-identity on
/// everything both paths compute (the round-traffic *log* differs by
/// construction — lean keeps only the streaming maximum).
fn measure_point(
    algo: &'static str,
    g: &Graph,
    colors: Option<&[u32]>,
    k: usize,
    seed: u64,
    progress: bool,
) -> Result<PointResult, String> {
    let n = g.node_count();
    let collector = progress
        .then(|| CollectorHandle::new(RunObserver::new().with_heartbeat(Duration::from_secs(2))));
    let collector = collector.as_ref();
    for attempt in 0..8u64 {
        let base = DhcConfig::new(seed ^ (0xE16C + attempt)).with_partitions(k);
        let lean_cfg = base.clone().with_packed_payloads(true).with_round_traffic(false);
        let Ok((lean_row, lean)) = timed(algo, g, colors, k, &lean_cfg, "lean", collector) else {
            continue;
        };
        let mut rows = vec![lean_row];
        let mut bit_identical = None;
        if n <= FAT_ORACLE_MAX_NODES {
            let (fat_row, fat) = timed(algo, g, colors, k, &base, "fat", collector)?;
            let same = fat.cycle.order() == lean.cycle.order()
                && fat.metrics.rounds == lean.metrics.rounds
                && fat.metrics.messages == lean.metrics.messages
                && fat.metrics.words == lean.metrics.words
                && fat.metrics.max_round_traffic == lean.metrics.max_round_traffic;
            assert!(
                same,
                "fat and lean runs diverged at {algo} n = {n} (the packed wire must be \
                 bit-identical to the enum oracle)"
            );
            rows.insert(0, fat_row);
            bit_identical = Some(true);
        }
        return Ok(PointResult { algo, n, k, m: g.edge_count(), rows, bit_identical });
    }
    Err(format!("{algo} did not succeed in 8 seeds at n = {n}, k = {k}"))
}

/// The baseline document in the shared `dhc-bench/v1` envelope: one
/// flat `scale-row` record per measured mode (point fields repeated on
/// each row), cluster constants and skipped heavy points in `meta`,
/// carried-forward committed heavy rows re-appended verbatim.
fn render_doc(
    points: &[PointResult],
    params: &Params,
    carried: Vec<Json>,
    cores: usize,
    seed: u64,
) -> BenchDoc {
    let mut doc = BenchDoc::new(
        "e16",
        "scale",
        "DRA on G(n, 6 ln n/(n-1)) + clustered DHC2 (k clusters of s nodes, intra \
         G(s, 8 ln s/(s-1)), ceil(3 sqrt(|A||B|)) cross edges per merge pair); fat = enum \
         payloads + round log, lean = packed wire + streaming metrics",
        cores,
        seed,
    );
    doc.meta("cluster_size", Json::usize(params.cluster_size));
    doc.meta("intra_degree_mult", Json::f1(INTRA_DEGREE_MULT));
    doc.meta("bridge_factor", Json::f1(BRIDGE_FACTOR));
    doc.meta(
        "skipped_heavy",
        Json::Arr(
            params
                .skipped_heavy
                .iter()
                .map(|pt| Json::obj().set("n", Json::usize(pt.n)).set("k", Json::usize(pt.k)))
                .collect(),
        ),
    );
    for p in points {
        for r in &p.rows {
            let bit = match p.bit_identical {
                Some(b) => Json::Bool(b),
                None => Json::Null,
            };
            let rss = match r.rss_hwm_kb {
                Some(kb) => Json::u64(kb),
                None => Json::Null,
            };
            doc.push(
                Record::new("scale-row")
                    .str("algo", p.algo)
                    .usize("n", p.n)
                    .usize("k", p.k)
                    .usize("m", p.m)
                    .field("bit_identical", bit)
                    .str("mode", r.mode)
                    .usize("workers", r.workers)
                    .f3("wall_s", r.wall_s)
                    .usize("rounds", r.rounds)
                    .u64("messages", r.messages)
                    .u64("words", r.words)
                    .f1("words_per_node", r.words_per_node)
                    .u64("peak_engine_words", r.peak_engine_words)
                    .f1("peak_words_per_node", r.peak_words_per_node)
                    .field("rss_hwm_kb", rss),
            );
        }
    }
    for rec in carried {
        doc.push_json(rec);
    }
    doc
}

/// Runs E16 and renders its report (optionally writing the JSON baseline).
pub fn run(params: &Params, seed: u64) -> String {
    let cores = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    let s = params.cluster_size;
    let mut out = String::new();
    out.push_str(&format!(
        "E16 memory-lean scale sweep: fat (enum + round log) vs lean (packed wire + \
         streaming metrics) runtime and memory trajectory (machine has {cores} core(s))\n\n"
    ));
    let mut t = Table::new(vec![
        "algo",
        "n",
        "k",
        "m",
        "mode",
        "wall s",
        "rounds",
        "messages",
        "words/node",
        "peak words",
        "peak RSS kB",
    ]);
    let mut points = Vec::new();
    let mut failures = Vec::new();
    for &n in &params.dra_sizes {
        let p = (6.0 * (n as f64).ln() / (n as f64 - 1.0)).min(1.0);
        let g = gnp(n, p, &mut rng_from_seed(seed ^ 0xE16)).expect("valid gnp");
        match measure_point("dra", &g, None, 1, seed, params.progress) {
            Ok(pt) => points.push(pt),
            Err(e) => failures.push(e),
        }
    }
    for &ScalePoint { n, k } in &params.dhc2 {
        let intra_p = (INTRA_DEGREE_MULT * (s as f64).ln() / (s as f64 - 1.0)).min(1.0);
        let (g, colors) = clustered(k, s, intra_p, BRIDGE_FACTOR, &mut rng_from_seed(seed ^ 0xE16))
            .expect("valid clustered graph");
        debug_assert_eq!(g.node_count(), n, "point n must equal k * cluster_size");
        match measure_point("dhc2", &g, Some(&colors), k, seed, params.progress) {
            Ok(pt) => points.push(pt),
            Err(e) => failures.push(e),
        }
    }
    for p in &points {
        for r in &p.rows {
            t.row(vec![
                p.algo.to_string(),
                p.n.to_string(),
                p.k.to_string(),
                p.m.to_string(),
                r.mode.to_string(),
                f3(r.wall_s),
                r.rounds.to_string(),
                r.messages.to_string(),
                f3(r.words_per_node),
                r.peak_engine_words.to_string(),
                r.rss_hwm_kb.map_or_else(|| "n/a".into(), |kb| kb.to_string()),
            ]);
        }
    }
    out.push_str(&t.render());
    for p in &points {
        if let [fat, lean] = p.rows.as_slice() {
            out.push_str(&format!(
                "    {} n = {}: lean/fat peak engine words = {:.2}, wall = {:.2}\n",
                p.algo,
                p.n,
                lean.peak_engine_words as f64 / fat.peak_engine_words as f64,
                lean.wall_s / fat.wall_s,
            ));
        }
    }
    out.push_str(
        "\n    fat rows are the equivalence oracle: cycle, rounds, messages, words, and max \
         round traffic\n    are asserted identical to the lean run on the same seed.\n",
    );
    for e in &failures {
        out.push_str(&format!("    FAILED: {e}\n"));
    }
    for pt in &params.skipped_heavy {
        out.push_str(&format!(
            "    skipped (needs --heavy): clustered DHC2 at n = {}, k = {} \
             (several minutes per run)\n",
            pt.n, pt.k
        ));
    }
    if params.emit_json {
        let path = baseline_path("BENCH_SCALE_OUT", "BENCH_scale.json");
        // Committed rows above everything measured this run (the heavy
        // trajectory a non-heavy refresh must not lose) come along.
        let measured_max = points.iter().map(|p| p.n).max().unwrap_or(0) as u64;
        let carried: Vec<Json> = carried_records(&path, &["scale-row"])
            .into_iter()
            .filter(|r| r.get("n").and_then(Json::as_u64).is_some_and(|n| n > measured_max))
            .collect();
        let doc = render_doc(&points, params, carried, cores, seed);
        out.push_str(&write_baseline(&path, &doc));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_and_reports() {
        let report = run(&Params::for_effort(Effort::Smoke), 7);
        assert!(report.contains("memory-lean scale sweep"));
        assert!(report.contains("lean/fat peak engine words"));
        assert!(!report.contains("FAILED"));
        assert!(!report.contains("baseline written"));
    }

    #[test]
    fn heavy_gate_drops_big_points_but_keeps_json() {
        let full = Params::for_effort(Effort::Full);
        let gated = full.clone().gated(false);
        assert!(gated.dhc2.iter().all(|pt| pt.n <= HEAVY_SCALE_NODES));
        assert_eq!(gated.skipped_heavy.len(), 2);
        assert!(gated.emit_json, "the committed baseline is the non-heavy trajectory");
        let heavy = full.clone().gated(true);
        assert_eq!(heavy.dhc2.len(), 4);
        assert!(heavy.skipped_heavy.is_empty());
    }

    #[test]
    fn doc_validates_and_carries_heavy_rows_forward() {
        let point = PointResult {
            algo: "dhc2",
            n: 120,
            k: 3,
            m: 456,
            bit_identical: Some(true),
            rows: vec![
                ModeRow {
                    mode: "fat",
                    workers: 1,
                    wall_s: 0.5,
                    rounds: 10,
                    messages: 100,
                    words: 200,
                    words_per_node: 1.7,
                    peak_engine_words: 999,
                    peak_words_per_node: 8.3,
                    rss_hwm_kb: Some(4_096),
                },
                ModeRow {
                    mode: "lean",
                    workers: 1,
                    wall_s: 0.4,
                    rounds: 10,
                    messages: 100,
                    words: 200,
                    words_per_node: 1.7,
                    peak_engine_words: 777,
                    peak_words_per_node: 6.5,
                    rss_hwm_kb: None,
                },
            ],
        };
        let params = Params::for_effort(Effort::Full).gated(false);
        let carried = vec![Json::obj()
            .set("kind", Json::str("scale-row"))
            .set("n", Json::u64(1_000_000))
            .set("mode", Json::str("lean"))];
        let doc = render_doc(&[point], &params, carried, 1, 7);
        let text = doc.render();
        let checked = dhc_obs::schema::validate(&text);
        assert!(checked.is_ok(), "{checked:?}");
        assert!(text.contains("\"bench\": \"scale\""));
        assert!(text.contains("\"kind\":\"scale-row\""));
        assert!(text.contains("\"bit_identical\":true"));
        assert!(text.contains("\"peak_engine_words\":777"));
        assert!(text.contains("\"rss_hwm_kb\":4096"));
        assert!(text.contains("\"rss_hwm_kb\":null"));
        assert!(text.contains("\"n\":1000000"));
        assert!(text.contains("\"skipped_heavy\":[{\"n\":300000,\"k\":1500},"));
    }
}
