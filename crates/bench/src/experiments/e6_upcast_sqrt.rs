//! **E6 — Theorem 17 and Fact 2**: at `p = Θ(log n / √n)` the graph has
//! diameter 2 whp and Upcast solves HC in `O(√n log²n)` rounds.
//!
//! Measures the exact diameter (for feasible `n`) and Upcast's rounds,
//! normalized by `√n ln²n`, plus the fitted scaling exponent.

use crate::stats::{fit_power_law, summarize};
use crate::table::{f3, Table};
use crate::workload::{run_trials, success_rate, OperatingPoint};
use dhc_core::{run_upcast, DhcConfig};
use dhc_graph::diameter;

use super::Effort;

/// Sweep parameters for E6.
#[derive(Debug, Clone)]
pub struct Params {
    /// Graph sizes.
    pub sizes: Vec<usize>,
    /// Threshold constant in `p = c log n / sqrt(n)`.
    pub c: f64,
    /// Trials per size.
    pub trials: usize,
    /// Largest `n` for which the exact diameter is computed.
    pub exact_diameter_up_to: usize,
}

impl Params {
    /// Parameters for the given effort level.
    pub fn for_effort(effort: Effort) -> Self {
        match effort {
            Effort::Full => Params {
                sizes: vec![256, 512, 1024, 2048, 4096, 8192],
                c: 1.0,
                trials: 5,
                exact_diameter_up_to: 2048,
            },
            Effort::Quick => Params {
                sizes: vec![256, 1024, 4096],
                c: 1.0,
                trials: 3,
                exact_diameter_up_to: 1024,
            },
            Effort::Smoke => {
                Params { sizes: vec![256], c: 1.0, trials: 1, exact_diameter_up_to: 256 }
            }
        }
    }
}

/// Runs E6 and renders its report.
pub fn run(params: &Params, seed: u64) -> String {
    let mut out = String::new();
    out.push_str("E6  Theorem 17 / Fact 2: Upcast at p = log n / sqrt(n)\n\n");
    let mut t = Table::new(vec!["n", "p", "diam", "ok%", "rounds med", "rounds/(sqrt(n) ln^2 n)"]);
    let mut fit_points = Vec::new();
    for &n in &params.sizes {
        let pt = OperatingPoint { n, delta: 0.5, c: params.c };
        let exact = n <= params.exact_diameter_up_to;
        let results = run_trials(params.trials, seed ^ (n as u64) << 2, |_, s| {
            let g = pt.sample(s).expect("valid operating point");
            let diam =
                if exact { diameter::exact(&g) } else { diameter::two_sweep_lower_bound(&g, 0) };
            let rounds =
                run_upcast(&g, &DhcConfig::new(s ^ 0xE6)).map(|o| o.metrics.rounds as f64).ok();
            (diam, rounds)
        });
        let ok: Vec<bool> = results.iter().map(|r| r.1.is_some()).collect();
        let rounds: Vec<f64> = results.iter().filter_map(|r| r.1).collect();
        let diams: Vec<f64> = results.iter().filter_map(|r| r.0.map(|d| d as f64)).collect();
        let rmed = if rounds.is_empty() { f64::NAN } else { summarize(&rounds).median };
        if rmed.is_finite() {
            fit_points.push((n as f64, rmed));
        }
        let nf = n as f64;
        let scale = nf.sqrt() * nf.ln().powi(2);
        let dmax = if diams.is_empty() { f64::NAN } else { summarize(&diams).max };
        t.row(vec![
            n.to_string(),
            f3(pt.p()),
            format!("{}{}", if exact { "" } else { ">=" }, dmax),
            f3(100.0 * success_rate(&ok)),
            f3(rmed),
            format!("{:.4}", rmed / scale),
        ]);
    }
    out.push_str(&t.render());
    if fit_points.len() >= 2 {
        let fit = fit_power_law(&fit_points);
        out.push_str(&format!(
            "\n    fitted rounds ~ n^{:.2} (r2 = {:.3}); paper: n^0.5 x polylog.\n",
            fit.exponent, fit.r2
        ));
    }
    out.push_str("    paper: diameter 2 whp (Fact 2); rounds O(sqrt(n) log^2 n) (Thm 17).\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_and_reports() {
        let report = run(&Params::for_effort(Effort::Smoke), 6);
        assert!(report.contains("Fact 2"));
    }
}
