//! One module per experiment; see `PAPER.md` for the claim map.
//!
//! Every experiment exposes `Params` (with `full()`, `quick()`, and tiny
//! `smoke()` constructors — the latter keeps unit tests fast) and a
//! `run(&Params, seed) -> String` that renders the report the
//! `experiments` binary prints.

pub mod e10_ablations;
pub mod e11_kmachine;
pub mod e12_other_models;
pub mod e13_engine;
pub mod e14_partition;
pub mod e15_adversary;
pub mod e16_scale;
pub mod e1_dra_steps;
pub mod e2_partition_balance;
pub mod e3_dhc1_scaling;
pub mod e4_dhc2_scaling;
pub mod e5_merge_levels;
pub mod e6_upcast_sqrt;
pub mod e7_upcast_general;
pub mod e8_resources;
pub mod e9_comparison;

/// Effort level shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Full paper-scale sweep (minutes).
    Full,
    /// Reduced sweep (tens of seconds).
    Quick,
    /// Tiny smoke run for tests (sub-second to seconds).
    Smoke,
}

/// Runs one experiment by id (`"e1"` … `"e16"`), returning its report.
/// `heavy` opts into the experiment points that take over a minute per
/// run (E13's and E14's end-to-end DHC1 at n = 10⁴, E15's delay/crash
/// sweeps, and E16's scale points past n = 10⁵); without it those
/// points are skipped with a printed notice. `progress` attaches a
/// `dhc-obs` [`dhc_obs::RunObserver`] with a stderr heartbeat to the
/// long-running runs (E13's end-to-end DHC1, E16's scale points) so
/// multi-minute sweeps show live round counts.
///
/// # Errors
///
/// Returns `Err` with the unknown id for anything else.
pub fn run_by_id(
    id: &str,
    effort: Effort,
    heavy: bool,
    progress: bool,
    seed: u64,
) -> Result<String, String> {
    let report = match id {
        "e1" => e1_dra_steps::run(&e1_dra_steps::Params::for_effort(effort), seed),
        "e2" => e2_partition_balance::run(&e2_partition_balance::Params::for_effort(effort), seed),
        "e3" => e3_dhc1_scaling::run(&e3_dhc1_scaling::Params::for_effort(effort), seed),
        "e4" => e4_dhc2_scaling::run(&e4_dhc2_scaling::Params::for_effort(effort), seed),
        "e5" => e5_merge_levels::run(&e5_merge_levels::Params::for_effort(effort), seed),
        "e6" => e6_upcast_sqrt::run(&e6_upcast_sqrt::Params::for_effort(effort), seed),
        "e7" => e7_upcast_general::run(&e7_upcast_general::Params::for_effort(effort), seed),
        "e8" => e8_resources::run(&e8_resources::Params::for_effort(effort), seed),
        "e9" => e9_comparison::run(&e9_comparison::Params::for_effort(effort), seed),
        "e10" => e10_ablations::run(&e10_ablations::Params::for_effort(effort), seed),
        "e11" => e11_kmachine::run(&e11_kmachine::Params::for_effort(effort), seed),
        "e12" => e12_other_models::run(&e12_other_models::Params::for_effort(effort), seed),
        "e13" => {
            let mut p = e13_engine::Params::for_effort(effort).gated(heavy);
            p.progress = progress;
            e13_engine::run(&p, seed)
        }
        "e14" => e14_partition::run(&e14_partition::Params::for_effort(effort).gated(heavy), seed),
        "e15" => e15_adversary::run(&e15_adversary::Params::for_effort(effort).gated(heavy), seed),
        "e16" => {
            let mut p = e16_scale::Params::for_effort(effort).gated(heavy);
            p.progress = progress;
            e16_scale::run(&p, seed)
        }
        other => return Err(format!("unknown experiment id: {other}")),
    };
    Ok(report)
}

/// All experiments in order: `(id, one-line description)` — what the
/// binary's `--list` flag prints.
pub const CATALOG: [(&str, &str); 16] = [
    ("e1", "Theorem 2: DRA rotation-walk steps and rounds on a single partition"),
    ("e2", "Lemmas 4 and 7: random-coloring class balance and intra-class degrees"),
    ("e3", "Theorem 1: DHC1 round/message scaling at p = c ln n / sqrt(n)"),
    ("e4", "Theorem 10: DHC2 round/message scaling at p = c ln n / n^delta"),
    ("e5", "Lemmas 8 and 9: per-level DHC2 bridge existence and merge success"),
    ("e6", "Theorem 17 / Fact 2: Upcast at p = Theta(log n / sqrt(n))"),
    ("e7", "Theorem 19 / Lemma 18: Upcast in the general regime, subtree balance"),
    ("e8", "Fully-distributed property: per-node memory, compute, and load balance"),
    ("e9", "Positioning: DHC1/DHC2 vs Upcast vs collect-all on the same graphs"),
    ("e10", "Design ablations: the implementation's main free choices"),
    ("e11", "k-machine conversion: measured KNPR simulation vs the O~(M/k^2 + T*D'/k) bound"),
    ("e12", "Conclusion's extension claim: other random-graph models"),
    ("e13", "Engine throughput baseline: flood-echo and broadcast-storm rounds/sec"),
    ("e14", "Partition-pipeline baseline: zero-copy class views vs materialized subgraphs"),
    ("e15", "Adversary degradation: success rates under seeded drop/delay/crash faults"),
    ("e16", "Memory-lean scale sweep: fat vs packed/streaming runtime and peak memory"),
];

/// All experiment ids in order.
pub const ALL_IDS: [&str; 16] = {
    let mut ids = [""; 16];
    let mut i = 0;
    while i < 16 {
        ids[i] = CATALOG[i].0;
        i += 1;
    }
    ids
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_error() {
        assert!(run_by_id("e42", Effort::Smoke, false, false, 0).is_err());
    }

    #[test]
    fn heavy_gate_drops_full_e2e_point_but_keeps_baseline_write() {
        let full = e14_partition::Params::for_effort(Effort::Full);
        let gated = full.clone().gated(false);
        // The write survives the gate: the committed `dhc1-e2e` records
        // are carried forward, so a non-heavy run refreshes setup rows.
        assert!(gated.e2e.is_none() && gated.emit_json && gated.skipped_heavy.is_some());
        let heavy = full.clone().gated(true);
        assert_eq!(heavy.e2e.map(|p| p.n), Some(10_000));
        assert!(heavy.emit_json);
        // Sub-minute points pass through untouched.
        let quick = e14_partition::Params::for_effort(Effort::Quick).gated(false);
        assert!(quick.e2e.is_some() && quick.skipped_heavy.is_none());
    }

    #[test]
    fn all_ids_listed() {
        assert_eq!(ALL_IDS.len(), 16);
    }

    #[test]
    fn catalog_matches_ids_and_every_entry_runs() {
        for ((id, description), want) in CATALOG.iter().zip(ALL_IDS.iter()) {
            assert_eq!(id, want);
            assert!(!description.is_empty(), "{id} needs a description");
        }
    }
}
