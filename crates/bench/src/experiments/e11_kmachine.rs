//! **E11 — the k-machine conversion (§IV)**: because DHC2 is fully
//! distributed (balanced per-node communication), the Klauck et al.
//! conversion bound `Õ(M/k² + T·Δ'/k)` shrinks quickly with the number of
//! machines `k`; Upcast's root hotspot keeps its `Δ'` term large.
//!
//! Instantiates the conversion estimate with measured CONGEST metrics for
//! both algorithms across a sweep of `k`, and reports the random-vertex-
//! partition balance.

use crate::table::{f3, Table};
use crate::workload::{floored_partitions, OperatingPoint};
use dhc_core::kmachine::{ConversionEstimate, RandomVertexPartition};
use dhc_core::{run_dhc2, run_upcast, DhcConfig};

use super::Effort;

/// Sweep parameters for E11.
#[derive(Debug, Clone)]
pub struct Params {
    /// Graph size.
    pub n: usize,
    /// Threshold constant at `δ = 1/2`.
    pub c: f64,
    /// Machine counts to sweep.
    pub ks: Vec<usize>,
}

impl Params {
    /// Parameters for the given effort level.
    pub fn for_effort(effort: Effort) -> Self {
        match effort {
            Effort::Full => Params { n: 512, c: 6.0, ks: vec![4, 8, 16, 32] },
            Effort::Quick => Params { n: 256, c: 6.0, ks: vec![4, 16] },
            Effort::Smoke => Params { n: 128, c: 6.0, ks: vec![4] },
        }
    }
}

/// Runs E11 and renders its report.
pub fn run(params: &Params, seed: u64) -> String {
    let n = params.n;
    let pt = OperatingPoint { n, delta: 0.5, c: params.c };
    let parts = floored_partitions(n, 0.5);
    let mut out = String::new();
    out.push_str("E11 k-machine conversion estimates (Klauck et al. conversion theorem)\n");
    out.push_str(&format!("    n = {}, p = {:.3}\n\n", n, pt.p()));
    let g = match pt.sample(seed ^ 0xB11) {
        Ok(g) => g,
        Err(e) => return format!("E11 skipped: {e}\n"),
    };
    // A single run, so Phase 1 may take every core (0 = auto).
    let dhc2 = run_dhc2(&g, &DhcConfig::new(seed ^ 1).with_partitions(parts).with_parallelism(0));
    let upcast = run_upcast(&g, &DhcConfig::new(seed ^ 2));
    let mut t = Table::new(vec!["algo", "k", "RVP balance", "M/k^2", "T*D'/k", "bound"]);
    for (name, run) in [("dhc2", dhc2), ("upcast", upcast)] {
        let Ok(outcome) = run else {
            t.row(vec![name.into(), "-".into(), "failed".into()]);
            continue;
        };
        for &k in &params.ks {
            let est = ConversionEstimate::from_metrics(&outcome.metrics, k);
            let rvp = RandomVertexPartition::new(n, k, seed ^ k as u64);
            t.row(vec![
                name.to_string(),
                k.to_string(),
                f3(rvp.balance()),
                f3(est.volume_term),
                f3(est.hotspot_term),
                f3(est.round_bound()),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "\n    paper SIV: fully-distributed algorithms convert efficiently to the\n    k-machine model; the bound should fall roughly like 1/k^2 for dhc2,\n    while upcast's hotspot term (root congestion) decays only like 1/k.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_and_reports() {
        let report = run(&Params::for_effort(Effort::Smoke), 11);
        assert!(report.contains("k-machine"));
    }
}
